"""Table II: RTN W4A16 perplexity across quantization-group shapes.

Uses the synthetic self-calibrated bigram LM (offline substitute for
Llama2-7B on WikiText-2/C4; see DESIGN.md) evaluated end-to-end
through the PacQ hyper-asymmetric GEMM path.
"""

from benchmarks.conftest import print_result
from repro.core.experiments import table2
from repro.llm.bigram import make_bigram_lm
from repro.llm.corpus import sample_tokens
from repro.llm.perplexity import evaluate_perplexity
from repro.quant.groups import G32_4
from repro.quant.rtn import quantize_rtn


def test_table2_report():
    result = table2(vocab=256, d_model=512, corpus_len=2048)
    print_result(result)
    rows = {r.label: r.measured for r in result.rows}
    assert rows["g128"] > rows["fp16"]
    # Iso-perplexity of k-only vs [k, n]-spanning groups.
    assert abs(rows["g[32,4]"] - rows["g128"]) / rows["g128"] < 0.10
    assert abs(rows["g[64,4]"] - rows["g256"]) / rows["g256"] < 0.10


def test_table2_benchmark_quantized_perplexity(benchmark):
    lm = make_bigram_lm(vocab=128, d_model=256)
    tokens = sample_tokens(lm.language(), 512)
    qhead = quantize_rtn(lm.head, 4, G32_4)

    ppl = benchmark(evaluate_perplexity, lm, tokens, quantized=qhead)
    assert ppl > 1.0
