"""Fig. 12: DP-unit size study (a) and Mix-GEMM comparison (b)."""

import pytest

from benchmarks.conftest import print_result
from repro.core.experiments import fig12a, fig12b


def test_fig12a_report():
    result = fig12a()
    print_result(result)
    for row in result.rows:
        assert row.measured > 1.0  # PacQ wins at every DP width


def test_fig12b_report():
    result = fig12b()
    print_result(result)
    row4 = result.row("INT4 PacQ vs Mix-GEMM")
    row2 = result.row("INT2 PacQ vs Mix-GEMM")
    assert row4.measured == pytest.approx(4.12, rel=0.2)
    assert row2.measured == pytest.approx(3.75, rel=0.2)


def test_fig12_benchmark_dp_size_study(benchmark):
    result = benchmark(fig12a)
    assert result.rows


def test_fig12_benchmark_mixgemm(benchmark):
    result = benchmark(fig12b)
    assert result.rows
