"""Table I: configuration of PacQ and the baselines.

Regenerates the unit inventory and times the construction of every
unit cost model derived from it.
"""

from repro.core.experiments import table1
from repro.core.report import render_table
from repro.energy.units import (
    dp_unit,
    fp16_mul_baseline,
    fp_int16_mul_parallel,
    int11_mul_baseline,
    int11_mul_parallel,
    tensor_core,
)


def test_table1_report():
    rows = [[unit, composition] for unit, composition in table1()]
    print()
    print(render_table("Table I: configuration of PacQ and baselines",
                       ["unit", "composition"], rows))
    assert len(rows) == 8


def test_table1_benchmark_unit_costs(benchmark):
    def build_all():
        return (
            int11_mul_baseline(),
            int11_mul_parallel(),
            fp16_mul_baseline(),
            fp_int16_mul_parallel(4),
            fp_int16_mul_parallel(2),
            dp_unit(4, 1, 1),
            dp_unit(4, 4, 2),
            tensor_core(4, 4, 2),
        )

    units = benchmark(build_all)
    assert all(u.energy_per_op > 0 for u in units)
