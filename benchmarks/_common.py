"""Shared boilerplate for the serving-shaped benchmarks.

``bench_session.py`` and ``bench_serve.py`` (and its shared-prefix
scenario) all build the same kind of quick-config quantized decoder,
parse the same ``--quick`` / ``--json`` flags, and emit the same
machine-header fields in their records.  That lives here once.
"""

from __future__ import annotations

import argparse
import json
import platform

import numpy as np

from repro.llm.transformer import TransformerConfig, init_weights
from repro.model import parse_policy, quantize_model


def build_quantized(config: TransformerConfig, policy: str, seed: int = 0):
    """Seeded weights + quantized model for a benchmark config."""
    weights = init_weights(config, seed=seed)
    qmodel = quantize_model(
        weights, parse_policy(policy), config=config, compute_reports=False
    )
    return weights, qmodel


def make_parser(doc: str | None) -> argparse.ArgumentParser:
    """The standard benchmark CLI: ``--quick`` and ``--json OUT``."""
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer decoded tokens (CI perf smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write a machine-readable record to OUT",
    )
    return parser


def base_record(schema: str, quick: bool) -> dict:
    """The machine-header fields every ``BENCH_*.json`` record carries."""
    return {
        "schema": schema,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "quick": quick,
    }


def write_record(path: str, record: dict) -> None:
    """Dump a record the way every benchmark commits its baseline."""
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
