"""Engine benchmark: plan/execute split vs per-call planning, by backend.

Two workloads:

* **decode** — the acceptance shape ``[32, 1024] x [1024, 1024]`` INT4
  with ``g[32,4]`` groups (a Llama-scale decode GEMM) over the cheap
  backends, comparing **per-call** (a fresh
  :class:`repro.engine.GemmPlan` per call — the seed's ``hyper_gemm``
  behaviour) against **plan-reuse** (one cached plan, execute-only);
* **bitexact** — ``[8, 256] x [256, 256]`` INT4 comparing the
  vectorized ``bitexact`` datapath validator against the
  ``bitexact-scalar`` oracle loop it replaced.  The vectorized kernel
  layer (:mod:`repro.fp.vec`) targets >= 100x here.

The report asserts both headline claims: plan-reuse ``batched`` at
least 2x over per-call ``fast``, and vectorized ``bitexact`` at least
100x over the scalar oracle.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py --benchmark-only

or standalone (``--quick`` shrinks reps for CI perf-smoke; ``--json``
emits the machine-readable record that accumulates the repo's
``BENCH_*.json`` perf trajectory)::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick --json BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np
import pytest

from repro.core.report import render_table
from repro.engine import GemmPlan, plan_gemm
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn

#: The decode workload: [m, k] x [k, n], INT4, g[32,4].
M, K, N = 32, 1024, 1024
#: Backends cheap enough for the full-size decode workload.
FULL_SIZE_BACKENDS = ("reference", "fast", "batched")
#: The bitexact validator workload: [m, k] x [k, n], INT4, g[32,4].
BITEXACT_M, BITEXACT_K, BITEXACT_N = 8, 256, 256
#: Group geometry shared by both workloads.
GROUP = (32, 4)

#: JSON schema tag of the --json record.
JSON_SCHEMA = "bench_engine/v1"


def _workload(m: int = M, k: int = K, n: int = N):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(m, k))
    qm = quantize_rtn(rng.normal(size=(k, n)), bits=4, group=GroupSpec(*GROUP))
    return a, qm


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(reps: int = 5) -> dict[str, dict[str, float]]:
    """Seconds per call, ``{backend: {"per_call": s, "plan_reuse": s}}``."""
    a, qm = _workload()
    timings: dict[str, dict[str, float]] = {}
    for backend in FULL_SIZE_BACKENDS:
        plan = plan_gemm(qm)
        plan.execute(a, backend=backend)  # warm lazy plan state + caches
        timings[backend] = {
            "per_call": _best_of(
                lambda b=backend: GemmPlan(qm).execute(a, backend=b), reps
            ),
            "plan_reuse": _best_of(
                lambda p=plan, b=backend: p.execute(a, backend=b), reps
            ),
        }
    return timings


def measure_bitexact(reps: int = 5) -> dict[str, float]:
    """Plan-reuse seconds for the bitexact workload, vec vs scalar oracle.

    The scalar oracle runs once (it is the seconds-per-call datapoint
    the vectorized layer is measured against — repeating it would only
    add minutes of benchmark wall time).
    """
    a, qm = _workload(BITEXACT_M, BITEXACT_K, BITEXACT_N)
    plan = plan_gemm(qm)
    plan.execute(a, backend="bitexact")  # warm
    timings = {
        "reference": _best_of(lambda: plan.execute(a, backend="reference"), reps),
        "bitexact": _best_of(lambda: plan.execute(a, backend="bitexact"), reps),
        "bitexact-scalar": _best_of(
            lambda: plan.execute(a, backend="bitexact-scalar"), 1
        ),
    }
    return timings


def report(timings: dict[str, dict[str, float]]) -> str:
    percall_fast = timings["fast"]["per_call"]
    rows = []
    for backend, t in timings.items():
        rows.append([
            backend,
            f"{t['per_call'] * 1e3:.1f}",
            f"{t['plan_reuse'] * 1e3:.1f}",
            f"{percall_fast / t['plan_reuse']:.2f}",
        ])
    return render_table(
        f"bench_engine: [{M}, {K}] x [{K}, {N}] INT4 g[32,4] "
        "(speedup vs per-call fast)",
        ["backend", "per-call ms", "plan-reuse ms", "speedup"],
        rows,
    )


def report_bitexact(timings: dict[str, float]) -> str:
    scalar = timings["bitexact-scalar"]
    rows = [
        [backend, f"{seconds * 1e3:.1f}", f"{scalar / seconds:.1f}"]
        for backend, seconds in timings.items()
    ]
    return render_table(
        f"bench_engine: [{BITEXACT_M}, {BITEXACT_K}] x [{BITEXACT_K}, "
        f"{BITEXACT_N}] INT4 g[32,4] (speedup vs scalar oracle)",
        ["backend", "plan-reuse ms", "speedup"],
        rows,
    )


def collect_records(quick: bool = False) -> dict:
    """Machine-readable benchmark record (the ``--json`` payload).

    One entry per (shape, backend) with the best wall time and the
    speedup vs the ``reference`` backend at the same shape, plus the
    two headline ratios — the unit the repo's ``BENCH_*.json`` perf
    trajectory accumulates.
    """
    reps = 2 if quick else 5
    decode = measure(reps)
    bitexact = measure_bitexact(reps)
    results = []
    decode_ref = decode["reference"]["plan_reuse"]
    for backend, t in decode.items():
        results.append({
            "workload": "decode",
            "shape": [M, K, N],
            "bits": 4,
            "group": list(GROUP),
            "backend": backend,
            "per_call_s": t["per_call"],
            "plan_reuse_s": t["plan_reuse"],
            "speedup_vs_reference": decode_ref / t["plan_reuse"],
        })
    bitexact_ref = bitexact["reference"]
    for backend, seconds in bitexact.items():
        results.append({
            "workload": "bitexact",
            "shape": [BITEXACT_M, BITEXACT_K, BITEXACT_N],
            "bits": 4,
            "group": list(GROUP),
            "backend": backend,
            "plan_reuse_s": seconds,
            "speedup_vs_reference": bitexact_ref / seconds,
        })
    return {
        "schema": JSON_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
        "headlines": {
            "plan_reuse_batched_vs_per_call_fast":
                decode["fast"]["per_call"] / decode["batched"]["plan_reuse"],
            "bitexact_vec_vs_scalar":
                bitexact["bitexact-scalar"] / bitexact["bitexact"],
        },
        "decode_report": report(decode),
        "bitexact_report": report_bitexact(bitexact),
    }


def test_engine_report():
    timings = measure()
    print()
    print(report(timings))
    # The headline acceptance claim: plan-reuse batched execution beats
    # the seed's per-call fast path by at least 2x.
    speedup = timings["fast"]["per_call"] / timings["batched"]["plan_reuse"]
    assert speedup >= 2.0, f"plan-reuse batched only {speedup:.2f}x vs per-call fast"


def test_bitexact_vectorized_report():
    # A reduced-size version of the bitexact workload keeps the scalar
    # oracle affordable inside the tier-1 suite; the full [8,256]x
    # [256,256] acceptance measurement (>= 100x) is the standalone run.
    a, qm = _workload(4, 64, 64)
    plan = plan_gemm(qm)
    vec_out = plan.execute(a, backend="bitexact")
    t_vec = _best_of(lambda: plan.execute(a, backend="bitexact"), 3)
    start = time.perf_counter()
    scalar_out = plan.execute(a, backend="bitexact-scalar")
    t_scalar = time.perf_counter() - start
    assert np.array_equal(vec_out, scalar_out)
    speedup = t_scalar / t_vec
    print(f"\nbitexact [4,64]x[64,64]: vec {t_vec * 1e3:.2f}ms, "
          f"scalar {t_scalar * 1e3:.1f}ms ({speedup:.0f}x)")
    # Loose floor (shared CI runners are noisy); locally this is >100x.
    assert speedup >= 5.0, f"vectorized bitexact only {speedup:.1f}x vs scalar"


@pytest.mark.parametrize("backend", FULL_SIZE_BACKENDS)
def test_engine_benchmark_plan_reuse(benchmark, backend):
    a, qm = _workload()
    plan = plan_gemm(qm)
    plan.execute(a, backend=backend)  # warm lazy plan state
    out = benchmark(plan.execute, a, backend)
    assert out.shape == (M, N)


def test_engine_benchmark_bitexact_vectorized(benchmark):
    a, qm = _workload(BITEXACT_M, BITEXACT_K, BITEXACT_N)
    plan = plan_gemm(qm)
    plan.execute(a, backend="bitexact")  # warm
    out = benchmark(plan.execute, a, "bitexact")
    assert out.shape == (BITEXACT_M, BITEXACT_N)


def test_engine_benchmark_per_call_fast(benchmark):
    a, qm = _workload()

    def per_call():
        return GemmPlan(qm).execute(a, backend="fast")

    out = benchmark(per_call)
    assert out.shape == (M, N)


def test_engine_benchmark_planning_only(benchmark):
    _, qm = _workload()
    plan = benchmark(GemmPlan, qm)
    assert plan.n_dim == N


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions per datapoint (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write machine-readable results (shape, backend, best wall "
             "time, speedup vs reference) to PATH",
    )
    args = parser.parse_args(argv)
    record = collect_records(quick=args.quick)
    print(record["decode_report"])
    print()
    print(record["bitexact_report"])
    headline = record["headlines"]["bitexact_vec_vs_scalar"]
    print(f"\nvectorized bitexact vs scalar oracle: {headline:.0f}x")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
