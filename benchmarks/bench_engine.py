"""Engine benchmark: plan/execute split vs per-call planning, by backend.

Workload: the acceptance shape ``[32, 1024] x [1024, 1024]`` INT4 with
``g[32,4]`` groups — a Llama-scale decode GEMM.  For each engine
backend this compares:

* **per-call** — a fresh :class:`repro.engine.GemmPlan` built on every
  call (the seed's ``hyper_gemm`` behaviour, which re-derived
  transformed weights and group adjustments per invocation);
* **plan-reuse** — one cached plan, execute-only per call (the
  engine's hot path).

The report asserts the headline claim: plan-reuse ``batched``
execution is at least 2x faster than per-call ``mode="fast"``.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py --benchmark-only

or standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.report import render_table
from repro.engine import GemmPlan, plan_gemm
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn

#: The acceptance workload: [m, k] x [k, n], INT4, g[32,4].
M, K, N = 32, 1024, 1024
#: Backends cheap enough for the full-size workload (bitexact is the
#: bit-level validator — hours at this size — so it is excluded).
FULL_SIZE_BACKENDS = ("reference", "fast", "batched")


def _workload():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(M, K))
    qm = quantize_rtn(rng.normal(size=(K, N)), bits=4, group=GroupSpec(32, 4))
    return a, qm


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict[str, dict[str, float]]:
    """Seconds per call, ``{backend: {"per_call": s, "plan_reuse": s}}``."""
    a, qm = _workload()
    timings: dict[str, dict[str, float]] = {}
    for backend in FULL_SIZE_BACKENDS:
        plan = plan_gemm(qm)
        plan.execute(a, backend=backend)  # warm lazy plan state + caches
        timings[backend] = {
            "per_call": _best_of(lambda: GemmPlan(qm).execute(a, backend=backend)),
            "plan_reuse": _best_of(lambda: plan.execute(a, backend=backend)),
        }
    return timings


def report(timings: dict[str, dict[str, float]]) -> str:
    percall_fast = timings["fast"]["per_call"]
    rows = []
    for backend, t in timings.items():
        rows.append([
            backend,
            f"{t['per_call'] * 1e3:.1f}",
            f"{t['plan_reuse'] * 1e3:.1f}",
            f"{percall_fast / t['plan_reuse']:.2f}",
        ])
    return render_table(
        f"bench_engine: [{M}, {K}] x [{K}, {N}] INT4 g[32,4] "
        "(speedup vs per-call fast)",
        ["backend", "per-call ms", "plan-reuse ms", "speedup"],
        rows,
    )


def test_engine_report():
    timings = measure()
    print()
    print(report(timings))
    # The headline acceptance claim: plan-reuse batched execution beats
    # the seed's per-call fast path by at least 2x.
    speedup = timings["fast"]["per_call"] / timings["batched"]["plan_reuse"]
    assert speedup >= 2.0, f"plan-reuse batched only {speedup:.2f}x vs per-call fast"


@pytest.mark.parametrize("backend", FULL_SIZE_BACKENDS)
def test_engine_benchmark_plan_reuse(benchmark, backend):
    a, qm = _workload()
    plan = plan_gemm(qm)
    plan.execute(a, backend=backend)  # warm lazy plan state
    out = benchmark(plan.execute, a, backend)
    assert out.shape == (M, N)


def test_engine_benchmark_per_call_fast(benchmark):
    a, qm = _workload()

    def per_call():
        return GemmPlan(qm).execute(a, backend="fast")

    out = benchmark(per_call)
    assert out.shape == (M, N)


def test_engine_benchmark_planning_only(benchmark):
    _, qm = _workload()
    plan = benchmark(GemmPlan, qm)
    assert plan.n_dim == N


if __name__ == "__main__":
    print(report(measure()))
