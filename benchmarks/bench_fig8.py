"""Fig. 8: throughput/watt of the parallel FP-INT multiplier and DP-4.

Also times the bit-level parallel multiplier itself, since it is the
unit whose 4x/8x parallelism the figure prices.
"""

import pytest

from benchmarks.conftest import print_result
from repro.core.experiments import fig8
from repro.fp import fp16
from repro.multiplier.parallel import parallel_fp_int_mul


def test_fig8_report():
    result = fig8()
    print_result(result)
    gain4 = result.row("FP-MUL INT4").measured
    gain2 = result.row("FP-MUL INT2").measured
    assert gain2 > gain4 > 2.0  # paper: 3.38x / 6.75x


@pytest.mark.parametrize(
    "bits,codes",
    [(4, [-8, -1, 0, 7]), (2, [-2, -1, 0, 1, -2, -1, 0, 1])],
    ids=["int4", "int2"],
)
def test_fig8_benchmark_parallel_multiplier(benchmark, bits, codes):
    a_bits = fp16.from_float(1.337)

    result = benchmark(parallel_fp_int_mul, a_bits, codes, bits)
    assert len(result.products) == len(codes)


def test_fig8_benchmark_experiment(benchmark):
    result = benchmark(fig8)
    assert result.rows
