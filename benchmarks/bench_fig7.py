"""Fig. 7: RF traffic (a) and speedup (b) of PacQ vs k-dim packing.

Workload: the warp-level m16n16k16 MMA, INT4 and INT2 weights.
"""

import pytest

from benchmarks.conftest import print_result
from repro.core.experiments import fig7a, fig7b
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.octet import simulate_octet
from repro.simt.warp import OctetWorkload

OCTET = OctetWorkload(8, 8, 16)


def test_fig7a_report():
    result = fig7a()
    print_result(result)
    red4 = result.row("INT4 RF reduction vs P(B4)k").measured
    red2 = result.row("INT2 RF reduction vs P(B8)k").measured
    assert 0 < red4 < red2 < 1  # paper: 36.8% / 54.3%


def test_fig7b_report():
    result = fig7b()
    print_result(result)
    for row in result.rows:
        assert row.measured == pytest.approx(row.paper, abs=0.05)


@pytest.mark.parametrize(
    "kind,bits",
    [
        (FlowKind.PACKED_K, 4),
        (FlowKind.PACKED_K, 2),
        (FlowKind.PACQ, 4),
        (FlowKind.PACQ, 2),
    ],
    ids=["packed_k_int4", "packed_k_int2", "pacq_int4", "pacq_int2"],
)
def test_fig7_benchmark_octet_trace(benchmark, kind, bits):
    flow = FlowConfig(kind, bits)
    trace = benchmark(simulate_octet, flow, OCTET)
    assert trace.products == OCTET.macs
