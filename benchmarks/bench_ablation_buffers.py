"""Ablation: operand-buffer capacity vs packing direction.

DESIGN.md calls out the A-buffer capacity (two 2x4 tiles, Fig. 3(d))
as the knob that makes k-dim packing thrash: INT2's packed words span
more k than the buffers hold.  This bench sweeps the A-buffer size and
shows PacQ's n-dim packing is insensitive while ``P(B8)k`` loses reuse
below the tile footprint — the mechanism behind Fig. 4(b).
"""

import pytest

from repro.core.report import render_table
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.octet import OctetArch, simulate_octet
from repro.simt.warp import OctetWorkload

OCTET = OctetWorkload(8, 8, 16)
CAPACITIES = (8, 16, 32, 64)


def test_buffer_capacity_report():
    rows = []
    for beats in CAPACITIES:
        arch = OctetArch(a_buffer_beats=beats)
        pk = simulate_octet(FlowConfig(FlowKind.PACKED_K, 2), OCTET, arch)
        ours = simulate_octet(FlowConfig(FlowKind.PACQ, 2), OCTET, arch)
        rows.append([f"A buffer = {beats} beats", pk.a_reads, ours.a_reads,
                     round(1 - ours.rf_total / pk.rf_total, 3)])
    print()
    print(render_table(
        "Ablation: A-buffer capacity (INT2, m16n16k16 octet)",
        ["configuration", "P(B8)k A reads", "PacQ A reads", "RF reduction"],
        rows,
    ))
    # PacQ's A traffic is flat across capacities >= one tile; the
    # k-packed flow keeps improving as buffers grow (reuse recovered).
    pacq_reads = [
        simulate_octet(
            FlowConfig(FlowKind.PACQ, 2), OCTET, OctetArch(a_buffer_beats=c)
        ).a_reads
        for c in CAPACITIES[1:]
    ]
    assert len(set(pacq_reads)) == 1


@pytest.mark.parametrize("beats", CAPACITIES, ids=[f"cap{c}" for c in CAPACITIES])
def test_buffer_capacity_benchmark(benchmark, beats):
    arch = OctetArch(a_buffer_beats=beats)
    flow = FlowConfig(FlowKind.PACKED_K, 2)
    trace = benchmark(simulate_octet, flow, OCTET, arch)
    assert trace.products == OCTET.macs
