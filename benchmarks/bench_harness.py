"""Harness benchmark: cached vs executed jobs, cache lookup hot path.

The orchestration subsystem's pitch is incrementality: a swept job
re-runs only when its parameters or the code change.  This module
measures both sides of that trade:

* **report** — a small backend x spec sweep executed cold, then served
  entirely from the result cache, with the speedup printed;
* **benchmarks** — the cache-hit lookup (read + JSON decode +
  result reconstruction) and the in-process executor dispatch.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_harness.py --benchmark-only
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_result
from repro.harness import Job, ResultCache, SweepSpec, run_job, run_jobs

#: Cheap sweep: 2 backends x 2 specs at a reduced Table II size.
SWEEP = SweepSpec.make(
    ["table2"],
    grid={"backend": ["fast", "batched"], "spec": ["g128", "g[32,4]"]},
    base={"vocab": 64, "d_model": 256, "corpus_len": 128},
)


def test_harness_report(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = SWEEP.jobs()

    start = time.perf_counter()
    cold = run_jobs(jobs, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_jobs(jobs, cache=cache)
    warm_s = time.perf_counter() - start

    print()
    print(f"cold sweep ({len(jobs)} jobs): {cold_s * 1e3:8.1f} ms")
    print(f"warm sweep (all cached):   {warm_s * 1e3:8.1f} ms "
          f"({cold_s / warm_s:.1f}x faster)")
    print_result(cold[0].result)

    assert all(not o.cached for o in cold)
    assert all(o.cached for o in warm)
    assert [o.result for o in warm] == [o.result for o in cold]
    # The acceptance bar: a warm re-run is served >=90% from cache
    # (here: 100%) and is much cheaper than executing.
    assert warm_s < cold_s


def test_cache_hit_lookup_benchmark(benchmark, tmp_path):
    cache = ResultCache(tmp_path)
    job = SWEEP.jobs()[0]
    cache.put(job, run_job(job), 0.0)

    result = benchmark(cache.get, job)
    assert result is not None


def test_executor_dispatch_benchmark(benchmark):
    # fig9 is the cheapest registered experiment: this times the
    # harness layer (registry lookup, param binding, outcome assembly)
    # around an almost-free runner.
    job = Job.make("fig9", {})
    outcomes = benchmark(run_jobs, [job])
    assert outcomes[0].result.rows
