"""Fig. 11: adder-tree duplication ablation (m16n16k16)."""

from benchmarks.conftest import print_result
from repro.core.experiments import fig11


def test_fig11_report():
    result = fig11()
    print_result(result)
    gain12 = result.row("INT4 gain dup1->dup2").measured
    gain24 = result.row("INT4 gain dup2->dup4").measured
    assert gain12 > gain24  # dup 2 is the knee, per the paper


def test_fig11_benchmark_ablation(benchmark):
    result = benchmark(fig11)
    assert len(result.rows) >= 8
