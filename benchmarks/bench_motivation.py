"""Section I motivation: where weight-only quantization pays.

Not a numbered figure, but the argument the whole paper rests on: on a
Volta-balanced machine, quantization alone speeds up the memory-bound
small-batch regime ~4x while delivering nothing once serving goes
multi-batch and compute-bound — the regime PacQ unlocks.
"""

import pytest

from benchmarks.conftest import print_result
from repro.core.arch import pacq, volta_full_machine, volta_w16a16
from repro.core.extensions import motivation_experiment
from repro.core.metrics import evaluate
from repro.simt.memoryhier import GemmShape


def test_motivation_report():
    result = motivation_experiment()
    print_result(result)
    rows = {r.label: r.measured for r in result.rows}
    assert rows["batch 256 (compute-bound): dequant INT4 vs W16A16"] == pytest.approx(
        1.0, abs=0.05
    )
    assert rows["batch 256 (compute-bound): PacQ INT4 vs W16A16"] > 1.9


@pytest.mark.parametrize("batch", [16, 256], ids=["memory_bound", "compute_bound"])
def test_motivation_benchmark(benchmark, batch):
    machine = volta_full_machine()
    shape = GemmShape(batch, 4096, 4096)

    def run():
        return (
            evaluate(volta_w16a16(machine), shape),
            evaluate(pacq(4, machine=machine), shape),
        )

    fp16, ours = benchmark(run)
    assert ours.cycles < fp16.cycles
