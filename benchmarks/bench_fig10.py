"""Fig. 10: normalized EDP of PacQ vs SIMT baselines.

Workload: m16n4096k4096 — a Llama2-7B FFN facet at batch 16, the
paper's headline EDP result (up to 81.4 % reduction).
"""

import pytest

from benchmarks.conftest import print_result
from repro.core.arch import pacq, standard_dequant
from repro.core.experiments import fig10
from repro.core.metrics import evaluate
from repro.core.workloads import fig10_workload


def test_fig10_report():
    result = fig10()
    print_result(result)
    red4 = result.row("INT4 PacQ EDP reduction").measured
    red2 = result.row("INT2 PacQ EDP reduction").measured
    assert red2 > red4 > 0.5  # paper: 70.4% / 81.4%


@pytest.mark.parametrize(
    "arch_factory,bits",
    [(standard_dequant, 4), (pacq, 4), (pacq, 2)],
    ids=["standard_int4", "pacq_int4", "pacq_int2"],
)
def test_fig10_benchmark_evaluation(benchmark, arch_factory, bits):
    shape = fig10_workload()
    result = benchmark(evaluate, arch_factory(bits), shape)
    assert result.cycles > 0
