"""Co-design replay benchmark: capture pricing throughput, shape memo.

The replay's pitch is that pricing a served workload is cheap enough
to sweep: histogram buckets collapse — after warp-tile padding — onto
a handful of distinct GEMM shapes, and the batch entry points
(`evaluate_many` / `analyze_many`) simulate each distinct shape once.
This module measures both sides:

* **replay** — end-to-end `replay_capture` on a serving-sized capture
  (pytest-benchmark timing);
* **memo win** — `evaluate_many` over a duplicate-heavy shape list vs
  one `evaluate` call per shape, with the speedup printed and floored.

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_codesign.py --benchmark-only
"""

from __future__ import annotations

import time

from repro.codesign import ArchPoint, SiteCapture, WorkloadCapture, replay_capture
from repro.core.arch import pacq
from repro.core.metrics import evaluate, evaluate_many
from repro.simt.memoryhier import GemmShape

#: Duplicate-heavy shape list: what a served decode histogram pads to.
SHAPES = [
    GemmShape(16 * (1 + i % 4), 128, 128) for i in range(512)
]


def _serving_capture(layers: int = 8) -> WorkloadCapture:
    """A serving-shaped capture: per-layer sites, decode-heavy."""
    sites = []
    for layer in range(layers):
        for name, n, k in (
            (f"layer{layer}.wq", 128, 128),
            (f"layer{layer}.w_up", 512, 128),
            (f"layer{layer}.w_down", 128, 512),
        ):
            sites.append(
                SiteCapture(
                    name=name, n=n, k=k, weight_bits=4,
                    rows=((1, 2000), (4, 400), (33, 16)),
                    phases=(
                        ("decode", ((1, 2000), (4, 400))),
                        ("prefill", ((33, 16),)),
                    ),
                )
            )
    sites.append(
        SiteCapture(
            name="lm_head", n=1024, k=128, weight_bits=16,
            rows=((1, 2000), (4, 400)),
            phases=(("decode", ((1, 2000), (4, 400))),),
        )
    )
    return WorkloadCapture(
        policy="bench", served_tokens=3600, prompt_tokens=528,
        requests=16, sites=tuple(sites),
    )


def test_replay_capture_benchmark(benchmark):
    capture = _serving_capture()
    cost = benchmark(replay_capture, capture, ArchPoint(num_sms=2))
    assert cost.total.cycles > 0
    assert cost.phase("decode").gemm_calls > cost.phase("prefill").gemm_calls


def test_shape_memo_win():
    arch = pacq(4)
    evaluate_many(arch, SHAPES[:1])  # warm imports / caches

    start = time.perf_counter()
    batched = evaluate_many(arch, SHAPES)
    many_s = time.perf_counter() - start

    start = time.perf_counter()
    single = [evaluate(arch, shape) for shape in SHAPES]
    loop_s = time.perf_counter() - start

    print()
    print(f"evaluate x {len(SHAPES)}:      {loop_s * 1e3:8.1f} ms")
    print(f"evaluate_many (memoized): {many_s * 1e3:8.1f} ms "
          f"({loop_s / many_s:.0f}x faster)")

    assert batched == single
    # 512 shapes, 4 distinct: the memo must win by a wide margin.
    assert loop_s / many_s > 5.0
