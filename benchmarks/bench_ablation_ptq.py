"""Ablation: PTQ algorithm (RTN / AWQ / GPTQ) feeding the PacQ path.

The paper states PacQ needs no quantization-algorithm changes; this
bench demonstrates the claim by running three PTQ algorithms through
the identical packing + hyper-asymmetric GEMM pipeline and comparing
reconstruction quality and functional GEMM error.
"""

import numpy as np
import pytest

from repro.core.gemm import hyper_gemm
from repro.core.report import render_table
from repro.quant.algorithms import awq_dequantize, awq_quantize, gptq_quantize
from repro.quant.error import sqnr_db
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn

K, N = 256, 64
SPEC = GroupSpec(64, 4)


def _calibration():
    rng = np.random.default_rng(0)
    scales = (1.0 + np.arange(N)) ** -0.4
    weights = rng.normal(size=(K, N)) * scales[None, :]
    act_scale = np.clip(np.abs(rng.standard_cauchy(K)) + 0.1, 0.1, 50.0)
    # Activations stay within the PacQ datapath's FP16-safe range
    # (|A| < ~32, see the gemm.py numerics note); act_scale remains
    # the calibration *statistic* AWQ consumes.
    profile = np.sqrt(act_scale / act_scale.mean())
    activations = rng.normal(size=(16, K)) * np.clip(profile, 0.2, 3.0)[None, :]
    return weights, act_scale, activations


def test_ptq_algorithm_report():
    weights, act_scale, activations = _calibration()
    exact = activations.astype(np.float16).astype(np.float64) @ weights

    rows = []
    variants = {
        "RTN": quantize_rtn(weights, 4, SPEC),
        "GPTQ-style": gptq_quantize(weights, bits=4, group=SPEC),
    }
    awq = awq_quantize(weights, act_scale, bits=4, group=SPEC)
    for name, qm in variants.items():
        out = hyper_gemm(activations, qm)
        rows.append([name, sqnr_db(weights, qm.dequantize()),
                     float(np.abs(out - exact).mean())])
    # AWQ deployment folds diag(s)^-1 into the preceding layer, so the
    # GEMM sees scaled activations against the scaled-quantized weight.
    awq_out = hyper_gemm(activations / awq.channel_scales[None, :], awq.quantized)
    rows.append(["AWQ-style", sqnr_db(weights, awq_dequantize(awq)),
                 float(np.abs(awq_out - exact).mean())])
    print()
    print(render_table(
        "Ablation: PTQ algorithm through the PacQ pipeline (INT4, g[64,4])",
        ["algorithm", "weight SQNR (dB)", "mean |GEMM error|"],
        rows,
    ))
    assert all(np.isfinite(r[1]) for r in rows)


@pytest.mark.parametrize("algo", ["rtn", "gptq", "awq"])
def test_ptq_benchmark(benchmark, algo):
    weights, act_scale, _ = _calibration()
    if algo == "rtn":
        result = benchmark(quantize_rtn, weights, 4, SPEC)
        assert result.codes.shape == weights.shape
    elif algo == "gptq":
        result = benchmark(gptq_quantize, weights, bits=4, group=SPEC)
        assert result.codes.shape == weights.shape
    else:
        result = benchmark(awq_quantize, weights, act_scale, bits=4, group=SPEC, grid=8)
        assert result.quantized.codes.shape == weights.shape
