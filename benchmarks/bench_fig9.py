"""Fig. 9: power breakdown (reused vs extra resources) of PacQ's units."""

import pytest

from benchmarks.conftest import print_result
from repro.core.experiments import fig9
from repro.energy.breakdown import fig9_breakdowns


def test_fig9_report():
    result = fig9()
    print_result(result)
    for row in result.rows:
        assert row.measured == pytest.approx(row.paper, abs=0.05)


def test_fig9_benchmark_breakdowns(benchmark):
    breakdowns = benchmark(fig9_breakdowns, 4)
    assert len(breakdowns) == 3
