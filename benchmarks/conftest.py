"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table/figure of the paper:
the ``test_*_report`` function prints the reproduced rows (visible
with ``pytest -s``) and asserts the headline shape, while the
``test_*_benchmark`` functions time the underlying simulation kernels
with pytest-benchmark.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from repro.core.experiments import ExperimentResult
from repro.core.report import render_table


def print_result(result: ExperimentResult) -> None:
    print()
    print(render_table(f"{result.experiment}: {result.description}",
                       result.headers(), result.table_rows()))
