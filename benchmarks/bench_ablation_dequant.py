"""Ablation: when does dequantization overhead bite? (paper Section I,
limitation 2).

The standard flow's unpack + dequantize instructions run on the
general cores concurrently with tensor-core GEMMs.  With plentiful
ALUs the overhead hides behind compute; as the general core is starved
(or the tensor cores get faster, as PacQ's do), dequantization becomes
the critical path — the latency overhead the paper's limitation (2)
describes.  PacQ has no dequant work at all, so it is immune at every
point of the sweep.
"""

import pytest

from benchmarks.conftest import print_result
from repro.core.arch import pacq, standard_dequant
from repro.core.experiments import ExperimentResult, ResultRow
from repro.core.metrics import evaluate
from repro.simt.memoryhier import GemmShape
from repro.simt.sm import MachineConfig

SHAPE = GemmShape(16, 4096, 4096)
ALU_SWEEP = (64, 16, 8, 4, 2)


def _sweep() -> ExperimentResult:
    rows = []
    for alus in ALU_SWEEP:
        machine = MachineConfig(general_alus_per_sm=alus)
        std = evaluate(standard_dequant(4, machine), SHAPE)
        ours = evaluate(pacq(4, machine=machine), SHAPE)
        rows.append(
            ResultRow(f"{alus} general ALUs: PacQ speedup", std.cycles / ours.cycles,
                      None, "x")
        )
        rows.append(
            ResultRow(
                f"{alus} general ALUs: dequant share of standard-flow time",
                min(1.0, std.stats.dequant_instructions / (alus * std.cycles)),
                None,
                "fraction",
            )
        )
    return ExperimentResult(
        "ablation_dequant",
        f"Dequantization overhead vs general-core throughput ({SHAPE.name})",
        tuple(rows),
    )


def test_dequant_overhead_report():
    result = _sweep()
    print_result(result)
    speedups = [r.measured for r in result.rows if "speedup" in r.label]
    # Once the general core is starved, the standard flow serializes on
    # dequantization and PacQ's advantage grows beyond the ~2x compute
    # gain.
    assert speedups[0] == pytest.approx(1.955, abs=0.05)
    assert speedups[-1] > speedups[0]


@pytest.mark.parametrize("alus", ALU_SWEEP, ids=[f"alus{a}" for a in ALU_SWEEP])
def test_dequant_overhead_benchmark(benchmark, alus):
    machine = MachineConfig(general_alus_per_sm=alus)
    result = benchmark(evaluate, standard_dequant(4, machine), SHAPE)
    assert result.cycles > 0
