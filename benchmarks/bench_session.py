"""Session benchmark: KV-cached decoding vs repeated full re-forwards.

The acceptance claim of the model layer:
:meth:`repro.model.InferenceSession.generate` on a quantized decoder is
**>= 5x faster per generated token** than the naive serving loop that
re-runs :meth:`~repro.llm.transformer.Decoder.forward` over the whole
sequence for every new token, at prompt length >= 256 — while the
incremental logits stay **bit-identical** to the full forward pass and
a checkpoint save -> load round trip reproduces identical generation.

Both properties are asserted here (the report fails loudly if either
regresses), so this file is the one-stop measurement for the claim.

Run standalone (``--quick`` shrinks the decode count for CI; ``--json``
emits a machine-readable record)::

    PYTHONPATH=src python benchmarks/bench_session.py [--quick] [--json OUT]
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from _common import base_record, build_quantized, make_parser, write_record
from repro.core.report import render_table
from repro.llm.transformer import TransformerConfig
from repro.model import InferenceSession, save_model

#: The serving workload: a ~6M-parameter decoder, prompt >= 256 tokens.
CONFIG = TransformerConfig(
    vocab=512, d_model=256, n_heads=8, n_layers=4, d_ffn=512, max_seq=320
)
PROMPT_LEN = 256
POLICY = "layer*.w_gate=int2@g[32,4];layer*.w_up=int2@g[32,4];*=int4@g[32,4]"

#: Acceptance floor: per-token speedup of the session over re-forwards.
MIN_SPEEDUP = 5.0

#: JSON schema tag of the --json record.
JSON_SCHEMA = "bench_session/v1"


def _build():
    weights, qmodel = build_quantized(CONFIG, POLICY)
    session = InferenceSession(qmodel, backend="fast")
    return weights, qmodel, session


def _assert_bit_identity(session: InferenceSession, prompt: np.ndarray) -> None:
    decoder = session.decoder
    steps = 4
    full = decoder.forward(prompt[: PROMPT_LEN // 4])  # trimmed: full fwd is slow
    cache = decoder.init_cache()
    cut = PROMPT_LEN // 4 - steps
    pre = decoder.prefill(prompt[:cut], cache)
    assert np.array_equal(pre, full[:cut]), "prefill != forward"
    for i, token in enumerate(prompt[cut : cut + steps]):
        step = decoder.decode_step(int(token), cache)
        assert np.array_equal(step, full[cut + i]), "decode_step != forward"


def _assert_roundtrip(session, qmodel, prompt, tmp_dir) -> None:
    save_model(tmp_dir, qmodel)
    loaded = InferenceSession.from_checkpoint(tmp_dir, backend="fast")
    a = session.generate(prompt[:8], 8, top_k=4, seed=1).tokens
    b = loaded.generate(prompt[:8], 8, top_k=4, seed=1).tokens
    assert np.array_equal(a, b), "checkpoint round trip changed generation"


def main() -> None:
    args = make_parser(__doc__).parse_args()

    baseline_tokens = 2 if args.quick else 4
    session_tokens = 16 if args.quick else 48

    rng = np.random.default_rng(7)
    prompt = rng.integers(0, CONFIG.vocab, size=PROMPT_LEN)
    weights, qmodel, session = _build()
    decoder = session.decoder

    print(f"decoder: {CONFIG.n_layers} layers, d_model={CONFIG.d_model}, "
          f"{weights.num_parameters() / 1e6:.2f}M params; policy {POLICY}")
    print(f"prompt: {PROMPT_LEN} tokens; backend: fast\n")

    _assert_bit_identity(session, prompt)

    # Naive serving loop: one full re-forward per generated token.
    seq = list(prompt)
    start = time.perf_counter()
    for _ in range(baseline_tokens):
        logits = decoder.forward(np.asarray(seq))
        seq.append(int(np.argmax(logits[-1])))
    naive_per_token = (time.perf_counter() - start) / baseline_tokens

    # KV-cached session: prefill once, O(1) GEMM work per token.
    start = time.perf_counter()
    logits = session.prefill(prompt)[-1]
    prefill_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(session_tokens):
        logits = session.decode_step(int(np.argmax(logits)))
    cached_per_token = (time.perf_counter() - start) / session_tokens

    speedup = naive_per_token / cached_per_token
    rows = [
        ["full re-forward / token", f"{naive_per_token * 1e3:.1f}",
         f"{1.0 / naive_per_token:.1f}", "1.00x"],
        ["prefill (once)", f"{prefill_s * 1e3:.1f}", "-", "-"],
        ["decode_step / token", f"{cached_per_token * 1e3:.2f}",
         f"{1.0 / cached_per_token:.1f}", f"{speedup:.2f}x"],
    ]
    print(render_table(
        f"generation at prompt={PROMPT_LEN} (quantized, backend=fast)",
        ["path", "ms/token", "tok/s", "speedup"], rows))

    with tempfile.TemporaryDirectory() as tmp:
        _assert_roundtrip(session, qmodel, prompt, tmp)
    print("\nbit-identity and checkpoint round-trip: OK")
    print(f"headline: KV-cached decoding {speedup:.1f}x faster per token "
          f"(floor {MIN_SPEEDUP:.0f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"per-token speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x floor"
    )

    if args.json:
        record = base_record(JSON_SCHEMA, args.quick)
        record.update(
            config={
                "d_model": CONFIG.d_model,
                "n_layers": CONFIG.n_layers,
                "vocab": CONFIG.vocab,
                "prompt_len": PROMPT_LEN,
                "policy": POLICY,
            },
            naive_s_per_token=naive_per_token,
            cached_s_per_token=cached_per_token,
            prefill_s=prefill_s,
            speedup=speedup,
        )
        write_record(args.json, record)


if __name__ == "__main__":
    main()
