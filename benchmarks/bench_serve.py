"""Serving benchmark: lock-step batched decode vs sequential decode.

The acceptance claim of the serving layer: decoding a batch of 8
sequences lock-step through :class:`repro.serve.BatchedSession` — one
GEMM per weight matrix with ``m = 8`` rows, on the engine's
``batched`` backend — sustains **>= 3x the aggregate tokens/s** of
decoding the same 8 sequences one at a time through the
single-sequence :class:`repro.model.InferenceSession`, while every
sequence's logits stay **bit-identical** between the two paths.

Both runs decode the *same* greedy token streams (the batched run
picks them, the sequential run replays them), so the compared work is
identical token for token; prefill is excluded from both timings (the
claim is about the steady-state decode loop).  Both properties are
asserted, so this file is the one-stop measurement for the claim and
the record :mod:`scripts.check_bench` gates CI on.

Run standalone (``--quick`` shrinks the decode count for CI;
``--json`` emits a machine-readable record)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.core.report import render_table
from repro.llm.transformer import TransformerConfig, init_weights
from repro.model import InferenceSession, parse_policy, quantize_model
from repro.serve import BatchedSession

#: The serving workload: a small 2-layer decoder whose FFN dominates.
CONFIG = TransformerConfig(
    vocab=512, d_model=256, n_heads=8, n_layers=2, d_ffn=1024, max_seq=96
)
POLICY = "*=int4@g[32,4]"
BATCH = 8
PROMPT_LEN = 32
BACKEND = "batched"

#: Acceptance floor: aggregate-tokens/s speedup of batched over sequential.
MIN_SPEEDUP = 3.0

#: JSON schema tag of the --json record.
JSON_SCHEMA = "bench_serve/v1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer decoded tokens (CI perf smoke)")
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a machine-readable record to OUT")
    args = parser.parse_args()

    decode_tokens = 8 if args.quick else 24

    rng = np.random.default_rng(7)
    prompts = [
        rng.integers(0, CONFIG.vocab, size=PROMPT_LEN) for _ in range(BATCH)
    ]
    weights = init_weights(CONFIG, seed=0)
    qmodel = quantize_model(
        weights, parse_policy(POLICY), config=CONFIG, compute_reports=False
    )

    print(f"decoder: {CONFIG.n_layers} layers, d_model={CONFIG.d_model}, "
          f"d_ffn={CONFIG.d_ffn}, {weights.num_parameters() / 1e6:.2f}M "
          f"params; policy {POLICY}")
    print(f"batch {BATCH} x (prompt {PROMPT_LEN} + {decode_tokens} decode "
          f"tokens); backend: {BACKEND}\n")

    # Lock-step batched decode: pick the greedy streams and keep every
    # logits row for the bit-identity check below.
    session = BatchedSession(qmodel, backend=BACKEND, max_slots=BATCH)
    slots, last = session.join(prompts)
    tokens = [int(np.argmax(row)) for row in last]
    batched_logits: list[np.ndarray] = []  # per step: [BATCH, vocab]
    streams: list[list[int]] = []  # per step: the BATCH tokens fed in
    start = time.perf_counter()
    for _ in range(decode_tokens):
        logits = session.decode_step(slots, tokens)
        streams.append(tokens)
        batched_logits.append(logits)
        tokens = [int(np.argmax(row)) for row in logits]
    batched_s = time.perf_counter() - start

    # Sequential baseline: the same streams, one sequence at a time
    # through the single-sequence session (prefill untimed for both).
    per_sequence = list(map(list, zip(*streams)))
    sequential_s = 0.0
    mismatches = 0
    for i in range(BATCH):
        single = InferenceSession(qmodel, backend=BACKEND)
        single.prefill(prompts[i])
        rows = []
        start = time.perf_counter()
        for token in per_sequence[i]:
            rows.append(single.decode_step(token))
        sequential_s += time.perf_counter() - start
        for step, row in enumerate(rows):
            if not np.array_equal(row, batched_logits[step][i]):
                mismatches += 1
    assert mismatches == 0, (
        f"{mismatches} logits rows differ between batched and "
        "single-sequence decode"
    )

    total = BATCH * decode_tokens
    batched_tps = total / batched_s
    sequential_tps = total / sequential_s
    speedup = batched_tps / sequential_tps
    rows = [
        ["sequential (1 seq at a time)", f"{sequential_s:.2f}",
         f"{sequential_tps:.0f}", "1.00x"],
        [f"batched lock-step (m={BATCH})", f"{batched_s:.2f}",
         f"{batched_tps:.0f}", f"{speedup:.2f}x"],
    ]
    print(render_table(
        f"decoding {total} tokens ({BATCH} sequences x {decode_tokens})",
        ["path", "seconds", "agg tok/s", "speedup"], rows))
    print("\nper-sequence logits bit-identical across both paths: OK")
    print(f"headline: batched decode {speedup:.2f}x aggregate tokens/s "
          f"(floor {MIN_SPEEDUP:.0f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"aggregate speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x floor"
    )

    if args.json:
        record = {
            "schema": JSON_SCHEMA,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "config": {
                "d_model": CONFIG.d_model,
                "d_ffn": CONFIG.d_ffn,
                "n_layers": CONFIG.n_layers,
                "vocab": CONFIG.vocab,
                "prompt_len": PROMPT_LEN,
                "policy": POLICY,
                "backend": BACKEND,
            },
            "batch": BATCH,
            "decode_tokens": decode_tokens,
            "batched_s": batched_s,
            "sequential_s": sequential_s,
            "batched_tokens_per_s": batched_tps,
            "sequential_tokens_per_s": sequential_tps,
            "speedup": speedup,
            "quick": args.quick,
        }
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
