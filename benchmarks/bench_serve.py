"""Serving benchmarks: batched decode, prefix caching, speculative decoding.

Three acceptance claims of the serving layer, measured in one file:

1. **Batched decode** — decoding a batch of 8 sequences lock-step
   through :class:`repro.serve.BatchedSession` (one GEMM per weight
   matrix with ``m = 8`` rows, on the engine's ``batched`` backend)
   sustains **>= 3x the aggregate tokens/s** of decoding the same 8
   sequences one at a time through the single-sequence
   :class:`repro.model.InferenceSession`, while every sequence's
   logits stay **bit-identical** between the two paths.

2. **Prefix cache + chunked prefill** — serving an 80%-shared-prefix
   trace (the million-user prompt shape: one long system prompt, short
   per-user suffixes) with a :class:`repro.serve.RadixPrefixCache`
   reaches **>= 2x the end-to-end aggregate tokens/s** of the same
   trace served cache-off, while every request's token stream stays
   **bit-identical** — the cache only skips re-prefilling KV state the
   server already computed.

3. **Speculative decoding** — replaying a greedy trace with
   ``Scheduler(speculate=(BigramDraft, k))`` reaches **>= 1.3x the
   end-to-end tokens/s** of the same trace replayed without
   speculation, while every request's token stream stays
   **bit-identical** — the one-pass verify accepts only tokens the
   target itself would have produced.

4. **Data-parallel sharding** — serving a decode-heavy trace through a
   4-worker :class:`repro.serve.Router` fleet (each worker a full
   model loaded from one shared checkpoint directory) sustains
   **>= 2x the single-process aggregate tokens/s on >= 4 usable
   cores**, while every request's token stream stays **bit-identical**
   to single-process serving.  The floor adapts to the machine: 4
   workers cannot beat 1 process on 1 core, so with ``c >= 2`` usable
   cores the asserted floor is ``min(2.0, 0.5 * min(workers, c))`` —
   the full 2x claim on CI-class (4-core) machines — and on 1 core the
   throughput is report-only (the identity assertion still runs).  The
   measured speedup and the machine's core count are both recorded in
   the JSON.

Every scenario's two runs do identical token-for-token work, every
identity property is asserted, and the ``--json`` record is what
:mod:`scripts.check_bench` gates CI on.

Run standalone (``--quick`` shrinks the workload for CI)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--json OUT]
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from _common import base_record, build_quantized, make_parser, write_record
from repro.core.report import render_table
from repro.llm.transformer import TransformerConfig
from repro.model import InferenceSession
from repro.model.checkpoint import save_model
from repro.serve import (
    BatchedSession,
    BigramDraft,
    RadixPrefixCache,
    Router,
    Scheduler,
    TraceSpec,
    replay,
    synthesize,
)

#: The serving workload: a small 2-layer decoder whose FFN dominates.
CONFIG = TransformerConfig(
    vocab=512, d_model=256, n_heads=8, n_layers=2, d_ffn=1024, max_seq=96
)
POLICY = "*=int4@g[32,4]"
BATCH = 8
PROMPT_LEN = 32
BACKEND = "batched"

#: Acceptance floor: aggregate-tokens/s speedup of batched over sequential.
MIN_SPEEDUP = 3.0

#: Shared-prefix scenario: one 64-token preamble, 80%+ of requests use it.
SHARED_PREFIX_LEN = 64
SHARED_FRACTION = 0.85
PREFIX_CACHE_BYTES = 64 << 20

#: Acceptance floor: end-to-end tokens/s of cache-on over cache-off.
MIN_SHARED_SPEEDUP = 2.0

#: Speculative scenario: draft window, and the end-to-end tokens/s
#: floor of speculate-on over speculate-off (measured ~3x; the floor
#: leaves headroom for CI machine variance).
SPEC_K = 4
MIN_SPEC_SPEEDUP = 1.3

#: Data-parallel scenario: fleet size and the full-parallelism floor.
FLEET_WORKERS = 4
MIN_FLEET_SPEEDUP = 2.0

#: JSON schema tag of the --json record.
JSON_SCHEMA = "bench_serve/v4"


def usable_cpus() -> int:
    """Cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def fleet_floor(workers: int, cpus: int) -> float:
    """Core-count-adaptive speedup floor for the data-parallel scenario.

    The full ``MIN_FLEET_SPEEDUP`` claim asserts on >= 4 usable cores
    (half-core scaling in between: 1.0x at 2 cores).  On 1 core the
    scenario is report-only (floor 0.0): a 4-process fleet time-slicing
    one core does the same token work with *shallower* per-worker
    batches (fewer rows per GEMM), so a throughput floor there would
    test the machine, not the code — the bit-identity assertion is the
    load-bearing check on such boxes.
    """
    if cpus < 2:
        return 0.0
    return min(MIN_FLEET_SPEEDUP, 0.5 * min(workers, cpus))


def batched_vs_sequential(qmodel, decode_tokens: int) -> dict:
    """Scenario 1: lock-step batched decode vs one sequence at a time."""
    rng = np.random.default_rng(7)
    prompts = [
        rng.integers(0, CONFIG.vocab, size=PROMPT_LEN) for _ in range(BATCH)
    ]

    # Lock-step batched decode: pick the greedy streams and keep every
    # logits row for the bit-identity check below.
    session = BatchedSession(qmodel, backend=BACKEND, max_slots=BATCH)
    slots, last = session.join(prompts)
    tokens = [int(np.argmax(row)) for row in last]
    batched_logits: list[np.ndarray] = []  # per step: [BATCH, vocab]
    streams: list[list[int]] = []  # per step: the BATCH tokens fed in
    start = time.perf_counter()
    for _ in range(decode_tokens):
        logits = session.decode_step(slots, tokens)
        streams.append(tokens)
        batched_logits.append(logits)
        tokens = [int(np.argmax(row)) for row in logits]
    batched_s = time.perf_counter() - start

    # Sequential baseline: the same streams, one sequence at a time
    # through the single-sequence session (prefill untimed for both).
    per_sequence = list(map(list, zip(*streams, strict=False)))
    sequential_s = 0.0
    mismatches = 0
    for i in range(BATCH):
        single = InferenceSession(qmodel, backend=BACKEND)
        single.prefill(prompts[i])
        rows = []
        start = time.perf_counter()
        for token in per_sequence[i]:
            rows.append(single.decode_step(token))
        sequential_s += time.perf_counter() - start
        for step, row in enumerate(rows):
            if not np.array_equal(row, batched_logits[step][i]):
                mismatches += 1
    assert mismatches == 0, (
        f"{mismatches} logits rows differ between batched and "
        "single-sequence decode"
    )

    total = BATCH * decode_tokens
    batched_tps = total / batched_s
    sequential_tps = total / sequential_s
    speedup = batched_tps / sequential_tps
    rows = [
        ["sequential (1 seq at a time)", f"{sequential_s:.2f}",
         f"{sequential_tps:.0f}", "1.00x"],
        [f"batched lock-step (m={BATCH})", f"{batched_s:.2f}",
         f"{batched_tps:.0f}", f"{speedup:.2f}x"],
    ]
    print(render_table(
        f"decoding {total} tokens ({BATCH} sequences x {decode_tokens})",
        ["path", "seconds", "agg tok/s", "speedup"], rows))
    print("\nper-sequence logits bit-identical across both paths: OK")
    print(f"headline: batched decode {speedup:.2f}x aggregate tokens/s "
          f"(floor {MIN_SPEEDUP:.0f}x)\n")
    assert speedup >= MIN_SPEEDUP, (
        f"aggregate speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x floor"
    )
    return {
        "decode_tokens": decode_tokens,
        "batched_s": batched_s,
        "sequential_s": sequential_s,
        "batched_tokens_per_s": batched_tps,
        "sequential_tokens_per_s": sequential_tps,
        "speedup": speedup,
    }


def shared_prefix_serving(qmodel, requests: int) -> dict:
    """Scenario 2: shared-prefix trace, prefix cache on vs off.

    Both runs replay the *same* synthesized trace through the same
    scheduler configuration end to end (prefill included — that is
    where the win is); the cache-on run additionally carries a
    ``RadixPrefixCache`` and a ``prefill_chunk`` bound.  Token streams
    must match exactly.
    """
    spec = TraceSpec(
        requests=requests,
        seed=11,
        prompt_len=(SHARED_PREFIX_LEN + 4, SHARED_PREFIX_LEN + 16),
        max_new=(4, 8),
        mean_interarrival=2.0,
        top_k=4,
        shared_prefix_len=SHARED_PREFIX_LEN,
        shared_fraction=SHARED_FRACTION,
    )
    trace = synthesize(spec, CONFIG.vocab, CONFIG.max_seq)
    total_prompt = sum(r.prompt.shape[0] for r in trace)

    def run(prefix_cache: RadixPrefixCache | None):
        session = BatchedSession(
            qmodel, backend=BACKEND, max_slots=BATCH, prefix_cache=prefix_cache
        )
        scheduler = Scheduler(
            session,
            max_batch=BATCH,
            prefill_chunk=SHARED_PREFIX_LEN if prefix_cache else None,
        )
        start = time.perf_counter()
        report = replay(scheduler, trace)
        elapsed = time.perf_counter() - start
        return report, scheduler.stats(), elapsed

    report_off, stats_off, off_s = run(None)
    cache = RadixPrefixCache(PREFIX_CACHE_BYTES)
    report_on, stats_on, on_s = run(cache)

    for off, on in zip(report_off.results, report_on.results, strict=False):
        assert np.array_equal(off.tokens, on.tokens), (
            f"request {off.request_id}: token stream differs with the "
            "prefix cache on"
        )
    hit_rate = stats_on.prefix_hit_rate
    assert hit_rate > 0.4, (
        f"prefix hit rate {hit_rate:.0%} too low — cache not engaging"
    )

    off_tps = stats_off.total_new_tokens / off_s
    on_tps = stats_on.total_new_tokens / on_s
    speedup = off_s / on_s
    rows = [
        ["cache off (full prefill/request)", f"{off_s:.2f}",
         f"{stats_off.prefill_tokens}", "0%", f"{off_tps:.0f}", "1.00x"],
        ["cache on + chunked prefill", f"{on_s:.2f}",
         f"{stats_on.prefill_tokens}", f"{hit_rate:.0%}",
         f"{on_tps:.0f}", f"{speedup:.2f}x"],
    ]
    print(render_table(
        f"serving {requests} requests, {SHARED_FRACTION:.0%} sharing a "
        f"{SHARED_PREFIX_LEN}-token prefix ({total_prompt} prompt tokens)",
        ["path", "seconds", "prefill tok", "hit rate", "agg tok/s",
         "speedup"],
        rows))
    print("\nper-request token streams bit-identical cache on/off: OK")
    print(f"headline: prefix cache {speedup:.2f}x end-to-end tokens/s on "
          f"{SHARED_FRACTION:.0%}-shared traffic (floor "
          f"{MIN_SHARED_SPEEDUP:.0f}x)")
    assert speedup >= MIN_SHARED_SPEEDUP, (
        f"shared-prefix speedup {speedup:.2f}x below the "
        f"{MIN_SHARED_SPEEDUP:.0f}x floor"
    )
    return {
        "requests": requests,
        "shared_prefix_len": SHARED_PREFIX_LEN,
        "shared_fraction": SHARED_FRACTION,
        "prefill_chunk": SHARED_PREFIX_LEN,
        "total_prompt_tokens": total_prompt,
        "cache_off_s": off_s,
        "cache_on_s": on_s,
        "cache_off_tokens_per_s": off_tps,
        "cache_on_tokens_per_s": on_tps,
        "cache_off_prefill_tokens": stats_off.prefill_tokens,
        "cache_on_prefill_tokens": stats_on.prefill_tokens,
        "cached_prefix_tokens": stats_on.cached_prefix_tokens,
        "prefix_hit_rate": hit_rate,
        "speedup": speedup,
    }


def speculative_decoding(qmodel, requests: int) -> dict:
    """Scenario 3: greedy trace, speculation on vs off.

    Both runs replay the *same* greedy trace end to end through the
    same scheduler configuration; the speculate-on run additionally
    carries a distilled :class:`BigramDraft` (built untimed — it is a
    one-time cost amortized over the server's lifetime) with a
    ``SPEC_K``-token window.  Token streams must match exactly: the
    verify pass accepts a draft token only where it equals the argmax
    the target would have produced at that position.
    """
    spec = TraceSpec(
        requests=requests,
        seed=23,
        prompt_len=(8, 24),
        max_new=(16, 32),
        mean_interarrival=1.0,
    )
    trace = synthesize(spec, CONFIG.vocab, CONFIG.max_seq)

    def run(speculate):
        session = BatchedSession(qmodel, backend=BACKEND, max_slots=BATCH)
        scheduler = Scheduler(session, max_batch=BATCH, speculate=speculate)
        start = time.perf_counter()
        report = replay(scheduler, trace)
        elapsed = time.perf_counter() - start
        return report, scheduler.stats(), elapsed

    draft = BigramDraft.distill(
        BatchedSession(qmodel, backend=BACKEND, max_slots=1).decoder
    )
    report_off, stats_off, off_s = run(None)
    report_on, stats_on, on_s = run((draft, SPEC_K))

    for off, on in zip(report_off.results, report_on.results, strict=False):
        assert np.array_equal(off.tokens, on.tokens), (
            f"request {off.request_id}: token stream differs with "
            "speculation on"
        )
    acceptance = stats_on.draft_acceptance_rate
    per_step = stats_on.accepted_per_verify_step

    off_tps = stats_off.total_new_tokens / off_s
    on_tps = stats_on.total_new_tokens / on_s
    speedup = off_s / on_s
    rows = [
        ["speculation off (1 token/step)", f"{off_s:.2f}",
         f"{stats_off.decode_steps}", "-", f"{off_tps:.0f}", "1.00x"],
        [f"bigram draft, k={SPEC_K}", f"{on_s:.2f}",
         f"{stats_on.decode_steps}", f"{acceptance:.0%}",
         f"{on_tps:.0f}", f"{speedup:.2f}x"],
    ]
    print(render_table(
        f"serving {requests} greedy requests, speculation off vs on "
        f"({stats_off.total_new_tokens} new tokens)",
        ["path", "seconds", "decode steps", "acceptance", "agg tok/s",
         "speedup"],
        rows))
    print("\nper-request token streams bit-identical speculation on/off: OK")
    print(f"headline: bigram draft k={SPEC_K} gives {speedup:.2f}x "
          f"end-to-end tokens/s at {acceptance:.0%} acceptance, "
          f"{per_step:.2f} draft tokens accepted/verify step (floor "
          f"{MIN_SPEC_SPEEDUP:.1f}x)")
    assert speedup >= MIN_SPEC_SPEEDUP, (
        f"speculative speedup {speedup:.2f}x below the "
        f"{MIN_SPEC_SPEEDUP:.1f}x floor"
    )
    return {
        "requests": requests,
        "spec_k": SPEC_K,
        "spec_off_s": off_s,
        "spec_on_s": on_s,
        "spec_off_tokens_per_s": off_tps,
        "spec_on_tokens_per_s": on_tps,
        "spec_off_decode_steps": stats_off.decode_steps,
        "spec_on_decode_steps": stats_on.decode_steps,
        "drafted_tokens": stats_on.drafted_tokens,
        "accepted_draft_tokens": stats_on.accepted_draft_tokens,
        "acceptance_rate": acceptance,
        "accepted_per_verify_step": per_step,
        "verify_steps": stats_on.verify_steps,
        "speedup": speedup,
    }


def data_parallel_scaling(qmodel, requests: int) -> dict:
    """Scenario 4: decode-heavy trace, one process vs a router fleet.

    The single-process baseline and the fleet serve the *same* trace
    with the same scheduler configuration; the fleet run routes it
    across ``FLEET_WORKERS`` processes, each loading the same
    checkpoint directory (load time untimed for both paths — a server
    loads once and serves forever).  Token streams must match exactly:
    a request's tokens depend only on the request and the checkpoint,
    never on which worker served it.
    """
    spec = TraceSpec(
        requests=requests,
        seed=31,
        prompt_len=(4, 8),
        max_new=(24, 40),
        mean_interarrival=0.0,
    )
    trace = synthesize(spec, CONFIG.vocab, CONFIG.max_seq)

    session = BatchedSession(qmodel, backend=BACKEND, max_slots=BATCH)
    scheduler = Scheduler(session, max_batch=BATCH)
    start = time.perf_counter()
    single_results = scheduler.run(list(trace))
    single_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="bench-serve-shard-") as tmp:
        save_model(tmp, qmodel)
        with Router(
            tmp, FLEET_WORKERS, backend=BACKEND, max_slots=BATCH
        ) as router:
            start = time.perf_counter()
            fleet = router.serve(list(trace))
            fleet_s = time.perf_counter() - start

    assert len(fleet.results) == len(single_results)
    for single, sharded in zip(single_results, fleet.results, strict=False):
        assert single.request_id == sharded.request_id
        assert np.array_equal(single.tokens, sharded.tokens), (
            f"request {single.request_id}: token stream differs between "
            "single-process and data-parallel serving"
        )

    total = sum(len(r.new_tokens) for r in single_results)
    single_tps = total / single_s
    fleet_tps = total / fleet_s
    speedup = fleet_tps / single_tps
    cpus = usable_cpus()
    floor = fleet_floor(FLEET_WORKERS, cpus)

    rows = [
        ["single process", f"{single_s:.2f}", f"{single_tps:.0f}", "1.00x"],
        [f"router fleet ({FLEET_WORKERS} workers)", f"{fleet_s:.2f}",
         f"{fleet_tps:.0f}", f"{speedup:.2f}x"],
    ]
    print(render_table(
        f"serving {requests} decode-heavy requests ({total} new tokens), "
        f"single process vs {FLEET_WORKERS}-worker data-parallel fleet",
        ["path", "seconds", "agg tok/s", "speedup"], rows))
    worker_rows = [
        [w.rank, len(w.results), w.new_tokens, f"{w.tokens_per_s:.0f}",
         f"{w.occupancy:.0%}"]
        for w in fleet.workers
    ]
    print(render_table(
        "fleet split (least-outstanding-tokens dispatch)",
        ["rank", "reqs", "new", "tok/s", "occupancy"], worker_rows))
    print("\nper-request token streams bit-identical single vs fleet: OK")
    floor_note = (
        f"adaptive floor {floor:.2f}x; the {MIN_FLEET_SPEEDUP:.0f}x claim "
        "asserts on >= 4 cores"
        if floor
        else "report-only on 1 core; the "
        f"{MIN_FLEET_SPEEDUP:.0f}x claim asserts on >= 4 cores"
    )
    print(f"headline: {FLEET_WORKERS}-worker fleet {speedup:.2f}x aggregate "
          f"tokens/s on {cpus} usable core(s) ({floor_note})")
    assert speedup >= floor, (
        f"data-parallel speedup {speedup:.2f}x below the {floor:.2f}x floor "
        f"for {cpus} usable core(s)"
    )
    return {
        "requests": requests,
        "workers": FLEET_WORKERS,
        "usable_cpus": cpus,
        "floor": floor,
        "single_s": single_s,
        "fleet_s": fleet_s,
        "single_tokens_per_s": single_tps,
        "fleet_tokens_per_s": fleet_tps,
        "per_worker": [
            {
                "rank": w.rank,
                "requests": len(w.results),
                "new_tokens": w.new_tokens,
                "tokens_per_s": w.tokens_per_s,
                "occupancy": w.occupancy,
            }
            for w in fleet.workers
        ],
        "speedup": speedup,
    }


def main() -> None:
    args = make_parser(__doc__).parse_args()
    decode_tokens = 8 if args.quick else 24
    shared_requests = 16 if args.quick else 32
    spec_requests = 12 if args.quick else 24
    # Enough requests that every fleet worker keeps a deep batch
    # (shallow per-worker batches would conflate parallel speedup with
    # lost batching efficiency).
    fleet_requests = 24 if args.quick else 48

    weights, qmodel = build_quantized(CONFIG, POLICY)
    print(f"decoder: {CONFIG.n_layers} layers, d_model={CONFIG.d_model}, "
          f"d_ffn={CONFIG.d_ffn}, {weights.num_parameters() / 1e6:.2f}M "
          f"params; policy {POLICY}")
    print(f"batch {BATCH} x (prompt {PROMPT_LEN} + {decode_tokens} decode "
          f"tokens); backend: {BACKEND}\n")

    decode = batched_vs_sequential(qmodel, decode_tokens)
    shared = shared_prefix_serving(qmodel, shared_requests)
    print()
    speculative = speculative_decoding(qmodel, spec_requests)
    print()
    data_parallel = data_parallel_scaling(qmodel, fleet_requests)

    if args.json:
        record = base_record(JSON_SCHEMA, args.quick)
        record.update(decode)
        record.update(
            config={
                "d_model": CONFIG.d_model,
                "d_ffn": CONFIG.d_ffn,
                "n_layers": CONFIG.n_layers,
                "vocab": CONFIG.vocab,
                "prompt_len": PROMPT_LEN,
                "policy": POLICY,
                "backend": BACKEND,
            },
            batch=BATCH,
            shared_prefix=shared,
            speculative=speculative,
            data_parallel=data_parallel,
        )
        write_record(args.json, record)


if __name__ == "__main__":
    main()
