"""Legacy shim: lets ``pip install -e .`` / ``setup.py develop`` work offline.

The environment has no network and no ``wheel`` package, so PEP 660
editable installs fail; ``setup.py develop`` with metadata read from
``pyproject.toml`` works everywhere.
"""

from setuptools import setup

setup()
