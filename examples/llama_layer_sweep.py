#!/usr/bin/env python3
"""Sweep PacQ over every GEMM of a Llama2-7B decoder layer.

The paper's motivation (Section I) is multi-batch LLM serving, where
weight-only quantization stops paying off on conventional SIMT
hardware because the GEMMs are compute-bound.  This example evaluates
all five decoder-layer GEMMs at several batch sizes and prints the
speedup and EDP reduction PacQ delivers on each.

Run: ``python examples/llama_layer_sweep.py``
"""

from repro.core import LLAMA2_7B, evaluate, pacq, standard_dequant
from repro.core.metrics import edp_reduction, speedup


def sweep(batch: int, bits: int) -> None:
    print(f"\n-- Llama2-7B decoder layer, batch={batch}, INT{bits} weights --")
    print(f"{'layer':10s} {'shape':>22s} {'speedup':>8s} {'EDP cut':>8s}")
    for name, shape in LLAMA2_7B.layer_gemms(batch):
        if shape.m % 16 or shape.n % 16 or shape.k % 16:
            continue
        std = evaluate(standard_dequant(bits), shape)
        ours = evaluate(pacq(bits), shape)
        print(
            f"{name:10s} {shape.name:>22s} "
            f"{speedup(std, ours):7.2f}x {100 * edp_reduction(std, ours):7.1f}%"
        )


def main() -> None:
    for batch in (16, 64, 256):
        sweep(batch, bits=4)
    sweep(batch=16, bits=2)


if __name__ == "__main__":
    main()
