#!/usr/bin/env python3
"""End-to-end: a quantized transformer decoder on PacQ.

Builds a Llama-style NumPy decoder (~10M parameters), quantizes every
linear layer to INT4 with PacQ-friendly g[32,4] groups, runs inference
with every matmul routed through the hyper-asymmetric GEMM path, and
then prices all of the decoder's GEMMs on PacQ vs the standard
dequantization flow — the full deployment story of the paper in one
script.

Run: ``python examples/transformer_inference.py [--backend fast]``
"""

import argparse

import numpy as np

from repro.core import evaluate, pacq, standard_dequant
from repro.core.metrics import edp_reduction, speedup
from repro.core.roofline import analyze
from repro.llm.transformer import (
    Decoder,
    TransformerConfig,
    gemm_shapes,
    init_weights,
    quantize_weights,
)
from repro.quant import GroupSpec
from repro.simt.memoryhier import GemmShape


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("fast", "batched"),
        default="fast",
        help="engine backend for the quantized linears "
        "(bit-identical choices; default: fast)",
    )
    args = parser.parse_args()

    config = TransformerConfig(
        vocab=512, d_model=256, n_heads=8, n_layers=4, d_ffn=512, max_seq=128
    )
    weights = init_weights(config, seed=0)
    print(f"decoder: {config.n_layers} layers, d_model={config.d_model}, "
          f"{weights.num_parameters() / 1e6:.2f}M parameters")

    rng = np.random.default_rng(1)
    tokens = rng.integers(0, config.vocab, size=96)

    print("\n== inference: FP16 vs quantized-through-PacQ ==")
    fp16_logits = Decoder(config, weights).forward(tokens)
    for bits in (4, 2):
        quantized = quantize_weights(weights, bits=bits, group=GroupSpec(32, 4))
        q_logits = Decoder(
            config, weights, quantized, backend=args.backend
        ).forward(tokens)
        drift = np.linalg.norm(q_logits - fp16_logits) / np.linalg.norm(fp16_logits)
        agree = float(np.mean(q_logits.argmax(1) == fp16_logits.argmax(1)))
        print(f"INT{bits}: logits drift {drift:6.3%}, "
              f"top-1 agreement with FP16 {agree:6.1%}")

    print("\n== pricing one decoder block's GEMMs (batch 64) ==")
    print(f"{'layer':8s} {'shape':>18s} {'bound':>8s} {'speedup':>8s} {'EDP cut':>8s}")
    for name, (m, n, k) in gemm_shapes(config, batch_tokens=64):
        shape = GemmShape(m, n, k)
        point = analyze(pacq(4), shape)
        std = evaluate(standard_dequant(4), shape)
        ours = evaluate(pacq(4), shape)
        bound = "compute" if point.compute_bound else "memory"
        print(f"{name:8s} {shape.name:>18s} {bound:>8s} "
              f"{speedup(std, ours):7.2f}x {100 * edp_reduction(std, ours):7.1f}%")


if __name__ == "__main__":
    main()
