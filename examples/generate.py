#!/usr/bin/env python3
"""End-to-end serving demo: policy -> checkpoint -> KV-cached generation.

The model layer (:mod:`repro.model`) in one script:

1. declare a mixed-precision quantization policy (INT2 FFN expansions,
   INT4 everywhere else) and apply it to a Llama-style toy decoder;
2. save the quantized model to a checkpoint directory and load it back
   (quantize once, serve many times);
3. run KV-cached generation — greedy and top-k — through an
   :class:`~repro.model.InferenceSession`, whose per-token logits are
   bit-identical to a full forward pass;
4. print the session's per-layer GEMM telemetry and price one layer's
   aggregate GEMM on the PacQ cost model.

Run: ``python examples/generate.py [--quick] [--backend fast]``
(``--quick`` shrinks the model and generation length for CI).
"""

import argparse
import tempfile

import numpy as np

from repro.core import evaluate, pacq, standard_dequant
from repro.core.report import render_table
from repro.llm.transformer import TransformerConfig, init_weights
from repro.model import InferenceSession, parse_policy, quantize_model, save_model

POLICY = "layer*.w_gate=int2@g[32,4];layer*.w_up=int2@g[32,4];*=int4@g[32,4]"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="fast",
                        help="engine backend for the quantized linears")
    parser.add_argument("--quick", action="store_true",
                        help="small model / short generation (CI smoke)")
    args = parser.parse_args()

    if args.quick:
        config = TransformerConfig(
            vocab=64, d_model=64, n_heads=2, n_layers=2, d_ffn=128, max_seq=64
        )
        prompt_len, new_tokens = 8, 8
    else:
        config = TransformerConfig(
            vocab=512, d_model=256, n_heads=8, n_layers=4, d_ffn=512,
            max_seq=256,
        )
        prompt_len, new_tokens = 64, 32

    weights = init_weights(config, seed=0)
    policy = parse_policy(POLICY)
    qmodel = quantize_model(weights, policy, config=config)
    print(f"decoder: {config.n_layers} layers, d_model={config.d_model}, "
          f"{weights.num_parameters() / 1e6:.2f}M parameters")
    print(f"policy:  {policy.label}")
    print(render_table("per-layer quantization report",
                       ["layer", "recipe", "sqnr dB", "mse"],
                       qmodel.summary_rows()))

    prompt = np.random.default_rng(1).integers(0, config.vocab, size=prompt_len)
    with tempfile.TemporaryDirectory() as ckpt:
        save_model(ckpt, qmodel)
        session = InferenceSession.from_checkpoint(ckpt, backend=args.backend)
        print(f"\ncheckpoint round trip through {ckpt}: OK")

        greedy = session.generate(prompt, new_tokens)
        print(f"\ngreedy continuation ({new_tokens} tokens): "
              + " ".join(str(t) for t in greedy.new_tokens))
        sampled = session.generate(prompt, new_tokens, top_k=8, seed=7)
        print("top-8 continuation  (seed 7):  "
              + " ".join(str(t) for t in sampled.new_tokens))

        print()
        print(render_table(
            "session telemetry (per-layer GEMM activity)",
            ["site", "calls", "rows", "n", "k", "MACs",
             "wKiB moved", "aKiB moved"],
            session.telemetry.summary_rows(),
        ))

        # Price the busiest site's aggregate GEMM on PacQ vs the
        # standard dequantization flow.
        name, shape = max(
            session.telemetry.gemm_shapes(pad_to=16),
            key=lambda item: item[1].macs,
        )
        std = evaluate(standard_dequant(4), shape)
        ours = evaluate(pacq(4), shape)
        print(f"\npricing {name} aggregate {shape.name} on the cost model: "
              f"{std.cycles / ours.cycles:.2f}x faster, "
              f"{100 * (1 - ours.edp / std.edp):.1f}% EDP reduction vs "
              "standard dequantization")


if __name__ == "__main__":
    main()
