#!/usr/bin/env python3
"""PacQ is PTQ-algorithm-agnostic: RTN vs AWQ vs GPTQ on one pipeline.

The paper notes PacQ "does not require any quantization algorithm
modifications".  This example quantizes the same layer with three PTQ
algorithms, runs each through the identical packing + hyper-asymmetric
GEMM pipeline, and compares activation-weighted output error — plus an
ASCII rendition of the result.

Run: ``python examples/ptq_algorithms.py``
"""

import numpy as np

from repro.core.gemm import hyper_gemm
from repro.core.report import render_bars
from repro.quant import GroupSpec, quantize_rtn
from repro.quant.algorithms import awq_quantize, gptq_quantize


def main() -> None:
    rng = np.random.default_rng(0)
    k, n = 512, 128
    spec = GroupSpec(64, 4)

    # A layer with per-channel structure + a few salient activations.
    channel_scales = (1.0 + np.arange(n)) ** -0.4
    weights = rng.normal(size=(k, n)) * channel_scales[None, :]
    act_importance = np.clip(np.abs(rng.standard_cauchy(k)) + 0.1, 0.1, 50.0)
    # Calibration + evaluation activations (FP16-safe magnitudes).
    profile = np.clip(np.sqrt(act_importance / act_importance.mean()), 0.2, 3.0)
    activations = rng.normal(size=(64, k)) * profile[None, :]
    exact = activations.astype(np.float16).astype(np.float64) @ weights

    def weighted_err(outputs: np.ndarray) -> float:
        return float(np.abs(outputs - exact).mean())

    rtn = quantize_rtn(weights, 4, spec)
    gptq = gptq_quantize(weights, hessian_diag=act_importance**2, bits=4, group=spec)
    awq = awq_quantize(weights, act_importance, bits=4, group=spec)

    errors = {
        "RTN": weighted_err(hyper_gemm(activations, rtn)),
        "GPTQ-style": weighted_err(hyper_gemm(activations, gptq)),
        "AWQ-style": weighted_err(
            hyper_gemm(activations / awq.channel_scales[None, :], awq.quantized)
        ),
    }
    print(f"AWQ chose alpha = {awq.grid_alpha:.2f} over the activation profile\n")
    print(render_bars(
        "mean |GEMM output error| (lower is better), INT4 g[64,4]",
        list(errors), list(errors.values()),
    ))
    print("\nall three feed the same packing + PacQ compute path — no "
          "hardware or dataflow change needed.")


if __name__ == "__main__":
    main()
