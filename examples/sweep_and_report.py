#!/usr/bin/env python3
"""Drive the experiment harness as a library: sweep, cache, report.

Walkthrough of :mod:`repro.harness` — the subsystem behind the CLI's
``sweep`` and ``report`` subcommands:

1. declare a :class:`SweepSpec` (experiments x parameter grid) and
   expand it into independent jobs;
2. execute the jobs through an on-disk :class:`ResultCache`
   (re-running this script is served from cache) and a worker pool;
3. render the outcomes through the artifact sink layer
   (:mod:`repro.core.report`) as a table and a merged CSV.

Run: ``PYTHONPATH=src python examples/sweep_and_report.py [--jobs N]``
"""

from __future__ import annotations

import argparse
import pathlib
import tempfile

from repro.core.report import RunRecord, check_records, render_csv, render_table
from repro.harness import ResultCache, SweepSpec, run_jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--cache-dir",
        default=str(pathlib.Path(tempfile.gettempdir()) / "pacq-example-cache"),
        help="result cache location (persists across runs)",
    )
    args = parser.parse_args()

    # 1. Declare: perplexity across engine backends x group geometries
    #    at a reduced problem size, plus a no-parameter experiment to
    #    show grid axes only apply where a runner accepts them.
    spec = SweepSpec.make(
        ["table2", "fig9"],
        grid={"backend": ["fast", "batched"], "spec": ["g128", "g[32,4]"]},
        base={"vocab": 64, "d_model": 256, "corpus_len": 128},
    )
    jobs = spec.jobs()
    print(f"expanded {len(jobs)} jobs from the sweep spec:")
    for job in jobs:
        print(f"  {job.label}")

    # 2. Execute through the cache; a second run of this script hits.
    cache = ResultCache(args.cache_dir)
    outcomes = run_jobs(jobs, workers=args.jobs, cache=cache)
    hits = sum(1 for o in outcomes if o.cached)
    print(f"\ncache {cache.root}: {hits}/{len(outcomes)} served from cache")

    # 3. Emit: summary table + merged CSV + tolerance check.
    rows = [
        [o.job.label, "hit" if o.cached else f"{o.elapsed_s:.2f}s",
         f"{o.result.rows[-1].measured:.4g} {o.result.rows[-1].unit}"]
        for o in outcomes
    ]
    print()
    print(render_table("sweep outcomes", ["job", "ran", "last row"], rows))

    records = [
        RunRecord(o.job.experiment, o.job.params_dict(), o.result, o.cached,
                  o.elapsed_s)
        for o in outcomes
    ]
    csv_text = render_csv(records)
    print(f"\nmerged CSV ({csv_text.count(chr(10)) - 1} rows), first lines:")
    for line in csv_text.splitlines()[:4]:
        print(f"  {line}")

    violations = check_records(records)
    print(f"\ntolerance check: {len(violations)} violation(s)")
    for message in violations:
        print(f"  {message}")


if __name__ == "__main__":
    main()
