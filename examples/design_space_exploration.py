#!/usr/bin/env python3
"""Design-space exploration: the paper's ablation axes in one sweep.

Explores the PacQ design space the evaluation section covers:

* adder-tree duplication 1/2/4/8 (Fig. 11) — where is the knee?
* DP-unit width 4/8/16 (Fig. 12(a)) — are the gains orthogonal?
* weight precision INT4 vs INT2 across both axes;
* batch-size sweep on the Fig. 10 FFN workload — when does PacQ's
  compute-bound advantage appear?

Run: ``python examples/design_space_exploration.py``
"""

from repro.core import evaluate, pacq, standard_dequant
from repro.core.metrics import edp_reduction, speedup
from repro.energy.units import dp_unit
from repro.multiplier.dp import DpConfig, TileWork, cycles_for
from repro.simt.memoryhier import GemmShape


def adder_tree_sweep() -> None:
    print("== adder-tree duplication (Fig. 11 axis), m16n16k16 tile ==")
    work = TileWork(outputs=64, k=16)
    base = cycles_for(DpConfig(4, 1, 1), work).total
    base_energy = dp_unit(4, 1, 1).energy_per_op
    base_tpw = (work.products / base) / base_energy
    print(f"{'bits':>5s} {'dup':>4s} {'cycles':>7s} {'T/W vs baseline':>16s}")
    for bits in (4, 2):
        pack = 16 // bits
        for dup in (1, 2, 4, 8):
            cycles = cycles_for(DpConfig(4, pack, dup), work).total
            energy = dp_unit(4, pack, dup).energy_per_op
            tpw = (work.products / cycles) / energy
            print(f"{bits:5d} {dup:4d} {cycles:7d} {tpw / base_tpw:15.2f}x")


def dp_width_sweep() -> None:
    print("\n== DP-unit width (Fig. 12(a) axis) ==")
    print(f"{'width':>6s} {'bits':>5s} {'T/W vs same-width baseline':>28s}")
    for width in (4, 8, 16):
        work = TileWork(outputs=64, k=16)
        base = cycles_for(DpConfig(width, 1, 1), work).total
        base_tpw = (work.products / base) / dp_unit(width, 1, 1).energy_per_op
        for bits in (4, 2):
            pack = 16 // bits
            cycles = cycles_for(DpConfig(width, pack, 2), work).total
            tpw = (work.products / cycles) / dp_unit(width, pack, 2).energy_per_op
            print(f"{width:6d} {bits:5d} {tpw / base_tpw:27.2f}x")


def batch_sweep() -> None:
    print("\n== batch sweep on the Llama2-7B FFN facet (n=k=4096, INT4) ==")
    print(f"{'batch':>6s} {'speedup':>8s} {'EDP reduction':>14s}")
    for batch in (16, 32, 64, 128, 256):
        shape = GemmShape(batch, 4096, 4096)
        std = evaluate(standard_dequant(4), shape)
        ours = evaluate(pacq(4), shape)
        print(f"{batch:6d} {speedup(std, ours):7.2f}x "
              f"{100 * edp_reduction(std, ours):13.1f}%")


def main() -> None:
    adder_tree_sweep()
    dp_width_sweep()
    batch_sweep()


if __name__ == "__main__":
    main()
