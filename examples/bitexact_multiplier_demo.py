#!/usr/bin/env python3
"""Inspect the parallel FP-INT multiplier bit by bit (paper Fig. 5).

Shows, for one FP16 activation and one packed INT4 word:

* the transformed weights ``B + 1032`` and their constant-exponent
  FP16 encodings (the paper's observations 1 and 2);
* the shared sign/exponent and the per-lane 11x4 intermediate
  products and assembled mantissas;
* bit-identity of every lane against the scalar FP16 multiplier;
* the Eq. (1) correction recovering ``A * B`` exactly.

Run: ``python examples/bitexact_multiplier_demo.py``
"""

from repro.fp import fp16
from repro.fp.mul import fp16_mul
from repro.multiplier.parallel import (
    parallel_fp_int_mul,
    transform_offset,
    transformed_weight_bits,
)
from repro.quant.packing import PackDim, PackSpec, pack_word, unpack_word


def main() -> None:
    activation = 1.37
    a_bits = fp16.from_float(activation)
    sign, exponent, mantissa = fp16.split(a_bits)
    print(f"activation A = {fp16.to_float(a_bits)} "
          f"(bits 0x{a_bits:04x}: s={sign} e={exponent} m=0b{mantissa:010b})")

    codes = [-8, -3, 0, 7]
    spec = PackSpec(4, PackDim.N)
    word = pack_word(codes, spec)
    print(f"\npacked word {spec.label}: 0x{word:04x} holds B = {codes}")
    assert unpack_word(word, spec) == codes

    print("\ntransformed weights (B + 1032) and their FP16 encodings:")
    for code in codes:
        t_bits = transformed_weight_bits(code, 4)
        _, t_exp, t_man = fp16.split(t_bits)
        print(f"  B={code:3d} -> T={code + transform_offset(4):4d} "
              f"(e={t_exp:05b} m=0b{t_man:010b})  # exponent constant, "
              f"mantissa = B + 8 = {code + 8}")

    result = parallel_fp_int_mul(a_bits, codes, 4)
    print(f"\nshared output sign: {result.sign}")
    print(f"shared output exponent (biased): {result.shared_exponent}")

    print("\nper-lane datapath (Fig. 5(c)/(d)):")
    print(f"{'B':>4s} {'i = sigA*y':>12s} {'assembled':>12s} "
          f"{'result':>8s} {'scalar FP16 mul':>16s} {'bit-identical':>14s}")
    for code, trace in zip(codes, result.lane_traces):
        scalar = fp16_mul(a_bits, transformed_weight_bits(code, 4))
        print(f"{code:4d} {trace.intermediate:12d} {trace.assembled_mantissa:12d} "
              f"0x{trace.result_bits:04x} {'0x%04x' % scalar:>16s} "
              f"{str(trace.result_bits == scalar):>14s}")

    print("\nEq. (1) correction: product - 1032*A recovers A*B")
    for code, trace in zip(codes, result.lane_traces):
        product = fp16.to_float(trace.result_bits)
        recovered = product - transform_offset(4) * fp16.to_float(a_bits)
        print(f"  B={code:3d}: A*(B+1032)={product:10.3f}  "
              f"recovered A*B = {recovered:8.4f}  (exact {fp16.to_float(a_bits) * code:8.4f})")


if __name__ == "__main__":
    main()
