#!/usr/bin/env python3
"""Quickstart: quantize a weight matrix, plan it, run it, price it.

Walks the full PacQ story on one layer:

1. RTN-quantize an FP weight matrix to INT4 with g[32,4] groups;
2. pack it along ``n`` (``P(B4)n``) the way PacQ stores it;
3. plan the hyper-asymmetric GEMM once with the execution engine,
   execute it through the selected backend and compare against the
   dequantize-then-matmul baseline;
4. simulate the same GEMM on the three architectures and report
   speedup and EDP.

Run: ``python examples/quickstart.py [--backend {fast,batched,...}]``
"""

import argparse

import numpy as np

from repro.core import (
    evaluate,
    pack_for_flow,
    packed_k_baseline,
    pacq,
    standard_dequant,
)
from repro.core.gemm import dequant_reference
from repro.engine import backend_names, plan_gemm
from repro.quant import GroupSpec, quantize_rtn
from repro.simt.memoryhier import GemmShape


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="batched",
        help="GEMM engine backend to execute through (default: batched; "
        "the vectorized bitexact validator handles this size in "
        "milliseconds — only bitexact-scalar still takes minutes)",
    )
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    k, n, batch = 512, 256, 16

    print("== 1. Quantize: INT4 RTN, group g[32,4] ==")
    weights = rng.normal(scale=0.4, size=(k, n))
    qweights = quantize_rtn(weights, bits=4, group=GroupSpec(32, 4))
    recon_err = np.abs(weights - qweights.dequantize()).mean()
    print(f"weights: [{k}, {n}] fp64 -> INT4 codes + {qweights.scales.size} scales")
    print(f"mean |w - dequant(q(w))| = {recon_err:.4f}")
    ratio = k * n * 16 / qweights.storage_bits()
    print(f"storage compression vs FP16: {ratio:.2f}x")

    print("\n== 2. Pack along n: P(B4)n ==")
    packed = pack_for_flow(qweights, along_n=True)
    print(f"packed words: {packed.words.shape} uint16 ({packed.spec.label})")

    print(f"\n== 3. Plan once, execute through the '{args.backend}' backend ==")
    plan = plan_gemm(qweights)  # one-time planning, cached per matrix
    activations = rng.normal(size=(batch, k))
    ours = plan.execute(activations, backend=args.backend)
    baseline = dequant_reference(activations, qweights)
    rel = np.linalg.norm(ours - baseline) / np.linalg.norm(baseline)
    print(f"output: [{batch}, {n}], relative deviation vs dequant flow: {rel:.4f}")

    print("\n== 4. Price it on the three architectures ==")
    shape = GemmShape(batch, n, k)
    results = [
        evaluate(standard_dequant(4), shape),
        evaluate(packed_k_baseline(4), shape),
        evaluate(pacq(4), shape),
    ]
    reference = results[0]
    print(f"{'architecture':26s} {'cycles':>10s} {'speedup':>8s} {'norm. EDP':>10s}")
    for result in results:
        print(
            f"{result.architecture:26s} {result.cycles:10d} "
            f"{reference.cycles / result.cycles:8.2f} "
            f"{result.edp / reference.edp:10.3f}"
        )


if __name__ == "__main__":
    main()
