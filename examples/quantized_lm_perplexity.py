#!/usr/bin/env python3
"""Table II end-to-end: perplexity vs quantization-group shape.

Builds the synthetic self-calibrated bigram LM (the offline stand-in
for Llama2-7B, see DESIGN.md), samples an evaluation corpus from it,
then measures perplexity with the LM head:

* in FP16 (reference);
* RTN-quantized to INT4 under the paper's four group geometries,
  with every logits GEMM routed through the execution engine — i.e.
  the actual PacQ compute path with its transformed-weight products.
  The head is planned once per geometry and executed per batch;
  ``--backend`` picks the execution strategy between ``fast`` and
  ``batched`` (bit-identical by contract, so the table does not
  depend on the choice; ``reference`` would skip the transformed
  datapath and ``bitexact`` takes hours at this size, so neither is
  offered here).

The paper's claim to observe: ``g[32,4]`` (PacQ-friendly, one scale
fetch per packed word) is iso-perplexity with the conventional
``g128``; likewise ``g[64,4]`` vs ``g256``.

Run: ``python examples/quantized_lm_perplexity.py [--backend batched]``
"""

import argparse

from repro.llm import make_bigram_lm, sample_tokens
from repro.llm.perplexity import table2_rows
from repro.quant import TABLE2_SPECS
from repro.quant.rtn import quantize_rtn


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("fast", "batched"),
        default="batched",
        help="GEMM engine backend for the quantized logits GEMMs "
        "(bit-identical choices; default: batched)",
    )
    args = parser.parse_args()

    print("building synthetic LM (vocab=256, d_model=512)...")
    lm = make_bigram_lm(vocab=256, d_model=512)
    tokens = sample_tokens(lm.language(), 2048)
    print(f"sampled evaluation corpus: {tokens.shape[0]} tokens")

    print(f"\nevaluating (full quantized GEMM path, backend={args.backend})...")
    rows = table2_rows(lm, tokens, TABLE2_SPECS, bits=4, mode=args.backend)
    reference = rows[0].perplexity

    print(f"\n{'config':10s} {'perplexity':>11s} {'delta vs fp16':>14s} {'scales':>8s}")
    for row in rows:
        if row.bits is None:
            print(f"{row.label:10s} {row.perplexity:11.3f} {'-':>14s} {'-':>8s}")
            continue
        qm = quantize_rtn(
            lm.head,
            bits=row.bits,
            group=next(s for s in TABLE2_SPECS if s.label == row.label),
        )
        delta = 100 * (row.perplexity / reference - 1)
        print(f"{row.label:10s} {row.perplexity:11.3f} {delta:+13.2f}% "
              f"{qm.scales.size:8d}")

    g128 = next(r for r in rows if r.label == "g128").perplexity
    g32_4 = next(r for r in rows if r.label == "g[32,4]").perplexity
    gap = 100 * abs(g32_4 - g128) / g128
    print(f"\ng128 vs g[32,4] gap: {gap:.2f}%  "
          "(paper Table II: 5.73 vs 5.72 — iso-perplexity)")


if __name__ == "__main__":
    main()
