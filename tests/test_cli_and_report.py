"""Tests for the CLI and the report renderer."""

import pytest

from repro.cli import main
from repro.core.report import render_table


class TestRenderTable:
    def test_contains_title_and_headers(self):
        text = render_table("t", ["a", "b"], [[1, 2.5]])
        assert text.splitlines()[0] == "t"
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = render_table("t", ["x"], [[0.123456]])
        assert "0.123" in text

    def test_scientific_for_extremes(self):
        text = render_table("t", ["x"], [[123456.0]])
        assert "e+" in text

    def test_zero_rendered_plainly(self):
        assert "0" in render_table("t", ["x"], [[0.0]])

    def test_column_alignment(self):
        text = render_table("t", ["name", "v"], [["a", 1], ["longer", 2]])
        lines = text.splitlines()
        assert lines[-1].startswith("longer")

    def test_empty_rows_ok(self):
        text = render_table("t", ["a"], [])
        assert "t" in text


class TestCli:
    @pytest.mark.parametrize("name", ["fig7a", "fig7b", "fig9", "fig12b", "table1"])
    def test_runs_fast_experiments(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert name.split("_")[0] in out or name in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_requires_argument(self):
        with pytest.raises(SystemExit):
            main([])

    def test_fig7a_prints_paper_column(self, capsys):
        main(["fig7a"])
        out = capsys.readouterr().out
        assert "paper" in out
        assert "0.368" in out

    def test_backends_listing(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("reference", "fast", "batched", "bitexact"):
            assert name in out

    def test_backend_flag_accepted(self, capsys):
        # fig7a does not take a backend; the flag must still parse.
        assert main(["fig7a", "--backend", "batched"]) == 0

    def test_backend_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["table2", "--backend", "warp-drive"])


class TestModelCli:
    ARGS = [
        "--vocab", "64", "--d-model", "32", "--n-heads", "2",
        "--n-layers", "2", "--d-ffn", "64",
    ]

    def test_quantize_generate_round_trip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["quantize", "--out", ckpt,
             "--policy", "layer*.w_gate=int2@g[8,4];*=int4@g[16,4]"]
            + self.ARGS
        ) == 0
        out = capsys.readouterr().out
        assert "rtn2@g[8,4]" in out and "wrote checkpoint" in out
        assert (tmp_path / "ckpt" / "manifest.json").is_file()

        assert main(
            ["generate", "--model", ckpt, "--prompt", "0,1,2",
             "--max-new", "4", "--telemetry"]
        ) == 0
        out = capsys.readouterr().out
        assert "generated (greedy" in out
        assert "layer0.wq" in out  # telemetry table

    def test_generate_seeded_sampling_reproducible(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        main(["quantize", "--out", ckpt] + self.ARGS)
        capsys.readouterr()
        argv = ["generate", "--model", ckpt, "--prompt", "3",
                "--max-new", "5", "--top-k", "4", "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        line = [ln for ln in first.splitlines() if ln.startswith("generated")]
        assert line and line == [
            ln for ln in second.splitlines() if ln.startswith("generated")
        ]

    def test_generate_missing_checkpoint_fails_cleanly(self, tmp_path, capsys):
        assert main(["generate", "--model", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_quantize_bad_policy_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["quantize", "--out", str(tmp_path / "x"), "--policy", "zzz9"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_table2_policy_axis(self, capsys):
        assert main(
            ["run", "table2", "--set", "vocab=64", "--set", "d_model=64",
             "--set", "corpus_len=128", "--set", "policy=rtn2@g[16,4]"]
        ) == 0
        out = capsys.readouterr().out
        assert "rtn2@g[16,4]" in out and "fp16" in out


class TestRenderBars:
    def test_bars_scale_to_max(self):
        from repro.core.report import render_bars

        text = render_bars("t", ["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_rejects_mismatched_lengths(self):
        from repro.core.report import render_bars

        with pytest.raises(ValueError):
            render_bars("t", ["a"], [1.0, 2.0])

    def test_rejects_negative_values(self):
        from repro.core.report import render_bars

        with pytest.raises(ValueError):
            render_bars("t", ["a"], [-1.0])

    def test_all_zero_values(self):
        from repro.core.report import render_bars

        text = render_bars("t", ["a"], [0.0])
        assert "#" not in text
