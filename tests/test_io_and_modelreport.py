"""Tests for checkpoint serialization and whole-model reports."""

import numpy as np
import pytest

from repro.core.arch import pacq, standard_dequant
from repro.core.modelreport import compare_models, evaluate_model
from repro.core.workloads import LLAMA2_7B, LlmSpec
from repro.errors import ConfigError, QuantizationError
from repro.quant.groups import GroupSpec
from repro.quant.io import load_packed, load_quantized, save_packed, save_quantized
from repro.quant.packing import PackDim, PackSpec, pack, unpack
from repro.quant.rtn import quantize_rtn


def _qm(symmetric=False, bits=4):
    w = np.random.default_rng(0).normal(size=(64, 16))
    return quantize_rtn(w, bits=bits, group=GroupSpec(16, 4), symmetric=symmetric)


class TestCheckpointIo:
    @pytest.mark.parametrize("symmetric", [False, True])
    @pytest.mark.parametrize("bits", [4, 2])
    def test_quantized_roundtrip(self, tmp_path, symmetric, bits):
        qm = _qm(symmetric, bits)
        path = tmp_path / "w.npz"
        save_quantized(path, qm)
        loaded = load_quantized(path)
        assert np.array_equal(loaded.codes, qm.codes)
        assert np.array_equal(loaded.scales, qm.scales)
        assert np.array_equal(loaded.zeros, qm.zeros)
        assert loaded.group == qm.group
        assert loaded.bits == qm.bits
        assert loaded.symmetric == qm.symmetric

    @pytest.mark.parametrize("dim", [PackDim.K, PackDim.N])
    def test_packed_roundtrip(self, tmp_path, dim):
        qm = _qm()
        packed = pack(qm.signed_codes(), PackSpec(4, dim))
        path = tmp_path / "p.npz"
        save_packed(path, packed)
        loaded = load_packed(path)
        assert np.array_equal(loaded.words, packed.words)
        assert loaded.spec == packed.spec
        assert (loaded.k_dim, loaded.n_dim) == (packed.k_dim, packed.n_dim)

    def test_kind_mismatch_rejected(self, tmp_path):
        qm = _qm()
        path = tmp_path / "w.npz"
        save_quantized(path, qm)
        with pytest.raises(QuantizationError):
            load_packed(path)

    def test_loaded_checkpoint_executes(self, tmp_path):
        from repro.core.gemm import hyper_gemm

        qm = _qm()
        path = tmp_path / "w.npz"
        save_quantized(path, qm)
        loaded = load_quantized(path)
        a = np.random.default_rng(1).normal(size=(2, 64))
        assert np.array_equal(hyper_gemm(a, loaded), hyper_gemm(a, qm))

    @pytest.mark.parametrize("bits", [4, 2])
    def test_symmetric_packed_roundtrip(self, tmp_path, bits):
        qm = _qm(symmetric=True, bits=bits)
        packed = pack(qm.signed_codes(), PackSpec(bits, PackDim.N))
        path = tmp_path / "p.npz"
        save_packed(path, packed)
        loaded = load_packed(path)
        assert np.array_equal(loaded.words, packed.words)
        assert np.array_equal(unpack(loaded), qm.signed_codes())


class TestCheckpointVersioning:
    @pytest.mark.parametrize("version", [0, 2, 99])
    def test_quantized_version_mismatch_rejected(self, tmp_path, version):
        path = tmp_path / "w.npz"
        np.savez(path, kind="quantized", version=version)
        with pytest.raises(QuantizationError, match=f"version {version}"):
            load_quantized(path)

    def test_packed_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "p.npz"
        np.savez(path, kind="packed", version=99)
        with pytest.raises(QuantizationError, match="version 99"):
            load_packed(path)

    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "w.npz"
        np.savez(path, kind="quantized")
        with pytest.raises(QuantizationError, match="version"):
            load_quantized(path)


class TestModelReport:
    @pytest.fixture(scope="class")
    def toy_spec(self):
        return LlmSpec("toy", hidden=256, intermediate=512, num_layers=4, vocab=1000)

    def test_layer_count(self, toy_spec):
        report = evaluate_model(pacq(4), toy_spec, batch=16)
        assert len(report.layers) == 5

    def test_totals_scale_with_layer_count(self, toy_spec):
        report = evaluate_model(pacq(4), toy_spec, batch=16)
        per_layer = sum(ly.result.cycles for ly in report.layers)
        assert report.total_cycles == 4 * per_layer

    def test_weight_storage_int4_is_quarter_fp16(self, toy_spec):
        report = evaluate_model(pacq(4), toy_spec, batch=16)
        assert report.weight_storage_bytes(4) == pytest.approx(
            report.weight_storage_bytes(16) / 4
        )

    def test_compare_models(self, toy_spec):
        std = evaluate_model(standard_dequant(4), toy_spec, batch=16)
        ours = evaluate_model(pacq(4), toy_spec, batch=16)
        delta = compare_models(std, ours)
        assert delta["speedup"] == pytest.approx(1.955, abs=0.05)
        assert delta["energy_ratio"] < 1.0
        assert 0.4 < delta["edp_reduction"] < 0.9

    def test_compare_rejects_different_models(self, toy_spec):
        other = LlmSpec("other", 256, 512, 4, 1000)
        a = evaluate_model(pacq(4), toy_spec, batch=16)
        b = evaluate_model(pacq(4), other, batch=16)
        with pytest.raises(ConfigError):
            compare_models(a, b)

    def test_rejects_untileable_layer(self):
        ragged = LlmSpec("ragged", hidden=100, intermediate=200, num_layers=1, vocab=10)
        with pytest.raises(ConfigError):
            evaluate_model(pacq(4), ragged, batch=16)

    def test_llama2_7b_headline(self):
        std = evaluate_model(standard_dequant(4), LLAMA2_7B, batch=16)
        ours = evaluate_model(pacq(4), LLAMA2_7B, batch=16)
        delta = compare_models(std, ours)
        # The paper's headline numbers hold at whole-model granularity.
        assert delta["speedup"] > 1.9
        assert delta["edp_reduction"] > 0.6
        # Llama2-7B decoder weights at INT4: ~3.2 GB vs ~12.9 GB FP16.
        assert ours.weight_storage_bytes(4) == pytest.approx(3.24e9, rel=0.1)
