"""Multi-process sharded serving: spans, shards, router, telemetry.

Covers the `repro.serve.shard` layer and its supports:

* :func:`shard_spans` / :func:`shard_matrix` — group-aligned column
  splits whose recombination is exact, and per-backend bit-identity of
  sharded partial GEMMs against the unsharded plan;
* :mod:`repro.core.procutil` — the shared start-method pick and worker
  spawn used by the harness executor and both shard modes;
* ``Telemetry.snapshot/merge`` and the plan-histogram snapshot — the
  serializable telemetry workers ship back to the router;
* :class:`TensorShardGroup` — plan swap-in/swap-out and stream
  identity through ``InferenceSession``;
* :class:`Router` — least-outstanding-tokens dispatch, fleet-merged
  reports, and bit-identical results vs single-process serving;
* concurrent checkpoint readers — N processes loading the same
  directory simultaneously see bit-identical models.
"""

import hashlib

import numpy as np
import pytest

from repro.core.procutil import (
    bootstrap_pythonpath,
    package_root,
    pool_context,
    preferred_start_method,
    spawn_worker,
)
from repro.engine import (
    merge_plan_histograms,
    plan_gemm,
    plan_histograms,
    shard_matrix,
    shard_spans,
)
from repro.errors import ConfigError, QuantizationError
from repro.llm.transformer import TransformerConfig, init_weights
from repro.model import InferenceSession, parse_policy, quantize_model
from repro.model.checkpoint import save_model
from repro.model.session import Telemetry
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn
from repro.serve import BatchedSession, Request, Router, Scheduler, tensor_shard
from repro.serve.shard import ShardedPlan, TensorShardGroup


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    qmodel = quantize_model(
        weights, parse_policy("*=int4@g[8,4]"), config=config
    )
    return config, weights, qmodel


@pytest.fixture(scope="module")
def checkpoint(setup, tmp_path_factory):
    _, _, qmodel = setup
    path = tmp_path_factory.mktemp("ckpt") / "model"
    save_model(path, qmodel)
    return path


def make_matrix(k=32, n=24, group=None, bits=4, seed=0):
    rng = np.random.default_rng(seed)
    group = group if group is not None else GroupSpec(8, 4)
    return quantize_rtn(rng.standard_normal((k, n)), bits, group)


class TestShardSpans:
    def test_spans_cover_and_align(self):
        spans = shard_spans(24, 4, 3)
        assert spans == [(0, 8), (8, 16), (16, 24)]
        for lo, hi in spans:
            assert lo % 4 == 0 and hi % 4 == 0

    def test_remainder_goes_to_early_ranks(self):
        spans = shard_spans(28, 4, 3)  # 7 groups over 3 ranks: 3+2+2
        assert spans == [(0, 12), (12, 20), (20, 28)]

    def test_world_of_one_is_the_whole_matrix(self):
        assert shard_spans(24, 4, 1) == [(0, 24)]

    def test_more_workers_than_groups_rejected(self):
        with pytest.raises(QuantizationError):
            shard_spans(8, 4, 3)

    def test_misaligned_n_rejected(self):
        with pytest.raises(QuantizationError):
            shard_spans(26, 4, 2)

    def test_bad_world_rejected(self):
        with pytest.raises(QuantizationError):
            shard_spans(24, 4, 0)


class TestShardMatrix:
    def test_shards_recombine_to_the_original(self):
        qm = make_matrix()
        shards = shard_matrix(qm, 3)
        assert sum(s.n_dim for s in shards) == qm.n_dim
        recombined = np.concatenate([s.dequantize() for s in shards], axis=1)
        assert recombined.tobytes() == qm.dequantize().tobytes()

    def test_shards_keep_geometry(self):
        qm = make_matrix()
        for shard in shard_matrix(qm, 2):
            assert shard.group == qm.group
            assert shard.bits == qm.bits
            assert shard.k_dim == qm.k_dim
            assert shard.n_dim % qm.group.n == 0

    @pytest.mark.parametrize("backend", ("fast", "batched", "bitexact"))
    @pytest.mark.parametrize("world", (2, 3))
    def test_partial_gemms_bit_identical(self, backend, world):
        """Rank-ordered concat of shard GEMMs == the unsharded GEMM."""
        qm = make_matrix()
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, qm.k_dim))
        expect = plan_gemm(qm).execute(a, backend=backend)
        parts = [
            plan_gemm(shard).execute(a, backend=backend)
            for shard in shard_matrix(qm, world)
        ]
        got = np.concatenate(parts, axis=1)
        assert got.tobytes() == expect.tobytes()


def _echo_worker(conn, offset):
    """Module-level so spawn-mode children can import it."""
    while True:
        value = conn.recv()
        if value is None:
            break
        conn.send(value + offset)
    conn.close()


class TestProcutil:
    def test_preferred_method_is_available(self):
        import multiprocessing

        method = preferred_start_method()
        assert method in ("fork", "spawn")
        assert method in multiprocessing.get_all_start_methods()

    def test_bootstrap_pythonpath_pins_package_root(self):
        assert str(package_root()) in bootstrap_pythonpath().split(":")

    def test_spawn_worker_round_trip(self):
        proc, conn = spawn_worker(_echo_worker, (10,))
        try:
            conn.send(32)
            assert conn.recv() == 42
        finally:
            conn.send(None)
            proc.join(timeout=5.0)
        assert proc.exitcode == 0

    def test_pool_context_runs_jobs(self):
        with pool_context().Pool(2) as pool:
            assert pool.map(abs, [-1, -2, -3]) == [1, 2, 3]


class TestTelemetryMerge:
    def test_merge_adds_counts_and_copies_new_sites(self):
        a, b = Telemetry(), Telemetry()
        a.record("wq", m=2, n=8, k=4, weight_bits=4 * 8 * 4)
        b.record("wq", m=3, n=8, k=4, weight_bits=4 * 8 * 4)
        b.record("wo", m=1, n=4, k=8, weight_bits=4 * 4 * 8)
        a.merge(b.snapshot())
        assert a.stats["wq"].calls == 2
        assert a.stats["wq"].rows == 5
        assert a.stats["wq"].macs == 5 * 8 * 4
        assert a.stats["wo"].calls == 1

    def test_merge_is_snapshot_round_trippable(self):
        a = Telemetry()
        a.record("wq", m=2, n=8, k=4, weight_bits=128)
        merged = Telemetry()
        merged.merge(a.snapshot())
        merged.merge(a.snapshot())
        assert merged.stats["wq"].rows == 2 * a.stats["wq"].rows

    def test_merge_rejects_shape_mismatch(self):
        a, b = Telemetry(), Telemetry()
        a.record("wq", m=1, n=8, k=4, weight_bits=128)
        b.record("wq", m=1, n=16, k=4, weight_bits=256)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


class TestPlanHistograms:
    def test_snapshot_and_merge(self):
        qm = make_matrix(seed=3)
        plan = plan_gemm(qm)
        plan.execute(np.zeros((2, qm.k_dim)), phase="decode")
        plan.execute(np.zeros((2, qm.k_dim)), phase="decode")
        plan.execute(np.zeros((5, qm.k_dim)), phase="prefill")
        snap = plan_histograms({"site": plan})
        assert snap["site"]["rows"] == {2: 2, 5: 1}
        assert snap["site"]["phases"]["decode"] == {2: 2}
        merged = merge_plan_histograms({}, snap)
        merge_plan_histograms(merged, snap)
        assert merged["site"]["rows"] == {2: 4, 5: 2}
        assert merged["site"]["phases"]["prefill"] == {5: 2}


class TestTensorShardGroup:
    def test_generate_stream_identical(self, setup):
        _, _, qmodel = setup
        prompt = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        expect = InferenceSession(qmodel, backend="fast").generate(
            prompt, 8, top_k=4, seed=7
        )
        session = InferenceSession(qmodel, backend="fast")
        with tensor_shard(session, 2):
            got = session.generate(prompt, 8, top_k=4, seed=7)
        assert np.array_equal(expect.tokens, got.tokens)

    def test_plans_swapped_and_restored(self, setup):
        _, _, qmodel = setup
        session = InferenceSession(qmodel, backend="fast")
        originals = dict(session.decoder.plans)
        group = tensor_shard(session, 2)
        try:
            assert all(
                isinstance(plan, ShardedPlan)
                for plan in session.decoder.plans.values()
            )
        finally:
            group.close()
        assert session.decoder.plans == originals
        with pytest.raises(RuntimeError):
            group.execute("layer0.wq", np.zeros((1, 32)), "fast", None)

    def test_proxy_records_histograms(self, setup):
        _, _, qmodel = setup
        session = InferenceSession(qmodel, backend="fast")
        with tensor_shard(session, 2) as group:
            session.generate(np.array([1, 2, 3]), 4)
            proxy = session.decoder.plans["layer0.wq"]
            assert proxy.row_stats()  # prefill m=3 + decode m=1 rows
            assert proxy.execute_count == sum(proxy.row_stats().values())
            worker_rows = group.worker_histograms()
        assert set(worker_rows) == set(session.decoder.plans)
        assert worker_rows["layer0.wq"]["rows"] == {
            m: count * 2 for m, count in proxy.row_stats().items()
        }

    def test_world_of_one_rejected(self, setup):
        _, _, qmodel = setup
        session = InferenceSession(qmodel, backend="fast")
        with pytest.raises(ConfigError):
            TensorShardGroup(session.decoder, 1)


def trace(config, count=6, seed=5):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        prompt = rng.integers(0, config.vocab, size=int(rng.integers(4, 12)))
        out.append(
            Request(
                prompt=prompt,
                max_new=int(rng.integers(4, 9)),
                top_k=4 if i % 2 else None,
                seed=50 + i,
                eos_token=9 if i % 3 == 0 else None,
            )
        )
    return out


class TestRouter:
    def test_dispatch_balances_outstanding_tokens(self, checkpoint, setup):
        config, _, _ = setup
        requests = trace(config, count=8)
        with Router(checkpoint, workers=2, max_slots=4) as router:
            assignment = router.dispatch(requests)
        assert sorted(i for ranks in assignment for i in ranks) == list(range(8))
        # Replaying the greedy rule reproduces the assignment exactly.
        outstanding = [0, 0]
        for index, request in enumerate(requests):
            rank = min((0, 1), key=lambda r: (outstanding[r], r))
            assert index in assignment[rank]
            outstanding[rank] += request.prompt.shape[0] + request.max_new
        assert abs(outstanding[0] - outstanding[1]) < max(outstanding)

    def test_fleet_matches_single_process(self, checkpoint, setup):
        config, _, qmodel = setup
        requests = trace(config, count=6)
        single = Scheduler(
            BatchedSession(qmodel, backend="fast", max_slots=4), max_batch=4
        ).run(list(requests))
        with Router(checkpoint, workers=2, backend="fast", max_slots=4) as router:
            fleet = router.serve(list(requests))
        assert fleet.completed == len(requests)
        for expect, got in zip(single, fleet.results, strict=False):
            assert expect.request_id == got.request_id
            assert np.array_equal(expect.tokens, got.tokens)
            assert expect.finish_reason == got.finish_reason

    def test_fleet_report_merges_telemetry(self, checkpoint, setup):
        config, _, qmodel = setup
        requests = trace(config, count=6)
        with Router(checkpoint, workers=2, backend="fast", max_slots=4) as router:
            fleet = router.serve(list(requests))
        assert len(fleet.workers) == 2
        assert sum(len(w.results) for w in fleet.workers) == len(requests)
        merged = fleet.merged_telemetry()
        reference = BatchedSession(qmodel, backend="fast", max_slots=4)
        Scheduler(reference, max_batch=4).run(list(requests))
        assert set(merged.stats) == set(reference.telemetry.stats)
        # Identical token work fleet-wide: per-site row totals match the
        # single-process run exactly.
        for name, stat in reference.telemetry.stats.items():
            assert merged.stats[name].rows == stat.rows, name
        rows = fleet.merged_plan_rows()
        assert set(rows) == set(reference.decoder.plans)
        wait = fleet.queue_wait()
        assert set(wait) == {"p50", "p95"}
        assert fleet.aggregate_tokens_per_s > 0
        assert 0 < fleet.mean_occupancy <= 1

    def test_serve_twice_reuses_the_fleet(self, checkpoint, setup):
        config, _, _ = setup
        requests = trace(config, count=4)
        with Router(checkpoint, workers=2, max_slots=4) as router:
            first = router.serve(list(requests))
            second = router.serve(list(requests))
        for a, b in zip(first.results, second.results, strict=False):
            assert np.array_equal(a.tokens, b.tokens)

    def test_bad_worker_count_rejected(self, checkpoint):
        with pytest.raises(ConfigError):
            Router(checkpoint, workers=0)

    def test_closed_router_rejects_serve(self, checkpoint, setup):
        config, _, _ = setup
        router = Router(checkpoint, workers=2, max_slots=4)
        router.close()
        with pytest.raises(RuntimeError):
            router.serve(trace(config, count=2))


def _concurrent_reader(conn, barrier, path):
    """Load the checkpoint in lock-step with sibling readers."""
    from repro.model.checkpoint import load_model

    try:
        barrier.wait(timeout=30)
        model = load_model(path)
        digest = hashlib.sha256()
        for name in sorted(model.matrices()):
            qm = model.matrices()[name]
            digest.update(qm.codes.tobytes())
            digest.update(qm.scales.tobytes())
            digest.update(qm.zeros.tobytes())
        conn.send(("ok", digest.hexdigest()))
    except Exception as exc:
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


class TestConcurrentCheckpointReaders:
    def test_simultaneous_loads_are_bit_identical(self, checkpoint, setup):
        """N processes load the same directory at the same instant.

        The barrier releases every reader at once, so manifest parsing
        and npz reads genuinely overlap; all digests must equal the
        parent's own.
        """
        _, _, qmodel = setup
        readers = 4
        barrier = pool_context().Barrier(readers)
        workers = [
            spawn_worker(_concurrent_reader, (barrier, str(checkpoint)))
            for _ in range(readers)
        ]
        digests = []
        for proc, conn in workers:
            kind, payload = conn.recv()
            assert kind == "ok", payload
            digests.append(payload)
            proc.join(timeout=10.0)
        expect = hashlib.sha256()
        for name in sorted(qmodel.matrices()):
            qm = qmodel.matrices()[name]
            expect.update(qm.codes.tobytes())
            expect.update(qm.scales.tobytes())
            expect.update(qm.zeros.tobytes())
        assert digests == [expect.hexdigest()] * readers
