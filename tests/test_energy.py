"""Tests for the hardware cost model (repro.energy)."""

import pytest

from repro.energy.breakdown import average_reuse, breakdown, fig9_breakdowns
from repro.energy.memory import DEFAULT_MEMORY, MemoryModel
from repro.energy.tech import DEFAULT_TECH, TechnologyModel
from repro.energy.units import (
    dp_unit,
    fp16_adder,
    fp16_mul_baseline,
    fp_int16_mul_parallel,
    int11_mul_baseline,
    int11_mul_parallel,
    tensor_core,
)
from repro.errors import ConfigError


class TestTechnology:
    def test_adder_energy_scales_with_width(self):
        assert DEFAULT_TECH.adder_energy(16) == 16.0
        assert DEFAULT_TECH.adder_energy(6) == 6.0

    def test_effective_width_caps_energy(self):
        assert DEFAULT_TECH.adder_energy(16, 12) == 12.0
        assert DEFAULT_TECH.adder_energy(16, 20) == 16.0

    def test_power_proportional_to_energy(self):
        assert DEFAULT_TECH.power_mw(200.0) == pytest.approx(
            2 * DEFAULT_TECH.power_mw(100.0)
        )

    def test_custom_tech_propagates(self):
        tech = TechnologyModel(full_adder_bit=2.0)
        assert int11_mul_baseline(tech).energy_per_op > int11_mul_baseline().energy_per_op


class TestUnitCosts:
    def test_int11_baseline_inventory_energy(self):
        unit = int11_mul_baseline()
        # 10 INT16 adders + AND plane (121 bits at 0.12 each).
        assert unit.energy_per_op == pytest.approx(160 + 121 * 0.12)

    def test_parallel_int11_has_extra_adders(self):
        base = int11_mul_baseline()
        par = int11_mul_parallel()
        assert par.energy_per_op > 0
        assert par.extra_energy > 0
        assert base.extra_energy == 0

    def test_parallel_mul_costs_more_than_baseline(self):
        assert (
            fp_int16_mul_parallel(4).energy_per_op
            > fp16_mul_baseline().energy_per_op
        )

    def test_int2_variant_costs_more_than_int4(self):
        # More rounding units and lane registers.
        assert (
            fp_int16_mul_parallel(2).energy_per_op
            > fp_int16_mul_parallel(4).energy_per_op
        )

    def test_mul_rejects_bad_bits(self):
        with pytest.raises(ConfigError):
            fp_int16_mul_parallel(8)

    def test_dp_energy_grows_with_dup(self):
        energies = [dp_unit(4, 4, dup).energy_per_op for dup in (1, 2, 4)]
        assert energies[0] < energies[1] < energies[2]

    def test_dp_energy_grows_with_width(self):
        assert dp_unit(8, 1, 1).energy_per_op > dp_unit(4, 1, 1).energy_per_op

    def test_baseline_dp4_composition(self):
        # 4 muls + 4 adders: energy == 4*(mul + adder).
        dp = dp_unit(4, 1, 1)
        expected = 4 * fp16_mul_baseline().energy_per_op + 4 * fp16_adder().energy_per_op
        assert dp.energy_per_op == pytest.approx(expected)

    def test_pacq_dp_has_accumulators(self):
        names = [c.name for c in dp_unit(4, 4, 2).components]
        assert any("sum(A)" in n for n in names)

    def test_tensor_core_aggregates_dps(self):
        tc = tensor_core(4, 1, 1, num_dp=4)
        dp = dp_unit(4, 1, 1)
        assert tc.energy_per_op > 4 * dp.energy_per_op * 0.99

    def test_scaled_unit(self):
        unit = fp16_adder().scaled("half", 0.5)
        assert unit.energy_per_op == pytest.approx(fp16_adder().energy_per_op / 2)

    def test_reuse_fraction_requires_energy(self):
        from repro.energy.units import UnitCost

        with pytest.raises(ConfigError):
            UnitCost("empty").reuse_fraction


class TestBreakdowns:
    def test_fractions_sum_to_one(self):
        for b in fig9_breakdowns(4):
            assert b.reused_fraction + b.extra_fraction == pytest.approx(1.0)

    def test_int11_reuse_matches_paper(self):
        b = breakdown(int11_mul_parallel())
        assert b.reused_fraction == pytest.approx(0.745, abs=0.02)

    def test_dp4_reuse_matches_paper(self):
        b = breakdown(dp_unit(4, 4, 2))
        assert b.reused_fraction == pytest.approx(0.602, abs=0.02)

    def test_average_reuse_near_69_percent(self):
        assert average_reuse(fig9_breakdowns(4)) == pytest.approx(0.69, abs=0.03)

    def test_average_reuse_empty(self):
        assert average_reuse([]) == 0.0

    def test_as_rows_lead_with_reused(self):
        rows = breakdown(int11_mul_parallel()).as_rows()
        assert rows[0][0] == "reused resources"


class TestMemoryModel:
    def test_level_ordering(self):
        m = DEFAULT_MEMORY
        assert (
            m.register_file.energy_per_beat
            < m.l1.energy_per_beat
            < m.l2.energy_per_beat
            < m.dram.energy_per_beat
        )

    def test_level_lookup(self):
        assert DEFAULT_MEMORY.level("rf") is DEFAULT_MEMORY.register_file
        assert DEFAULT_MEMORY.level("L1") is DEFAULT_MEMORY.l1

    def test_level_lookup_rejects_unknown(self):
        with pytest.raises(ConfigError):
            DEFAULT_MEMORY.level("l3")

    def test_traffic_energy_sums_levels(self):
        e = DEFAULT_MEMORY.traffic_energy({"rf": 10, "l1": 2})
        expected = (
            DEFAULT_MEMORY.register_file.energy(10) + DEFAULT_MEMORY.l1.energy(2)
        )
        assert e == pytest.approx(expected)

    def test_capacity_scaling_monotone(self):
        small = MemoryModel.volta_like(l1_bytes=32 * 1024)
        big = MemoryModel.volta_like(l1_bytes=256 * 1024)
        assert small.l1.energy_per_beat < big.l1.energy_per_beat

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            MemoryModel.volta_like(l1_bytes=0)

    def test_table1_capacities(self):
        assert DEFAULT_MEMORY.register_file.capacity_bytes == 256 * 1024
        assert DEFAULT_MEMORY.l1.capacity_bytes == 96 * 1024
