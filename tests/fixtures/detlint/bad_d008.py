"""D008 fixture: raw multiprocessing outside the process owner.

Worker processes must route through :mod:`repro.core.procutil`, which
pins the spawn method and environment; ad-hoc ``multiprocessing`` use
inherits whatever start method the host picked.
"""

import multiprocessing
from multiprocessing import Pool


def spawn(target):
    proc = multiprocessing.Process(target=target)
    proc.start()
    return proc


def context():
    return multiprocessing.get_context("spawn")


def mapper(fn, items):
    with Pool(2) as pool:
        return pool.map(fn, items)
