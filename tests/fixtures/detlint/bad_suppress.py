"""Suppression-hygiene fixture: malformed markers are themselves findings.

A bare ignore, an ignore without a rule list, or one without a
justification waives nothing — the original finding still fires and
the marker earns a D000.
"""

import os


def bare(directory: str) -> list[str]:
    return os.listdir(directory)  # detlint: ignore


def no_justification(directory: str) -> list[str]:
    return os.listdir(directory)  # detlint: ignore[D004]


def bad_rule_id(directory: str) -> list[str]:
    return os.listdir(directory)  # detlint: ignore[banana]: not a rule id


def well_formed(directory: str) -> int:
    # detlint: ignore[D004]: order-free — the count does not consume order.
    return sum(1 for _ in os.listdir(directory))
