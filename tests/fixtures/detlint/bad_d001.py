"""D001 fixture: BLAS matmul inside a deterministic module.

The historical shape: an LM head computed with ``@`` gives logits whose
bits depend on the batch dimension (BLAS kernel blocking), which is
exactly what broke cross-batch token identity before the engine's
einsum convention.
"""

import numpy as np


def logits(embedding: np.ndarray, head: np.ndarray) -> np.ndarray:
    return embedding @ head


def attention_scores(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    return np.matmul(q, np.swapaxes(k, -1, -2))


def project(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    return x.dot(w)


def contract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.tensordot(a, b, axes=1)


def conforming(embedding: np.ndarray, head: np.ndarray) -> np.ndarray:
    return np.einsum("bk,kn->bn", embedding, head, optimize=False)
