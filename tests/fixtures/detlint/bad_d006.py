"""D006 fixture: wall clock and set-order nondeterminism in artifact paths.

Artifacts must be byte-identical across reruns: no timestamps in
content or names, no iteration over hash-order containers.
"""

import time
from datetime import datetime


def artifact_name(prefix: str) -> str:
    return f"{prefix}-{time.time():.0f}.json"


def stamp() -> str:
    return datetime.now().isoformat()


def tags() -> list[str]:
    out = []
    for tag in {"table1", "table2", "fig9"}:
        out.append(tag)
    return out


def conforming(prefix: str, seq: int) -> str:
    return f"{prefix}-{seq:04d}.json"
