"""D005 fixture: unseeded or global-state RNG.

Every random draw in the repo routes through an explicitly seeded
``np.random.Generator``; OS-entropy seeding and the legacy global
state both make runs unrepeatable.
"""

import random

import numpy as np


def os_entropy() -> float:
    rng = np.random.default_rng()
    return float(rng.random())


def legacy_global() -> np.ndarray:
    return np.random.rand(3)


def stdlib_global() -> float:
    return random.random()


def conforming(seed: int) -> float:
    return float(np.random.default_rng(seed).random())
