"""D002 fixture: einsum without a pinned contraction order.

``optimize`` defaults to a path-search heuristic whose chosen order
(and therefore the floating-point bits) can change with operand
shapes; ``optimize=True`` makes that explicit.  Only a literal
``optimize=False`` pins the contraction order.
"""

import numpy as np


def default_path(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.einsum("bk,kn->bn", a, b)


def heuristic_path(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.einsum("bk,kn->bn", a, b, optimize=True)


def pinned(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.einsum("bk,kn->bn", a, b, optimize=False)
