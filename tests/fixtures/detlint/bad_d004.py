"""D004 fixture: unsorted directory iteration.

Directory order is filesystem-dependent; anything consuming a scan in
arrival order bakes that nondeterminism into checkpoints and reports.
"""

import glob
import os
import pathlib


def entries(directory: str) -> list[str]:
    return os.listdir(directory)


def shards(root: pathlib.Path) -> list[pathlib.Path]:
    return list(root.glob("*.npz"))


def walk(root: pathlib.Path):
    for path in root.iterdir():
        yield path


def patterns(root: str) -> list[str]:
    return glob.glob(root + "/*.json")


def conforming(directory: str) -> list[str]:
    return sorted(os.listdir(directory))
