"""D003 fixture: shape-dependent float summation in a deterministic module.

``np.sum`` switches to pairwise blocking above a length threshold, so
the rounding pattern — and the bits — depend on the reduced length.
"""

import numpy as np


def total(x: np.ndarray) -> float:
    return float(np.sum(x))


def row_total(x: np.ndarray) -> np.ndarray:
    return x.sum(axis=-1)
