# D999 fixture: a file that does not parse lints as a finding, not a crash.
def broken(:
    pass
