"""Conforming fixture: a deterministic module the rules stay quiet on."""

import os

import numpy as np


def contract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.einsum("bk,kn->bn", a, b, optimize=False)


def draw(seed: int) -> float:
    return float(np.random.default_rng(seed).random())


def entries(directory: str) -> list[str]:
    return sorted(os.listdir(directory))


class Holder:
    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    def snapshot(self, upto: int) -> np.ndarray:
        return self.data[:upto].copy()
