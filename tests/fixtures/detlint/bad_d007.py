"""D007 fixture: pool-backed views escaping without a copy.

The PR-6 aliasing class: returning a slice of ``self``-owned pool
state hands the caller a live window into memory the pool will
overwrite, so "snapshots" silently change after the fact.
"""

import numpy as np


class SlotPool:
    def __init__(self, slots: int, capacity: int, d: int) -> None:
        self.keys = np.zeros((slots, capacity, d), dtype=np.float16)
        self.values = np.zeros((slots, capacity, d), dtype=np.float16)

    def view(self, slot: int, upto: int) -> tuple[np.ndarray, np.ndarray]:
        return self.keys[slot, :upto], self.values[slot, :upto]

    def snapshot(self, slot: int, upto: int) -> np.ndarray:
        return self.keys[slot, :upto]

    def conforming(self, slot: int, upto: int) -> np.ndarray:
        return self.keys[slot, :upto].copy()
