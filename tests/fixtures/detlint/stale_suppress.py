"""Stale-suppression fixture: the waived violation no longer exists.

Under ``--strict`` the unused marker is reported as D010 so dead
waivers cannot accumulate and mask future regressions.
"""


def fine() -> list[str]:
    # detlint: ignore[D004]: historical — the unsorted glob was removed.
    return []
