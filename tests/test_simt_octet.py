"""Tests for the trace-driven octet simulator (repro.simt.octet).

Closed-form cross-checks: for the m16n16k16 octet workload (M=8, N=8,
K=16) with the Fig. 3(d) buffer sizes, the traces must land exactly on
the analytically derivable counts documented in DESIGN.md.
"""

import pytest

from repro.errors import ConfigError
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.octet import OctetArch, simulate_octet
from repro.simt.warp import OctetWorkload

OCTET = OctetWorkload(8, 8, 16)


def _trace(kind, bits):
    return simulate_octet(FlowConfig(kind, bits), OCTET)


class TestClosedFormCounts:
    def test_w16a16_baseline(self):
        t = _trace(FlowKind.STANDARD_DEQUANT, 16)
        assert t.a_reads == 256
        assert t.b_reads == 128
        assert t.c_reads == 192
        assert t.c_writes == 256
        assert t.rf_total == 832

    def test_packed_k_int4(self):
        t = _trace(FlowKind.PACKED_K, 4)
        assert t.a_reads == 256
        assert t.b_reads == 32  # packed words: 4x fewer beats
        assert t.c_reads == 192
        assert t.c_writes == 256
        assert t.rf_total == 736

    def test_packed_k_int2(self):
        t = _trace(FlowKind.PACKED_K, 2)
        assert t.b_reads == 16
        assert t.rf_total == 464

    def test_pacq_int4(self):
        t = _trace(FlowKind.PACQ, 4)
        assert t.a_reads == 256
        assert t.b_reads == 32
        assert t.c_reads == 0  # output-stationary: no psum round-trips
        assert t.c_writes == 64
        assert t.rf_total == 352

    def test_pacq_int2(self):
        t = _trace(FlowKind.PACQ, 2)
        assert t.a_reads == 128  # one A tile serves 8 packed columns
        assert t.rf_total == 208


class TestInvariants:
    @pytest.mark.parametrize(
        "kind,bits",
        [
            (FlowKind.STANDARD_DEQUANT, 16),
            (FlowKind.PACKED_K, 4),
            (FlowKind.PACKED_K, 2),
            (FlowKind.PACQ, 4),
            (FlowKind.PACQ, 2),
        ],
    )
    def test_products_equal_macs(self, kind, bits):
        assert _trace(kind, bits).products == OCTET.macs

    @pytest.mark.parametrize("bits", [4, 2])
    def test_pacq_beats_packed_k(self, bits):
        assert _trace(FlowKind.PACQ, bits).rf_total < _trace(FlowKind.PACKED_K, bits).rf_total

    def test_int2_reduction_exceeds_int4_reduction(self):
        red4 = 1 - _trace(FlowKind.PACQ, 4).rf_total / _trace(FlowKind.PACKED_K, 4).rf_total
        red2 = 1 - _trace(FlowKind.PACQ, 2).rf_total / _trace(FlowKind.PACKED_K, 2).rf_total
        assert red2 > red4

    def test_fig7a_reductions_in_paper_ballpark(self):
        red4 = 1 - _trace(FlowKind.PACQ, 4).rf_total / _trace(FlowKind.PACKED_K, 4).rf_total
        red2 = 1 - _trace(FlowKind.PACQ, 2).rf_total / _trace(FlowKind.PACKED_K, 2).rf_total
        assert 0.3 < red4 < 0.65
        assert 0.45 < red2 < 0.65

    def test_packed_k_issues_more_fetch_instructions(self):
        # Fig. 4(a): one A-fetch instruction per packed field group.
        packed = _trace(FlowKind.PACKED_K, 4).fetch_instructions
        ours = _trace(FlowKind.PACQ, 4).fetch_instructions
        assert packed > 2 * ours

    def test_outputs_recorded(self):
        for kind, bits in ((FlowKind.PACQ, 4), (FlowKind.PACKED_K, 4)):
            assert _trace(kind, bits).outputs == OCTET.outputs

    def test_tile_issue_products_consistent(self):
        for kind, bits in (
            (FlowKind.STANDARD_DEQUANT, 16),
            (FlowKind.PACKED_K, 2),
            (FlowKind.PACQ, 4),
        ):
            t = _trace(kind, bits)
            issue_products = sum(outputs * k for outputs, k in t.tile_issues)
            assert issue_products == t.products


class TestScaling:
    def test_rf_traffic_scales_with_k(self):
        small = simulate_octet(FlowConfig(FlowKind.PACQ, 4), OctetWorkload(8, 8, 16))
        large = simulate_octet(FlowConfig(FlowKind.PACQ, 4), OctetWorkload(8, 8, 32))
        assert large.a_reads == 2 * small.a_reads
        # B reads grow at least linearly; past the 16-word buffer the
        # measured trace loses cross-mt reuse, so strictly more.
        assert large.b_reads >= 2 * small.b_reads
        assert large.c_writes == small.c_writes  # still written once

    def test_bigger_a_buffer_cannot_increase_reads(self):
        small = simulate_octet(
            FlowConfig(FlowKind.PACKED_K, 2), OCTET, OctetArch(a_buffer_beats=8)
        )
        large = simulate_octet(
            FlowConfig(FlowKind.PACKED_K, 2), OCTET, OctetArch(a_buffer_beats=64)
        )
        assert large.a_reads <= small.a_reads

    def test_rejects_untileable_workload(self):
        with pytest.raises(ConfigError):
            simulate_octet(FlowConfig(FlowKind.PACQ, 4), OctetWorkload(6, 8, 16))

    def test_rejects_pack_mismatch(self):
        with pytest.raises(ConfigError):
            simulate_octet(FlowConfig(FlowKind.PACQ, 2), OctetWorkload(8, 4, 16))
        with pytest.raises(ConfigError):
            simulate_octet(FlowConfig(FlowKind.PACKED_K, 2), OctetWorkload(8, 8, 12))

    def test_rejects_bad_arch(self):
        with pytest.raises(ConfigError):
            OctetArch(dp_units=0)
