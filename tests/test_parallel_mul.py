"""Tests for the parallel FP-INT multiplier (repro.multiplier.parallel).

The central claim (paper Section V: "there is no approximation in our
design") is bit-exactness against the dequantize-then-FP16-multiply
reference; these tests verify it exhaustively over the mantissa space
and by property-based fuzzing over the full operand space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.fp import fp16
from repro.multiplier.parallel import (
    TRANSFORM_EXPONENT,
    lanes,
    parallel_fp_int_mul,
    rebias_offset,
    reference_products,
    transform_offset,
    transformed_weight_bits,
)
from tests.conftest import fp16_bits


class TestTransform:
    def test_offsets_match_paper(self):
        assert transform_offset(4) == 1032
        assert transform_offset(2) == 1026

    def test_rebias(self):
        assert rebias_offset(4) == 8
        assert rebias_offset(2) == 2

    def test_lane_counts(self):
        assert lanes(4) == 4
        assert lanes(2) == 8

    def test_rejects_other_widths(self):
        with pytest.raises(EncodingError):
            lanes(8)

    def test_transformed_weight_structure_int4(self):
        # Observation 1+2 of the paper: exponent 11001b, mantissa yyyy.
        for code in range(-8, 8):
            bits = transformed_weight_bits(code, 4)
            sign, exponent, mantissa = fp16.split(bits)
            assert sign == 0
            assert exponent == TRANSFORM_EXPONENT
            assert mantissa == code + 8

    def test_transformed_weight_structure_int2(self):
        for code in range(-2, 2):
            bits = transformed_weight_bits(code, 2)
            _, exponent, mantissa = fp16.split(bits)
            assert exponent == TRANSFORM_EXPONENT
            assert mantissa == code + 2

    def test_transformed_weight_rejects_out_of_range(self):
        with pytest.raises(EncodingError):
            transformed_weight_bits(8, 4)
        with pytest.raises(EncodingError):
            transformed_weight_bits(-3, 2)


class TestBitExactness:
    def test_exhaustive_mantissas_int4(self):
        # Every mantissa at representative exponents x every INT4 code.
        lane_groups = [list(range(-8, -4)), list(range(-4, 0)),
                       list(range(0, 4)), list(range(4, 8))]
        for exponent in (1, 5, 15, 25, 30):
            for mantissa in range(1024):
                a = fp16.combine(0, exponent, mantissa)
                for codes in lane_groups:
                    got = parallel_fp_int_mul(a, codes, 4)
                    # reference_products uses the scalar FP16 path
                    assert list(got.products) == reference_products(a, codes, 4)

    def test_exhaustive_mantissas_int2(self):
        codes = list(range(-2, 2)) * 2
        for exponent in (1, 15, 30):
            for mantissa in range(0, 1024, 3):
                a = fp16.combine(1, exponent, mantissa)
                got = parallel_fp_int_mul(a, codes, 2)
                assert list(got.products) == reference_products(a, codes, 2)

    @given(fp16_bits(), st.lists(st.integers(-8, 7), min_size=1, max_size=4))
    @settings(max_examples=1500)
    def test_property_int4(self, a, codes):
        got = parallel_fp_int_mul(a, codes, 4)
        ref = reference_products(a, codes, 4)
        for g, r in zip(got.products, ref, strict=False):
            if fp16.is_nan(r):
                assert fp16.is_nan(g)
            else:
                assert g == r

    @given(fp16_bits(), st.lists(st.integers(-2, 1), min_size=1, max_size=8))
    @settings(max_examples=1000)
    def test_property_int2(self, a, codes):
        got = parallel_fp_int_mul(a, codes, 2)
        assert list(got.products) == reference_products(a, codes, 2)

    def test_overflow_exponents_saturate(self):
        a = fp16.combine(0, 30, 1023)  # near max finite
        got = parallel_fp_int_mul(a, [7], 4)
        assert fp16.is_inf(got.products[0])

    def test_subnormal_activation_falls_back_correctly(self):
        a = fp16.combine(0, 0, 5)  # subnormal
        got = parallel_fp_int_mul(a, [3, -3], 4)
        assert list(got.products) == reference_products(a, [3, -3], 4)

    def test_zero_activation_gives_signed_zero(self):
        got = parallel_fp_int_mul(fp16.NEG_ZERO, [1, 2], 4)
        assert all(fp16.is_zero(p) for p in got.products)
        assert all(fp16.split(p)[0] == 1 for p in got.products)


class TestSharedFields:
    def test_output_sign_follows_activation(self):
        pos = parallel_fp_int_mul(fp16.from_float(2.0), [1], 4)
        neg = parallel_fp_int_mul(fp16.from_float(-2.0), [1], 4)
        assert pos.sign == 0
        assert neg.sign == 1

    def test_shared_exponent_is_ea_plus_ten(self):
        a = fp16.from_float(2.0)  # biased exponent 16
        got = parallel_fp_int_mul(a, [0, 1, 2, 3], 4)
        assert got.shared_exponent == 16 + TRANSFORM_EXPONENT - 15

    def test_all_lanes_present(self):
        got = parallel_fp_int_mul(fp16.from_float(1.5), [0, 1, 2, 3], 4)
        assert len(got.lane_traces) == 4

    def test_lane_intermediate_is_11x4_product(self):
        a = fp16.from_float(1.0)  # significand 1024
        got = parallel_fp_int_mul(a, [7], 4)  # unsigned 15
        assert got.lane_traces[0].intermediate == 1024 * 15

    def test_assembled_mantissa_equals_exact_product(self):
        a = fp16.combine(0, 15, 0x2AB)
        got = parallel_fp_int_mul(a, [5], 4)
        sig = 1024 + 0x2AB
        assert got.lane_traces[0].assembled_mantissa == sig * (1024 + 13)


class TestValidation:
    def test_rejects_empty_codes(self):
        with pytest.raises(EncodingError):
            parallel_fp_int_mul(0x3C00, [], 4)

    def test_rejects_too_many_codes(self):
        with pytest.raises(EncodingError):
            parallel_fp_int_mul(0x3C00, [0] * 5, 4)

    def test_rejects_out_of_range_code(self):
        with pytest.raises(EncodingError):
            parallel_fp_int_mul(0x3C00, [8], 4)

    def test_rejects_bad_width(self):
        with pytest.raises(EncodingError):
            parallel_fp_int_mul(0x3C00, [0], 3)


class TestSemantics:
    def test_products_are_a_times_transformed_weight(self):
        a = fp16.from_float(0.5)
        got = parallel_fp_int_mul(a, [-8, 0, 7], 4)
        values = [fp16.to_float(p) for p in got.products]
        assert values == [0.5 * 1024, 0.5 * 1032, 0.5 * 1039]

    def test_correction_recovers_signed_product(self):
        # a * (B + 1032) - 1032 * a == a * B (exact here).
        a = 0.25
        a_bits = fp16.from_float(a)
        for code in range(-8, 8):
            got = parallel_fp_int_mul(a_bits, [code], 4)
            product = fp16.to_float(got.products[0])
            assert product - 1032 * a == pytest.approx(a * code, abs=1e-9)
