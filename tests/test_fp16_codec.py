"""Tests for the binary16 codec (repro.fp.fp16)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.fp import fp16
from tests.conftest import finite_fp16_bits, np_fp16


class TestFieldCodec:
    def test_split_combine_roundtrip_exhaustive_sample(self):
        for bits in range(0, 0x10000, 17):
            assert fp16.combine(*fp16.split(bits)) == bits

    def test_split_known_value(self):
        # 1.0 = 0x3C00: sign 0, exponent 15, mantissa 0.
        assert fp16.split(0x3C00) == (0, 15, 0)

    def test_split_negative(self):
        assert fp16.split(0xBC00) == (1, 15, 0)

    def test_combine_rejects_bad_sign(self):
        with pytest.raises(EncodingError):
            fp16.combine(2, 0, 0)

    def test_combine_rejects_bad_exponent(self):
        with pytest.raises(EncodingError):
            fp16.combine(0, 32, 0)

    def test_combine_rejects_bad_mantissa(self):
        with pytest.raises(EncodingError):
            fp16.combine(0, 0, 1024)

    def test_split_rejects_wide_pattern(self):
        with pytest.raises(EncodingError):
            fp16.split(0x10000)

    def test_split_rejects_non_int(self):
        with pytest.raises(EncodingError):
            fp16.split(1.5)


class TestPredicates:
    def test_nan_classification(self):
        assert fp16.is_nan(fp16.NAN)
        assert not fp16.is_nan(fp16.POS_INF)

    def test_inf_classification(self):
        assert fp16.is_inf(fp16.POS_INF)
        assert fp16.is_inf(fp16.NEG_INF)
        assert not fp16.is_inf(fp16.NAN)

    def test_zero_classification(self):
        assert fp16.is_zero(fp16.POS_ZERO)
        assert fp16.is_zero(fp16.NEG_ZERO)
        assert not fp16.is_zero(0x0001)

    def test_subnormal_classification(self):
        assert fp16.is_subnormal(0x0001)
        assert fp16.is_subnormal(0x03FF)
        assert not fp16.is_subnormal(fp16.POS_ZERO)
        assert not fp16.is_subnormal(0x0400)

    def test_finite_classification(self):
        assert fp16.is_finite(fp16.POS_ZERO)
        assert not fp16.is_finite(fp16.POS_INF)
        assert not fp16.is_finite(fp16.NAN)

    def test_normalized_classification(self):
        assert fp16.is_normalized(0x3C00)
        assert not fp16.is_normalized(0x0001)  # subnormal
        assert not fp16.is_normalized(fp16.POS_INF)
        assert not fp16.is_normalized(fp16.POS_ZERO)

    @given(finite_fp16_bits())
    def test_predicates_partition_finite_values(self, bits):
        assert fp16.is_finite(bits)
        buckets = [fp16.is_zero(bits), fp16.is_subnormal(bits), fp16.is_normalized(bits)]
        assert sum(buckets) == 1


class TestSignificand:
    def test_hidden_bit_for_normal(self):
        assert fp16.significand(0x3C00) == 1024  # 1.0

    def test_mantissa_bits_included(self):
        assert fp16.significand(0x3C01) == 1025

    def test_subnormal_has_no_hidden_bit(self):
        assert fp16.significand(0x0001) == 1

    def test_rejects_inf(self):
        with pytest.raises(EncodingError):
            fp16.significand(fp16.POS_INF)


class TestDecode:
    def test_one(self):
        assert fp16.to_float(0x3C00) == 1.0

    def test_inf(self):
        assert fp16.to_float(fp16.POS_INF) == math.inf
        assert fp16.to_float(fp16.NEG_INF) == -math.inf

    def test_nan(self):
        assert math.isnan(fp16.to_float(fp16.NAN))

    def test_smallest_subnormal(self):
        assert fp16.to_float(0x0001) == 2.0**-24

    def test_max_finite(self):
        assert fp16.to_float(0x7BFF) == 65504.0

    def test_decode_matches_numpy_everywhere(self):
        for bits in range(0, 0x10000, 7):
            ref = float(np_fp16(bits))
            got = fp16.to_float(bits)
            if math.isnan(ref):
                assert math.isnan(got)
            else:
                assert got == ref


class TestEncode:
    def test_exact_roundtrip_all_finite(self):
        # Every finite FP16 value must encode back to its own bits.
        for bits in fp16.all_finite_bits():
            value = fp16.to_float(bits)
            assert fp16.from_float(value) == bits

    def test_overflow_saturates_to_inf(self):
        assert fp16.from_float(1e6) == fp16.POS_INF
        assert fp16.from_float(-1e6) == fp16.NEG_INF

    def test_underflow_flushes_to_signed_zero(self):
        assert fp16.from_float(1e-12) == fp16.POS_ZERO
        assert fp16.from_float(-1e-12) == fp16.NEG_ZERO

    def test_nan_encodes_to_canonical_nan(self):
        assert fp16.from_float(math.nan) == fp16.NAN

    def test_halfway_rounds_to_even(self):
        # 2049 is exactly between 2048 and 2050; RNE picks 2048.
        assert fp16.to_float(fp16.from_float(2049.0)) == 2048.0
        # 2051 is between 2050 and 2052; RNE picks 2052.
        assert fp16.to_float(fp16.from_float(2051.0)) == 2052.0

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=400)
    def test_encode_matches_numpy(self, value):
        with np.errstate(over="ignore"):
            ref = np.float16(value)
        got = fp16.from_float(value)
        assert got == int(ref.view(np.uint16))


class TestRounding:
    def test_no_shift_passthrough(self):
        assert fp16.round_to_nearest_even(0b1011, 0) == 0b1011

    def test_negative_shift_is_left_shift(self):
        assert fp16.round_to_nearest_even(0b1, -3) == 0b1000

    def test_round_down_below_half(self):
        assert fp16.round_to_nearest_even(0b10001, 2) == 0b100

    def test_round_up_above_half(self):
        assert fp16.round_to_nearest_even(0b10011, 2) == 0b101

    def test_tie_to_even_down(self):
        assert fp16.round_to_nearest_even(0b10010, 2) == 0b100

    def test_tie_to_even_up(self):
        assert fp16.round_to_nearest_even(0b10110, 2) == 0b110

    @given(st.integers(0, 2**30), st.integers(1, 20))
    def test_error_at_most_half_ulp(self, value, shift):
        rounded = fp16.round_to_nearest_even(value, shift)
        assert abs(rounded * (1 << shift) - value) <= (1 << shift) // 2


class TestIntExact:
    def test_transform_range_is_exact(self):
        for value in range(1024, 2048):
            bits = fp16.from_int_exact(value)
            assert fp16.to_float(bits) == float(value)

    def test_rejects_inexact_integer(self):
        with pytest.raises(EncodingError):
            fp16.from_int_exact(2049)

    def test_transformed_weight_field_structure(self):
        # B + 1032 for B in [-8, 8): exponent 25, mantissa = B + 8.
        for code in range(-8, 8):
            bits = fp16.from_int_exact(code + 1032)
            sign, exponent, mantissa = fp16.split(bits)
            assert (sign, exponent, mantissa) == (0, 25, code + 8)


class TestNextAfter:
    def test_walks_upward(self):
        assert fp16.next_after(0x0000) == 0x0001

    def test_negative_zero_jumps_to_positive_subnormal(self):
        assert fp16.next_after(fp16.NEG_ZERO) == 0x0001

    def test_inf_is_fixed_point(self):
        assert fp16.next_after(fp16.POS_INF) == fp16.POS_INF

    def test_ordering_preserved(self):
        bits = fp16.from_float(1.0)
        nxt = fp16.next_after(bits)
        assert fp16.to_float(nxt) > 1.0


class TestFp16Wrapper:
    def test_fields(self):
        x = fp16.Fp16.from_float(-2.5)
        assert x.sign == 1
        assert x.value == -2.5

    def test_from_fields(self):
        assert fp16.Fp16.from_fields(0, 15, 0).value == 1.0

    def test_float_protocol(self):
        assert float(fp16.Fp16.from_float(0.5)) == 0.5

    def test_repr_contains_hex(self):
        assert "0x3c00" in repr(fp16.Fp16(0x3C00))

    def test_rejects_wide_bits(self):
        with pytest.raises(EncodingError):
            fp16.Fp16(0x12345)

    def test_is_nan(self):
        assert fp16.Fp16(fp16.NAN).is_nan()
