"""Tests for the radix prompt-prefix cache (repro.serve.prefix).

Three layers of coverage: the radix tree itself (matching, edge
splits, LRU eviction under a byte budget, copy-on-write isolation),
the :class:`BatchedKVCache` snapshot/copy_into primitives it is built
on, and end-to-end bit-identity — serving with the cache on must
produce exactly the logits and token streams of serving with it off,
across every row-independent engine backend.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.transformer import Decoder, TransformerConfig, init_weights
from repro.model import InferenceSession, parse_policy, quantize_model
from repro.serve import (
    BatchedSession,
    RadixPrefixCache,
    Request,
    Scheduler,
)

#: Backends with the row-independence guarantee ("reference" is
#: BLAS-backed and excluded) — same set as tests/test_serve.py.
BACKENDS = ("fast", "batched", "bitexact")


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    qmodel = quantize_model(
        weights, parse_policy("*=int4@g[8,4]"), config=config
    )
    return config, weights, qmodel


def fake_kv(tokens):
    """Synthetic per-token KV blocks: position ``i`` carries ``tokens[i]``.

    Shape ``[1 layer, 1 head, len, 2]``; 16 bytes per token, which the
    eviction tests rely on.
    """
    arr = np.asarray(tokens, dtype=np.float64)
    keys = np.zeros((1, 1, arr.shape[0], 1))
    keys[0, 0, :, 0] = arr
    return keys, -keys


class TestRadixTree:
    def test_miss_on_empty(self):
        cache = RadixPrefixCache(1 << 20)
        match, keys, values = cache.lookup(np.array([1, 2, 3]))
        assert (match, keys, values) == (0, None, None)
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 0
        assert stats.lookup_tokens == 3 and stats.hit_tokens == 0

    def test_exact_and_partial_hits(self):
        cache = RadixPrefixCache(1 << 20)
        tokens = [5, 6, 7, 8]
        assert cache.insert(np.array(tokens), *fake_kv(tokens)) == 4
        match, keys, values = cache.lookup(np.array(tokens))
        assert match == 4
        assert np.array_equal(keys[0, 0, :, 0], tokens)
        assert np.array_equal(values, -keys)
        # a diverging prompt still reuses the shared two tokens
        match, keys, _ = cache.lookup(np.array([5, 6, 9]))
        assert match == 2
        assert np.array_equal(keys[0, 0, :, 0], [5, 6])
        assert cache.lookup(np.array([9, 9]))[0] == 0

    def test_insert_shares_existing_prefix(self):
        cache = RadixPrefixCache(1 << 20)
        cache.insert(np.array([1, 2, 3]), *fake_kv([1, 2, 3]))
        longer = [1, 2, 3, 4, 5]
        assert cache.insert(np.array(longer), *fake_kv(longer)) == 2
        assert cache.insert(np.array(longer), *fake_kv(longer)) == 0
        stats = cache.stats()
        assert stats.inserted_tokens == 5  # 3 + 2, no duplication
        assert stats.bytes == 5 * 16
        match, keys, _ = cache.lookup(np.array(longer))
        assert match == 5 and np.array_equal(keys[0, 0, :, 0], longer)

    def test_edge_split_preserves_both_branches(self):
        cache = RadixPrefixCache(1 << 20)
        cache.insert(np.array([1, 2, 3, 4]), *fake_kv([1, 2, 3, 4]))
        assert cache.insert(np.array([1, 2, 9]), *fake_kv([1, 2, 9])) == 1
        # split head [1,2] + tail [3,4] + new leaf [9]
        assert cache.stats().nodes == 3
        for tokens in ([1, 2, 3, 4], [1, 2, 9]):
            match, keys, values = cache.lookup(np.array(tokens))
            assert match == len(tokens)
            assert np.array_equal(keys[0, 0, :, 0], tokens)
            assert np.array_equal(values, -keys)

    def test_lru_eviction_under_budget(self):
        cache = RadixPrefixCache(4 * 16)  # room for 4 tokens
        cache.insert(np.array([1, 2, 3]), *fake_kv([1, 2, 3]))
        cache.insert(np.array([7, 8, 9]), *fake_kv([7, 8, 9]))
        stats = cache.stats()
        assert stats.evictions == 1 and stats.evicted_tokens == 3
        assert stats.bytes <= stats.max_bytes
        assert cache.lookup(np.array([1, 2, 3]))[0] == 0  # LRU victim
        assert cache.lookup(np.array([7, 8, 9]))[0] == 3

    def test_lookup_protects_from_eviction(self):
        cache = RadixPrefixCache(5 * 16)
        cache.insert(np.array([1, 2, 3]), *fake_kv([1, 2, 3]))
        cache.insert(np.array([7]), *fake_kv([7]))
        cache.lookup(np.array([1, 2, 3]))  # now [7] is least recent
        cache.insert(np.array([8, 9]), *fake_kv([8, 9]))
        assert cache.lookup(np.array([7]))[0] == 0
        assert cache.lookup(np.array([1, 2, 3]))[0] == 3

    def test_interior_nodes_evict_leaf_first(self):
        cache = RadixPrefixCache(3 * 16)
        cache.insert(np.array([1, 2]), *fake_kv([1, 2]))
        cache.insert(np.array([1, 2, 3, 4]), *fake_kv([1, 2, 3, 4]))
        # over budget by one token: only the [3,4] leaf may go
        assert cache.lookup(np.array([1, 2]))[0] == 2
        assert cache.lookup(np.array([1, 2, 3, 4]))[0] == 2
        assert cache.stats().evicted_tokens == 2

    def test_oversized_entry_dropped_immediately(self):
        cache = RadixPrefixCache(2 * 16)
        cache.insert(np.array([1, 2, 3, 4]), *fake_kv([1, 2, 3, 4]))
        assert cache.stats().bytes == 0
        assert cache.lookup(np.array([1, 2, 3, 4]))[0] == 0

    def test_budget_always_respected_under_churn(self):
        cache = RadixPrefixCache(6 * 16)
        rng = np.random.default_rng(3)
        for _ in range(50):
            tokens = rng.integers(0, 8, size=int(rng.integers(1, 5)))
            cache.insert(tokens, *fake_kv(tokens))
            assert cache.stats().bytes <= cache.max_bytes

    def test_insert_validation(self):
        cache = RadixPrefixCache(1 << 20)
        with pytest.raises(ConfigError, match="empty token sequence"):
            cache.insert(np.array([], dtype=np.int64), *fake_kv([]))
        keys, values = fake_kv([1, 2])
        with pytest.raises(ConfigError, match="insert expects"):
            cache.insert(np.array([1, 2, 3]), keys, values)
        with pytest.raises(ConfigError, match="budget must be"):
            RadixPrefixCache(0)


class TestCopyOnWrite:
    def test_lookup_returns_fresh_copies(self):
        cache = RadixPrefixCache(1 << 20)
        cache.insert(np.array([1, 2, 3]), *fake_kv([1, 2, 3]))
        _, keys, values = cache.lookup(np.array([1, 2, 3]))
        keys[...] = 99.0
        values[...] = 99.0
        _, again, again_v = cache.lookup(np.array([1, 2, 3]))
        assert np.array_equal(again[0, 0, :, 0], [1, 2, 3])
        assert np.array_equal(again_v, -again)

    def test_insert_copies_the_snapshot(self):
        cache = RadixPrefixCache(1 << 20)
        keys, values = fake_kv([4, 5])
        cache.insert(np.array([4, 5]), keys, values)
        keys[...] = -1.0  # the request keeps decoding into its slot
        values[...] = -1.0
        _, cached, _ = cache.lookup(np.array([4, 5]))
        assert np.array_equal(cached[0, 0, :, 0], [4, 5])


class TestSnapshotCopyInto:
    def test_resume_from_snapshot_is_bit_identical(self, setup):
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        prompt = np.arange(10) % config.vocab
        cache = decoder.init_batched_cache(2, capacity=16)
        a = cache.allocate()
        full = decoder.prefill_ragged([prompt], cache, [a])[0]
        keys, values = cache.snapshot(a, 6)
        b = cache.allocate()
        cache.copy_into(b, keys, values)
        assert int(cache.lengths[b]) == 6
        rows = decoder.prefill_ragged([prompt[6:]], cache, [b], resume=True)
        assert np.array_equal(rows[0], full[6:])

    def test_snapshot_bounds(self, setup):
        config, _, _ = setup
        from repro.llm.transformer import BatchedKVCache

        cache = BatchedKVCache(config, max_slots=2, capacity=8)
        slot = cache.allocate()
        with pytest.raises(ConfigError, match="snapshot of"):
            cache.snapshot(slot, 1)  # slot holds nothing yet

    def test_copy_into_rejects_busy_slot_and_bad_shapes(self, setup):
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        cache = decoder.init_batched_cache(2, capacity=16)
        a = cache.allocate()
        decoder.prefill_ragged([np.arange(4)], cache, [a])
        keys, values = cache.snapshot(a, 4)
        with pytest.raises(ConfigError, match="empty slot"):
            cache.copy_into(a, keys, values)
        b = cache.allocate()
        with pytest.raises(ConfigError, match="copy_into"):
            cache.copy_into(b, keys[:1], values[:1])  # wrong layer count
        with pytest.raises(ConfigError, match="at least one token"):
            cache.copy_into(b, keys[:, :, :0], values[:, :, :0])


class TestBitIdentityWithCache:
    """Cache on == cache off, to the last bit, on every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partial_prefix_hit_matches_reference(self, setup, backend):
        config, _, qmodel = setup
        rng = np.random.default_rng(5)
        shared = rng.integers(0, config.vocab, size=12)
        prompts = [
            np.concatenate([shared, rng.integers(0, config.vocab, size=n)])
            for n in (3, 5)
        ]
        session = BatchedSession(
            qmodel,
            backend=backend,
            max_slots=2,
            capacity=32,
            prefix_cache=RadixPrefixCache(1 << 20),
        )
        # first prompt: cold miss, recorded; second: 12-token hit
        slots = []
        for prompt in prompts:
            reference = InferenceSession(qmodel, backend=backend)
            slot_list, last = session.join([prompt])
            assert np.array_equal(last[0], reference.prefill(prompt)[-1])
            slots.append(slot_list[0])
        stats = session.prefix_cache.stats()
        assert stats.hits == 1 and stats.hit_tokens == 12
        # decoding a cache-seeded slot stays exact too
        single = InferenceSession(qmodel, backend=backend)
        last = single.prefill(prompts[1])
        for token in (1, 2):
            batch = session.decode_step([slots[1]], [token])
            assert np.array_equal(batch[0], single.decode_step(token))

    @pytest.mark.parametrize("backend", ("fast", "batched"))
    def test_full_prompt_cached_still_samples(self, setup, backend):
        """Reuse is capped at len-1: an identical prompt re-prefills
        exactly one position and gets the same last row."""
        config, _, qmodel = setup
        session = BatchedSession(
            qmodel,
            backend=backend,
            max_slots=3,
            capacity=32,
            prefix_cache=RadixPrefixCache(1 << 20),
        )
        prompt = np.arange(9) % config.vocab
        _, first = session.join([prompt])
        _, second = session.join([prompt])
        assert np.array_equal(first, second)
        # the tree matches all 9 tokens; the session reuses only 8
        assert session.prefix_cache.stats().hit_tokens == 9
        _, reused = session.admit(prompt)
        assert reused == 8  # capped at len - 1

    def test_post_eviction_reprefill_is_exact(self, setup):
        config, _, qmodel = setup
        rng = np.random.default_rng(6)
        prompt = rng.integers(0, config.vocab, size=10)
        kv_bytes_per_token = 2 * config.n_layers * config.n_heads * (
            config.d_head * np.dtype(np.float64).itemsize
        )
        # budget below one prompt: every insert is evicted right away
        session = BatchedSession(
            qmodel,
            max_slots=2,
            capacity=32,
            prefix_cache=RadixPrefixCache(5 * kv_bytes_per_token),
        )
        reference = InferenceSession(qmodel, backend="fast")
        expect = reference.prefill(prompt)[-1]
        for _ in range(3):
            slots, last = session.join([prompt])
            assert np.array_equal(last[0], expect)
            session.retire(slots[0])
        assert session.prefix_cache.stats().evictions >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scheduler_streams_identical_cache_on_off(self, setup, backend):
        config, _, qmodel = setup
        rng = np.random.default_rng(8)
        shared = rng.integers(0, config.vocab, size=10)
        count = 3 if backend == "bitexact" else 6
        requests = []
        for i in range(count):
            suffix = rng.integers(0, config.vocab, size=2 + i % 3)
            requests.append(
                Request(
                    prompt=np.concatenate([shared, suffix]),
                    max_new=4,
                    top_k=4,
                    seed=100 + i,
                    arrival=i,  # mid-stream joins while others decode
                )
            )

        def run(prefix_cache, prefill_chunk):
            session = BatchedSession(
                qmodel,
                backend=backend,
                max_slots=3,
                capacity=32,
                prefix_cache=prefix_cache,
            )
            scheduler = Scheduler(
                session, max_batch=3, prefill_chunk=prefill_chunk
            )
            return scheduler.run(requests), scheduler.stats()

        plain, _ = run(None, None)
        cached, stats = run(RadixPrefixCache(1 << 22), 8)
        assert stats.cached_prefix_tokens > 0
        for a, b in zip(plain, cached, strict=False):
            assert np.array_equal(a.tokens, b.tokens), (backend, a.request_id)
