"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.fp import fp16


@st.composite
def fp16_bits(draw, allow_nan: bool = True, allow_inf: bool = True):
    """Strategy over raw FP16 bit patterns."""
    bits = draw(st.integers(min_value=0, max_value=0xFFFF))
    if not allow_nan and fp16.is_nan(bits):
        bits = fp16.combine(0, 0x10, bits & 0x3FF)
    if not allow_inf and fp16.is_inf(bits):
        bits = fp16.combine(fp16.split(bits)[0], 0x1E, 0x3FF)
    return bits


@st.composite
def finite_fp16_bits(draw):
    """Strategy over finite FP16 bit patterns."""
    sign = draw(st.integers(0, 1))
    exponent = draw(st.integers(0, 30))
    mantissa = draw(st.integers(0, 1023))
    return fp16.combine(sign, exponent, mantissa)


@st.composite
def normal_fp16_bits(draw):
    """Strategy over normalized FP16 bit patterns."""
    sign = draw(st.integers(0, 1))
    exponent = draw(st.integers(1, 30))
    mantissa = draw(st.integers(0, 1023))
    return fp16.combine(sign, exponent, mantissa)


def np_fp16(bits: int) -> np.float16:
    """View raw bits as a numpy float16 scalar."""
    return np.uint16(bits).view(np.float16)


def np_bits(value) -> int:
    """Raw bits of a numpy float16 scalar."""
    return int(np.float16(value).view(np.uint16))


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0xBEEF)
