"""Tests for tensor-core cycles and full-GEMM simulation."""

import pytest

from repro.errors import ConfigError
from repro.quant.groups import G32_4, G128
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.memoryhier import (
    GemmShape,
    general_core_work,
    hierarchy_traffic,
    weight_beats,
)
from repro.simt.octet import OctetTrace, simulate_octet
from repro.simt.sm import GemmSimConfig, MachineConfig, simulate_gemm
from repro.simt.tensorcore import TensorCoreConfig, octet_cycles
from repro.simt.warp import OctetWorkload

OCTET = OctetWorkload(8, 8, 16)


def _cycles(kind, bits, dup=2):
    flow = FlowConfig(kind, bits)
    trace = simulate_octet(flow, OCTET)
    return octet_cycles(flow, trace, core=TensorCoreConfig(adder_tree_dup=dup))


class TestOctetCycles:
    def test_baseline_anchor(self):
        assert _cycles(FlowKind.STANDARD_DEQUANT, 16) == 131

    def test_packed_k_runs_at_baseline_rate(self):
        assert _cycles(FlowKind.PACKED_K, 4) == 131
        assert _cycles(FlowKind.PACKED_K, 2) == 131

    def test_pacq_anchor(self):
        assert _cycles(FlowKind.PACQ, 4) == 67
        assert _cycles(FlowKind.PACQ, 2) == 67

    def test_fig7b_speedup_close_to_paper(self):
        speedup = _cycles(FlowKind.PACKED_K, 4) / _cycles(FlowKind.PACQ, 4)
        assert speedup == pytest.approx(1.98, abs=0.05)

    def test_dup_ablation_ordering(self):
        c1 = _cycles(FlowKind.PACQ, 4, dup=1)
        c2 = _cycles(FlowKind.PACQ, 4, dup=2)
        c4 = _cycles(FlowKind.PACQ, 4, dup=4)
        c8 = _cycles(FlowKind.PACQ, 4, dup=8)
        assert c1 > c2 > c4
        assert c8 == c4  # multiplier-bound beyond dup 4 (INT4)

    def test_rejects_empty_trace(self):
        with pytest.raises(ConfigError):
            octet_cycles(FlowConfig(FlowKind.PACQ, 4), OctetTrace())


class TestHierarchyTraffic:
    def test_weight_beats(self):
        assert weight_beats(GemmShape(16, 64, 64), 4) == 64 * 64 // 4
        assert weight_beats(GemmShape(16, 64, 64), 2) == 64 * 64 // 8

    def test_standard_l1_carries_fp16_weights(self):
        shape = GemmShape(16, 256, 256)
        std = hierarchy_traffic(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), shape)
        ours = hierarchy_traffic(FlowConfig(FlowKind.PACQ, 4), shape)
        assert std.l1 > ours.l1

    def test_packed_flows_share_l2_and_dram(self):
        shape = GemmShape(16, 256, 256)
        std = hierarchy_traffic(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), shape)
        ours = hierarchy_traffic(FlowConfig(FlowKind.PACQ, 4), shape)
        assert std.l2 == ours.l2
        assert std.dram == ours.dram

    def test_w16a16_moves_full_precision_everywhere(self):
        shape = GemmShape(16, 256, 256)
        fp = hierarchy_traffic(FlowConfig(FlowKind.STANDARD_DEQUANT, 16), shape)
        q = hierarchy_traffic(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), shape)
        assert fp.dram > q.dram

    def test_int2_halves_weight_dram_vs_int4(self):
        shape = GemmShape(16, 1024, 1024)
        t4 = hierarchy_traffic(FlowConfig(FlowKind.PACQ, 4), shape)
        t2 = hierarchy_traffic(FlowConfig(FlowKind.PACQ, 2), shape)
        weight4 = weight_beats(shape, 4)
        weight2 = weight_beats(shape, 2)
        assert t4.dram - t2.dram == weight4 - weight2

    def test_large_m_increases_b_refetch(self):
        thin = hierarchy_traffic(FlowConfig(FlowKind.PACQ, 4), GemmShape(16, 256, 256))
        tall = hierarchy_traffic(FlowConfig(FlowKind.PACQ, 4), GemmShape(256, 256, 256))
        assert tall.l1 > thin.l1


class TestGeneralCoreWork:
    def test_dequant_flow_work(self):
        shape = GemmShape(16, 64, 64)
        work = general_core_work(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), shape)
        words = 64 * 64 // 4
        assert work.dequant_instructions == words + 64 * 64
        assert work.rf_writes == 64 * 64
        assert work.rf_reads == words

    def test_packed_k_has_no_general_core_work(self):
        work = general_core_work(FlowConfig(FlowKind.PACKED_K, 4), GemmShape(16, 64, 64))
        assert work.dequant_instructions == 0
        assert work.scale_fetches == 0

    def test_pacq_scale_fetches_collapse_with_n_groups(self):
        shape = GemmShape(16, 512, 512)
        k_only = general_core_work(FlowConfig(FlowKind.PACQ, 4), shape, G128)
        spanned = general_core_work(FlowConfig(FlowKind.PACQ, 4), shape, G32_4)
        assert k_only.scale_fetches == 4 * spanned.scale_fetches


class TestSimulateGemm:
    SHAPE = GemmShape(16, 64, 64)

    def test_products_conserved(self):
        stats = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), self.SHAPE)
        assert stats.products == self.SHAPE.macs

    def test_outputs(self):
        stats = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), self.SHAPE)
        assert stats.outputs == 16 * 64

    def test_rf_scales_linearly_in_n(self):
        small = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), GemmShape(16, 64, 64))
        large = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), GemmShape(16, 128, 64))
        assert large.rf.a_reads == 2 * small.rf.a_reads

    def test_cross_mma_psum_readback(self):
        # Two k-steps: the second MMA must re-read every C tile.
        one = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), GemmShape(16, 16, 16))
        two = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), GemmShape(16, 16, 32))
        extra_reads = two.rf.c_reads - 2 * one.rf.c_reads
        assert extra_reads == 16 * 16  # one C-tile readback

    def test_more_octet_slots_reduce_cycles(self):
        slow = GemmSimConfig(machine=MachineConfig(num_sms=1))
        fast = GemmSimConfig(machine=MachineConfig(num_sms=4))
        flow = FlowConfig(FlowKind.PACQ, 4)
        assert (
            simulate_gemm(flow, self.SHAPE, fast).cycles
            < simulate_gemm(flow, self.SHAPE, slow).cycles
        )

    def test_pacq_halves_cycles_vs_standard(self):
        std = simulate_gemm(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), self.SHAPE)
        ours = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), self.SHAPE)
        assert std.cycles / ours.cycles == pytest.approx(1.955, abs=0.05)

    def test_dequant_instructions_only_in_standard_flow(self):
        std = simulate_gemm(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), self.SHAPE)
        ours = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), self.SHAPE)
        assert std.dequant_instructions > 0
        assert ours.dequant_instructions == 0

    def test_rejects_untileable_shape(self):
        with pytest.raises(ConfigError):
            simulate_gemm(FlowConfig(FlowKind.PACQ, 4), GemmShape(10, 64, 64))

    def test_stats_addition(self):
        a = simulate_gemm(FlowConfig(FlowKind.PACQ, 4), self.SHAPE)
        total = a + a
        assert total.cycles == 2 * a.cycles
        assert total.rf.total == 2 * a.rf.total
        assert total.mem.dram == 2 * a.mem.dram

    def test_dequant_bound_machine(self):
        # Starve the general core: dequant dominates the critical path.
        config = GemmSimConfig(
            machine=MachineConfig(num_sms=1, general_alus_per_sm=1)
        )
        shape = GemmShape(16, 256, 256)
        std = simulate_gemm(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), shape, config)
        work = general_core_work(FlowConfig(FlowKind.STANDARD_DEQUANT, 4), shape)
        assert std.cycles == work.dequant_instructions
