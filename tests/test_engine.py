"""Tests for the GEMM execution engine (repro.engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gemm import dequant_reference, hyper_gemm
from repro.engine import (
    GemmPlan,
    backend_names,
    clear_plan_cache,
    get_backend,
    list_backends,
    plan_cache_size,
    plan_gemm,
    register_backend,
    unregister_backend,
)
from repro.errors import QuantizationError
from repro.quant.groups import GroupSpec
from repro.quant.packing import PackDim
from repro.quant.rtn import quantize_rtn


def _setup(m=4, k=32, n=16, bits=4, group=None, seed=0, symmetric=False):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    w = rng.normal(size=(k, n))
    spec = group if group is not None else GroupSpec(8, 4)
    qm = quantize_rtn(w, bits=bits, group=spec, symmetric=symmetric)
    return a, qm


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {
            "reference", "fast", "batched", "bitexact", "bitexact-scalar"
        } <= set(backend_names())

    def test_get_backend_returns_record(self):
        backend = get_backend("fast")
        assert backend.name == "fast"
        assert backend.transformed
        assert not get_backend("reference").transformed

    def test_unknown_backend_raises(self):
        with pytest.raises(QuantizationError):
            get_backend("warp-drive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(QuantizationError):
            register_backend("fast", lambda a, plan: None)

    def test_list_backends_sorted_with_descriptions(self):
        backends = list_backends()
        assert [b.name for b in backends] == sorted(b.name for b in backends)
        assert all(b.description for b in backends)

    def test_custom_backend_roundtrip(self):
        @register_backend("half-fast", description="fast scaled by 0.5")
        def execute_half(a, plan):
            return 0.5 * get_backend("fast").execute(a, plan)

        try:
            a, qm = _setup()
            # Dispatches through hyper_gemm's mode= too (the public seam).
            assert np.array_equal(
                hyper_gemm(a, qm, mode="half-fast"),
                0.5 * hyper_gemm(a, qm, mode="fast"),
            )
        finally:
            unregister_backend("half-fast")
        with pytest.raises(QuantizationError):
            get_backend("half-fast")

    def test_unregister_unknown_raises(self):
        with pytest.raises(QuantizationError):
            unregister_backend("never-registered")


class TestPlanCache:
    def test_same_matrix_same_plan(self):
        _, qm = _setup()
        assert plan_gemm(qm) is plan_gemm(qm)

    def test_different_matrices_different_plans(self):
        _, qm1 = _setup(seed=0)
        _, qm2 = _setup(seed=1)
        assert plan_gemm(qm1) is not plan_gemm(qm2)

    def test_cache_evicts_on_matrix_collection(self):
        clear_plan_cache()
        _, qm = _setup()
        plan_gemm(qm)
        assert plan_cache_size() == 1
        del qm
        assert plan_cache_size() == 0

    def test_clear_plan_cache(self):
        _, qm = _setup()
        plan_gemm(qm)
        clear_plan_cache()
        assert plan_cache_size() == 0
        assert plan_gemm(qm).matches(qm)


class TestPlanState:
    def test_rejects_int8(self):
        rng = np.random.default_rng(0)
        qm = quantize_rtn(rng.normal(size=(32, 16)), bits=8, group=GroupSpec(8, 4))
        with pytest.raises(QuantizationError):
            GemmPlan(qm)

    def test_rejects_bad_activation_shape(self):
        a, qm = _setup()
        plan = plan_gemm(qm)
        with pytest.raises(QuantizationError):
            plan.execute(a[:, :-1])
        with pytest.raises(QuantizationError):
            plan.execute(np.zeros(32))

    def test_transformed_slabs_match_codes(self):
        _, qm = _setup()
        plan = plan_gemm(qm)
        flat = plan.t_blocked.reshape(qm.k_dim, qm.n_dim)
        assert np.array_equal(flat, (qm.signed_codes() + 1032).astype(np.float32))
        assert np.array_equal(plan.lut32[plan.unsigned], flat)

    def test_w16_matches_dequantize(self):
        for symmetric in (False, True):
            _, qm = _setup(symmetric=symmetric)
            plan = plan_gemm(qm)
            expected = qm.dequantize().astype(np.float16).astype(np.float64)
            assert np.array_equal(plan.w16, expected)

    def test_packed_layout_is_pacq_convention(self):
        _, qm = _setup()
        packed = plan_gemm(qm).packed
        assert packed.spec.dim is PackDim.N
        assert packed.words.shape == (qm.k_dim, qm.n_dim // 4)

    def test_onehot_selects_each_weight_once(self):
        _, qm = _setup()
        plan = plan_gemm(qm)
        onehot = plan.onehot
        assert onehot.shape == (plan.gk, plan.group_k * plan.channels, qm.n_dim)
        # Exactly one channel set per (k, n) element.
        per_element = onehot.reshape(
            plan.gk, plan.group_k, plan.channels, qm.n_dim
        ).sum(axis=2)
        assert np.all(per_element == 1.0)


class TestCrossBackendAgreement:
    """``fast`` / ``batched`` / ``reference`` contracts (satellite task)."""

    @pytest.mark.parametrize("bits", [4, 2])
    @pytest.mark.parametrize("symmetric", [False, True])
    @pytest.mark.parametrize(
        "group", [GroupSpec(8, 4), GroupSpec(32, 1), GroupSpec(4, 16), GroupSpec(16, 16)]
    )
    def test_batched_bitexact_with_fast(self, bits, symmetric, group):
        a, qm = _setup(m=5, k=32, n=16, bits=bits, group=group, symmetric=symmetric)
        plan = plan_gemm(qm)
        fast = plan.execute(a, backend="fast")
        batched = plan.execute(a, backend="batched")
        assert np.array_equal(fast, batched)

    @given(
        seed=st.integers(0, 10**6),
        bits=st.sampled_from([4, 2]),
        gk=st.sampled_from([4, 8, 16]),
        gn=st.sampled_from([1, 2, 8]),
        symmetric=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_agreement_property(self, seed, bits, gk, gn, symmetric):
        """fast == batched bit-for-bit on random INT4/INT2 group specs."""
        a, qm = _setup(
            m=3, k=4 * gk, n=2 * max(gn, 4), bits=bits,
            group=GroupSpec(gk, gn), seed=seed, symmetric=symmetric,
        )
        plan = plan_gemm(qm)
        assert np.array_equal(
            plan.execute(a, backend="fast"), plan.execute(a, backend="batched")
        )

    def test_batched_matches_bit_level_multiplier(self):
        a, qm = _setup(m=2, k=16, n=8, group=GroupSpec(8, 4))
        plan = plan_gemm(qm)
        assert np.array_equal(
            plan.execute(a, backend="batched"), plan.execute(a, backend="bitexact")
        )

    @pytest.mark.parametrize("bits", [4, 2])
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_bitexact_matches_scalar_oracle(self, bits, symmetric):
        """The vectorized validator vs the per-element loop it replaced."""
        a, qm = _setup(m=3, k=32, n=16, bits=bits, symmetric=symmetric)
        plan = plan_gemm(qm)
        assert np.array_equal(
            plan.execute(a, backend="bitexact"),
            plan.execute(a, backend="bitexact-scalar"),
        )

    @pytest.mark.parametrize("bits", [4, 2])
    def test_bitexact_realistic_shape_agreement(self, bits):
        """The vectorized validator covers realistic shapes in-suite.

        With the scalar loop this shape took minutes; the vec layer
        lets the cross-backend contract run at [8, 128] x [128, 128]
        on every CI run.
        """
        a, qm = _setup(m=8, k=128, n=128, bits=bits, group=GroupSpec(32, 4))
        plan = plan_gemm(qm)
        bitexact = plan.execute(a, backend="bitexact")
        assert np.array_equal(bitexact, plan.execute(a, backend="fast"))
        assert np.array_equal(bitexact, plan.execute(a, backend="batched"))

    def test_bitexact_oracle_agreement_beyond_exact_sum_ceiling(self):
        # group_k > 4096 exceeds the 53-bit exact-sum argument, so the
        # vectorized kernel switches to the oracle's sequential k-order
        # accumulation — equality must hold there too.
        rng = np.random.default_rng(5)
        qm = quantize_rtn(
            rng.normal(size=(8192, 4)), bits=4, group=GroupSpec(8192, 4)
        )
        a = rng.normal(size=(1, 8192))
        plan = plan_gemm(qm)
        assert np.array_equal(
            plan.execute(a, backend="bitexact"),
            plan.execute(a, backend="bitexact-scalar"),
        )

    def test_bitexact_subnormal_activations_agree(self):
        # Subnormal activations exercise the vec layer's generic-path
        # fallback inside the engine kernel.
        rng = np.random.default_rng(11)
        a = rng.normal(size=(2, 32)) * 1e-7
        _, qm = _setup()
        plan = plan_gemm(qm)
        assert np.array_equal(
            plan.execute(a, backend="bitexact"),
            plan.execute(a, backend="bitexact-scalar"),
        )

    def test_reference_backend_matches_dequant_reference(self):
        a, qm = _setup()
        assert np.array_equal(
            plan_gemm(qm).execute(a, backend="reference"), dequant_reference(a, qm)
        )

    def test_large_group_k_falls_back_bit_exactly(self):
        # group_k beyond the exact-contraction ceiling takes the slab path.
        rng = np.random.default_rng(3)
        qm = quantize_rtn(
            rng.normal(size=(8192, 8)), bits=4, group=GroupSpec(8192, 8)
        )
        a = rng.normal(size=(2, 8192))
        plan = plan_gemm(qm)
        assert np.array_equal(
            plan.execute(a, backend="fast"), plan.execute(a, backend="batched")
        )

    def test_onehot_memory_ceiling_falls_back_bit_exactly(self, monkeypatch):
        # Matrices whose indicator operand would blow the memory ceiling
        # take the slab path and never build the indicator.
        from repro.engine import backends

        monkeypatch.setattr(backends, "_BATCHED_MAX_ONEHOT_BYTES", 1024)
        a, qm = _setup()
        plan = GemmPlan(qm)  # uncached: inspect this plan's lazy state
        assert plan.onehot_nbytes > 1024
        batched = backends.execute_batched(a, plan)
        assert plan._onehot is None  # fallback skipped the indicator build
        assert np.array_equal(plan.execute(a, backend="fast"), batched)


class TestSaturationAcrossBackends:
    """The documented FP16 overflow edge, for every registered backend.

    ``|A| > 65504 / 1039 ~ 63`` saturates transformed products to inf,
    so every backend that routes through the transformed-weight
    datapath must go non-finite; backends that skip the transform
    (``reference``) must stay finite.
    """

    @pytest.mark.parametrize("name", sorted(backend_names()))
    def test_large_activations(self, name):
        _, qm = _setup()
        plan = plan_gemm(qm)
        out = plan.execute(np.full((1, 32), 70.0), backend=name)
        if get_backend(name).transformed:
            assert not np.all(np.isfinite(out))
        else:
            assert np.all(np.isfinite(out))

    @pytest.mark.parametrize("name", sorted(backend_names()))
    def test_safe_range_stays_finite(self, name):
        _, qm = _setup()
        plan = plan_gemm(qm)
        out = plan.execute(np.full((1, 32), 60.0), backend=name)
        assert np.all(np.isfinite(out))

    def test_saturating_input_identical_fast_vs_batched(self):
        # The batched backend's saturation fallback must stay bit-exact,
        # NaN/inf placement included.
        rng = np.random.default_rng(7)
        a = rng.normal(size=(3, 32)) * 40.0  # straddles the ~63 edge
        _, qm = _setup()
        plan = plan_gemm(qm)
        fast = plan.execute(a, backend="fast")
        batched = plan.execute(a, backend="batched")
        assert np.array_equal(np.isnan(fast), np.isnan(batched))
        mask = ~np.isnan(fast)
        assert np.array_equal(fast[mask], batched[mask])

    def test_saturating_input_identical_bitexact_vs_fast(self):
        # The vectorized datapath validator saturates lane products to
        # infinity exactly where the fast path and scalar oracle do.
        rng = np.random.default_rng(7)
        a = rng.normal(size=(3, 32)) * 40.0
        _, qm = _setup()
        plan = plan_gemm(qm)
        fast = plan.execute(a, backend="fast")
        with np.errstate(invalid="ignore"):
            bitexact = plan.execute(a, backend="bitexact")
            scalar = plan.execute(a, backend="bitexact-scalar")
        for other in (bitexact, scalar):
            assert np.array_equal(np.isnan(fast), np.isnan(other))
            mask = ~np.isnan(fast)
            assert np.array_equal(fast[mask], other[mask])


class TestDecoderIntegration:
    def test_decoder_caches_one_plan_per_matrix(self):
        from repro.llm.transformer import (
            Decoder,
            TransformerConfig,
            init_weights,
            quantize_weights,
        )

        config = TransformerConfig(vocab=32, d_model=32, n_heads=2, n_layers=1, d_ffn=64)
        weights = init_weights(config, seed=0)
        quantized = quantize_weights(weights, bits=4)
        decoder = Decoder(config, weights, quantized)
        assert set(decoder.plans) == set(quantized)
        for name, plan in decoder.plans.items():
            assert plan is plan_gemm(quantized[name])

    def test_decoder_backends_bit_identical(self):
        from repro.llm.transformer import (
            Decoder,
            TransformerConfig,
            init_weights,
            quantize_weights,
        )

        config = TransformerConfig(vocab=32, d_model=32, n_heads=2, n_layers=1, d_ffn=64)
        weights = init_weights(config, seed=0)
        quantized = quantize_weights(weights, bits=4)
        tokens = np.arange(8)
        fast = Decoder(config, weights, quantized, backend="fast").forward(tokens)
        batched = Decoder(config, weights, quantized, backend="batched").forward(tokens)
        assert np.array_equal(fast, batched)


class TestHyperGemmDispatch:
    def test_mode_batched_via_public_api(self):
        a, qm = _setup()
        assert np.array_equal(
            hyper_gemm(a, qm, mode="batched"), hyper_gemm(a, qm, mode="fast")
        )

    def test_mode_reference_via_public_api(self):
        a, qm = _setup()
        assert np.array_equal(
            hyper_gemm(a, qm, mode="reference"), dequant_reference(a, qm)
        )

    def test_repeated_calls_reuse_plan(self):
        a, qm = _setup()
        hyper_gemm(a, qm)
        plan = plan_gemm(qm)
        hyper_gemm(a, qm, mode="batched")
        assert plan_gemm(qm) is plan
