"""Cross-layer token identity: every serving path, one token stream.

The repo-wide contract, asserted in one place: for the same prompts,
sampling params and seeds, every path through the stack emits the
same tokens —

* ``InferenceSession.generate`` (the single-sequence reference),
* ``Scheduler`` replay (continuous batching),
* chunked prefill (``prefill_chunk``),
* the radix prefix cache (``prefix_cache``),
* speculative decoding (``speculate=(draft, k)``),
* tensor-parallel GEMM sharding (``repro.serve.shard.tensor_shard``),
* and any stack of those features.

Batching, chunking, caching, speculation and sharding are *scheduling*
(or *placement*) decisions; none of them may change a single emitted
token.
"""

import numpy as np
import pytest

from repro.llm.transformer import TransformerConfig, init_weights
from repro.model import InferenceSession, parse_policy, quantize_model
from repro.serve import (
    AdversarialDraft,
    BatchedSession,
    BigramDraft,
    RadixPrefixCache,
    Request,
    Scheduler,
    SessionDraft,
    SpeculativeSession,
    tensor_shard,
)

#: Scheduler configurations under test, as keyword-builder tuples:
#: (needs_prefix_cache, prefill_chunk, speculate_draft_name, spec_k,
#: tensor_shard_workers — 0 = unsharded).
PATHS = {
    "scheduler": (False, None, None, 0, 0),
    "chunked-prefill": (False, 6, None, 0, 0),
    "prefix-cache": (True, 6, None, 0, 0),
    "speculative-bigram": (False, None, "bigram", 4, 0),
    "speculative-int2": (False, None, "int2", 2, 0),
    "speculative-adversarial": (False, None, "adversarial", 3, 0),
    "tensor-shard": (False, None, None, 0, 2),
    "everything-on": (True, 6, "bigram", 4, 0),
    "everything-on-sharded": (True, 6, "bigram", 4, 2),
}


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    qmodel = quantize_model(
        weights, parse_policy("*=int4@g[8,4]"), config=config
    )
    return config, weights, qmodel


@pytest.fixture(scope="module")
def requests(setup):
    """A mixed workload: greedy + top-k, eos + length, shared prefixes."""
    config, _, _ = setup
    rng = np.random.default_rng(17)
    shared = rng.integers(0, config.vocab, size=10)
    out = []
    for i in range(8):
        suffix = rng.integers(0, config.vocab, size=3 + i)
        prompt = (
            np.concatenate([shared, suffix]) if i % 2 == 0 else suffix
        )
        out.append(
            Request(
                prompt=prompt,
                max_new=4 + i,
                top_k=4 if i % 3 == 2 else None,
                temperature=0.8 if i % 3 == 2 else 1.0,
                seed=100 + i,
                eos_token=9 if i % 2 == 0 else None,
            )
        )
    return out


def make_draft(name, setup):
    config, weights, qmodel = setup
    if name == "bigram":
        session = BatchedSession(qmodel, backend="fast", max_slots=1)
        return BigramDraft.distill(session.decoder)
    if name == "int2":
        low = quantize_model(
            weights, parse_policy("*=int2@g[8,4]"), config=config
        )
        return SessionDraft(low, backend="fast", max_slots=4)
    if name == "adversarial":
        return AdversarialDraft(
            SessionDraft(qmodel, backend="fast", max_slots=4), config.vocab
        )
    raise AssertionError(name)


def reference_streams(qmodel, requests, backend="fast"):
    """Per-request (tokens, finish_reason) via InferenceSession."""
    out = []
    for request in requests:
        result = InferenceSession(qmodel, backend=backend).generate(
            request.prompt,
            request.max_new,
            top_k=request.top_k,
            temperature=request.temperature,
            seed=request.seed,
        )
        new = list(map(int, result.tokens[request.prompt.shape[0]:]))
        finish = "length"
        if request.eos_token is not None and request.eos_token in new:
            new = new[: new.index(request.eos_token) + 1]
            finish = "eos"
        out.append((list(map(int, request.prompt)) + new, finish))
    return out


def scheduler_streams(setup, requests, path, backend="fast"):
    config, _, qmodel = setup
    with_cache, chunk, draft_name, k, shard_workers = PATHS[path]
    session = BatchedSession(
        qmodel,
        backend=backend,
        max_slots=4,
        prefix_cache=RadixPrefixCache(4 << 20) if with_cache else None,
    )
    speculate = (
        (make_draft(draft_name, setup), k) if draft_name is not None else None
    )
    scheduler = Scheduler(
        session, max_batch=4, prefill_chunk=chunk, speculate=speculate
    )
    shard = tensor_shard(session, shard_workers) if shard_workers else None
    try:
        results = scheduler.run(requests)
    finally:
        if shard is not None:
            shard.close()
    return [(list(map(int, r.tokens)), r.finish_reason) for r in results]


class TestTokenIdentity:
    @pytest.mark.parametrize("path", sorted(PATHS))
    def test_path_matches_reference(self, setup, requests, path):
        _, _, qmodel = setup
        expect = reference_streams(qmodel, requests)
        got = scheduler_streams(setup, requests, path)
        for request_index, (a, b) in enumerate(zip(expect, got, strict=False)):
            assert a == b, (path, request_index)

    @pytest.mark.parametrize("backend", ("fast", "batched"))
    def test_backends_agree_on_the_full_stack(self, setup, requests, backend):
        """The everything-on path is identical per backend too."""
        _, _, qmodel = setup
        expect = reference_streams(qmodel, requests, backend=backend)
        got = scheduler_streams(
            setup, requests, "everything-on", backend=backend
        )
        assert got == expect

    @pytest.mark.parametrize("backend", ("fast", "batched", "bitexact"))
    def test_tensor_shard_matches_reference(self, setup, requests, backend):
        """Column sharding is bit-identical on every backend.

        Each backend computes output columns independently, so the
        rank-ordered gather of per-worker partial products must
        reproduce the single-process stream exactly — including on the
        ``bitexact`` validator backend.
        """
        _, _, qmodel = setup
        expect = reference_streams(qmodel, requests, backend=backend)
        got = scheduler_streams(
            setup, requests, "tensor-shard", backend=backend
        )
        assert got == expect

    def test_speculative_session_matches_generate(self, setup, requests):
        """The single-sequence speculative API joins the same matrix."""
        config, _, qmodel = setup
        draft = make_draft("bigram", setup)
        session = SpeculativeSession(qmodel, draft, 4)
        greedy = [r for r in requests if r.top_k is None]
        expect = reference_streams(qmodel, greedy)
        for request, (tokens, finish) in zip(greedy, expect, strict=False):
            result = session.generate(
                request.prompt, request.max_new, eos_token=request.eos_token
            )
            assert list(map(int, result.tokens)) == tokens
            assert result.finish_reason == finish

    def test_paths_agree_pairwise(self, setup, requests):
        """Belt and braces: all scheduler paths emit one stream set."""
        streams = {
            path: scheduler_streams(setup, requests, path)
            for path in sorted(PATHS)
        }
        baseline = streams.pop("scheduler")
        for path, got in streams.items():
            assert got == baseline, path
