"""Tests for RTN quantization (repro.quant.rtn)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.quant.groups import G128, GroupSpec
from repro.quant.rtn import RtnQuantizer, quantize_rtn


def _weights(k=64, n=16, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(scale=scale, size=(k, n))


class TestBasics:
    def test_codes_within_range_asymmetric(self):
        qm = quantize_rtn(_weights(), 4, GroupSpec(16, 4))
        assert qm.codes.min() >= 0
        assert qm.codes.max() <= 15

    def test_codes_within_range_symmetric(self):
        qm = quantize_rtn(_weights(), 4, GroupSpec(16, 4), symmetric=True)
        assert qm.codes.min() >= -8
        assert qm.codes.max() <= 7

    def test_rejects_unsupported_bits(self):
        with pytest.raises(QuantizationError):
            quantize_rtn(_weights(), 5, GroupSpec(16))

    def test_rejects_non_2d(self):
        with pytest.raises(QuantizationError):
            quantize_rtn(np.zeros(8), 4, GroupSpec(4))

    def test_rejects_ragged_group(self):
        with pytest.raises(QuantizationError):
            quantize_rtn(_weights(60, 16), 4, GroupSpec(16))

    def test_scales_shape_matches_grid(self):
        qm = quantize_rtn(_weights(64, 16), 4, GroupSpec(16, 4))
        assert qm.scales.shape == (4, 4)
        assert qm.zeros.shape == (4, 4)

    def test_int2_supported(self):
        qm = quantize_rtn(_weights(), 2, GroupSpec(16, 4))
        assert qm.codes.max() <= 3


class TestReconstruction:
    def test_error_bounded_by_half_scale(self):
        weights = _weights()
        qm = quantize_rtn(weights, 4, GroupSpec(16, 4))
        err = np.abs(weights - qm.dequantize())
        bound = qm.expand_scales() * 0.5 + 1e-12
        assert np.all(err <= bound)

    def test_zero_weight_is_exact_asymmetric(self):
        weights = _weights()
        weights[3, 3] = 0.0
        qm = quantize_rtn(weights, 4, GroupSpec(16, 4))
        assert qm.dequantize()[3, 3] == pytest.approx(0.0, abs=1e-12)

    def test_extremes_reconstruct_closely(self):
        weights = _weights()
        qm = quantize_rtn(weights, 4, GroupSpec(16, 4))
        recon = qm.dequantize()
        idx = np.unravel_index(np.argmax(weights), weights.shape)
        assert recon[idx] == pytest.approx(weights[idx], rel=0.2, abs=0.1)

    def test_constant_matrix_handled(self):
        weights = np.zeros((16, 8))
        qm = quantize_rtn(weights, 4, GroupSpec(16, 8))
        assert np.allclose(qm.dequantize(), 0.0)

    def test_finer_groups_reduce_error(self):
        weights = _weights(256, 16, scale=2.0)
        coarse = quantize_rtn(weights, 4, GroupSpec(256, 16))
        fine = quantize_rtn(weights, 4, GroupSpec(16, 1))
        err_coarse = np.mean((weights - coarse.dequantize()) ** 2)
        err_fine = np.mean((weights - fine.dequantize()) ** 2)
        assert err_fine < err_coarse

    def test_more_bits_reduce_error(self):
        weights = _weights(128, 16)
        spec = GroupSpec(32, 4)
        errs = []
        for bits in (2, 4, 8):
            qm = quantize_rtn(weights, bits, spec)
            errs.append(np.mean((weights - qm.dequantize()) ** 2))
        assert errs[0] > errs[1] > errs[2]

    @given(
        arrays(
            np.float64,
            (32, 8),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_error_bound_property(self, weights):
        qm = quantize_rtn(weights, 4, GroupSpec(8, 4))
        err = np.abs(weights - qm.dequantize())
        assert np.all(err <= qm.expand_scales() * 0.5 + 1e-9)


class TestSignedCodes:
    def test_asymmetric_shifts_by_rebias(self):
        qm = quantize_rtn(_weights(), 4, GroupSpec(16, 4))
        signed = qm.signed_codes()
        assert np.array_equal(signed, qm.codes - 8)
        assert signed.min() >= -8
        assert signed.max() <= 7

    def test_symmetric_passthrough(self):
        qm = quantize_rtn(_weights(), 4, GroupSpec(16, 4), symmetric=True)
        assert np.array_equal(qm.signed_codes(), qm.codes)

    def test_signed_codes_do_not_alias_storage(self):
        qm = quantize_rtn(_weights(), 4, GroupSpec(16, 4), symmetric=True)
        signed = qm.signed_codes()
        signed[0, 0] = 99
        assert qm.codes[0, 0] != 99


class TestMetadata:
    def test_qmin_qmax(self):
        asym = quantize_rtn(_weights(), 4, GroupSpec(16, 4))
        assert (asym.qmin, asym.qmax) == (0, 15)
        sym = quantize_rtn(_weights(), 4, GroupSpec(16, 4), symmetric=True)
        assert (sym.qmin, sym.qmax) == (-8, 7)

    def test_dims(self):
        qm = quantize_rtn(_weights(64, 16), 4, GroupSpec(16, 4))
        assert (qm.k_dim, qm.n_dim) == (64, 16)

    def test_storage_bits_accounts_for_metadata(self):
        qm = quantize_rtn(_weights(128, 16), 4, G128)
        n_groups = 16
        expected = 128 * 16 * 4 + n_groups * 16 + n_groups * 4
        assert qm.storage_bits() == expected

    def test_storage_smaller_than_fp16(self):
        qm = quantize_rtn(_weights(128, 16), 4, G128)
        assert qm.storage_bits() < 128 * 16 * 16

    def test_expand_scales_shape(self):
        qm = quantize_rtn(_weights(64, 16), 4, GroupSpec(16, 4))
        assert qm.expand_scales().shape == (64, 16)
        assert qm.expand_zeros().shape == (64, 16)


class TestQuantizerCallable:
    def test_call_matches_function(self):
        weights = _weights()
        q = RtnQuantizer(bits=4, group=GroupSpec(16, 4))
        a = q(weights)
        b = quantize_rtn(weights, 4, GroupSpec(16, 4))
        assert np.array_equal(a.codes, b.codes)

    def test_default_group_is_g128(self):
        assert RtnQuantizer().group == GroupSpec(128, 1)
