"""Tests for the functional hyper-asymmetric GEMM (repro.core.gemm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gemm import (
    dequant_reference,
    hyper_gemm,
    pack_for_flow,
    unpack_roundtrip,
)
from repro.errors import QuantizationError
from repro.quant.groups import GroupSpec
from repro.quant.packing import PackDim
from repro.quant.rtn import quantize_rtn


def _setup(m=4, k=32, n=16, bits=4, group=None, seed=0, symmetric=False):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    w = rng.normal(size=(k, n))
    spec = group if group is not None else GroupSpec(8, 4)
    qm = quantize_rtn(w, bits=bits, group=spec, symmetric=symmetric)
    return a, w, qm


def _datapath_envelope(a, qm):
    """Elementwise bound on the PacQ-vs-dequant deviation.

    Each transformed product rounds at magnitude ``<= 2048 * |a|``, so
    its error is at most ``|a| * 2**-11 * 2048 = |a|``; errors scale by
    the group scale and accumulate over k (see the gemm.py numerics
    note).  The bound is loose by design — it documents the mechanism.
    """
    a16 = np.abs(a.astype(np.float16).astype(np.float64))
    return a16 @ qm.expand_scales() + 1e-9


class TestAgainstDequantReference:
    @pytest.mark.parametrize("mode", ["fast", "batched"])
    @pytest.mark.parametrize("bits", [4, 2])
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_fast_mode_matches_reference(self, bits, symmetric, mode):
        a, _, qm = _setup(bits=bits, symmetric=symmetric)
        ours = hyper_gemm(a, qm, mode=mode)
        ref = dequant_reference(a, qm)
        # Same math up to the transformed-product rounding envelope.
        assert np.all(np.abs(ours - ref) <= _datapath_envelope(a, qm))
        rel_fro = np.linalg.norm(ours - ref) / np.linalg.norm(ref)
        assert rel_fro < (0.15 if bits == 4 else 0.55)

    def test_quantized_gemm_close_to_full_precision(self):
        a, w, qm = _setup(k=64, n=16, group=GroupSpec(16, 4))
        ours = hyper_gemm(a, qm)
        exact = a.astype(np.float16).astype(np.float64) @ w
        err = np.abs(ours - exact)
        assert err.mean() < 1.0  # 4-bit weights + datapath rounding

    @pytest.mark.parametrize(
        "group", [GroupSpec(32, 1), GroupSpec(8, 8), GroupSpec(16, 2)]
    )
    def test_group_shapes_all_work(self, group):
        a, _, qm = _setup(group=group, n=16)
        ours = hyper_gemm(a, qm)
        ref = dequant_reference(a, qm)
        assert np.all(np.abs(ours - ref) <= _datapath_envelope(a, qm))


class TestBitexactMode:
    @pytest.mark.parametrize("mode", ["fast", "batched"])
    def test_fast_and_bitexact_agree(self, mode):
        a, _, qm = _setup(m=2, k=16, n=8, group=GroupSpec(8, 4))
        fast = hyper_gemm(a, qm, mode=mode)
        exact = hyper_gemm(a, qm, mode="bitexact")
        assert np.allclose(fast, exact, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("mode", ["fast", "batched"])
    def test_fast_and_bitexact_agree_int2(self, mode):
        a, _, qm = _setup(m=2, k=16, n=8, bits=2, group=GroupSpec(8, 4))
        fast = hyper_gemm(a, qm, mode=mode)
        exact = hyper_gemm(a, qm, mode="bitexact")
        assert np.allclose(fast, exact, rtol=1e-12, atol=1e-12)

    def test_batched_bit_identical_with_fast_on_suite_matrices(self):
        for bits in (4, 2):
            for symmetric in (False, True):
                a, _, qm = _setup(bits=bits, symmetric=symmetric)
                assert np.array_equal(
                    hyper_gemm(a, qm, mode="fast"),
                    hyper_gemm(a, qm, mode="batched"),
                )

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_agreement_property(self, seed):
        a, _, qm = _setup(m=1, k=8, n=8, group=GroupSpec(8, 4), seed=seed)
        fast = hyper_gemm(a, qm, mode="fast")
        exact = hyper_gemm(a, qm, mode="bitexact")
        assert np.allclose(fast, exact, rtol=1e-12, atol=1e-12)


class TestValidation:
    def test_rejects_int8(self):
        a, w, _ = _setup()
        qm = quantize_rtn(w, bits=8, group=GroupSpec(8, 4))
        with pytest.raises(QuantizationError):
            hyper_gemm(a, qm)

    def test_rejects_shape_mismatch(self):
        a, _, qm = _setup()
        with pytest.raises(QuantizationError):
            hyper_gemm(a[:, :-1], qm)

    def test_rejects_unknown_mode(self):
        a, _, qm = _setup()
        with pytest.raises(QuantizationError):
            hyper_gemm(a, qm, mode="magic")

    def test_rejects_1d_activations(self):
        _, _, qm = _setup()
        with pytest.raises(QuantizationError):
            hyper_gemm(np.zeros(32), qm)


class TestPacking:
    def test_pack_for_flow_n_direction(self):
        _, _, qm = _setup()
        packed = pack_for_flow(qm, along_n=True)
        assert packed.spec.dim is PackDim.N
        assert packed.words.shape == (32, 4)

    def test_pack_for_flow_k_direction(self):
        _, _, qm = _setup()
        packed = pack_for_flow(qm, along_n=False)
        assert packed.spec.dim is PackDim.K

    def test_unpack_roundtrip_identity(self):
        _, _, qm = _setup()
        assert np.array_equal(unpack_roundtrip(qm, True), qm.signed_codes())
        assert np.array_equal(unpack_roundtrip(qm, False), qm.signed_codes())


class TestNumericalProperties:
    def test_linear_in_activations(self):
        a, _, qm = _setup()
        doubled = hyper_gemm(2 * a, qm)
        single = hyper_gemm(a, qm)
        assert np.allclose(doubled, 2 * single, rtol=2e-3, atol=2e-2)

    def test_zero_activations_give_zero(self):
        _, _, qm = _setup()
        out = hyper_gemm(np.zeros((3, 32)), qm)
        assert np.allclose(out, 0.0)

    def test_output_shape(self):
        a, _, qm = _setup(m=5, n=16)
        assert hyper_gemm(a, qm).shape == (5, 16)


class TestDatapathSaturation:
    """The transformed-product FP16 overflow edge (gemm.py numerics note).

    All-backend coverage lives in tests/test_engine.py
    (TestSaturationAcrossBackends); here the edge is pinned through the
    public ``hyper_gemm`` wrapper.
    """

    @pytest.mark.parametrize("mode", ["fast", "batched", "bitexact"])
    def test_large_activations_saturate_transformed_products(self, mode):
        _, _, qm = _setup()
        a = np.full((1, 32), 70.0)  # 70 * 1039 > 65504: products -> inf
        out = hyper_gemm(a, qm, mode=mode)
        assert not np.all(np.isfinite(out))

    @pytest.mark.parametrize("mode", ["fast", "batched", "bitexact"])
    def test_safe_range_stays_finite(self, mode):
        _, _, qm = _setup()
        a = np.full((1, 32), 60.0)  # inside the |A| < ~63 envelope
        out = hyper_gemm(a, qm, mode=mode)
        assert np.all(np.isfinite(out))

    def test_dequant_baseline_handles_large_activations(self):
        _, _, qm = _setup()
        a = np.full((1, 32), 70.0)
        ref = dequant_reference(a, qm)
        assert np.all(np.isfinite(ref))
