"""Tests for the NumPy decoder transformer (repro.llm.transformer)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.transformer import (
    Decoder,
    TransformerConfig,
    gemm_shapes,
    init_weights,
    quantize_weights,
)
from repro.quant.groups import GroupSpec


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64)
    weights = init_weights(config, seed=1)
    tokens = np.random.default_rng(0).integers(0, config.vocab, size=24)
    return config, weights, tokens


class TestConfig:
    def test_d_head(self):
        assert TransformerConfig(d_model=128, n_heads=4).d_head == 32

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigError):
            TransformerConfig(d_model=100, n_heads=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            TransformerConfig(n_layers=0)


class TestForward:
    def test_logits_shape(self, setup):
        config, weights, tokens = setup
        logits = Decoder(config, weights).forward(tokens)
        assert logits.shape == (tokens.shape[0], config.vocab)

    def test_deterministic(self, setup):
        config, weights, tokens = setup
        a = Decoder(config, weights).forward(tokens)
        b = Decoder(config, weights).forward(tokens)
        assert np.array_equal(a, b)

    def test_causality(self, setup):
        # Changing a later token must not affect earlier logits.
        config, weights, tokens = setup
        base = Decoder(config, weights).forward(tokens)
        mutated = tokens.copy()
        mutated[-1] = (mutated[-1] + 1) % config.vocab
        changed = Decoder(config, weights).forward(mutated)
        assert np.allclose(base[:-1], changed[:-1])
        assert not np.allclose(base[-1], changed[-1])

    def test_rejects_2d_tokens(self, setup):
        config, weights, _ = setup
        with pytest.raises(ConfigError):
            Decoder(config, weights).forward(np.zeros((2, 3), dtype=int))

    def test_rejects_overlong_sequence(self, setup):
        config, weights, _ = setup
        too_long = np.zeros(config.max_seq + 1, dtype=int)
        with pytest.raises(ConfigError):
            Decoder(config, weights).forward(too_long)

    def test_perplexity_positive_finite(self, setup):
        config, weights, tokens = setup
        ppl = Decoder(config, weights).perplexity(tokens)
        assert np.isfinite(ppl) and ppl > 1.0


class TestQuantizedForward:
    def test_quantized_logits_drift_bounded(self, setup):
        config, weights, tokens = setup
        base = Decoder(config, weights).forward(tokens)
        q = quantize_weights(weights, bits=4, group=GroupSpec(8, 4))
        quant = Decoder(config, weights, q).forward(tokens)
        drift = np.linalg.norm(quant - base) / np.linalg.norm(base)
        assert 0 < drift < 0.5

    def test_int2_drifts_more_than_int4(self, setup):
        config, weights, tokens = setup
        base = Decoder(config, weights).forward(tokens)
        drifts = {}
        for bits in (4, 2):
            q = quantize_weights(weights, bits=bits, group=GroupSpec(8, 4))
            out = Decoder(config, weights, q).forward(tokens)
            drifts[bits] = np.linalg.norm(out - base)
        assert drifts[2] > drifts[4]

    def test_quantizes_every_linear(self, setup):
        config, weights, _ = setup
        q = quantize_weights(weights, bits=4)
        assert len(q) == 7 * config.n_layers

    def test_partial_quantization_supported(self, setup):
        config, weights, tokens = setup
        q = quantize_weights(weights, bits=4, group=GroupSpec(8, 4))
        only_ffn = {k: v for k, v in q.items() if "w_up" in k}
        out = Decoder(config, weights, only_ffn).forward(tokens)
        assert np.all(np.isfinite(out))

    def test_group_spec_clipped_to_layer_dims(self, setup):
        _, weights, _ = setup
        q = quantize_weights(weights, bits=4, group=GroupSpec(4096, 4096))
        for qm in q.values():
            assert qm.group.k <= qm.k_dim
            assert qm.group.n <= qm.n_dim


class TestShapes:
    def test_gemm_shapes_match_paper_convention(self):
        config = TransformerConfig(d_model=128, d_ffn=256)
        shapes = dict(gemm_shapes(config, batch_tokens=16))
        assert shapes["wq"] == (16, 128, 128)
        assert shapes["w_up"] == (16, 256, 128)
        assert shapes["w_down"] == (16, 128, 256)

    def test_num_parameters(self, setup):
        config, weights, _ = setup
        expected_block = 4 * 32 * 32 + 2 * 32 * 64 + 64 * 32
        expected = (
            64 * 32  # embedding
            + config.n_layers * expected_block
            + config.n_layers * 2 * 32  # norms
            + 32  # final norm
        )
        assert weights.num_parameters() == expected
