"""Tests for the bit-level FP16 multiplier (repro.fp.mul)."""

import math

import numpy as np
from hypothesis import given, settings

from repro.fp import fp16
from repro.fp.mul import fp16_mul, fp16_mul_float, fp16_mul_trace
from tests.conftest import finite_fp16_bits, fp16_bits, np_fp16


def _reference(a_bits: int, b_bits: int) -> int:
    with np.errstate(all="ignore"):
        product = np.float16(np_fp16(a_bits) * np_fp16(b_bits))
    return int(product.view(np.uint16))


def _assert_matches_numpy(a_bits: int, b_bits: int) -> None:
    got = fp16_mul(a_bits, b_bits)
    ref = _reference(a_bits, b_bits)
    if fp16.is_nan(ref):
        assert fp16.is_nan(got)
    else:
        assert got == ref, f"{a_bits:04x}*{b_bits:04x}: got {got:04x} want {ref:04x}"


class TestAgainstNumpy:
    @given(fp16_bits(), fp16_bits())
    @settings(max_examples=2000)
    def test_random_pairs(self, a, b):
        _assert_matches_numpy(a, b)

    def test_structured_grid(self):
        # Stride through both operand spaces coprime to field sizes.
        for a in range(0, 0x10000, 509):
            for b in range(0, 0x10000, 1021):
                _assert_matches_numpy(a, b)

    def test_transform_range_products(self):
        # The exact products PacQ produces: x * (1024 + y).
        for a in (0x3C00, 0x3555, 0xC880, 0x0001, 0x7BFF):
            for y in range(16):
                _assert_matches_numpy(a, fp16.from_int_exact(1024 + y))


class TestSpecials:
    def test_nan_propagates(self):
        assert fp16.is_nan(fp16_mul(fp16.NAN, 0x3C00))
        assert fp16.is_nan(fp16_mul(0x3C00, fp16.NAN))

    def test_inf_times_zero_is_nan(self):
        assert fp16.is_nan(fp16_mul(fp16.POS_INF, fp16.POS_ZERO))
        assert fp16.is_nan(fp16_mul(fp16.NEG_ZERO, fp16.NEG_INF))

    def test_inf_times_finite(self):
        assert fp16_mul(fp16.POS_INF, 0x3C00) == fp16.POS_INF
        assert fp16_mul(fp16.POS_INF, 0xBC00) == fp16.NEG_INF

    def test_signed_zero_result(self):
        assert fp16_mul(0x3C00, fp16.NEG_ZERO) == fp16.NEG_ZERO
        assert fp16_mul(0xBC00, fp16.NEG_ZERO) == fp16.POS_ZERO

    def test_overflow_to_inf(self):
        big = fp16.from_float(60000.0)
        assert fp16_mul(big, big) == fp16.POS_INF

    def test_underflow_to_zero(self):
        tiny = fp16.from_float(2.0**-24)
        assert fp16_mul(tiny, tiny) == fp16.POS_ZERO


class TestSubnormals:
    def test_subnormal_times_normal(self):
        _assert_matches_numpy(0x0001, 0x4000)  # 2**-24 * 2

    def test_subnormal_inputs_renormalized(self):
        # 2**-24 * 2**10 = 2**-14, the smallest normal.
        result = fp16_mul(0x0001, fp16.from_float(1024.0))
        assert fp16.to_float(result) == 2.0**-14

    def test_product_lands_subnormal(self):
        _assert_matches_numpy(fp16.from_float(2.0**-10), fp16.from_float(2.0**-10))

    @given(finite_fp16_bits(), finite_fp16_bits())
    @settings(max_examples=800)
    def test_finite_pairs(self, a, b):
        _assert_matches_numpy(a, b)


class TestTrace:
    def test_sign_is_xor(self):
        assert fp16_mul_trace(0xBC00, 0xBC00).sign == 0
        assert fp16_mul_trace(0xBC00, 0x3C00).sign == 1

    def test_raw_product_of_ones(self):
        trace = fp16_mul_trace(0x3C00, 0x3C00)
        assert trace.raw_product == 1024 * 1024
        assert trace.normalize_shift == 0

    def test_normalize_shift_fires_for_large_mantissas(self):
        big_mantissa = fp16.combine(0, 15, 1023)  # ~1.999
        trace = fp16_mul_trace(big_mantissa, big_mantissa)
        assert trace.normalize_shift == 1

    def test_result_bits_consistent_with_public_api(self):
        trace = fp16_mul_trace(0x3555, 0x4240)
        assert trace.result_bits == fp16_mul(0x3555, 0x4240)


class TestFloatWrapper:
    def test_simple_product(self):
        assert fp16_mul_float(2.0, 3.0) == 6.0

    def test_rounding_applied(self):
        # 1/3 is inexact in FP16; result must equal numpy semantics.
        ref = float(np.float16(np.float16(1.0 / 3.0) * np.float16(3.0)))
        assert fp16_mul_float(1.0 / 3.0, 3.0) == ref

    def test_commutative(self):
        for a, b in ((1.5, -2.25), (0.1, 7.0), (1e-5, 3e3)):
            assert fp16_mul_float(a, b) == fp16_mul_float(b, a)


class TestAlgebraicProperties:
    @given(fp16_bits())
    def test_multiply_by_one_is_identity_for_finite(self, a):
        if fp16.is_nan(a):
            return
        assert fp16_mul(a, 0x3C00) == a

    @given(finite_fp16_bits(), finite_fp16_bits())
    @settings(max_examples=500)
    def test_commutativity(self, a, b):
        assert fp16_mul(a, b) == fp16_mul(b, a)

    @given(finite_fp16_bits())
    def test_multiply_by_two_is_exact_shift(self, a):
        result = fp16_mul(a, 0x4000)
        with np.errstate(all="ignore"):
            expected = float(np.float16(np.float16(2.0) * np_fp16(a)))
        assert fp16.to_float(result) == expected or (
            math.isinf(expected) and fp16.is_inf(result)
        )
