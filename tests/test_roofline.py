"""Tests for the roofline analysis (repro.core.roofline)."""

import pytest

from repro.core.arch import pacq, standard_dequant, volta_w16a16
from repro.core.roofline import (
    MachineRoofline,
    analyze,
    crossover_batch,
    dram_bytes,
    machine_for,
)
from repro.errors import ConfigError
from repro.simt.memoryhier import GemmShape


class TestMachine:
    def test_pacq_peak_scales_with_dup(self):
        base = machine_for(pacq(4, adder_tree_dup=1))
        doubled = machine_for(pacq(4, adder_tree_dup=2))
        assert doubled.macs_per_cycle == 2 * base.macs_per_cycle

    def test_pacq_peak_exceeds_baseline(self):
        assert (
            machine_for(pacq(4)).macs_per_cycle
            > machine_for(standard_dequant(4)).macs_per_cycle
        )

    def test_ridge_intensity(self):
        machine = MachineRoofline(macs_per_cycle=100, dram_bytes_per_cycle=10)
        assert machine.ridge_intensity == 10.0

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ConfigError):
            MachineRoofline(0, 1)


class TestDramBytes:
    def test_int4_weights_quartered(self):
        shape = GemmShape(16, 256, 256)
        fp16 = dram_bytes(shape, 16)
        int4 = dram_bytes(shape, 4)
        weight_fp16 = 256 * 256 * 2
        weight_int4 = 256 * 256 // 2
        assert fp16 - int4 == weight_fp16 - weight_int4


class TestAnalysis:
    def test_intensity_grows_with_batch(self):
        arch = pacq(4)
        thin = analyze(arch, GemmShape(1, 4096, 4096))
        thick = analyze(arch, GemmShape(64, 4096, 4096))
        assert thick.arithmetic_intensity > thin.arithmetic_intensity

    def test_single_batch_memory_bound(self):
        # The paper's motivation: single-batch generation is memory
        # bound, so weight-only quantization already helps there.
        point = analyze(pacq(4), GemmShape(1, 4096, 4096))
        assert not point.compute_bound

    def test_multi_batch_compute_bound(self):
        point = analyze(pacq(4), GemmShape(64, 4096, 4096))
        assert point.compute_bound

    def test_attainable_utilization_capped_at_one(self):
        point = analyze(pacq(4), GemmShape(256, 4096, 4096))
        assert point.attainable_utilization == 1.0

    def test_memory_bound_utilization_below_one(self):
        point = analyze(pacq(4), GemmShape(1, 4096, 4096))
        assert point.attainable_utilization < 1.0


class TestCrossover:
    def test_crossover_exists_for_llm_layers(self):
        batch = crossover_batch(pacq(4), 4096, 4096)
        assert batch is not None
        assert 1 <= batch <= 64

    def test_pacq_crossover_later_than_baseline(self):
        # Doubling compute throughput moves the ridge point right.
        ours = crossover_batch(pacq(4), 4096, 4096)
        base = crossover_batch(standard_dequant(4), 4096, 4096)
        assert ours >= base

    def test_fp16_weights_cross_later_than_int4(self):
        # FP16 weights move 4x the DRAM bytes: lower intensity,
        # later crossover.
        fp16 = crossover_batch(volta_w16a16(), 4096, 4096)
        int4 = crossover_batch(standard_dequant(4), 4096, 4096)
        assert fp16 >= int4

    def test_returns_none_when_always_memory_bound(self):
        machine = machine_for(pacq(4))
        del machine
        assert crossover_batch(pacq(4), 16, 16, max_batch=1) in (1, None)
