"""Tests for the AWQ- and GPTQ-style PTQ algorithms."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.algorithms import (
    awq_dequantize,
    awq_quantize,
    gptq_quantize,
)
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn


def _weights(k=64, n=16, seed=0):
    rng = np.random.default_rng(seed)
    scales = (1.0 + np.arange(n)) ** -0.4
    return rng.normal(size=(k, n)) * scales[None, :]


def _activation_scale(k=64, seed=1):
    # Heavy-tailed channel magnitudes: a few salient channels, as the
    # AWQ paper observes in LLM activations.
    rng = np.random.default_rng(seed)
    scale = np.abs(rng.standard_cauchy(k)) + 0.1
    return np.clip(scale, 0.1, 50.0)


class TestAwq:
    def test_never_worse_than_rtn_on_weighted_error(self):
        w = _weights()
        act = _activation_scale()
        spec = GroupSpec(16, 4)
        result = awq_quantize(w, act, bits=4, group=spec)
        rtn = quantize_rtn(w, bits=4, group=spec)
        importance = act / act.mean()
        err_awq = np.mean(((w - awq_dequantize(result)) * importance[:, None]) ** 2)
        err_rtn = np.mean(((w - rtn.dequantize()) * importance[:, None]) ** 2)
        assert err_awq <= err_rtn + 1e-15

    def test_uniform_activations_recover_rtn(self):
        w = _weights()
        act = np.ones(w.shape[0])
        result = awq_quantize(w, act, bits=4, group=GroupSpec(16, 4))
        rtn = quantize_rtn(w, bits=4, group=GroupSpec(16, 4))
        assert np.array_equal(result.quantized.codes, rtn.codes)

    def test_salient_channels_improve_when_activations_skewed(self):
        w = _weights(seed=3)
        act = np.ones(w.shape[0])
        act[:4] = 40.0  # four salient channels
        result = awq_quantize(w, act, bits=4, group=GroupSpec(16, 4))
        rtn = quantize_rtn(w, bits=4, group=GroupSpec(16, 4))
        salient_err_awq = np.abs(w[:4] - awq_dequantize(result)[:4]).mean()
        salient_err_rtn = np.abs(w[:4] - rtn.dequantize()[:4]).mean()
        assert salient_err_awq <= salient_err_rtn

    def test_alpha_in_unit_interval(self):
        result = awq_quantize(_weights(), _activation_scale(), bits=4,
                              group=GroupSpec(16, 4))
        assert 0.0 <= result.grid_alpha <= 1.0

    def test_channel_scales_positive(self):
        result = awq_quantize(_weights(), _activation_scale(), bits=4,
                              group=GroupSpec(16, 4))
        assert np.all(result.channel_scales > 0)

    def test_rejects_bad_activation_shape(self):
        with pytest.raises(QuantizationError):
            awq_quantize(_weights(), np.ones(3), bits=4)

    def test_rejects_nonpositive_activations(self):
        act = np.ones(64)
        act[0] = 0.0
        with pytest.raises(QuantizationError):
            awq_quantize(_weights(), act, bits=4)

    def test_rejects_non_2d_weights(self):
        with pytest.raises(QuantizationError):
            awq_quantize(np.zeros(8), np.ones(8), bits=4)


class TestGptq:
    def test_functional_error_improves_with_correlated_inputs(self):
        # With perfectly correlated input channels the propagated
        # rounding error cancels in the output, so GPTQ must beat RTN
        # on ||X W - X W_hat||.
        w = _weights(k=64, n=16, seed=5)
        spec = GroupSpec(64, 4)
        x = np.ones((32, 64)) * np.random.default_rng(0).normal(size=(32, 1))
        gptq = gptq_quantize(w, bits=4, group=spec)
        rtn = quantize_rtn(w, bits=4, group=spec)
        err_gptq = np.linalg.norm(x @ w - x @ gptq.dequantize())
        err_rtn = np.linalg.norm(x @ w - x @ rtn.dequantize())
        assert err_gptq < err_rtn

    def test_metadata_matches_rtn_layout(self):
        w = _weights()
        spec = GroupSpec(16, 4)
        gptq = gptq_quantize(w, bits=4, group=spec)
        rtn = quantize_rtn(w, bits=4, group=spec)
        assert np.array_equal(gptq.scales, rtn.scales)
        assert np.array_equal(gptq.zeros, rtn.zeros)
        assert gptq.group == rtn.group

    def test_codes_stay_in_range(self):
        gptq = gptq_quantize(_weights(), bits=4, group=GroupSpec(16, 4))
        assert gptq.codes.min() >= 0
        assert gptq.codes.max() <= 15

    def test_int2_supported(self):
        gptq = gptq_quantize(_weights(), bits=2, group=GroupSpec(16, 4))
        assert gptq.codes.max() <= 3

    def test_hessian_ordering_prioritizes_sensitive_rows(self):
        w = _weights(seed=7)
        diag = np.ones(64)
        diag[10] = 100.0  # row 10 is most sensitive: quantized first,
        # so its error is compensated downstream rather than absorbed.
        gptq = gptq_quantize(w, hessian_diag=diag, bits=4, group=GroupSpec(64, 4))
        rtn = quantize_rtn(w, bits=4, group=GroupSpec(64, 4))
        # Row 10 itself quantizes from the unperturbed residual.
        err_g = np.abs(w[10] - gptq.dequantize()[10]).mean()
        err_r = np.abs(w[10] - rtn.dequantize()[10]).mean()
        assert err_g == pytest.approx(err_r, abs=1e-12)

    def test_rejects_bad_hessian(self):
        with pytest.raises(QuantizationError):
            gptq_quantize(_weights(), hessian_diag=np.ones(3), bits=4)
        with pytest.raises(QuantizationError):
            gptq_quantize(_weights(), hessian_diag=-np.ones(64), bits=4)

    def test_rejects_non_2d(self):
        with pytest.raises(QuantizationError):
            gptq_quantize(np.zeros(8), bits=4)

    def test_result_packs_and_executes(self):
        # GPTQ output feeds the same downstream path as RTN.
        from repro.core.gemm import hyper_gemm

        w = _weights()
        gptq = gptq_quantize(w, bits=4, group=GroupSpec(16, 4))
        a = np.random.default_rng(1).normal(size=(4, 64))
        out = hyper_gemm(a, gptq)
        assert out.shape == (4, 16)
        assert np.all(np.isfinite(out))
