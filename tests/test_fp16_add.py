"""Tests for the bit-level FP16 adder (repro.fp.add)."""

import numpy as np
from hypothesis import given, settings

from repro.fp import fp16
from repro.fp.add import fp16_add, fp16_add_float, fp16_sum, fp16_tree_sum
from tests.conftest import finite_fp16_bits, fp16_bits, np_fp16


def _reference(a_bits: int, b_bits: int) -> int:
    with np.errstate(all="ignore"):
        total = np.float16(np_fp16(a_bits) + np_fp16(b_bits))
    return int(total.view(np.uint16))


def _assert_matches_numpy(a_bits: int, b_bits: int) -> None:
    got = fp16_add(a_bits, b_bits)
    ref = _reference(a_bits, b_bits)
    if fp16.is_nan(ref):
        assert fp16.is_nan(got)
    else:
        assert got == ref, f"{a_bits:04x}+{b_bits:04x}: got {got:04x} want {ref:04x}"


class TestAgainstNumpy:
    @given(fp16_bits(), fp16_bits())
    @settings(max_examples=2000)
    def test_random_pairs(self, a, b):
        _assert_matches_numpy(a, b)

    def test_structured_grid(self):
        for a in range(0, 0x10000, 523):
            for b in range(0, 0x10000, 1031):
                _assert_matches_numpy(a, b)

    def test_catastrophic_cancellation(self):
        a = fp16.from_float(1.0009765625)  # 1 + 2**-10
        b = fp16.from_float(-1.0)
        assert fp16.to_float(fp16_add(a, b)) == 2.0**-10

    def test_exact_cancellation_gives_positive_zero(self):
        a = fp16.from_float(1.5)
        b = fp16.from_float(-1.5)
        assert fp16_add(a, b) == fp16.POS_ZERO


class TestSpecials:
    def test_nan_propagates(self):
        assert fp16.is_nan(fp16_add(fp16.NAN, 0x3C00))

    def test_inf_plus_finite(self):
        assert fp16_add(fp16.POS_INF, 0x3C00) == fp16.POS_INF

    def test_opposite_infinities_are_nan(self):
        assert fp16.is_nan(fp16_add(fp16.POS_INF, fp16.NEG_INF))

    def test_same_infinities(self):
        assert fp16_add(fp16.NEG_INF, fp16.NEG_INF) == fp16.NEG_INF

    def test_negative_zeros_sum_to_negative_zero(self):
        assert fp16_add(fp16.NEG_ZERO, fp16.NEG_ZERO) == fp16.NEG_ZERO

    def test_mixed_zeros_sum_to_positive_zero(self):
        assert fp16_add(fp16.POS_ZERO, fp16.NEG_ZERO) == fp16.POS_ZERO

    def test_overflow_to_inf(self):
        big = fp16.from_float(60000.0)
        assert fp16_add(big, big) == fp16.POS_INF


class TestAccumulators:
    def test_serial_sum_of_ones(self):
        ones = [fp16.from_float(1.0)] * 8
        assert fp16.to_float(fp16_sum(ones)) == 8.0

    def test_empty_sum_is_zero(self):
        assert fp16_sum([]) == fp16.POS_ZERO
        assert fp16_tree_sum([]) == fp16.POS_ZERO

    def test_tree_sum_of_ones(self):
        ones = [fp16.from_float(1.0)] * 4
        assert fp16.to_float(fp16_tree_sum(ones)) == 4.0

    def test_tree_handles_odd_lengths(self):
        vals = [fp16.from_float(v) for v in (1.0, 2.0, 3.0)]
        assert fp16.to_float(fp16_tree_sum(vals)) == 6.0

    def test_tree_and_serial_can_differ(self):
        # Association order matters in FP16: build a case where the
        # serial order loses a small addend that the tree preserves.
        vals = [
            fp16.from_float(2048.0),
            fp16.from_float(-2048.0),
            fp16.from_float(1.0),
            fp16.from_float(1.0),
        ]
        assert fp16.to_float(fp16_tree_sum(vals)) == 2.0
        assert fp16.to_float(fp16_sum(vals)) == 2.0
        skewed = [
            fp16.from_float(2048.0),
            fp16.from_float(1.0),
            fp16.from_float(1.0),
            fp16.from_float(-2048.0),
        ]
        # Serial: (2048+1)=2048 (absorbed), +1 absorbed, -2048 -> 0.
        assert fp16.to_float(fp16_sum(skewed)) == 0.0
        # Tree: (2048+1) + (1-2048) = 2048 + -2047 = 1.0... rounded.
        assert fp16.to_float(fp16_tree_sum(skewed)) == 1.0

    @given(finite_fp16_bits(), finite_fp16_bits())
    @settings(max_examples=500)
    def test_commutativity(self, a, b):
        assert fp16_add(a, b) == fp16_add(b, a)

    @given(finite_fp16_bits())
    def test_zero_is_identity(self, a):
        assert fp16_add(a, fp16.POS_ZERO) == a or fp16.is_zero(a)


class TestFloatWrapper:
    def test_simple(self):
        assert fp16_add_float(1.5, 2.25) == 3.75

    def test_rounding(self):
        ref = float(np.float16(np.float16(0.1) + np.float16(0.2)))
        assert fp16_add_float(0.1, 0.2) == ref
