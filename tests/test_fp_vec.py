"""Vectorized kernel layer (repro.fp.vec) vs the scalar oracles.

The vec layer's contract is *bit-for-bit* equality with the scalar
bit-level models, so the codec is checked exhaustively over all 65,536
patterns (and the rounding midpoints between them), and the arithmetic
kernels over an adversarial edge-pattern cross product plus randomized
sweeps.
"""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.fp import fp16, vec
from repro.fp.add import fp16_add as scalar_add
from repro.fp.add import fp16_sum as scalar_sum
from repro.fp.add import fp16_tree_sum as scalar_tree_sum
from repro.fp.dotprod import dot_fp16, dot_fp16_batch, dot_fp32, dot_fp32_batch
from repro.fp.mul import fp16_mul as scalar_mul
from repro.multiplier.parallel import (
    lanes,
    parallel_fp_int_mul,
    parallel_fp_int_mul_batch,
    reference_products_batch,
)

#: Every 16-bit pattern.
ALL_BITS = np.arange(1 << 16, dtype=np.uint16)

#: Adversarial patterns: zeros, smallest/largest subnormals, smallest/
#: largest normals, one, near-overflow, specials, NaN payloads and a
#: few mid-range values — both signs.
EDGE_BITS = np.array(
    [
        0x0000, 0x8000,  # +/- 0
        0x0001, 0x8001,  # smallest subnormals
        0x03FF, 0x83FF,  # largest subnormals
        0x0400, 0x8400,  # smallest normals
        0x3C00, 0xBC00,  # +/- 1
        0x3BFF, 0x4001,  # around 1
        0x7BFF, 0xFBFF,  # largest finite
        0x7800, 0x6400,  # large powers of two
        0x7C00, 0xFC00,  # +/- inf
        0x7E00, 0x7C01, 0xFE00,  # NaNs (quiet, payload, negative)
        0x0401, 0x1000, 0x23FF, 0x5555, 0xAAAA,
    ],
    dtype=np.uint16,
)


def _scalar_bits(fn, *arrays):
    """Map a scalar bit-level function over aligned flat arrays."""
    flat = [np.asarray(a).ravel() for a in arrays]
    out = np.array(
        [fn(*(int(col[i]) for col in flat)) for i in range(flat[0].size)],
        dtype=np.uint16,
    )
    return out.reshape(np.asarray(arrays[0]).shape)


class TestCodecExhaustive:
    def test_split_all_patterns(self):
        sign, exponent, mantissa = vec.split(ALL_BITS)
        assert np.array_equal(sign, ALL_BITS >> 15)
        recombined = vec.combine(sign, exponent, mantissa)
        assert np.array_equal(recombined, ALL_BITS)
        s, e, m = fp16.split(0x7BFF)
        assert (sign[0x7BFF], exponent[0x7BFF], mantissa[0x7BFF]) == (s, e, m)

    def test_to_float_all_patterns(self):
        expected = np.array([fp16.to_float(int(b)) for b in ALL_BITS])
        got = vec.to_float(ALL_BITS)
        nan = np.isnan(expected)
        assert np.array_equal(nan, np.isnan(got))
        assert np.array_equal(expected[~nan], got[~nan])
        # Signed zeros decode with their sign.
        assert np.array_equal(np.signbit(expected[~nan]), np.signbit(got[~nan]))

    def test_from_float_roundtrips_all_finite_patterns(self):
        finite = ALL_BITS[vec.is_finite(ALL_BITS)]
        assert np.array_equal(vec.from_float(vec.to_float(finite)), finite)

    def test_from_float_all_rounding_midpoints(self):
        # The value exactly between every pair of adjacent finite
        # patterns must round to even, exactly as the scalar encoder.
        finite = np.sort(vec.to_float(ALL_BITS[vec.is_finite(ALL_BITS)]))
        midpoints = (finite[:-1] + finite[1:]) / 2.0
        expected = np.array(
            [fp16.from_float(float(v)) for v in midpoints], dtype=np.uint16
        )
        assert np.array_equal(vec.from_float(midpoints), expected)

    def test_from_float_perturbed_values(self):
        rng = np.random.default_rng(0)
        base = vec.to_float(ALL_BITS[vec.is_finite(ALL_BITS)])
        values = np.concatenate([
            base * (1 + 2.0 ** -12), base * (1 - 2.0 ** -12),
            np.nextafter(base, np.inf), np.nextafter(base, -np.inf),
            base * rng.uniform(0.5, 2.0, size=base.size),
        ])
        expected = np.array(
            [fp16.from_float(float(v)) for v in values], dtype=np.uint16
        )
        assert np.array_equal(vec.from_float(values), expected)

    def test_from_float_specials_overflow_underflow(self):
        values = np.array([
            np.nan, np.inf, -np.inf, 0.0, -0.0,
            65519.9, 65520.0, 65536.0, -65520.0, 1e308, -1e308,
            2.0 ** -24, 2.0 ** -25, 2.0 ** -25 * (1 + 1e-9), -(2.0 ** -25),
            2.0 ** -26, 1e-300, 5e-324, -5e-324,
        ])
        expected = np.array(
            [fp16.from_float(float(v)) for v in values], dtype=np.uint16
        )
        assert np.array_equal(vec.from_float(values), expected)

    def test_predicates_all_patterns(self):
        for vec_fn, scalar_fn in [
            (vec.is_nan, fp16.is_nan), (vec.is_inf, fp16.is_inf),
            (vec.is_zero, fp16.is_zero), (vec.is_subnormal, fp16.is_subnormal),
            (vec.is_finite, fp16.is_finite), (vec.is_normalized, fp16.is_normalized),
        ]:
            expected = np.array([scalar_fn(int(b)) for b in ALL_BITS])
            assert np.array_equal(vec_fn(ALL_BITS), expected), vec_fn.__name__

    def test_rejects_out_of_range_and_float_dtypes(self):
        with pytest.raises(EncodingError):
            vec.as_bits(np.array([0x10000]))
        with pytest.raises(EncodingError):
            vec.as_bits(np.array([-1]))
        with pytest.raises(EncodingError):
            vec.as_bits(np.array([1.5]))
        with pytest.raises(EncodingError):
            vec.combine(np.array([2]), np.array([0]), np.array([0]))


class TestScalarCodecAcceptsNumpyIntegers:
    """Satellite: fp16 entry points take numpy.integer without int()."""

    def test_split_and_to_float(self):
        assert fp16.split(np.uint16(0x3C00)) == (0, 15, 0)
        assert fp16.to_float(np.uint16(0x3C00)) == 1.0
        assert fp16.to_float(np.int64(0x7BFF)) == 65504.0

    def test_predicates_and_significand(self):
        assert fp16.is_nan(np.uint16(0x7E00))
        assert fp16.is_inf(np.int32(0x7C00))
        assert fp16.significand(np.uint16(0x3C00)) == 1024

    def test_combine_accepts_numpy_fields(self):
        bits = fp16.combine(np.uint8(1), np.int64(15), np.uint16(1))
        assert bits == 0xBC01 and isinstance(bits, int)

    def test_fp16_wrapper_normalizes_numpy_bits(self):
        wrapped = fp16.Fp16(np.uint16(0x3C00))
        assert wrapped.bits == 0x3C00 and isinstance(wrapped.bits, int)

    def test_still_rejects_non_integers(self):
        with pytest.raises(EncodingError):
            fp16.split(1.5)
        with pytest.raises(EncodingError):
            fp16.split(np.float16(1.0))
        with pytest.raises(EncodingError):
            fp16.split(0x10000)


class TestMulVsOracle:
    def test_edge_cross_product(self):
        a, b = np.meshgrid(EDGE_BITS, EDGE_BITS, indexing="ij")
        assert np.array_equal(vec.fp16_mul(a, b), _scalar_bits(scalar_mul, a, b))

    def test_randomized_patterns(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 16, size=4000).astype(np.uint16)
        b = rng.integers(0, 1 << 16, size=4000).astype(np.uint16)
        assert np.array_equal(vec.fp16_mul(a, b), _scalar_bits(scalar_mul, a, b))

    def test_subnormal_times_subnormal_flushes(self):
        out = vec.fp16_mul(np.uint16(0x0001), np.uint16(0x0001))
        assert out == 0x0000

    def test_broadcasting(self):
        a = EDGE_BITS[:, None]
        b = EDGE_BITS[None, :]
        assert vec.fp16_mul(a, b).shape == (EDGE_BITS.size, EDGE_BITS.size)


class TestAddVsOracle:
    def test_edge_cross_product(self):
        a, b = np.meshgrid(EDGE_BITS, EDGE_BITS, indexing="ij")
        assert np.array_equal(vec.fp16_add(a, b), _scalar_bits(scalar_add, a, b))

    def test_randomized_patterns(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 1 << 16, size=4000).astype(np.uint16)
        b = rng.integers(0, 1 << 16, size=4000).astype(np.uint16)
        assert np.array_equal(vec.fp16_add(a, b), _scalar_bits(scalar_add, a, b))

    def test_near_cancellation(self):
        # x + (-x +- 1 ulp): the subtraction path with maximal alignment.
        finite = ALL_BITS[vec.is_finite(ALL_BITS) & (ALL_BITS < 0x7C00)]
        rng = np.random.default_rng(3)
        x = rng.choice(finite, size=2000).astype(np.uint16)
        neg = (x ^ 0x8000).astype(np.uint16)
        for other in (neg, (neg + 1).astype(np.uint16)):
            keep = vec.is_finite(other)
            assert np.array_equal(
                vec.fp16_add(x[keep], other[keep]),
                _scalar_bits(scalar_add, x[keep], other[keep]),
            )

    def test_signed_zero_rules(self):
        assert vec.fp16_add(np.uint16(0x8000), np.uint16(0x8000)) == 0x8000
        assert vec.fp16_add(np.uint16(0x8000), np.uint16(0x0000)) == 0x0000
        assert vec.fp16_add(np.uint16(0x3C00), np.uint16(0xBC00)) == 0x0000


class TestReductionsVsOracle:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 7, 8, 13])
    def test_tree_sum_matches_scalar(self, length):
        rng = np.random.default_rng(length)
        batch = rng.choice(EDGE_BITS, size=(64, length)).astype(np.uint16)
        got = vec.fp16_tree_sum(batch, axis=-1)
        expected = np.array(
            [scalar_tree_sum([int(b) for b in row]) for row in batch],
            dtype=np.uint16,
        )
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("length", [1, 2, 5, 9])
    def test_left_to_right_sum_matches_scalar(self, length):
        rng = np.random.default_rng(20 + length)
        batch = rng.choice(EDGE_BITS, size=(32, length)).astype(np.uint16)
        got = vec.fp16_sum(batch, axis=-1)
        expected = np.array(
            [scalar_sum([int(b) for b in row]) for row in batch], dtype=np.uint16
        )
        assert np.array_equal(got, expected)

    def test_empty_axis_sums_to_positive_zero(self):
        empty = np.zeros((3, 0), dtype=np.uint16)
        assert np.array_equal(vec.fp16_tree_sum(empty), np.zeros(3, np.uint16))
        assert np.array_equal(vec.fp16_sum(empty), np.zeros(3, np.uint16))

    @pytest.mark.parametrize("length", [3, 4, 8, 11])
    def test_dot_fp16_batch_matches_scalar(self, length):
        rng = np.random.default_rng(30 + length)
        a = rng.integers(0, 1 << 16, size=(16, length)).astype(np.uint16)
        b = rng.choice(EDGE_BITS, size=(16, length)).astype(np.uint16)
        got = dot_fp16_batch(a, b)
        expected = np.array(
            [dot_fp16([int(x) for x in ra], [int(y) for y in rb])
             for ra, rb in zip(a, b, strict=False)],
            dtype=np.uint16,
        )
        assert np.array_equal(got, expected)

    def test_dot_fp32_batch_matches_scalar(self):
        rng = np.random.default_rng(40)
        a = rng.normal(size=(8, 32))
        b = rng.normal(size=(8, 32))
        got = dot_fp32_batch(a, b)
        expected = np.array([dot_fp32(ra, rb) for ra, rb in zip(a, b, strict=False)])
        assert np.array_equal(got, expected)


class TestParallelVsOracle:
    def _scalar_lane_products(self, a_bits: int, codes: np.ndarray, bits: int):
        width = lanes(bits)
        out = []
        for start in range(0, codes.size, width):
            chunk = [int(c) for c in codes[start : start + width]]
            out.extend(parallel_fp_int_mul(a_bits, chunk, bits).products)
        return out

    @pytest.mark.parametrize("bits", [4, 2])
    def test_all_codes_edge_activations(self, bits):
        offset = 1 << (bits - 1)
        codes = np.arange(-offset, offset)
        got = parallel_fp_int_mul_batch(EDGE_BITS[:, None], codes[None, :], bits)
        for i, a_bits in enumerate(EDGE_BITS):
            expected = self._scalar_lane_products(int(a_bits), codes, bits)
            assert np.array_equal(got[i], np.array(expected, dtype=np.uint16)), hex(a_bits)

    @pytest.mark.parametrize("bits", [4, 2])
    def test_random_code_blocks(self, bits):
        rng = np.random.default_rng(50 + bits)
        offset = 1 << (bits - 1)
        k, n = 16, 4 * lanes(bits)
        a = rng.integers(0, 1 << 16, size=(k, 1)).astype(np.uint16)
        codes = rng.integers(-offset, offset, size=(k, n))
        got = parallel_fp_int_mul_batch(a, codes, bits)
        for i in range(k):
            expected = self._scalar_lane_products(int(a[i, 0]), codes[i], bits)
            assert np.array_equal(got[i], np.array(expected, dtype=np.uint16))

    @pytest.mark.parametrize("bits", [4, 2])
    def test_saturating_activations_overflow_to_inf(self, bits):
        offset = 1 << (bits - 1)
        a = np.full((1, 2 * offset), 0x7BFF, dtype=np.uint16)  # 65504
        codes = np.arange(-offset, offset)[None, :]
        got = parallel_fp_int_mul_batch(a, codes, bits)
        assert np.all(vec.is_inf(got))

    def test_matches_vectorized_reference_products(self):
        rng = np.random.default_rng(60)
        a = rng.integers(0, 1 << 16, size=(256, 1)).astype(np.uint16)
        codes = rng.integers(-8, 8, size=(256, 8))
        assert np.array_equal(
            parallel_fp_int_mul_batch(a, codes, 4),
            reference_products_batch(a, codes, 4),
        )

    def test_rejects_out_of_range_codes_and_widths(self):
        with pytest.raises(EncodingError):
            parallel_fp_int_mul_batch(EDGE_BITS[:1], np.array([8]), 4)
        with pytest.raises(EncodingError):
            parallel_fp_int_mul_batch(EDGE_BITS[:1], np.array([-3]), 2)
        with pytest.raises(EncodingError):
            parallel_fp_int_mul_batch(EDGE_BITS[:1], np.array([0]), 8)
