"""Tests for the functional DP-4 reference units (repro.fp.dotprod)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import fp16
from repro.fp.dotprod import dot_fp16, dot_fp32, dp4_fp16


def _bits(values):
    return [fp16.from_float(v) for v in values]


class TestDp4:
    def test_simple_inner_product(self):
        result = dp4_fp16(_bits([1, 2, 3, 4]), _bits([1, 1, 1, 1]))
        assert fp16.to_float(result) == 10.0

    def test_accumulator_added(self):
        result = dp4_fp16(_bits([1, 1]), _bits([1, 1]), fp16.from_float(5.0))
        assert fp16.to_float(result) == 7.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            dp4_fp16(_bits([1, 2]), _bits([1]))

    def test_rejects_more_than_four(self):
        with pytest.raises(ValueError):
            dp4_fp16(_bits([1] * 5), _bits([1] * 5))

    def test_empty_returns_accumulator(self):
        acc = fp16.from_float(3.0)
        assert fp16.to_float(dp4_fp16([], [], acc)) == 3.0

    @given(
        st.lists(st.floats(-8, 8), min_size=4, max_size=4),
        st.lists(st.floats(-8, 8), min_size=4, max_size=4),
    )
    @settings(max_examples=200)
    def test_close_to_float64_reference(self, a, b):
        got = fp16.to_float(dp4_fp16(_bits(a), _bits(b)))
        a16 = np.array(a, dtype=np.float16).astype(np.float64)
        b16 = np.array(b, dtype=np.float16).astype(np.float64)
        ref = float(a16 @ b16)
        # Rounding at products + 3 tree adds: generous ULP envelope.
        assert got == pytest.approx(ref, abs=max(0.25, abs(ref) * 0.01))


class TestDotFp16:
    def test_multiple_of_four_lengths(self):
        a = [1.0] * 8
        b = [0.5] * 8
        assert fp16.to_float(dot_fp16(_bits(a), _bits(b))) == 4.0

    def test_ragged_tail(self):
        a = [1.0] * 6
        b = [1.0] * 6
        assert fp16.to_float(dot_fp16(_bits(a), _bits(b))) == 6.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            dot_fp16(_bits([1.0]), _bits([1.0, 2.0]))


class TestDotFp32:
    def test_wide_accumulation_is_exact_for_integers(self):
        a = list(range(1, 17))
        b = [1.0] * 16
        assert dot_fp32(a, b) == sum(range(1, 17))

    def test_products_still_rounded_to_fp16(self):
        # 0.1 * 0.1 rounds in FP16; wide accumulation keeps that error.
        expected = float(np.float16(np.float16(0.1) * np.float16(0.1)))
        assert dot_fp32([0.1], [0.1]) == expected

    def test_wide_beats_narrow_on_long_sums(self):
        n = 4096
        a = [0.1] * n
        b = [1.0] * n
        wide = dot_fp32(a, b)
        narrow = fp16.to_float(dot_fp16(_bits(a), _bits(b)))
        exact = float(np.float16(0.1)) * n
        # Wide accumulation tracks the exact product sum; the FP16
        # accumulator drifts once its ULP exceeds the addend precision.
        assert wide == pytest.approx(exact, rel=1e-12)
        assert abs(narrow - exact) > abs(wide - exact)
