"""End-to-end integration tests across the library's layers."""

import numpy as np
import pytest

from repro.core.arch import packed_k_baseline, pacq, standard_dequant
from repro.core.gemm import dequant_reference, hyper_gemm
from repro.core.metrics import evaluate
from repro.core.workloads import LLAMA2_7B
from repro.fp import fp16
from repro.llm.bigram import make_bigram_lm
from repro.llm.corpus import sample_tokens
from repro.llm.perplexity import evaluate_perplexity
from repro.multiplier.parallel import parallel_fp_int_mul, transform_offset
from repro.quant.groups import GroupSpec
from repro.quant.packing import PackDim, PackSpec, pack, unpack, unpack_word
from repro.quant.rtn import quantize_rtn
from repro.simt.memoryhier import GemmShape


class TestQuantizePackComputePipeline:
    """The full deployment pipeline: quantize -> pack -> compute."""

    def test_packed_words_drive_parallel_multiplier(self):
        # Quantize a weight column, pack it along n, feed one packed
        # word into the parallel multiplier, and verify the corrected
        # dot against the dequantized reference.
        rng = np.random.default_rng(42)
        weights = rng.normal(size=(8, 4))
        qm = quantize_rtn(weights, 4, GroupSpec(8, 4))
        packed = pack(qm.signed_codes(), PackSpec(4, PackDim.N))
        assert packed.words.shape == (8, 1)

        a = rng.normal(size=8)
        a16 = a.astype(np.float16)
        offset = transform_offset(4)
        acc = np.zeros(4)
        a_sum = 0.0
        for k in range(8):
            codes = unpack_word(int(packed.words[k, 0]), packed.spec)
            result = parallel_fp_int_mul(fp16.from_float(float(a16[k])), codes, 4)
            acc += [fp16.to_float(p) for p in result.products]
            a_sum += float(a16[k])
        corrected = acc - offset * a_sum
        adjust = 8 - qm.zeros[0]  # rebias - zero per group
        outputs = qm.scales[0] * (corrected + adjust * a_sum)

        reference = a16.astype(np.float64) @ qm.dequantize()
        # Transformed-product rounding envelope (see gemm.py numerics
        # note): per product <= |a| * scale after correction.
        envelope = float(np.abs(a16).sum()) * float(qm.scales.max()) + 1e-9
        assert np.all(np.abs(outputs - reference) <= envelope)

    def test_pack_direction_does_not_change_values(self):
        rng = np.random.default_rng(7)
        weights = rng.normal(size=(16, 8))
        qm = quantize_rtn(weights, 4, GroupSpec(8, 4))
        for dim in (PackDim.K, PackDim.N):
            packed = pack(qm.signed_codes(), PackSpec(4, dim))
            assert np.array_equal(unpack(packed), qm.signed_codes())

    def test_gemm_matches_reference_at_llm_like_scale(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 256))
        w = rng.normal(size=(256, 64))
        qm = quantize_rtn(w, 4, GroupSpec(64, 4))
        ours = hyper_gemm(a, qm)
        ref = dequant_reference(a, qm)
        rel_fro = np.linalg.norm(ours - ref) / np.linalg.norm(ref)
        assert rel_fro < 0.1


class TestEndToEndEvaluation:
    def test_all_llama_layers_evaluate(self):
        for name, shape in LLAMA2_7B.layer_gemms(16):
            if shape.n % 16 or shape.k % 16:
                continue
            result = evaluate(pacq(4), shape)
            assert result.cycles > 0, name
            assert result.energy.on_chip > 0, name

    def test_pacq_wins_on_every_llama_layer(self):
        for name, shape in LLAMA2_7B.layer_gemms(16):
            if shape.n % 16 or shape.k % 16:
                continue
            std = evaluate(standard_dequant(4), shape)
            ours = evaluate(pacq(4), shape)
            assert ours.edp < std.edp, name
            assert ours.cycles < std.cycles, name

    def test_three_flow_ordering_consistent(self):
        shape = GemmShape(16, 256, 256)
        std = evaluate(standard_dequant(4), shape)
        pk = evaluate(packed_k_baseline(4), shape)
        ours = evaluate(pacq(4), shape)
        # Delay: PacQ < packed-k == standard-ish; EDP strictly ordered.
        assert ours.cycles < pk.cycles
        assert ours.edp < pk.edp < std.edp

    def test_batch_scaling_monotone(self):
        edps = []
        for batch in (16, 32, 64):
            shape = GemmShape(batch, 256, 256)
            edps.append(evaluate(pacq(4), shape).edp)
        assert edps[0] < edps[1] < edps[2]


class TestLlmThroughGemmPath:
    def test_perplexity_pipeline_uses_hyper_gemm(self):
        lm = make_bigram_lm(vocab=64, d_model=128, seed=1)
        tokens = sample_tokens(lm.language(), 256, seed=2)
        qhead = quantize_rtn(lm.head, 4, GroupSpec(32, 4))
        ppl_fast = evaluate_perplexity(lm, tokens, quantized=qhead, mode="fast")
        base = evaluate_perplexity(lm, tokens)
        assert ppl_fast >= base * 0.99
        assert ppl_fast < base * 3.0  # degradation bounded

    def test_fast_and_bitexact_perplexity_agree(self):
        lm = make_bigram_lm(vocab=16, d_model=16, seed=4)
        tokens = sample_tokens(lm.language(), 24, seed=6)
        qhead = quantize_rtn(lm.head, 4, GroupSpec(8, 4))
        fast = evaluate_perplexity(lm, tokens, quantized=qhead, mode="fast")
        exact = evaluate_perplexity(lm, tokens, quantized=qhead, mode="bitexact")
        assert fast == pytest.approx(exact, rel=1e-9)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.errors import (
            ConfigError,
            EncodingError,
            QuantizationError,
            ReproError,
            SimulationError,
        )

        for err in (ConfigError, EncodingError, QuantizationError, SimulationError):
            assert issubclass(err, ReproError)
