"""Tests for the experiment orchestration subsystem (repro.harness).

Covers the ISSUE checklist: cache hit/miss and invalidation on param
change, serial vs parallel sweeps producing identical artifacts,
``report --check`` exit codes on an injected deviation, and
old-CLI-alias backward compatibility.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.experiments import (
    ExperimentResult,
    ResultRow,
    get_experiment,
    register_experiment,
    unregister_experiment,
)
from repro.core.report import RunRecord, check_records, render_csv
from repro.errors import ConfigError
from repro.harness import (
    Job,
    ResultCache,
    SweepSpec,
    default_sweep,
    run_jobs,
)

#: A cheap table2 configuration (shared LM memo across tests).
SMALL = {"vocab": 64, "d_model": 256, "corpus_len": 64}


@pytest.fixture(scope="module")
def report_cache_dir(tmp_path_factory):
    """One result cache shared by every report test in this module.

    The first ``report`` invocation pays the full run; the rest are
    served from cache, keeping the suite fast.
    """
    return str(tmp_path_factory.mktemp("pacq-report-cache"))


def small_jobs(backends=("fast", "batched"), specs=("g128", "g[32,4]")):
    spec = SweepSpec.make(
        ["table2"],
        grid={"backend": list(backends), "spec": list(specs)},
        base=SMALL,
    )
    return spec.jobs()


class TestSweepSpec:
    def test_grid_expansion_counts(self):
        assert len(small_jobs()) == 4

    def test_axes_filtered_per_experiment(self):
        # fig9 takes no parameters: the backend axis must not apply.
        spec = SweepSpec.make(
            ["fig9", "table2"], grid={"backend": ["fast", "batched"]}, base=SMALL
        )
        jobs = spec.jobs()
        assert [j.experiment for j in jobs] == ["fig9", "table2", "table2"]
        assert jobs[0].params == ()

    def test_unknown_experiment_lists_registered(self):
        with pytest.raises(ConfigError, match="fig7a"):
            SweepSpec.make(["fig99"]).jobs()

    def test_axis_accepted_by_nobody_is_an_error(self):
        with pytest.raises(ConfigError, match="warp_speed"):
            SweepSpec.make(["fig9"], grid={"warp_speed": [1, 2]}).jobs()

    def test_empty_spec_is_an_error(self):
        with pytest.raises(ConfigError):
            SweepSpec.make([]).jobs()

    def test_job_label_and_slug(self):
        job = Job.make("table2", {"backend": "fast", "spec": "g[32,4]"})
        assert job.label == "table2[backend=fast,spec=g[32,4]]"
        assert "/" not in job.slug and "," not in job.slug

    def test_default_sweep_covers_backends_x_specs(self):
        from repro.engine import backend_names
        from repro.quant.groups import TABLE2_SPECS

        jobs = default_sweep().jobs()
        assert len(jobs) == len(backend_names()) * len(TABLE2_SPECS)

    def test_jobs_are_hashable_and_deterministic(self):
        assert small_jobs() == small_jobs()
        assert len({hash(j) for j in small_jobs()}) == 4


class TestResultCache:
    def job(self):
        return Job.make("table2", dict(SMALL, backend="fast", spec="g128"))

    def result(self):
        return ExperimentResult(
            "table2", "t", (ResultRow("g128", 4.5, 5.73, "ppl"),)
        )

    def test_roundtrip_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(self.job()) is None
        cache.put(self.job(), self.result(), 1.0)
        got = cache.get(self.job())
        assert got == self.result()
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stores == 1 and len(cache) == 1

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.job(), self.result())
        other = Job.make("table2", dict(SMALL, backend="batched", spec="g128"))
        assert cache.get(other) is None

    def test_code_version_change_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(self.job(), self.result())
        assert cache.get(self.job()) is not None
        monkeypatch.setattr("repro.harness.cache._CODE_VERSION", "0" * 64)
        assert cache.get(self.job()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.job(), self.result())
        cache.path(self.job()).write_text("{not json")
        assert cache.get(self.job()) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.job(), self.result())
        assert cache.clear() == 1 and len(cache) == 0

    def test_non_json_param_values_still_store(self, tmp_path):
        # Library callers may pass rich objects (e.g. a GemmShape);
        # both the key and the stored entry stringify them.
        from repro.simt.memoryhier import GemmShape

        job = Job.make("fig10", {"shape": GemmShape(16, 64, 64)})
        cache = ResultCache(tmp_path)
        cache.put(job, self.result())
        assert cache.get(job) == self.result()


class TestExecutor:
    def test_serial_and_parallel_artifacts_identical(self, tmp_path):
        jobs = small_jobs()
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        to_records = lambda outs: [  # noqa: E731
            RunRecord(o.job.experiment, o.job.params_dict(), o.result)
            for o in outs
        ]
        assert render_csv(to_records(serial)) == render_csv(to_records(parallel))
        assert [o.result.to_dict() for o in serial] == [
            o.result.to_dict() for o in parallel
        ]

    def test_second_run_is_fully_cached(self, tmp_path):
        jobs = small_jobs(backends=("fast",), specs=("g128",))
        cache = ResultCache(tmp_path)
        first = run_jobs(jobs, cache=cache)
        second = run_jobs(jobs, cache=cache)
        assert [o.cached for o in first] == [False]
        assert [o.cached for o in second] == [True]
        assert first[0].result == second[0].result

    def test_force_reruns_despite_cache(self, tmp_path):
        jobs = small_jobs(backends=("fast",), specs=("g128",))
        cache = ResultCache(tmp_path)
        run_jobs(jobs, cache=cache)
        again = run_jobs(jobs, cache=cache, force=True)
        assert [o.cached for o in again] == [False]

    def test_outcomes_keep_input_order(self, tmp_path):
        jobs = list(small_jobs())
        outcomes = run_jobs(jobs, workers=2)
        assert [o.job for o in outcomes] == jobs

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_jobs([], workers=0)

    def test_unknown_param_raises(self):
        with pytest.raises(ConfigError, match="warp_speed"):
            run_jobs([Job.make("fig9", {"warp_speed": 11})])


class TestCheck:
    def test_within_tolerance_passes(self):
        record = RunRecord(
            "table2",
            {},
            ExperimentResult("table2", "t", (ResultRow("g128", 5.73, 5.73, "ppl"),)),
        )
        assert check_records([record]) == []

    def test_injected_deviation_flagged(self):
        record = RunRecord(
            "table2",
            {},
            ExperimentResult("table2", "t", (ResultRow("g128", 57.3, 5.73, "ppl"),)),
        )
        violations = check_records([record])
        assert len(violations) == 1 and "g128" in violations[0]

    def test_row_tolerance_override_applies(self):
        # fig7a's INT4 row is allowed ±50%; a generic row only ±10%.
        exp = get_experiment("fig7a")
        assert exp.row_tolerance("INT4 RF reduction vs P(B4)k") == 0.50
        assert exp.row_tolerance("anything else") == 0.10


class TestReportCli:
    def test_report_regenerates_byte_identically(
        self, tmp_path, monkeypatch, report_cache_dir
    ):
        monkeypatch.setenv("PACQ_CACHE_DIR", report_cache_dir)
        out = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--out", str(out)]) == 0
        first = out.read_text()
        assert main(["report", "--out", str(out), "--check"]) == 0
        assert out.read_text() == first
        assert "| configuration | measured | paper | deviation | unit |" in first

    def test_check_fails_on_stale_report(
        self, tmp_path, monkeypatch, report_cache_dir
    ):
        monkeypatch.setenv("PACQ_CACHE_DIR", report_cache_dir)
        out = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--out", str(out)]) == 0
        out.write_text(out.read_text() + "tampered\n")
        assert main(["report", "--out", str(out), "--check"]) == 1
        # The rewrite repaired it, so the check now passes again.
        assert main(["report", "--out", str(out), "--check"]) == 0

    def test_check_fails_on_injected_deviation(
        self, tmp_path, monkeypatch, report_cache_dir
    ):
        monkeypatch.setenv("PACQ_CACHE_DIR", report_cache_dir)

        @register_experiment(
            artifact="Fig. 99",
            headline="injected deviation",
            tolerance=0.01,
            name="injected",
        )
        def injected() -> ExperimentResult:
            return ExperimentResult(
                "injected", "way off", (ResultRow("boom", 10.0, 1.0, "x"),)
            )

        try:
            out = tmp_path / "EXPERIMENTS.md"
            assert main(["report", "--out", str(out), "--check"]) == 1
            assert main(["report", "--out", str(out)]) == 0  # no --check: passes
        finally:
            unregister_experiment("injected")

    def test_report_emits_artifacts(
        self, tmp_path, monkeypatch, report_cache_dir
    ):
        monkeypatch.setenv("PACQ_CACHE_DIR", report_cache_dir)
        out = tmp_path / "EXPERIMENTS.md"
        art = tmp_path / "artifacts"
        assert main(["report", "--out", str(out), "--artifacts", str(art)]) == 0
        assert (art / "results.csv").is_file()
        payload = json.loads((art / "run-table2.json").read_text())
        assert payload["experiment"] == "table2"
        assert payload["result"]["rows"]


class TestCliCompat:
    """The seed CLI's single-argument form must keep working."""

    def test_legacy_experiment_alias(self, capsys):
        assert main(["fig9"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_legacy_backend_flag(self, capsys):
        assert main(["fig7a", "--backend", "batched"]) == 0

    def test_legacy_table1_and_backends(self, capsys):
        assert main(["table1"]) == 0
        assert main(["backends"]) == 0
        assert "batched" in capsys.readouterr().out

    def test_run_subcommand_equivalent(self, capsys):
        assert main(["run", "fig9"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_run_rejects_unknown_param(self, capsys):
        assert main(["run", "fig9", "--set", "warp_speed=1"]) == 1
        assert "warp_speed" in capsys.readouterr().err

    def test_sweep_cli_two_invocations_hit_cache(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--experiments", "table2",
            "--grid", "backend=fast,batched",
            "--set", "vocab=64", "--set", "d_model=256",
            "--set", "corpus_len=64", "--set", "spec=g128",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: 0/2 jobs served from cache" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache: 2/2 jobs served from cache" in second

    def test_stock_sweep_honors_set_overrides(self, tmp_path, capsys):
        # Tiny sizes keep the stock sweep's bitexact jobs fast.
        argv = [
            "sweep", "--set", "corpus_len=24", "--set", "vocab=8",
            "--cache-dir", str(tmp_path), "--jobs", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "corpus_len=24" in out and "corpus_len=128" not in out
        assert "vocab=8" in out  # override replaced the stock vocab=64

    def test_grid_without_experiments_targets_accepting_runners(
        self, tmp_path, capsys
    ):
        argv = [
            "sweep", "--grid", "spec=g128",
            "--set", "vocab=64", "--set", "d_model=256",
            "--set", "corpus_len=64",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # Only table2 accepts 'spec'; nothing else may run.
        assert "table2[" in out and "sweep: 1 jobs" in out

    def test_grid_axis_nobody_accepts_errors(self, capsys):
        assert main(["sweep", "--grid", "nonsense=1"]) == 1
        assert "nonsense" in capsys.readouterr().err

    def test_sweep_artifacts_out_dir(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--experiments", "fig9",
            "--no-cache",
            "--out", str(tmp_path / "art"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "art" / "results.csv").is_file()

    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "tolerance" in out


class TestRowKeyError:
    def test_lists_available_labels(self):
        result = ExperimentResult("x", "d", (ResultRow("alpha", 1.0),))
        with pytest.raises(KeyError, match="alpha"):
            result.row("beta")
