"""Property suite for speculative decoding (repro.serve.speculative).

The load-bearing claim: speculation is a *scheduling* optimization —
for any draft model, any window ``k`` and any row-independent backend,
the emitted tokens are bit-identical to plain
``InferenceSession.generate``.  The drafts span the behaviour space:

* ``bigram``  — distilled table (the production default);
* ``int2``    — a low-bit checkpoint of the target (SessionDraft);
* ``oracle``  — the target itself as its own draft (always right);
* ``adversarial`` — the oracle shifted off by one (always wrong);
* ``flaky``   — test-local: corrupts the middle of every window, so
  the partial-acceptance path (accept some, reject the rest) runs.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.transformer import (
    BatchedKVCache,
    Decoder,
    TransformerConfig,
    init_weights,
)
from repro.model import InferenceSession, parse_policy, quantize_model
from repro.serve import (
    AdversarialDraft,
    BatchedSession,
    BigramDraft,
    DraftModel,
    Request,
    Scheduler,
    SessionDraft,
    SpeculativeSession,
    propose_batch,
)

#: Backends whose kernels compute each activation row independently of
#: the batch (the bit-identity guarantee; "reference" is BLAS-backed
#: and excluded).
BACKENDS = ("fast", "batched", "bitexact")
DRAFTS = ("bigram", "int2", "oracle", "adversarial", "flaky")
KS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    qmodel = quantize_model(
        weights, parse_policy("*=int4@g[8,4]"), config=config
    )
    return config, weights, qmodel


class FlakyDraft:
    """Corrupt the middle token of every window the inner draft emits.

    Forces partial acceptance: the prefix before the corrupted
    position can be accepted, everything at and after it cannot.
    """

    def __init__(self, inner, vocab):
        self.inner = inner
        self.vocab = vocab

    def propose(self, context, k):
        proposals = np.array(self.inner.propose(context, k))
        if proposals.shape[0] >= 2:
            mid = proposals.shape[0] // 2
            proposals[mid] = (proposals[mid] + 1) % self.vocab
        return proposals


@pytest.fixture(scope="module")
def drafts(setup):
    """name -> draft instance (drafts are deterministic per context)."""
    config, weights, qmodel = setup
    decoder = Decoder(config, weights, qmodel, backend="fast")
    oracle = SessionDraft(qmodel, backend="fast", max_slots=8)
    int2 = quantize_model(
        weights, parse_policy("*=int2@g[8,4]"), config=config
    )
    return {
        "bigram": BigramDraft.distill(decoder),
        "int2": SessionDraft(int2, backend="fast", max_slots=8),
        "oracle": oracle,
        "adversarial": AdversarialDraft(
            SessionDraft(qmodel, backend="fast", max_slots=8), config.vocab
        ),
        "flaky": FlakyDraft(
            SessionDraft(qmodel, backend="fast", max_slots=8), config.vocab
        ),
    }


def reference_stream(qmodel, prompt, max_new, backend="fast", eos=None):
    """What plain generate emits (truncated at the first eos)."""
    tokens = InferenceSession(qmodel, backend=backend).generate(
        prompt, max_new
    ).tokens
    new = list(map(int, tokens[len(prompt):]))
    if eos is not None and eos in new:
        new = new[: new.index(eos) + 1]
    return list(map(int, prompt)) + new


class TestSessionIdentity:
    """SpeculativeSession == InferenceSession.generate, everywhere."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", DRAFTS)
    @pytest.mark.parametrize("k", KS)
    def test_matches_generate(self, setup, drafts, backend, name, k):
        config, _, qmodel = setup
        rng = np.random.default_rng(0)
        # bitexact decodes ~1000x slower: one short prompt is plenty.
        cases = [(3, 4)] if backend == "bitexact" else [(3, 12), (9, 7)]
        session = SpeculativeSession(
            qmodel, drafts[name], k, backend=backend
        )
        for size, max_new in cases:
            prompt = rng.integers(0, config.vocab, size=size)
            expect = reference_stream(qmodel, prompt, max_new, backend)
            result = session.generate(prompt, max_new)
            assert list(map(int, result.tokens)) == expect, (backend, name, k)
            assert result.finish_reason == "length"
            assert len(result.new_tokens) == max_new

    @pytest.mark.parametrize("name", DRAFTS)
    def test_eos_inside_window(self, setup, drafts, name):
        """EOS emitted mid-window stops the stream exactly there."""
        config, _, qmodel = setup
        prompt = np.arange(5) % config.vocab
        probe = reference_stream(qmodel, prompt, 8)
        eos = probe[len(prompt) + 2]  # third generated token
        expect = reference_stream(qmodel, prompt, 8, eos=eos)
        session = SpeculativeSession(qmodel, drafts[name], 4)
        result = session.generate(prompt, 8, eos_token=eos)
        assert list(map(int, result.tokens)) == expect
        assert result.finish_reason == "eos"
        assert int(result.tokens[-1]) == eos

    @pytest.mark.parametrize("name", DRAFTS)
    def test_window_overruns_max_new(self, setup, drafts, name):
        """k far beyond the budget: exactly max_new tokens come out."""
        config, _, qmodel = setup
        prompt = np.arange(4) % config.vocab
        session = SpeculativeSession(qmodel, drafts[name], 8)
        result = session.generate(prompt, 3)
        assert list(map(int, result.tokens)) == reference_stream(
            qmodel, prompt, 3
        )
        assert result.finish_reason == "length"
        assert len(result.new_tokens) == 3

    def test_k_zero_degenerates_to_plain_decode(self, setup, drafts):
        config, _, qmodel = setup
        prompt = np.arange(6) % config.vocab
        session = SpeculativeSession(qmodel, drafts["bigram"], 0)
        result = session.generate(prompt, 8)
        assert list(map(int, result.tokens)) == reference_stream(
            qmodel, prompt, 8
        )
        assert result.drafted_tokens == 0
        assert result.accepted_draft_tokens == 0
        assert result.acceptance_rate == 0.0
        # one verify pass (m=1: plain decode) per non-final token
        assert result.verify_steps == 7

    def test_telemetry_extremes(self, setup, drafts):
        """Oracle accepts everything, adversarial nothing, flaky some."""
        config, _, qmodel = setup
        prompt = np.arange(5) % config.vocab

        def run(name):
            return SpeculativeSession(qmodel, drafts[name], 4).generate(
                prompt, 12
            )

        oracle = run("oracle")
        assert oracle.acceptance_rate == 1.0
        assert oracle.wasted_draft_tokens == 0
        assert oracle.accepted_per_step > 0
        adversarial = run("adversarial")
        assert adversarial.drafted_tokens > 0
        assert adversarial.accepted_draft_tokens == 0
        assert adversarial.acceptance_rate == 0.0
        assert adversarial.wasted_draft_tokens == adversarial.drafted_tokens
        flaky = run("flaky")
        assert 0.0 < flaky.acceptance_rate < 1.0
        # fewer accepts means more verify passes, never different tokens
        assert adversarial.verify_steps > oracle.verify_steps
        assert np.array_equal(oracle.tokens, adversarial.tokens)
        assert np.array_equal(oracle.tokens, flaky.tokens)

    def test_validation(self, setup, drafts):
        _, _, qmodel = setup
        with pytest.raises(ConfigError, match="k must be >= 0"):
            SpeculativeSession(qmodel, drafts["bigram"], -1)
        with pytest.raises(ConfigError, match="propose"):
            SpeculativeSession(qmodel, object(), 2)
        session = SpeculativeSession(qmodel, drafts["bigram"], 2)
        with pytest.raises(ConfigError, match="max_new_tokens"):
            session.generate(np.array([1]), 0)


class TestSchedulerSpeculation:
    """Scheduler(speculate=...) == plain Scheduler, stream for stream."""

    def requests(self, config, greedy=True):
        rng = np.random.default_rng(3)
        return [
            Request(
                prompt=rng.integers(0, config.vocab, size=3 + 2 * i),
                max_new=4 + i,
                top_k=None if greedy or i % 2 else 4,
                seed=i,
                eos_token=5 if i % 3 == 0 else None,
            )
            for i in range(6)
        ]

    def run(self, qmodel, requests, speculate=None, prefill_chunk=None):
        session = BatchedSession(qmodel, backend="fast", max_slots=3)
        scheduler = Scheduler(
            session,
            max_batch=3,
            prefill_chunk=prefill_chunk,
            speculate=speculate,
        )
        return scheduler.run(requests), scheduler.stats()

    @pytest.mark.parametrize("name", DRAFTS)
    @pytest.mark.parametrize("k", (1, 4))
    def test_matches_plain_scheduler(self, setup, drafts, name, k):
        config, _, qmodel = setup
        requests = self.requests(config)
        plain, _ = self.run(qmodel, requests)
        spec, stats = self.run(qmodel, requests, speculate=(drafts[name], k))
        for a, b in zip(plain, spec, strict=False):
            assert np.array_equal(a.tokens, b.tokens), (name, k, a.request_id)
            assert a.finish_reason == b.finish_reason
        assert stats.verify_steps > 0
        assert stats.drafted_tokens > 0

    def test_mixed_topk_trace_identical(self, setup, drafts):
        """Sampling requests ride along undrafted with identical rng
        streams — greedy selection consumes no rng draws."""
        config, _, qmodel = setup
        requests = self.requests(config, greedy=False)
        plain, _ = self.run(qmodel, requests, prefill_chunk=8)
        spec, _ = self.run(
            qmodel,
            requests,
            speculate=(drafts["bigram"], 4),
            prefill_chunk=8,
        )
        for request, a, b in zip(requests, plain, spec, strict=False):
            assert np.array_equal(a.tokens, b.tokens), a.request_id
            if request.top_k is not None:
                assert b.drafted_tokens == 0

    def test_per_request_telemetry(self, setup, drafts):
        config, _, qmodel = setup
        requests = self.requests(config)
        results, stats = self.run(
            qmodel, requests, speculate=(drafts["oracle"], 4)
        )
        assert sum(r.drafted_tokens for r in results) == stats.drafted_tokens
        assert (
            sum(r.accepted_draft_tokens for r in results)
            == stats.accepted_draft_tokens
        )
        assert stats.draft_acceptance_rate == 1.0
        assert stats.wasted_draft_tokens == 0
        assert stats.accepted_per_verify_step > 0
        for r in results:
            assert r.wasted_draft_tokens == 0
            if r.spec_steps:
                assert r.accepted_per_step >= 0

    def test_speculate_validated(self, setup, drafts):
        _, _, qmodel = setup
        session = BatchedSession(qmodel, backend="fast", max_slots=2)
        with pytest.raises(ConfigError, match="propose"):
            Scheduler(session, max_batch=2, speculate=(object(), 2))
        with pytest.raises(ConfigError, match=">= 0"):
            Scheduler(session, max_batch=2, speculate=(drafts["bigram"], -1))


class TestDrafts:
    def test_draft_protocol(self, drafts):
        for name, draft in drafts.items():
            assert isinstance(draft, DraftModel), name

    def test_bigram_from_lm_roundtrip(self, setup):
        from repro.llm.bigram import make_bigram_lm

        config, _, _ = setup
        lm = make_bigram_lm(vocab=16, seed=0)
        draft = BigramDraft.from_lm(lm)
        context = np.array([3, 7])
        proposals = draft.propose(context, 3)
        expect = []
        last = 7
        for _ in range(3):
            last = int(np.argmax(lm.logits(np.array([last]))[0]))
            expect.append(last)
        assert list(map(int, proposals)) == expect

    def test_bigram_table_validated(self):
        with pytest.raises(ConfigError, match="1-D"):
            BigramDraft(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ConfigError, match="lie in"):
            BigramDraft(np.array([5]))  # vocab 1, entry out of range

    def test_session_draft_prefix_reuse(self, setup):
        """Growing one context re-decodes only the fresh suffix."""
        config, weights, qmodel = setup
        draft = SessionDraft(qmodel, backend="fast", max_slots=2)
        context = np.arange(8) % config.vocab
        first = draft.propose(context, 3)
        plans = draft.decoder.plans
        before = {
            name: sum(plan.executions.values())
            for name, plan in plans.items()
        }
        grown = np.concatenate([context, first[:1]])
        second = draft.propose(grown, 3)
        # the second proposal resumed from the resident prefix: far
        # fewer new GEMM executions than re-prefilling 9 tokens
        grew = {
            name: sum(plan.executions.values()) - before[name]
            for name, plan in plans.items()
        }
        assert max(grew.values()) <= 4  # 1 suffix pass + 2 decode steps
        # and the proposals still chain greedily off the new context
        fresh = SessionDraft(qmodel, backend="fast", max_slots=2)
        assert np.array_equal(second, fresh.propose(grown, 3))

    def test_session_draft_respects_context_window(self, setup):
        config, _, qmodel = setup
        draft = SessionDraft(qmodel, backend="fast", max_slots=1)
        near_edge = np.zeros(config.max_seq - 2, dtype=np.int64)
        assert draft.propose(near_edge, 8).shape[0] == 2
        at_edge = np.zeros(config.max_seq, dtype=np.int64)
        assert draft.propose(at_edge, 8).shape[0] == 0

    def test_session_draft_pool_eviction(self, setup):
        """More distinct contexts than slots: LRU eviction, same output."""
        config, _, qmodel = setup
        small = SessionDraft(qmodel, backend="fast", max_slots=2)
        rng = np.random.default_rng(8)
        contexts = [rng.integers(0, config.vocab, size=6) for _ in range(4)]
        first = [small.propose(ctx, 2) for ctx in contexts]
        again = [small.propose(ctx, 2) for ctx in contexts]
        for a, b in zip(first, again, strict=False):
            assert np.array_equal(a, b)
        with pytest.raises(ConfigError, match="pool exhausted"):
            small.propose_batch(contexts[:3], 2)

    def test_propose_batch_fallback(self, setup, drafts):
        """Drafts without propose_batch still serve batched callers."""
        config, _, qmodel = setup
        rng = np.random.default_rng(4)
        contexts = [rng.integers(0, config.vocab, size=5) for _ in range(3)]
        flaky = drafts["flaky"]  # has no propose_batch
        assert not hasattr(flaky, "propose_batch")
        batched = propose_batch(flaky, contexts, 4)
        for ctx, proposals in zip(contexts, batched, strict=False):
            assert np.array_equal(proposals, flaky.propose(ctx, 4))

    def test_adversarial_validated(self, drafts):
        with pytest.raises(ConfigError, match="vocab >= 2"):
            AdversarialDraft(drafts["bigram"], 1)
        with pytest.raises(ConfigError, match="nonzero shift"):
            AdversarialDraft(drafts["bigram"], 4, shift=8)

    def test_bad_proposals_rejected(self, setup):
        config, _, qmodel = setup

        class TooMany:
            def propose(self, context, k):
                return np.zeros(k + 1, dtype=np.int64)

        class OutOfVocab:
            def propose(self, context, k):
                return np.full(k, config.vocab, dtype=np.int64)

        prompt = np.arange(4) % config.vocab
        with pytest.raises(ConfigError, match="at most"):
            SpeculativeSession(qmodel, TooMany(), 2).generate(prompt, 6)
        with pytest.raises(ConfigError, match="outside"):
            SpeculativeSession(qmodel, OutOfVocab(), 2).generate(prompt, 6)


class TestTruncate:
    """BatchedKVCache.truncate — the speculative rollback primitive."""

    def test_truncate_then_redecode_bit_identical(self, setup):
        """Decode 3, roll 2 back, decode 2 different tokens: every row
        matches a cache that never saw the rolled-back tokens."""
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        prompt = np.arange(6) % config.vocab
        cache = decoder.init_batched_cache(1, capacity=16)
        slot = cache.allocate()
        decoder.prefill_ragged([prompt], cache, [slot])
        decoder.decode_batch([1], cache, [slot])
        decoder.decode_batch([2], cache, [slot])
        decoder.decode_batch([3], cache, [slot])
        cache.truncate(slot, prompt.shape[0] + 1)  # keep prompt + token 1
        clean = decoder.init_batched_cache(1, capacity=16)
        clean_slot = clean.allocate()
        decoder.prefill_ragged([prompt], clean, [clean_slot])
        decoder.decode_batch([1], clean, [clean_slot])
        for token in (7, 8):
            rolled = decoder.decode_batch([token], cache, [slot])
            fresh = decoder.decode_batch([token], clean, [clean_slot])
            assert np.array_equal(rolled[0], fresh[0])

    def test_composes_with_snapshot_and_copy_into(self, setup):
        """snapshot sees the truncated length; a snapshot taken before
        a truncate restores the full prefix via copy_into."""
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        prompt = np.arange(8) % config.vocab
        cache = decoder.init_batched_cache(2, capacity=16)
        slot = cache.allocate()
        decoder.prefill_ragged([prompt], cache, [slot])
        keys, values = cache.snapshot(slot, 8)
        cache.truncate(slot, 5)
        with pytest.raises(ConfigError, match="holding 5"):
            cache.snapshot(slot, 8)
        other = cache.allocate()
        cache.copy_into(other, keys, values)
        assert int(cache.lengths[other]) == 8
        short_k, short_v = cache.snapshot(slot, 5)
        full_k, full_v = cache.snapshot(other, 8)
        assert np.array_equal(short_k, full_k[:, :, :5])
        assert np.array_equal(short_v, full_v[:, :, :5])

    def test_out_of_range_truncate_raises(self, setup):
        config, _, _ = setup
        cache = BatchedKVCache(config, max_slots=2, capacity=8)
        slot = cache.allocate()
        cache.lengths[slot] = 4
        with pytest.raises(ConfigError, match=r"lie in \[0, 4\]"):
            cache.truncate(slot, 5)
        with pytest.raises(ConfigError, match=r"lie in \[0, 4\]"):
            cache.truncate(slot, -1)
        cache.truncate(slot, 4)  # no-op truncate is fine
        cache.truncate(slot, 0)  # so is a full rollback
        free = cache.allocate()
        cache.release(free)
        with pytest.raises(ConfigError, match="free slot"):
            cache.truncate(free, 0)
        with pytest.raises(ConfigError, match="slot"):
            cache.truncate(99, 0)


class TestPhaseTelemetry:
    """GemmPlan.row_stats phase labels: a verify pass of m rows is
    distinguishable from a decode batch of m sequences."""

    def test_phases_tagged(self, setup):
        config, weights, _ = setup
        # plans are memoized per QuantizedMatrix: quantize fresh copies
        # so no other test's executions pollute the histograms
        qmodel = quantize_model(
            weights, parse_policy("*=int4@g[8,4]"), config=config
        )
        dummy = BigramDraft(np.zeros(config.vocab, dtype=np.int64))
        session = SpeculativeSession(qmodel, dummy, 3)
        session.generate(np.arange(5) % config.vocab, 8)
        plans = session.decoder.plans
        phases = set()
        for plan in plans.values():
            phases.update(plan.phases())
        # the speculative loop only prefills and verifies — it never
        # issues a plain decode step
        assert phases == {"prefill", "verify"}
        plan = next(iter(plans.values()))
        verify = plan.row_stats(phase="verify")
        assert verify, "verify passes must be tagged"
        # every verify pass carried the pending token + <= k drafts
        assert all(1 <= m <= 4 for m in verify)
        # the phase split accounts for every execution of the plan
        total = sum(plan.executions.values())
        by_phase = sum(
            count
            for stats in plan.phases().values()
            for count in stats.values()
        )
        assert by_phase == total

    def test_row_stats_phase_filter(self, setup):
        """decode vs verify at the same m: the label disambiguates."""
        config, weights, _ = setup
        qmodel = quantize_model(
            weights, parse_policy("*=int4@g[8,4]"), config=config
        )
        decoder = Decoder(config, weights, qmodel, backend="fast")
        cache = decoder.init_batched_cache(3, capacity=16)
        slots = [cache.allocate() for _ in range(3)]
        prompts = [np.arange(4) % config.vocab for _ in range(3)]
        decoder.prefill_ragged(prompts, cache, slots)
        # a decode batch of 3 and a verify pass of 3 rows: same m
        decoder.decode_batch([1, 2, 3], cache, slots)
        decoder.prefill_ragged(
            [np.array([4, 5, 6])], cache, [slots[0]], resume=True,
            phase="verify",
        )
        plan = next(iter(decoder.plans.values()))
        assert plan.row_stats(phase="decode") == {3: 1}
        assert plan.row_stats(phase="verify") == {3: 1}
        assert plan.row_stats()[3] == 2  # aggregate view unchanged
        assert plan.row_stats(phase="nonesuch") == {}
