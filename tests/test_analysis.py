"""Unit tests for the detlint analyzer internals.

Registry semantics, suppression parsing, contract/config loading and
the runner's file mechanics; the rule-by-rule behaviour is exercised
against the fixture corpus in :mod:`tests.test_analysis_corpus`.
"""

from __future__ import annotations

import pathlib
import subprocess
import textwrap

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    find_config,
    get_rule,
    lint_paths,
    list_rules,
    load_config,
    parse_suppressions,
    register_rule,
    render_findings,
    rule_ids,
    unregister_rule,
)
from repro.analysis.contracts import _parse_toml_subset
from repro.errors import ConfigError

REPO = pathlib.Path(__file__).resolve().parents[1]


def write(path: pathlib.Path, source: str) -> pathlib.Path:
    path.write_text(textwrap.dedent(source))
    return path


def config_for(tmp_path: pathlib.Path, **kwargs) -> LintConfig:
    kwargs.setdefault("include", (".",))
    kwargs.setdefault("src_roots", (".",))
    return LintConfig(root=tmp_path, **kwargs)


class TestRegistry:
    def test_shipped_rule_ids(self):
        ids = rule_ids()
        for expected in [f"D00{i}" for i in range(1, 9)]:
            assert expected in ids
        # Hygiene/virtual rules are registered too.
        assert {"D000", "D010", "D999"} <= set(ids)

    def test_rules_carry_severity_and_hint(self):
        for rule in list_rules():
            assert rule.severity in ("error", "warning")
            assert rule.title
        assert get_rule("D001").hint  # autofix hint: use einsum

    def test_register_decorator_and_duplicate(self):
        @register_rule("D901", title="test rule", severity="warning")
        def check(ctx):
            return
            yield  # pragma: no cover

        try:
            assert get_rule("D901").check is check
            with pytest.raises(ConfigError):
                register_rule("D901", check, title="again")
            register_rule("D901", check, title="replaced", overwrite=True)
            assert get_rule("D901").title == "replaced"
        finally:
            unregister_rule("D901")
        with pytest.raises(ConfigError):
            get_rule("D901")

    def test_invalid_id_rejected(self):
        with pytest.raises(ConfigError):
            register_rule("X01", lambda ctx: iter(()), title="bad id")

    def test_finding_location_and_order(self):
        a = Finding(
            path="a.py", line=3, col=1, rule="D001", severity="error", message="m"
        )
        b = Finding(
            path="a.py", line=2, col=9, rule="D004", severity="error", message="m"
        )
        assert a.location == "a.py:3:1"
        assert sorted([a, b], key=Finding.sort_key)[0] is b


class TestSuppressionParsing:
    def test_trailing_marker(self):
        [s] = parse_suppressions("x = f()  # detlint: ignore[D004]: why not\n")
        assert s.rules == ("D004",)
        assert s.covers == 1
        assert s.justification == "why not"
        assert not s.malformed

    def test_own_line_covers_next_code_line(self):
        source = (
            "def f():\n"
            "    # detlint: ignore[D001]: oracle path\n"
            "\n"
            "    return a @ b\n"
        )
        [s] = parse_suppressions(source)
        assert s.line == 2
        assert s.covers == 4

    def test_multiple_rules_one_marker(self):
        [s] = parse_suppressions("y  # detlint: ignore[D001, D003]: exact\n")
        assert s.rules == ("D001", "D003")

    @pytest.mark.parametrize(
        "comment",
        [
            "# detlint: ignore",
            "# detlint: ignore[D004]",
            "# detlint: ignore[]: empty list",
            "# detlint: ignore[banana]: no such id",
        ],
    )
    def test_malformed_markers_waive_nothing(self, comment):
        [s] = parse_suppressions(f"x = f()  {comment}\n")
        assert s.malformed
        assert s.rules == ()

    def test_docstrings_are_not_markers(self):
        source = '"""Docs mention # detlint: ignore[D001]: like this."""\n'
        assert parse_suppressions(source) == []

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # plain comment\n") == []


class TestConfig:
    def test_repo_config_loads(self):
        config = load_config(REPO / "detlint.toml")
        assert config.root == REPO
        assert "src/repro" in config.include
        assert config.contract_for("repro.engine.backends").deterministic
        assert config.contract_for("repro.harness.cache").artifact
        assert config.contract_for("repro.core.procutil").process_owner
        # tests are uncontracted and outside the include set
        assert not config.contract_for("tests.test_engine").contracted

    def test_find_config_walks_up(self, tmp_path):
        (tmp_path / "detlint.toml").write_text("[run]\ninclude = ['.']\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_config(nested) == tmp_path / "detlint.toml"
        assert find_config(pathlib.Path("/")) in (None, pathlib.Path("/detlint.toml"))

    def test_unknown_key_fails_loudly(self, tmp_path):
        path = write(tmp_path / "detlint.toml", """\
            [contracts]
            determinstic = ["repro.engine"]
        """)
        with pytest.raises(ConfigError, match="determinstic"):
            load_config(path)

    def test_module_for_and_prefix_matching(self, tmp_path):
        config = LintConfig(
            root=tmp_path,
            src_roots=("src",),
            deterministic=("repro.engine",),
        )
        assert (
            config.module_for(tmp_path / "src" / "repro" / "engine" / "backends.py")
            == "repro.engine.backends"
        )
        assert (
            config.module_for(tmp_path / "src" / "repro" / "engine" / "__init__.py")
            == "repro.engine"
        )
        assert config.module_for(tmp_path / "script.py") == "script"
        assert config.contract_for("repro.engine").deterministic
        assert config.contract_for("repro.engine.backends").deterministic
        assert not config.contract_for("repro.engineering").deterministic

    def test_toml_subset_parser_matches_structure(self):
        parsed = _parse_toml_subset(textwrap.dedent("""\
            # comment
            [run]
            include = ["src/repro"]   # trailing comment
            src-roots = [
                "src",
            ]

            [contracts]
            deterministic = ["repro.fp", "repro.quant"]

            [rules]
            disable = []
        """), pathlib.Path("detlint.toml"))
        assert parsed["run"]["include"] == ["src/repro"]
        assert parsed["run"]["src-roots"] == ["src"]
        assert parsed["contracts"]["deterministic"] == ["repro.fp", "repro.quant"]
        assert parsed["rules"]["disable"] == []

    def test_toml_subset_parser_rejects_garbage(self):
        with pytest.raises(ConfigError):
            _parse_toml_subset("include = not a value\n", pathlib.Path("detlint.toml"))

    def test_disabled_rule_is_skipped(self, tmp_path):
        write(tmp_path / "mod.py", """\
            import os

            def f(d):
                return os.listdir(d)
        """)
        noisy = lint_paths(config_for(tmp_path))
        quiet = lint_paths(config_for(tmp_path, disabled=("D004",)))
        assert [f.rule for f in noisy.findings] == ["D004"]
        assert quiet.findings == ()

    def test_unknown_disabled_rule_fails(self, tmp_path):
        with pytest.raises(ConfigError):
            lint_paths(config_for(tmp_path, disabled=("D437",)))


class TestRunner:
    def test_alias_resolution_still_fires(self, tmp_path):
        write(tmp_path / "mod.py", """\
            import numpy
            import numpy as xp
            from numpy import einsum

            def f(a, b):
                return numpy.einsum("ij,jk->ik", a, b)

            def g(a, b):
                return xp.einsum("ij,jk->ik", a, b)

            def h(a, b):
                return einsum("ij,jk->ik", a, b)
        """)
        report = lint_paths(config_for(tmp_path))
        assert [f.rule for f in report.findings] == ["D002"] * 3

    def test_non_numpy_names_do_not_fire(self, tmp_path):
        write(tmp_path / "mod.py", """\
            class Frame:
                def sum(self):
                    return 0

            def f(frame, polynomial, w):
                frame.sum()
                return polynomial.dot(w)
        """)
        config = config_for(tmp_path, deterministic=("mod",))
        report = lint_paths(config)
        # .sum()/.dot() on unknown receivers still fire (conservative),
        # but plain non-numpy function calls never do.
        assert all(f.rule in ("D001", "D003") for f in report.findings)

    def test_explicit_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            lint_paths(config_for(tmp_path), paths=[tmp_path / "nope.py"])

    def test_exclude_patterns(self, tmp_path):
        write(tmp_path / "gen.py", "import os\nx = os.listdir('.')\n")
        report = lint_paths(config_for(tmp_path, exclude=("gen.py",)))
        assert report.files == 0

    def test_changed_only_uses_git(self, tmp_path):
        env = {
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
            "PATH": "/usr/bin:/bin",
        }

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True, env=env
            )

        git("init", "-q")
        committed = write(tmp_path / "committed.py", "import os\nx = os.listdir('.')\n")
        git("add", "committed.py")
        git("commit", "-q", "-m", "seed")
        write(tmp_path / "fresh.py", "import os\ny = os.listdir('.')\n")

        full = lint_paths(config_for(tmp_path))
        changed = lint_paths(config_for(tmp_path), changed_only=True)
        assert {f.path for f in full.findings} == {"committed.py", "fresh.py"}
        assert {f.path for f in changed.findings} == {"fresh.py"}
        assert committed.exists()

    def test_render_text_and_json(self, tmp_path):
        write(tmp_path / "mod.py", "import os\nx = os.listdir('.')\n")
        report = lint_paths(config_for(tmp_path))
        text = render_findings(report, verbose=True)
        assert "mod.py:2:5: D004" in text
        assert get_rule("D004").hint in text
        payload = report.to_dict()
        assert payload["schema"] == "detlint/v1"
        assert payload["summary"]["by_rule"] == {"D004": 1}
