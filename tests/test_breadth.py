"""Breadth tests: edge cases and interactions not covered elsewhere."""

import numpy as np
import pytest

from repro.core.arch import pacq, volta_full_machine
from repro.core.metrics import evaluate
from repro.core.roofline import dram_bytes
from repro.fp import fp16
from repro.mixgemm.binseg import mixgemm_point
from repro.quant.groups import G64_4, G128, GroupSpec
from repro.quant.packing import PackDim, PackSpec, pack
from repro.quant.rtn import quantize_rtn
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.instruction import MmaShape
from repro.simt.memoryhier import GemmShape, general_core_work
from repro.simt.octet import OctetArch, simulate_octet
from repro.simt.sm import MachineConfig
from repro.simt.tensorcore import TensorCoreConfig, octet_cycles
from repro.simt.warp import OctetWorkload


class TestFp16Breadth:
    def test_all_finite_bits_count(self):
        # 2 signs x 31 exponents x 1024 mantissas = 63488 finite codes.
        assert sum(1 for _ in fp16.all_finite_bits()) == 63488

    def test_max_finite_constant(self):
        assert fp16.to_float(fp16.from_float(fp16.MAX_FINITE)) == 65504.0

    def test_min_normal_constant(self):
        bits = fp16.from_float(fp16.MIN_NORMAL)
        assert fp16.is_normalized(bits)
        assert fp16.to_float(bits) == 2.0**-14

    def test_next_after_walk_is_monotone(self):
        bits = fp16.from_float(1.0)
        values = []
        for _ in range(5):
            values.append(fp16.to_float(bits))
            bits = fp16.next_after(bits)
        assert values == sorted(values)
        assert len(set(values)) == 5


class TestPackingStorage:
    def test_quantized_and_packed_storage_consistent(self):
        w = np.random.default_rng(0).normal(size=(128, 64))
        qm = quantize_rtn(w, 4, G128)
        packed = pack(qm.signed_codes(), PackSpec(4, PackDim.N))
        # The code payload of storage_bits equals the packed container.
        assert packed.storage_bits() == 128 * 64 * 4
        assert qm.storage_bits() > packed.storage_bits()  # + metadata

    def test_int2_pack_is_eighth_of_fp16(self):
        w = np.random.default_rng(1).normal(size=(64, 64))
        qm = quantize_rtn(w, 2, GroupSpec(32, 4))
        packed = pack(qm.signed_codes(), PackSpec(2, PackDim.N))
        assert packed.storage_bits() == 64 * 64 * 16 // 8


class TestScaleFetchGeometry:
    def test_g64_4_matches_g32_4_fetch_collapse(self):
        shape = GemmShape(16, 512, 512)
        flow = FlowConfig(FlowKind.PACQ, 4)
        fetches = {
            spec.label: general_core_work(flow, shape, spec).scale_fetches
            for spec in (G128, G64_4)
        }
        assert fetches["g[64,4]"] * 4 == fetches["g128"]

    def test_int2_words_need_two_fetches_under_n4_groups(self):
        shape = GemmShape(16, 512, 512)
        flow = FlowConfig(FlowKind.PACQ, 2)
        work = general_core_work(flow, shape, G64_4)
        # 8-wide words over n=4 groups: 2 scales per word.
        assert work.scale_fetches == 1 * 32 * (512 // 8) * 2


class TestOctetArchKnobs:
    OCTET = OctetWorkload(8, 8, 16)

    def test_single_fetch_port_can_bound_tiles(self):
        flow = FlowConfig(FlowKind.PACKED_K, 2)
        trace = simulate_octet(flow, self.OCTET)
        wide = octet_cycles(flow, trace, OctetArch(fetch_ports=8))
        narrow = octet_cycles(flow, trace, OctetArch(fetch_ports=1))
        assert narrow >= wide

    def test_more_dp_units_speed_up(self):
        flow = FlowConfig(FlowKind.PACQ, 4)
        trace = simulate_octet(flow, self.OCTET)
        two = octet_cycles(flow, trace, OctetArch(dp_units=2))
        four = octet_cycles(flow, trace, OctetArch(dp_units=4))
        assert four < two

    def test_dp_width_knob_reaches_cycle_model(self):
        flow = FlowConfig(FlowKind.PACQ, 4)
        trace = simulate_octet(flow, self.OCTET)
        narrow = octet_cycles(flow, trace, core=TensorCoreConfig(dp_width=4))
        wide = octet_cycles(flow, trace, core=TensorCoreConfig(dp_width=8))
        assert wide <= narrow


class TestMachineKnobs:
    def test_bandwidth_starvation_inflates_cycles(self):
        shape = GemmShape(16, 1024, 1024)
        fast = pacq(4, machine=MachineConfig(dram_beats_per_cycle=1000.0))
        slow = pacq(4, machine=MachineConfig(dram_beats_per_cycle=0.01))
        assert evaluate(slow, shape).cycles > evaluate(fast, shape).cycles

    def test_volta_full_machine_balance(self):
        machine = volta_full_machine()
        assert machine.num_sms == 14
        assert machine.dram_beat_slots == pytest.approx(14.0)

    def test_dram_bytes_components(self):
        shape = GemmShape(2, 8, 8)
        total = dram_bytes(shape, 16)
        assert total == 2 * 8 * 2 + 8 * 8 * 2 + 2 * 8 * 2


class TestMmaShapes:
    def test_nonsquare_mma_decomposes(self):
        from repro.simt.warp import decompose

        workloads = decompose(MmaShape(32, 8, 16))
        assert len(workloads) == 4
        assert workloads[0].m == 16
        assert workloads[0].n == 4

    def test_macs_property(self):
        assert MmaShape(8, 8, 4).macs == 256


class TestMixGemmBreadth:
    def test_int8_uses_two_weight_segments(self):
        p8 = mixgemm_point(8)
        p4 = mixgemm_point(4)
        assert p8.products_per_cycle == p4.products_per_cycle / 2

    def test_throughput_per_watt_ordering(self):
        # Wider weights always cost Mix-GEMM efficiency.
        assert mixgemm_point(4).throughput_per_watt > mixgemm_point(8).throughput_per_watt


class TestGroupEdgeCases:
    def test_full_matrix_group(self):
        w = np.random.default_rng(0).normal(size=(32, 8))
        qm = quantize_rtn(w, 4, GroupSpec(32, 8))
        assert qm.scales.shape == (1, 1)
        err = np.abs(w - qm.dequantize())
        assert np.all(err <= qm.scales[0, 0] * 0.5 + 1e-12)

    def test_per_element_group(self):
        w = np.random.default_rng(0).normal(size=(8, 4))
        qm = quantize_rtn(w, 4, GroupSpec(1, 1))
        # One scale per element: reconstruction error collapses to the
        # asymmetric-anchor residue (ranges include zero).
        err = np.abs(w - qm.dequantize())
        assert err.max() < np.abs(w).max() * 0.1

    def test_group_row_only(self):
        w = np.random.default_rng(0).normal(size=(8, 16))
        qm = quantize_rtn(w, 4, GroupSpec(1, 16))
        assert qm.scales.shape == (8, 1)
