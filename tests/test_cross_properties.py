"""Cross-module property tests: invariants that span layers.

These are the repository's deepest checks: randomized workloads and
weight matrices driven through multiple subsystems at once, asserting
the relationships the paper's argument depends on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gemm import hyper_gemm
from repro.multiplier.dp import DpConfig, TileWork, cycles_for
from repro.quant.groups import GroupSpec
from repro.quant.packing import PackDim, PackSpec, pack, unpack
from repro.quant.rtn import quantize_rtn
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.octet import simulate_octet
from repro.simt.tensorcore import octet_cycles
from repro.simt.warp import OctetWorkload


@st.composite
def octet_workloads(draw):
    m = draw(st.sampled_from([4, 8, 16]))
    n = draw(st.sampled_from([8, 16, 32]))
    k = draw(st.sampled_from([16, 32, 64]))
    return OctetWorkload(m, n, k)


class TestDataflowDominance:
    @given(octet_workloads(), st.sampled_from([4, 2]))
    @settings(max_examples=60, deadline=None)
    def test_pacq_rf_traffic_never_worse(self, work, bits):
        """PacQ's n-packing beats k-packing on RF beats for every
        tileable workload — the Fig. 7(a) claim, generalized."""
        packed_k = simulate_octet(FlowConfig(FlowKind.PACKED_K, bits), work)
        ours = simulate_octet(FlowConfig(FlowKind.PACQ, bits), work)
        assert ours.rf_total <= packed_k.rf_total

    @given(octet_workloads(), st.sampled_from([4, 2]))
    @settings(max_examples=60, deadline=None)
    def test_pacq_cycles_never_worse(self, work, bits):
        flow_k = FlowConfig(FlowKind.PACKED_K, bits)
        flow_n = FlowConfig(FlowKind.PACQ, bits)
        cycles_k = octet_cycles(flow_k, simulate_octet(flow_k, work))
        cycles_n = octet_cycles(flow_n, simulate_octet(flow_n, work))
        assert cycles_n <= cycles_k

    @given(octet_workloads(), st.sampled_from([4, 2]))
    @settings(max_examples=60, deadline=None)
    def test_all_flows_conserve_macs(self, work, bits):
        for kind in (FlowKind.STANDARD_DEQUANT, FlowKind.PACKED_K, FlowKind.PACQ):
            flow_bits = 16 if kind is FlowKind.STANDARD_DEQUANT else bits
            trace = simulate_octet(FlowConfig(kind, flow_bits), work)
            assert trace.products == work.macs

    @given(octet_workloads())
    @settings(max_examples=40, deadline=None)
    def test_fetch_instruction_overhead_of_k_packing(self, work):
        """Fig. 4(a): k-packing always issues more A-fetch instructions."""
        packed_k = simulate_octet(FlowConfig(FlowKind.PACKED_K, 4), work)
        ours = simulate_octet(FlowConfig(FlowKind.PACQ, 4), work)
        assert packed_k.fetch_instructions > ours.fetch_instructions


class TestCycleModelProperties:
    @given(
        st.integers(1, 128),
        st.sampled_from([4, 8, 16, 32]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 4, 8]),
    )
    @settings(max_examples=200)
    def test_cycles_monotone_in_work(self, outputs, k, dup, pack):
        config = DpConfig(4, pack, dup)
        small = cycles_for(config, TileWork(outputs, k)).total
        bigger = cycles_for(config, TileWork(outputs + 1, k)).total
        assert bigger >= small

    @given(st.integers(1, 64), st.sampled_from([4, 8, 16]))
    @settings(max_examples=100)
    def test_throughput_bounded_by_multiplier_peak(self, outputs, k):
        config = DpConfig(4, 4, 8)
        work = TileWork(outputs, k)
        total = cycles_for(config, work).total
        assert work.products / total <= 4 * 4  # width * pack peak


class TestQuantizePackExecute:
    @given(st.integers(0, 10**6), st.sampled_from([4, 2]))
    @settings(max_examples=50, deadline=None)
    def test_pack_roundtrip_on_quantizer_output(self, seed, bits):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(16, 16))
        qm = quantize_rtn(w, bits=bits, group=GroupSpec(8, 4))
        for dim in (PackDim.K, PackDim.N):
            packed = pack(qm.signed_codes(), PackSpec(bits, dim))
            assert np.array_equal(unpack(packed), qm.signed_codes())

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_gemm_scale_equivariance(self, seed):
        """Scaling the weights scales the outputs (through quantizer
        rescaling, the GEMM is homogeneous)."""
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(16, 8))
        a = rng.normal(size=(2, 16))
        qm1 = quantize_rtn(w, 4, GroupSpec(8, 4))
        qm2 = quantize_rtn(2 * w, 4, GroupSpec(8, 4))
        out1 = hyper_gemm(a, qm1)
        out2 = hyper_gemm(a, qm2)
        assert np.allclose(out2, 2 * out1, rtol=1e-9, atol=1e-9)

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_gemm_additive_in_batch_rows(self, seed):
        """Row i of the output depends only on row i of A."""
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(16, 8))
        qm = quantize_rtn(w, 4, GroupSpec(8, 4))
        a = rng.normal(size=(3, 16))
        full = hyper_gemm(a, qm)
        for i in range(3):
            row = hyper_gemm(a[i : i + 1], qm)
            assert np.allclose(row[0], full[i], rtol=1e-12, atol=1e-12)
