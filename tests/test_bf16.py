"""Tests for the BF16 extension (codec + parallel multiplier)."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.fp import bf16
from repro.fp.bf16 import bf16_mul
from repro.multiplier.parallel_bf16 import (
    TRANSFORM_EXPONENT,
    parallel_bf16_int_mul,
    reference_products,
    transform_offset,
    transformed_weight_bits,
)


def _f32_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bf16_via_f32(value: float) -> int:
    """Reference encoder: float32 with RNE truncation to 16 bits."""
    if math.isnan(value):
        return bf16.NAN
    bits = _f32_bits(np.float32(value))
    low = bits & 0xFFFF
    bits >>= 16
    if low > 0x8000 or (low == 0x8000 and bits & 1):
        bits += 1
    # Rounding into inf is handled naturally by the carry.
    return bits & 0xFFFF


class TestCodec:
    def test_one(self):
        assert bf16.to_float(bf16.from_float(1.0)) == 1.0
        assert bf16.from_float(1.0) == 0x3F80

    def test_specials(self):
        assert bf16.is_inf(bf16.POS_INF)
        assert bf16.is_nan(bf16.NAN)
        assert bf16.to_float(bf16.NEG_INF) == -math.inf

    def test_roundtrip_all_finite(self):
        for exponent in range(0, 255, 7):
            for mantissa in range(0, 128, 3):
                for sign in (0, 1):
                    bits = bf16.combine(sign, exponent, mantissa)
                    if bf16.is_nan(bits) or bf16.is_inf(bits):
                        continue
                    assert bf16.from_float(bf16.to_float(bits)) == bits

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=500)
    def test_encode_matches_float32_truncation(self, value):
        assert bf16.from_float(value) == _bf16_via_f32(value)

    def test_overflow_to_inf(self):
        assert bf16.from_float(1e40) == bf16.POS_INF

    def test_subnormals_exist(self):
        tiny = 2.0 ** (1 - 127 - 7)
        bits = bf16.from_float(tiny)
        assert not bf16.is_normalized(bits)
        assert bf16.to_float(bits) == tiny

    def test_int_exact_window(self):
        for value in range(128, 256):
            assert bf16.to_float(bf16.from_int_exact(value)) == float(value)

    def test_int_exact_rejects_inexact(self):
        with pytest.raises(EncodingError):
            bf16.from_int_exact(257)

    def test_field_validation(self):
        with pytest.raises(EncodingError):
            bf16.combine(2, 0, 0)
        with pytest.raises(EncodingError):
            bf16.split(1 << 16)


class TestBf16Mul:
    def _reference_mul(self, a_bits: int, b_bits: int) -> int:
        a = np.float32(bf16.to_float(a_bits))
        b = np.float32(bf16.to_float(b_bits))
        with np.errstate(all="ignore"):
            product = a * b  # exact: 8-bit x 8-bit significands
        return _bf16_via_f32(float(product))

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=2000)
    def test_matches_float32_oracle(self, a, b):
        got = bf16_mul(a, b)
        if bf16.is_nan(a) or bf16.is_nan(b):
            assert bf16.is_nan(got)
            return
        ref = self._reference_mul(a, b)
        if bf16.is_nan(ref):
            assert bf16.is_nan(got)
        else:
            assert got == ref, f"{a:04x}*{b:04x}: got {got:04x} want {ref:04x}"

    def test_inf_times_zero_is_nan(self):
        assert bf16.is_nan(bf16_mul(bf16.POS_INF, bf16.POS_ZERO))

    def test_signed_zero(self):
        assert bf16_mul(bf16.from_float(1.0), bf16.NEG_ZERO) == bf16.NEG_ZERO


class TestParallelBf16:
    def test_transform_offsets(self):
        assert transform_offset(4) == 136
        assert transform_offset(2) == 130

    def test_transformed_weight_structure(self):
        for code in range(-8, 8):
            bits = transformed_weight_bits(code, 4)
            sign, exponent, mantissa = bf16.split(bits)
            assert (sign, exponent, mantissa) == (0, TRANSFORM_EXPONENT, code + 8)

    def test_exhaustive_mantissas_int4(self):
        lane_groups = [list(range(-8, -4)), list(range(-4, 0)),
                       list(range(0, 4)), list(range(4, 8))]
        for exponent in (1, 64, 127, 200, 254):
            for mantissa in range(128):
                a = bf16.combine(0, exponent, mantissa)
                for codes in lane_groups:
                    got = parallel_bf16_int_mul(a, codes, 4)
                    assert list(got.products) == reference_products(a, codes, 4)

    @given(st.integers(0, 0xFFFF), st.lists(st.integers(-8, 7), min_size=1, max_size=4))
    @settings(max_examples=1000)
    def test_property_int4(self, a, codes):
        got = parallel_bf16_int_mul(a, codes, 4)
        ref = reference_products(a, codes, 4)
        for g, r in zip(got.products, ref, strict=False):
            if bf16.is_nan(r):
                assert bf16.is_nan(g)
            else:
                assert g == r

    @given(st.integers(0, 0xFFFF), st.lists(st.integers(-2, 1), min_size=1, max_size=8))
    @settings(max_examples=600)
    def test_property_int2(self, a, codes):
        got = parallel_bf16_int_mul(a, codes, 2)
        assert list(got.products) == reference_products(a, codes, 2)

    def test_correction_recovers_signed_product(self):
        a = 0.25
        a_bits = bf16.from_float(a)
        for code in range(-8, 8):
            got = parallel_bf16_int_mul(a_bits, [code], 4)
            product = bf16.to_float(got.products[0])
            assert product - 136 * a == pytest.approx(a * code, abs=1e-9)

    def test_validation(self):
        with pytest.raises(EncodingError):
            parallel_bf16_int_mul(0x3F80, [], 4)
        with pytest.raises(EncodingError):
            parallel_bf16_int_mul(0x3F80, [9], 4)
        with pytest.raises(EncodingError):
            parallel_bf16_int_mul(0x3F80, [0] * 5, 4)
