"""Tests for the area model and extension experiments."""

import pytest

from repro.core.extensions import (
    EXTENSION_EXPERIMENTS,
    area_experiment,
    batch_sweep_experiment,
    motivation_experiment,
    roofline_experiment,
)
from repro.energy.area import (
    area_of,
    area_overhead_vs_baseline,
    throughput_per_area,
)
from repro.energy.units import (
    fp16_mul_baseline,
    fp_int16_mul_parallel,
    int11_mul_baseline,
    int11_mul_parallel,
)
from repro.errors import ConfigError


class TestAreaModel:
    def test_parallel_units_larger_than_baselines(self):
        assert (
            area_of(int11_mul_parallel()).total_ge
            > area_of(int11_mul_baseline()).total_ge
        )
        assert (
            area_of(fp_int16_mul_parallel(4)).total_ge
            > area_of(fp16_mul_baseline()).total_ge
        )

    def test_baseline_units_fully_reused(self):
        report = area_of(fp16_mul_baseline())
        assert report.reuse_fraction == pytest.approx(1.0)
        assert report.extra_ge == pytest.approx(0.0)

    def test_area_reuse_tracks_power_reuse(self):
        # Same inventory, different per-category rates: the area reuse
        # fraction should land near the paper's ~75 % power figure.
        report = area_of(int11_mul_parallel())
        assert report.reuse_fraction == pytest.approx(0.745, abs=0.15)

    def test_overheads_are_modest(self):
        # The efficiency story: each PacQ unit adds well under 1x area.
        overheads = area_overhead_vs_baseline()
        assert set(overheads) == {"INT11 MUL", "FP-INT-16 MUL", "DP-4"}
        for name, overhead in overheads.items():
            assert 0.0 < overhead < 1.0, name

    def test_dp4_overhead_is_largest(self):
        # Duplicated adder trees make the DP the least-reused unit,
        # mirroring Fig. 9's ordering.
        overheads = area_overhead_vs_baseline()
        assert overheads["DP-4"] > overheads["FP-INT-16 MUL"] > overheads["INT11 MUL"]

    def test_throughput_per_area_favours_parallel_mul(self):
        base = throughput_per_area(1.0, fp16_mul_baseline())
        ours = throughput_per_area(4.0, fp_int16_mul_parallel(4))
        assert ours > base

    def test_empty_unit_rejected(self):
        from repro.energy.units import UnitCost

        with pytest.raises(ConfigError):
            area_of(UnitCost("empty")).reuse_fraction


class TestExtensionExperiments:
    def test_registry(self):
        assert set(EXTENSION_EXPERIMENTS) == {
            "batch_sweep",
            "roofline",
            "area",
            "motivation",
            "spec_decode",
            "codesign",
        }

    def test_motivation_reproduces_fig1_story(self):
        result = motivation_experiment()
        rows = {r.label: r.measured for r in result.rows}
        mem_dequant = rows["batch 16 (memory-bound): dequant INT4 vs W16A16"]
        mem_pacq = rows["batch 16 (memory-bound): PacQ INT4 vs W16A16"]
        cpu_dequant = rows["batch 256 (compute-bound): dequant INT4 vs W16A16"]
        cpu_pacq = rows["batch 256 (compute-bound): PacQ INT4 vs W16A16"]
        # Memory-bound: quantization alone wins ~4x; PacQ adds nothing.
        assert mem_dequant == pytest.approx(3.9, abs=0.3)
        assert mem_pacq == pytest.approx(mem_dequant, rel=0.05)
        # Compute-bound: quantization alone wins nothing; PacQ wins ~2x.
        assert cpu_dequant == pytest.approx(1.0, abs=0.05)
        assert cpu_pacq == pytest.approx(1.955, abs=0.05)

    def test_batch_sweep_speedup_stable(self):
        result = batch_sweep_experiment(batches=(16, 64))
        speedups = [r.measured for r in result.rows if "speedup" in r.label]
        assert all(s == pytest.approx(1.955, abs=0.05) for s in speedups)

    def test_batch_sweep_edp_reduction_positive(self):
        result = batch_sweep_experiment(batches=(16, 64))
        cuts = [r.measured for r in result.rows if "EDP" in r.label]
        assert all(0.4 < c < 0.9 for c in cuts)

    def test_roofline_single_batch_memory_bound(self):
        result = roofline_experiment(batches=(1, 256))
        batch1 = [r for r in result.rows if r.label.startswith("batch 1 ")]
        assert batch1
        assert all("memory-bound" in r.label for r in batch1)

    def test_roofline_large_batch_compute_bound(self):
        result = roofline_experiment(batches=(1, 256))
        batch256 = [r for r in result.rows if r.label.startswith("batch 256")]
        assert batch256
        assert all("compute-bound" in r.label for r in batch256)

    def test_area_experiment_rows(self):
        result = area_experiment()
        assert len(result.rows) == 3
        assert all(0 < r.measured < 1 for r in result.rows)

    def test_cli_runs_extensions(self, capsys):
        from repro.cli import main

        assert main(["area"]) == 0
        assert "area overhead" in capsys.readouterr().out
