"""Tests for SIMT building blocks: instructions, warps, buffers, flows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.simt.buffers import OperandBuffer
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.instruction import MMA_M16N16K16, MmaShape
from repro.simt.warp import decompose


class TestInstruction:
    def test_name(self):
        assert MMA_M16N16K16.name == "mma.sync.m16n16k16"

    def test_macs(self):
        assert MMA_M16N16K16.macs == 16**3

    def test_outputs(self):
        assert MMA_M16N16K16.outputs == 256

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            MmaShape(0, 16, 16)


class TestWarpDecomposition:
    def test_four_octets(self):
        assert len(decompose(MMA_M16N16K16)) == 4

    def test_quadrants_cover_c(self):
        workloads = decompose(MMA_M16N16K16)
        offsets = {(w.m_offset, w.n_offset) for w in workloads}
        assert offsets == {(0, 0), (0, 8), (8, 0), (8, 8)}

    def test_each_octet_gets_full_k(self):
        for w in decompose(MMA_M16N16K16):
            assert w.k == 16

    def test_macs_conserved(self):
        workloads = decompose(MMA_M16N16K16)
        assert sum(w.macs for w in workloads) == MMA_M16N16K16.macs

    def test_rejects_odd_shapes(self):
        with pytest.raises(ConfigError):
            decompose(MmaShape(15, 16, 16))

    def test_octet_outputs(self):
        assert decompose(MMA_M16N16K16)[0].outputs == 64


class TestOperandBuffer:
    def test_miss_then_hit(self):
        buf = OperandBuffer("t", 2)
        assert buf.access("a") is False
        assert buf.access("a") is True

    def test_eviction_at_capacity(self):
        buf = OperandBuffer("t", 2)
        buf.access("a")
        buf.access("b")
        buf.access("c")  # evicts a
        assert buf.stats.evictions == 1
        assert not buf.resident("a")
        assert buf.resident("c")

    def test_lru_order(self):
        buf = OperandBuffer("t", 2)
        buf.access("a")
        buf.access("b")
        buf.access("a")  # refresh a
        buf.access("c")  # evicts b, not a
        assert buf.resident("a")
        assert not buf.resident("b")

    def test_invalidate(self):
        buf = OperandBuffer("t", 4)
        buf.access("a")
        buf.invalidate()
        assert buf.occupancy() == 0
        assert buf.access("a") is False

    def test_hit_rate(self):
        buf = OperandBuffer("t", 4)
        buf.access("a")
        buf.access("a")
        assert buf.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert OperandBuffer("t", 1).stats.hit_rate == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            OperandBuffer("t", 0)

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=200), st.integers(1, 8))
    @settings(max_examples=150)
    def test_accounting_invariants(self, keys, capacity):
        buf = OperandBuffer("t", capacity)
        for key in keys:
            buf.access(key)
        assert buf.stats.accesses == len(keys)
        assert buf.stats.hits + buf.stats.misses == len(keys)
        assert buf.occupancy() <= capacity
        assert buf.stats.evictions == buf.stats.misses - buf.occupancy()


class TestFlowConfig:
    def test_standard_allows_fp16(self):
        assert FlowConfig(FlowKind.STANDARD_DEQUANT, 16).pack_factor == 1

    def test_standard_allows_int4(self):
        flow = FlowConfig(FlowKind.STANDARD_DEQUANT, 4)
        assert flow.pack_factor == 4
        assert not flow.weights_packed_in_rf

    def test_packed_k_requires_low_precision(self):
        with pytest.raises(ConfigError):
            FlowConfig(FlowKind.PACKED_K, 16)

    def test_pacq_properties(self):
        flow = FlowConfig(FlowKind.PACQ, 2)
        assert flow.pack_factor == 8
        assert flow.weights_packed_in_rf
        assert flow.uses_parallel_multiplier

    def test_packed_k_cannot_use_parallel_multiplier(self):
        assert not FlowConfig(FlowKind.PACKED_K, 4).uses_parallel_multiplier

    def test_labels(self):
        assert FlowConfig(FlowKind.PACKED_K, 4).label == "P(B4)k"
        assert FlowConfig(FlowKind.PACQ, 2).label == "PacQ P(B8)n"
        assert "W16A16" in FlowConfig(FlowKind.STANDARD_DEQUANT, 16).label
        assert "dequant" in FlowConfig(FlowKind.STANDARD_DEQUANT, 4).label
