"""Tests for KV-cached decoding and inference sessions (repro.model)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.bigram import make_bigram_lm
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.transformer import (
    Decoder,
    KVCache,
    TransformerConfig,
    init_weights,
    quantize_weights,
)
from repro.model import (
    InferenceSession,
    QuantPolicy,
    parse_policy,
    quantize_model,
)
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    tokens = np.random.default_rng(0).integers(0, config.vocab, size=24)
    policy = parse_policy("layer*.w_gate=int2@g[8,4];*=int4@g[8,4]")
    qmodel = quantize_model(weights, policy, config=config)
    return config, weights, tokens, qmodel


class TestKvCacheBitIdentity:
    """prefill + N x decode_step must equal forward bit-for-bit."""

    #: Engine backends whose kernels compute each activation row
    #: independently of the batch ("reference" is BLAS-backed and
    #: carries no such guarantee).
    BACKENDS = ("fast", "batched", "bitexact")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_steps_match_forward(self, setup, backend):
        config, weights, tokens, qmodel = setup
        n = 8 if backend == "bitexact" else tokens.shape[0]
        toks = tokens[:n]
        decoder = Decoder(config, weights, qmodel, backend=backend)
        full = decoder.forward(toks)
        cache = decoder.init_cache()
        prefill = decoder.prefill(toks[:3], cache)
        assert np.array_equal(prefill, full[:3])
        for i, token in enumerate(toks[3:]):
            step = decoder.decode_step(int(token), cache)
            assert np.array_equal(step, full[3 + i]), (backend, i)

    def test_single_token_prefill_and_long_offsets(self, setup):
        # RoPE offsets exercised far from zero: prefill one token, then
        # step through a long tail one position at a time.
        config, weights, tokens, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        full = decoder.forward(tokens)
        cache = decoder.init_cache()
        decoder.prefill(tokens[:1], cache)
        for i, token in enumerate(tokens[1:]):
            step = decoder.decode_step(int(token), cache)
            assert np.array_equal(step, full[1 + i])

    def test_fp16_fallback_path(self, setup):
        config, weights, tokens, _ = setup
        decoder = Decoder(config, weights)  # no quantized layers at all
        full = decoder.forward(tokens)
        cache = decoder.init_cache()
        decoder.prefill(tokens[:5], cache)
        for i, token in enumerate(tokens[5:]):
            assert np.array_equal(
                decoder.decode_step(int(token), cache), full[5 + i]
            )

    def test_partial_quantization_path(self, setup):
        config, weights, tokens, _ = setup
        q = quantize_weights(weights, bits=4, group=GroupSpec(8, 4))
        only_attn = {k: v for k, v in q.items() if ".w" in k and "w_" not in k}
        decoder = Decoder(config, weights, only_attn)
        full = decoder.forward(tokens)
        cache = decoder.init_cache()
        decoder.prefill(tokens[:4], cache)
        for i, token in enumerate(tokens[4:]):
            assert np.array_equal(
                decoder.decode_step(int(token), cache), full[4 + i]
            )

    def test_cache_misuse_rejected(self, setup):
        config, weights, tokens, qmodel = setup
        decoder = Decoder(config, weights, qmodel)
        cache = decoder.init_cache()
        with pytest.raises(ConfigError):
            decoder.decode_step(1, cache)  # decode before prefill
        decoder.prefill(tokens[:3], cache)
        with pytest.raises(ConfigError):
            decoder.prefill(tokens[:3], cache)  # prefill into used cache

    def test_cache_capacity_enforced(self, setup):
        config, weights, tokens, qmodel = setup
        decoder = Decoder(config, weights, qmodel)
        cache = KVCache(config, capacity=4)
        decoder.prefill(tokens[:4], cache)
        with pytest.raises(ConfigError):
            decoder.decode_step(1, cache)


class TestInferenceSession:
    def test_greedy_matches_repeated_full_forward(self, setup):
        config, weights, tokens, qmodel = setup
        session = InferenceSession(qmodel, backend="fast")
        result = session.generate(tokens[:6], 10)

        decoder = Decoder(config, weights, qmodel, backend="fast")
        seq = list(tokens[:6])
        for _ in range(10):
            logits = decoder.forward(np.asarray(seq))
            seq.append(int(np.argmax(logits[-1])))
        assert np.array_equal(result.tokens, np.asarray(seq))
        assert result.prompt_length == 6
        assert result.new_tokens.shape == (10,)

    def test_top_k_reproducible_per_seed(self, setup):
        _, _, tokens, qmodel = setup
        session = InferenceSession(qmodel)
        a = session.generate(tokens[:4], 8, top_k=5, seed=3)
        b = session.generate(tokens[:4], 8, top_k=5, seed=3)
        assert np.array_equal(a.tokens, b.tokens)

    def test_generation_limits_enforced(self, setup):
        config, _, tokens, qmodel = setup
        session = InferenceSession(qmodel)
        long_prompt = np.arange(config.max_seq) % config.vocab
        with pytest.raises(ConfigError):
            session.generate(long_prompt, 1)
        with pytest.raises(ConfigError):
            session.generate(tokens[:4], 0)
        with pytest.raises(ConfigError):
            session.generate(np.asarray([config.vocab]), 4)
        with pytest.raises(ConfigError):
            session.generate(tokens[:4], 4, top_k=0)
        fresh = InferenceSession(qmodel)
        with pytest.raises(ConfigError):
            fresh.decode_step(1)  # before any prefill

    def test_decode_step_validates_token_range(self, setup):
        config, _, tokens, qmodel = setup
        session = InferenceSession(qmodel)
        session.prefill(tokens[:3])
        with pytest.raises(ConfigError):
            session.decode_step(-5)
        with pytest.raises(ConfigError):
            session.decode_step(config.vocab)

    def test_non_integer_prompt_rejected(self, setup):
        _, _, _, qmodel = setup
        session = InferenceSession(qmodel)
        with pytest.raises(ConfigError):
            session.prefill(np.asarray([0.5, 1.2]))

    def test_telemetry_counts_linears(self, setup):
        config, _, tokens, qmodel = setup
        session = InferenceSession(qmodel)
        session.generate(tokens[:5], 4)
        # 7 linears per layer; prefill is one call each, plus one call
        # per decoded-but-not-final token (the last token is sampled
        # without a further step).
        calls_per_site = 1 + 3
        expected_sites = 7 * config.n_layers
        assert len(session.telemetry.stats) == expected_sites
        assert session.telemetry.gemm_calls == expected_sites * calls_per_site
        stat = session.telemetry.stats["layer0.wq"]
        assert stat.rows == 5 + 3  # prefill rows + one row per step
        assert stat.macs == stat.rows * stat.n * stat.k
        assert session.telemetry.total_weight_bytes > 0
        shapes = dict(session.telemetry.gemm_shapes())
        assert shapes["layer0.wq"].m == stat.rows

    def test_telemetry_shapes_price_through_cost_model(self, setup):
        from repro.core import evaluate, pacq

        _, _, tokens, qmodel = setup
        session = InferenceSession(qmodel)
        session.generate(tokens[:4], 3)
        name, shape = session.telemetry.gemm_shapes(pad_to=16)[0]
        assert shape.m % 16 == 0 and shape.n % 16 == 0 and shape.k % 16 == 0
        result = evaluate(pacq(4), shape)
        assert result.cycles > 0 and result.energy.on_chip > 0


class TestMatrixSession:
    def test_matches_plan_execution(self):
        lm = make_bigram_lm(vocab=32, d_model=64)
        qhead = quantize_rtn(lm.head, bits=4, group=GroupSpec(16, 4))
        tokens = np.arange(16) % lm.vocab
        direct = lm.logits_quantized(tokens, qhead, mode="fast")
        session = lm.serve(qhead, backend="fast")
        via_session = session(lm.embedding[tokens])
        assert np.array_equal(direct, via_session)
        assert session.telemetry.gemm_calls == 1
        assert session.telemetry.stats["head"].rows == 16

    def test_awq_layer_scales_applied(self):
        lm = make_bigram_lm(vocab=32, d_model=64)
        calibration = {
            "head": np.abs(lm.embedding.astype(np.float64)).mean(axis=0)
        }
        model = quantize_model(
            {"head": lm.head},
            QuantPolicy.uniform(bits=2, group=GroupSpec(16, 4), algorithm="awq"),
            calibration=calibration,
        )
        layer = model.layers["head"]
        tokens = np.arange(8)
        out = lm.serve(layer)(lm.embedding[tokens])
        assert np.all(np.isfinite(out))
        if layer.channel_scales is not None:
            # The session must divide activations by the equalization
            # scales; executing the raw activations differs.
            raw = lm.serve(layer.matrix)(lm.embedding[tokens])
            assert not np.array_equal(out, raw)

    def test_perplexity_accepts_policy_layer(self):
        lm = make_bigram_lm(vocab=32, d_model=64)
        tokens = np.random.default_rng(0).integers(0, 32, size=128)
        model = quantize_model(
            {"head": lm.head}, QuantPolicy.uniform(bits=4, group=GroupSpec(16, 4))
        )
        via_layer = evaluate_perplexity(
            lm, tokens, quantized=model.layers["head"]
        )
        via_matrix = evaluate_perplexity(
            lm, tokens, quantized=model.layers["head"].matrix
        )
        assert via_layer == via_matrix
