"""Tests for P(Bx)y bit-packing (repro.quant.packing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.packing import (
    PackDim,
    PackSpec,
    pack,
    pack_word,
    unpack,
    unpack_word,
)


def _codes(k, n, bits, seed=0):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return np.random.default_rng(seed).integers(lo, hi + 1, size=(k, n)).astype(np.int16)


class TestSpec:
    def test_elems_per_word(self):
        assert PackSpec(4, PackDim.K).elems_per_word == 4
        assert PackSpec(2, PackDim.N).elems_per_word == 8

    def test_labels_match_paper_notation(self):
        assert PackSpec(4, PackDim.K).label == "P(B4)k"
        assert PackSpec(2, PackDim.N).label == "P(B8)n"

    def test_rebias(self):
        assert PackSpec(4, PackDim.K).rebias == 8
        assert PackSpec(2, PackDim.K).rebias == 2

    def test_rejects_non_tiling_width(self):
        with pytest.raises(QuantizationError):
            PackSpec(3, PackDim.K)


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [2, 4])
    @pytest.mark.parametrize("dim", [PackDim.K, PackDim.N])
    def test_pack_unpack_identity(self, bits, dim):
        codes = _codes(16, 16, bits)
        packed = pack(codes, PackSpec(bits, dim))
        assert np.array_equal(unpack(packed), codes)

    def test_packed_shape_k(self):
        packed = pack(_codes(16, 8, 4), PackSpec(4, PackDim.K))
        assert packed.words.shape == (4, 8)

    def test_packed_shape_n(self):
        packed = pack(_codes(16, 8, 4), PackSpec(4, PackDim.N))
        assert packed.words.shape == (16, 2)

    def test_storage_is_quarter_of_fp16_for_int4(self):
        packed = pack(_codes(16, 16, 4), PackSpec(4, PackDim.N))
        assert packed.storage_bits() == 16 * 16 * 4

    @given(st.integers(0, 2**32), st.sampled_from([2, 4]))
    @settings(max_examples=200)
    def test_roundtrip_property(self, seed, bits):
        codes = _codes(8, 8, bits, seed=seed % 1000)
        for dim in (PackDim.K, PackDim.N):
            packed = pack(codes, PackSpec(bits, dim))
            assert np.array_equal(unpack(packed), codes)


class TestWordLayout:
    def test_first_element_in_lsb(self):
        codes = np.array([[-8], [0], [1], [7]], dtype=np.int16)  # k-major
        packed = pack(codes, PackSpec(4, PackDim.K))
        word = int(packed.words[0, 0])
        # Unsigned fields: 0, 8, 9, 15 from LSB up.
        assert word & 0xF == 0
        assert (word >> 4) & 0xF == 8
        assert (word >> 8) & 0xF == 9
        assert (word >> 12) & 0xF == 15

    def test_n_packing_orders_along_n(self):
        codes = np.array([[-8, 0, 1, 7]], dtype=np.int16)
        packed = pack(codes, PackSpec(4, PackDim.N))
        assert unpack_word(int(packed.words[0, 0]), PackSpec(4, PackDim.N)) == [
            -8,
            0,
            1,
            7,
        ]

    def test_word_dtype_is_uint16(self):
        packed = pack(_codes(8, 8, 4), PackSpec(4, PackDim.K))
        assert packed.words.dtype == np.uint16


class TestValidation:
    def test_rejects_out_of_range_codes(self):
        codes = np.full((4, 4), 9, dtype=np.int16)
        with pytest.raises(QuantizationError):
            pack(codes, PackSpec(4, PackDim.K))

    def test_rejects_ragged_k(self):
        with pytest.raises(QuantizationError):
            pack(_codes(6, 4, 4), PackSpec(4, PackDim.K))

    def test_rejects_ragged_n(self):
        with pytest.raises(QuantizationError):
            pack(_codes(4, 6, 4), PackSpec(4, PackDim.N))

    def test_rejects_non_2d(self):
        with pytest.raises(QuantizationError):
            pack(np.zeros(8, dtype=np.int16), PackSpec(4, PackDim.K))


class TestScalarHelpers:
    def test_pack_word_roundtrip(self):
        spec = PackSpec(4, PackDim.N)
        codes = [-8, -1, 0, 7]
        assert unpack_word(pack_word(codes, spec), spec) == codes

    def test_pack_word_int2(self):
        spec = PackSpec(2, PackDim.N)
        codes = [-2, -1, 0, 1, -2, 1, 0, -1]
        assert unpack_word(pack_word(codes, spec), spec) == codes

    def test_pack_word_rejects_overflow_count(self):
        spec = PackSpec(4, PackDim.N)
        with pytest.raises(QuantizationError):
            pack_word([0] * 5, spec)

    def test_pack_word_rejects_out_of_range(self):
        spec = PackSpec(4, PackDim.N)
        with pytest.raises(QuantizationError):
            pack_word([8], spec)

    @given(st.lists(st.integers(-8, 7), min_size=1, max_size=4))
    def test_pack_word_property(self, codes):
        spec = PackSpec(4, PackDim.N)
        word = pack_word(codes, spec)
        assert 0 <= word < (1 << 16)
        unpacked = unpack_word(word, spec)
        assert unpacked[: len(codes)] == codes
