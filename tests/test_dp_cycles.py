"""Tests for the DP-unit cycle model (repro.multiplier.dp).

Anchors: the paper quotes the baseline FP16 DP-4 at 11 cycles for 8
outputs (m2n4k4) and the parallel design at 19 cycles / 32 outputs
(INT4) and 35 cycles / 64 outputs (INT2); the cycle model must
reproduce these exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.multiplier.dp import (
    BASELINE_DP4,
    PACQ_DP4_INT2,
    PACQ_DP4_INT4,
    PIPELINE_FILL,
    DpConfig,
    TileWork,
    corrected_dot,
    corrected_dot_reference,
    cycles_for,
    fig8_dp4_workload,
    packed_outputs,
    pacq_dp,
    throughput,
)


class TestPaperAnchors:
    def test_baseline_dp4_11_cycles_for_8_outputs(self):
        work = fig8_dp4_workload()
        assert work.outputs == 8
        assert cycles_for(BASELINE_DP4, work).total == 11

    def test_pacq_int4_19_cycles_for_32_outputs(self):
        work = packed_outputs(fig8_dp4_workload(), 4)
        assert work.outputs == 32
        assert cycles_for(PACQ_DP4_INT4, work).total == 19

    def test_pacq_int2_35_cycles_for_64_outputs(self):
        work = packed_outputs(fig8_dp4_workload(), 8)
        assert work.outputs == 64
        assert cycles_for(PACQ_DP4_INT2, work).total == 35

    def test_inner_product_of_16_in_2_cycles_int4(self):
        # Paper: doubled adder trees accumulate 16 values in 2 cycles
        # for INT4 (4 outputs x k=4 from one packed word).
        breakdown = cycles_for(PACQ_DP4_INT4, TileWork(outputs=4, k=4))
        assert breakdown.adder_cycles == 2

    def test_inner_product_of_32_in_4_cycles_int2(self):
        breakdown = cycles_for(PACQ_DP4_INT2, TileWork(outputs=8, k=4))
        assert breakdown.adder_cycles == 4


class TestCycleModel:
    def test_bottleneck_labels(self):
        mul_bound = cycles_for(DpConfig(4, 1, 8), TileWork(8, 4))
        assert mul_bound.bottleneck == "multiplier"
        adder_bound = cycles_for(PACQ_DP4_INT4, TileWork(32, 4))
        assert adder_bound.bottleneck == "adder-tree"

    def test_fill_is_constant(self):
        assert cycles_for(BASELINE_DP4, TileWork(1, 4)).fill_cycles == PIPELINE_FILL

    def test_total_is_fill_plus_max(self):
        b = cycles_for(BASELINE_DP4, TileWork(8, 4))
        assert b.total == PIPELINE_FILL + max(b.mul_cycles, b.adder_cycles)

    @given(
        st.integers(1, 64),
        st.integers(1, 64),
        st.integers(1, 4).map(lambda x: 2**x),
    )
    @settings(max_examples=200)
    def test_more_dup_never_slower(self, outputs, k, dup):
        work = TileWork(outputs, k)
        base = cycles_for(DpConfig(4, 4, dup), work).total
        more = cycles_for(DpConfig(4, 4, dup * 2), work).total
        assert more <= base

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=200)
    def test_packing_never_slower(self, outputs, k):
        work = TileWork(outputs, k)
        serial = cycles_for(DpConfig(4, 1, 2), work).total
        packed = cycles_for(DpConfig(4, 4, 2), work).total
        assert packed <= serial

    def test_throughput_monotone_in_outputs(self):
        small = throughput(BASELINE_DP4, TileWork(4, 4))
        large = throughput(BASELINE_DP4, TileWork(64, 4))
        assert large > small  # fill amortizes

    def test_pacq_speedup_is_two_when_adder_bound(self):
        # The headline ~2x of Fig. 7(b): dup-2 trees double the rate.
        work = TileWork(outputs=256, k=16)
        base = cycles_for(DpConfig(4, 1, 1), work).total
        ours = cycles_for(DpConfig(4, 4, 2), work).total
        assert base / ours == pytest.approx(2.0, rel=0.02)


class TestConfig:
    def test_pacq_dp_int4(self):
        assert pacq_dp(4) == DpConfig(4, 4, 2)

    def test_pacq_dp_int2(self):
        assert pacq_dp(2) == DpConfig(4, 8, 2)

    def test_pacq_dp_wide(self):
        assert pacq_dp(4, width=8, dup=4) == DpConfig(8, 4, 4)

    def test_pacq_dp_rejects_bad_bits(self):
        with pytest.raises(ConfigError):
            pacq_dp(8)

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ConfigError):
            DpConfig(0, 1, 1)
        with pytest.raises(ConfigError):
            TileWork(0, 4)

    def test_fp16_adder_count_matches_table1(self):
        assert BASELINE_DP4.fp16_adders == 4
        assert PACQ_DP4_INT4.fp16_adders == 8

    def test_names(self):
        assert "DP-4" in BASELINE_DP4.name
        assert "x4" in PACQ_DP4_INT4.name


class TestCorrectedDot:
    @given(
        st.lists(st.floats(-4, 4), min_size=1, max_size=32),
        st.integers(0, 10**6),
        st.sampled_from([2, 4]),
    )
    @settings(max_examples=300)
    def test_matches_direct_inner_product(self, a_values, seed, bits):
        import random

        rng = random.Random(seed)
        offset = 1 << (bits - 1)
        codes = [rng.randrange(-offset, offset) for _ in a_values]
        scale = 0.037
        got = corrected_dot(a_values, codes, scale, bits)
        ref = corrected_dot_reference(a_values, codes, scale)
        assert got == pytest.approx(ref, abs=1e-6 * max(1.0, abs(ref)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigError):
            corrected_dot([1.0], [1, 2], 1.0, 4)

    def test_zero_scale_zeroes_output(self):
        assert corrected_dot([1.0, 2.0], [3, -3], 0.0, 4) == 0.0
