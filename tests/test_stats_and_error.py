"""Tests for statistics containers and quantization error metrics."""

import math

import numpy as np
import pytest

from repro.quant.error import QuantErrorReport, mse, report, sqnr_db
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn
from repro.simt.stats import MemTraffic, RfTraffic, SimStats


class TestRfTraffic:
    def test_total(self):
        t = RfTraffic(a_reads=1, b_reads=2, c_reads=3, c_writes=4)
        assert t.total == 10
        assert t.reads == 6

    def test_addition(self):
        a = RfTraffic(1, 2, 3, 4)
        b = RfTraffic(10, 20, 30, 40)
        s = a + b
        assert (s.a_reads, s.b_reads, s.c_reads, s.c_writes) == (11, 22, 33, 44)

    def test_scaling(self):
        t = RfTraffic(1, 2, 3, 4).scaled(3)
        assert t.total == 30

    def test_zero_default(self):
        assert RfTraffic().total == 0


class TestMemTraffic:
    def test_addition(self):
        s = MemTraffic(1, 2, 3) + MemTraffic(4, 5, 6)
        assert (s.l1, s.l2, s.dram) == (5, 7, 9)

    def test_scaling(self):
        s = MemTraffic(1, 2, 3).scaled(0.5)
        assert (s.l1, s.l2, s.dram) == (0.5, 1.0, 1.5)


class TestSimStats:
    def test_addition_is_componentwise(self):
        a = SimStats(cycles=10, rf=RfTraffic(1, 1, 1, 1), products=100, outputs=10)
        b = SimStats(cycles=5, rf=RfTraffic(2, 2, 2, 2), products=50, outputs=5)
        s = a + b
        assert s.cycles == 15
        assert s.rf.total == 12
        assert s.products == 150
        assert s.outputs == 15

    def test_macs_alias(self):
        assert SimStats(products=7).macs() == 7


class TestErrorMetrics:
    def test_mse_zero_for_identical(self):
        x = np.arange(10.0)
        assert mse(x, x) == 0.0

    def test_mse_known_value(self):
        assert mse(np.zeros(4), np.ones(4)) == 1.0

    def test_sqnr_infinite_for_exact(self):
        x = np.ones(4)
        assert sqnr_db(x, x) == math.inf

    def test_sqnr_negative_infinite_for_zero_signal(self):
        assert sqnr_db(np.zeros(4), np.ones(4)) == -math.inf

    def test_sqnr_known_value(self):
        signal = np.ones(4) * 10
        noisy = signal + 1.0
        assert sqnr_db(signal, noisy) == pytest.approx(20.0)

    def test_sqnr_improves_with_bits(self):
        w = np.random.default_rng(0).normal(size=(64, 16))
        values = []
        for bits in (2, 4, 8):
            qm = quantize_rtn(w, bits, GroupSpec(16, 4))
            values.append(sqnr_db(w, qm.dequantize()))
        assert values[0] < values[1] < values[2]

    def test_report_structure(self):
        w = np.random.default_rng(1).normal(size=(32, 8))
        qm = quantize_rtn(w, 4, GroupSpec(8, 4))
        r = report(w, qm)
        assert isinstance(r, QuantErrorReport)
        assert r.label == "g[8,4]"
        assert r.bits == 4
        assert r.mse > 0
        assert r.max_abs_err > 0
        assert "sqnr" in str(r)
