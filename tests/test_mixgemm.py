"""Tests for the Mix-GEMM binary-segmentation model (repro.mixgemm)."""

import pytest

from repro.energy.units import fp16_mul_baseline
from repro.errors import ConfigError
from repro.mixgemm.binseg import (
    activation_segments,
    mixgemm_point,
    mixgemm_relative_tpw,
    weight_segments,
)


class TestSegments:
    def test_fp16_activation_needs_two_segments(self):
        assert activation_segments() == 2

    def test_rejects_other_activation_widths(self):
        with pytest.raises(ConfigError):
            activation_segments(32)

    def test_weight_segments(self):
        assert weight_segments(4) == 1
        assert weight_segments(2) == 1
        assert weight_segments(8) == 2

    def test_rejects_bad_weight_width(self):
        with pytest.raises(ConfigError):
            weight_segments(0)


class TestModel:
    def test_int4_and_int2_cost_the_same(self):
        # Sub-4-bit weights fit one native pass: the FP16 activation
        # dominates, which is the paper's "performs poorly" argument.
        p4, p2 = mixgemm_point(4), mixgemm_point(2)
        assert p4.products_per_cycle == p2.products_per_cycle
        assert p4.energy_per_cycle == p2.energy_per_cycle

    def test_throughput_below_baseline(self):
        assert mixgemm_point(4).products_per_cycle < 1.0

    def test_int8_weights_cost_more(self):
        assert mixgemm_point(8).products_per_cycle < mixgemm_point(4).products_per_cycle
        assert mixgemm_point(8).energy_per_cycle > mixgemm_point(4).energy_per_cycle

    def test_relative_tpw_below_one(self):
        # Mix-GEMM loses to even the plain FP16 multiplier here.
        assert mixgemm_relative_tpw(4) < 1.0

    def test_energy_scales_with_passes(self):
        assert mixgemm_point(8).energy_per_cycle > 1.5 * mixgemm_point(4).energy_per_cycle * 0.9

    def test_tpw_property(self):
        p = mixgemm_point(4)
        assert p.throughput_per_watt == pytest.approx(
            p.products_per_cycle / p.energy_per_cycle
        )

    def test_energy_comparable_to_fp16_mul(self):
        # Sanity: the model shouldn't be orders of magnitude off.
        ratio = mixgemm_point(4).energy_per_cycle / fp16_mul_baseline().energy_per_op
        assert 0.5 < ratio < 5.0
