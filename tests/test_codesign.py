"""Tests for the co-design loop: capture, replay, artifacts, CLI.

The determinism claims docs/codesign.md makes are the contract under
test: a capture JSON round-trips exactly, the same capture replays to
equal costs (and byte-identical CSV) every time, serial and parallel
harness sweeps render the same bytes, and the ``--check`` staleness
gate actually fires on a stale artifact.
"""

import json

import pytest

from repro.cli import main
from repro.codesign import (
    ArchPoint,
    SiteCapture,
    WorkloadCapture,
    capture_from_histograms,
    capture_from_plans,
    load_capture,
    render_codesign_csv,
    render_codesign_section,
    replay_capture,
    site_dims,
    splice_section,
)
from repro.codesign.report import SECTION_BEGIN, SECTION_END
from repro.core.experiments import get_experiment
from repro.errors import ConfigError

SERVE_ARGS = [
    "--requests", "4", "--max-batch", "4", "--seed", "0",
    "--vocab", "64", "--d-model", "32", "--n-heads", "2",
    "--n-layers", "2", "--d-ffn", "64", "--max-seq", "96",
    "--prompt-len", "4,20", "--max-new", "2,6",
    "--shared-prefix", "12", "--shared-fraction", "0.75",
    "--backend", "fast",
]


@pytest.fixture(scope="module")
def capture_dir(tmp_path_factory):
    """Two serve-sim --codesign records over the same small trace."""
    root = tmp_path_factory.mktemp("captures")
    assert main(
        ["serve-sim", *SERVE_ARGS, "--codesign", "fifo",
         "--json", str(root / "fifo.json")]
    ) == 0
    assert main(
        ["serve-sim", *SERVE_ARGS, "--prefix-cache-mb", "16",
         "--prefill-chunk", "8", "--codesign", "prefix-cache",
         "--json", str(root / "prefix-cache.json")]
    ) == 0
    return root


def _toy_capture() -> WorkloadCapture:
    return WorkloadCapture(
        policy="toy",
        served_tokens=20,
        prompt_tokens=26,
        requests=2,
        sites=(
            SiteCapture(
                name="layer0.wq", n=32, k=32, weight_bits=4,
                rows=((1, 20), (13, 2)),
                phases=(
                    ("decode", ((1, 20),)),
                    ("prefill", ((13, 2),)),
                ),
            ),
            SiteCapture(
                name="lm_head", n=64, k=32, weight_bits=16,
                rows=((1, 20), (13, 2)),
                phases=(("decode", ((1, 20),)),),
            ),
        ),
    )


class TestCapture:
    def test_json_round_trip_exact(self):
        cap = _toy_capture()
        again = WorkloadCapture.from_dict(json.loads(json.dumps(cap.to_dict())))
        assert again == cap

    def test_phase_count_exceeding_total_rejected(self):
        with pytest.raises(ConfigError, match="exceeds the total"):
            SiteCapture(
                name="s", n=8, k=8, weight_bits=4,
                rows=((1, 3),),
                phases=(("decode", ((1, 4),)),),
            )

    def test_untagged_rows_is_the_remainder(self):
        site = SiteCapture(
            name="s", n=8, k=8, weight_bits=4,
            rows=((1, 5), (4, 2)),
            phases=(("decode", ((1, 3),)),),
        )
        assert site.untagged_rows() == ((1, 2), (4, 2))
        assert site.calls == 7
        assert site.total_rows == 13
        assert site.macs == 13 * 8 * 8

    def test_fully_tagged_site_has_no_untagged(self):
        cap = _toy_capture()
        assert cap.sites[0].untagged_rows() == ()
        # lm_head's prefill executions are untagged in the toy capture.
        assert "untagged" in cap.phase_names()

    def test_served_tokens_required(self):
        with pytest.raises(ConfigError, match="served no tokens"):
            WorkloadCapture(
                policy="p", served_tokens=0, prompt_tokens=0, requests=0,
                sites=(),
            )

    def test_duplicate_sites_rejected(self):
        site = _toy_capture().sites[0]
        with pytest.raises(ConfigError, match="duplicate site"):
            WorkloadCapture(
                policy="p", served_tokens=1, prompt_tokens=0, requests=0,
                sites=(site, site),
            )

    def test_capture_from_histograms(self):
        hists = {
            "a": {"rows": {1: 4, 3: 1}, "phases": {"decode": {1: 4}}},
            "empty": {"rows": {}, "phases": {}},
        }
        cap = capture_from_histograms(
            hists, {"a": (16, 8, 4)}, policy="fleet", served_tokens=4
        )
        assert [s.name for s in cap.sites] == ["a"]
        assert cap.sites[0].rows == ((1, 4), (3, 1))
        assert cap.sites[0].weight_bits == 4

    def test_capture_from_histograms_missing_dims(self):
        with pytest.raises(ConfigError, match="no \\(n, k, bits\\)"):
            capture_from_histograms(
                {"a": {"rows": {1: 1}, "phases": {}}}, {},
                policy="fleet", served_tokens=1,
            )


class TestTelemetryRoundTrip:
    def test_snapshot_json_merge_preserves_counts(self):
        from repro.model.session import Telemetry

        tele = Telemetry()
        tele.record("site", m=4, n=32, k=64, weight_bits=4 * 32 * 64)
        tele.record("site", m=1, n=32, k=64, weight_bits=4 * 32 * 64)
        snap = json.loads(json.dumps(tele.snapshot()))
        merged = Telemetry()
        merged.merge(snap)
        merged.merge(snap)
        stat = merged.stats["site"]
        assert stat.calls == 2 * tele.stats["site"].calls
        assert stat.rows == 2 * tele.stats["site"].rows
        assert stat.macs == 2 * tele.stats["site"].macs
        assert stat.weight_bytes == 2 * tele.stats["site"].weight_bytes

    def test_site_dims_recovers_bits(self):
        from repro.model.session import Telemetry

        tele = Telemetry()
        # weight_bits is the matrix's total storage bits per call.
        for bits, name in ((4, "int4"), (16, "fp16")):
            for m in (1, 1, 5):
                tele.record(name, m=m, n=32, k=64, weight_bits=bits * 32 * 64)
        dims = site_dims(tele)
        assert dims["int4"] == (32, 64, 4)
        assert dims["fp16"] == (32, 64, 16)


class TestReplay:
    def test_phase_totals_reconcile(self):
        cost = replay_capture(_toy_capture())
        total = cost.total
        assert total.cycles == sum(p.cycles for p in cost.phases)
        assert total.macs == sum(p.macs for p in cost.phases)
        assert total.gemm_calls == sum(p.gemm_calls for p in cost.phases)
        assert cost.phase("decode").gemm_calls == 40
        assert cost.cycles_per_token == total.cycles / 20
        assert cost.pj_per_token > cost.on_chip_pj_per_token > 0

    def test_replay_is_deterministic(self):
        cap = _toy_capture()
        assert replay_capture(cap) == replay_capture(cap)

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError, match="available"):
            replay_capture(_toy_capture()).phase("verify")

    def test_empty_capture_rejected(self):
        cap = WorkloadCapture(
            policy="p", served_tokens=1, prompt_tokens=0, requests=0, sites=()
        )
        with pytest.raises(ConfigError, match="no executions"):
            replay_capture(cap)

    def test_more_sms_fewer_cycles_same_energy(self):
        cap = _toy_capture()
        one = replay_capture(cap, ArchPoint(num_sms=1))
        two = replay_capture(cap, ArchPoint(num_sms=2))
        assert two.total.cycles < one.total.cycles
        assert two.total.energy.total == pytest.approx(one.total.energy.total)

    def test_arch_point_validation(self):
        with pytest.raises(ConfigError, match="num_sms"):
            ArchPoint(num_sms=0)
        with pytest.raises(ConfigError, match="dram_beats"):
            ArchPoint(dram_beats=0.0)

    def test_flow_selection_by_precision(self):
        from repro.simt.flows import FlowKind

        point = ArchPoint(num_sms=2, adder_tree_dup=4)
        for bits in (2, 4):
            arch = point.architecture(bits)
            assert arch.flow.kind is FlowKind.PACQ
            assert arch.flow.weight_bits == bits
            assert arch.sim.machine.num_sms == 2
            assert arch.sim.core.adder_tree_dup == 4
        fp16 = point.architecture(16)
        assert fp16.flow.kind is FlowKind.STANDARD_DEQUANT
        assert fp16.sim.machine.num_sms == 2

    def test_batch_entry_points_match_single_shot(self):
        from repro.core.arch import pacq
        from repro.core.metrics import evaluate, evaluate_many
        from repro.core.roofline import analyze, analyze_many
        from repro.simt.memoryhier import GemmShape
        from repro.simt.sm import simulate_gemm, simulate_gemm_many

        arch = pacq(4)
        shapes = [
            GemmShape(16, 32, 32), GemmShape(32, 32, 32), GemmShape(16, 32, 32)
        ]
        assert evaluate_many(arch, shapes) == [
            evaluate(arch, s) for s in shapes
        ]
        assert analyze_many(arch, shapes) == [analyze(arch, s) for s in shapes]
        assert simulate_gemm_many(arch.flow, shapes, arch.sim) == [
            simulate_gemm(arch.flow, s, arch.sim) for s in shapes
        ]


class TestArtifacts:
    def test_csv_is_deterministic(self):
        from repro.core.experiments import ExperimentResult
        from repro.core.report import RunRecord

        cost = replay_capture(_toy_capture())
        from repro.codesign import cost_rows

        def record():
            result = ExperimentResult("codesign", "t", tuple(cost_rows(cost)))
            return RunRecord(
                experiment="codesign", params={"num_sms": 1}, result=result
            )

        assert render_codesign_csv([record()]) == render_codesign_csv([record()])
        section = render_codesign_section([record()])
        assert section.startswith(SECTION_BEGIN)
        assert section.rstrip().endswith(SECTION_END)
        assert "| toy |" in section

    def test_splice_replaces_marked_block(self):
        doc = f"intro\n\n{SECTION_BEGIN}\nold\n{SECTION_END}\n\ntail\n"
        out = splice_section(doc, f"{SECTION_BEGIN}\nnew\n{SECTION_END}")
        assert "old" not in out and "new" in out
        assert out.startswith("intro") and out.rstrip().endswith("tail")

    def test_splice_requires_markers(self):
        with pytest.raises(ConfigError, match="markers"):
            splice_section("no markers here", "section")


class TestLoadCapture:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_capture(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_capture(bad)

    def test_serve_sim_record_without_capture_block(self, tmp_path):
        rec = tmp_path / "old.json"
        rec.write_text(json.dumps({"schema": "serve_sim/v3"}))
        with pytest.raises(ConfigError, match="--codesign"):
            load_capture(rec)

    def test_bare_capture_and_v5_record(self, tmp_path, capture_dir):
        cap = load_capture(capture_dir / "fifo.json")
        assert cap.policy == "fifo"
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(cap.to_dict()))
        assert load_capture(bare) == cap


class TestServeSimCodesign:
    def test_v5_schema_and_block(self, capture_dir):
        record = json.loads((capture_dir / "fifo.json").read_text())
        assert record["schema"] == "serve_sim/v5"
        block = record["codesign"]
        assert block["schema"] == "codesign_capture/v1"
        assert block["policy"] == "fifo"
        assert block["served_tokens"] >= 1
        assert block["sites"]
        phases = {
            phase
            for site in block["sites"].values()
            for phase in site["phases"]
        }
        assert "decode" in phases and "prefill" in phases

    def test_codesign_requires_json(self, capsys):
        assert main(["serve-sim", *SERVE_ARGS, "--codesign", "fifo"]) == 1
        assert "--json" in capsys.readouterr().err

    def test_capture_is_reproducible(self, tmp_path, capture_dir):
        again = tmp_path / "again.json"
        assert main(
            ["serve-sim", *SERVE_ARGS, "--codesign", "fifo",
             "--json", str(again)]
        ) == 0
        first = json.loads((capture_dir / "fifo.json").read_text())
        second = json.loads(again.read_text())
        assert second["codesign"] == first["codesign"]

    def test_policies_capture_different_shape_mixes(self, capture_dir):
        fifo = load_capture(capture_dir / "fifo.json")
        cached = load_capture(capture_dir / "prefix-cache.json")
        assert fifo.served_tokens == cached.served_tokens
        assert {s.name: s.rows for s in fifo.sites} != {
            s.name: s.rows for s in cached.sites
        }


class TestCodesignCli:
    def _scaffold(self, tmp_path):
        out = tmp_path / "codesign.md"
        out.write_text(f"# scaffold\n\n{SECTION_BEGIN}\n{SECTION_END}\n")
        return out

    def _run(self, capture_dir, tmp_path, *extra):
        out = tmp_path / "codesign.md"
        if not out.exists():
            self._scaffold(tmp_path)
        return main(
            ["codesign",
             str(capture_dir / "fifo.json"),
             str(capture_dir / "prefix-cache.json"),
             "--grid", "num_sms=1,2",
             "--csv", str(tmp_path / "codesign.csv"),
             "--out", str(out), "--no-cache", *extra]
        )

    def test_end_to_end_and_determinism(self, capture_dir, tmp_path, capsys):
        assert self._run(capture_dir, tmp_path) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        csv_text = (tmp_path / "codesign.csv").read_text()
        lines = csv_text.splitlines()
        assert lines[0].startswith("capture,policy,num_sms")
        # 2 captures x 2 arch points, every (policy, metric) priced.
        assert "fifo,fifo,1," in csv_text and "fifo,fifo,2," in csv_text
        assert "prefix-cache,prefix-cache,1," in csv_text
        doc = (tmp_path / "codesign.md").read_text()
        assert "Per-token cost" in doc and doc.startswith("# scaffold")

        # Serial rerun and a parallel rerun render the same bytes.
        assert self._run(capture_dir, tmp_path) == 0
        assert (tmp_path / "codesign.csv").read_text() == csv_text
        assert self._run(capture_dir, tmp_path, "--jobs", "2") == 0
        assert (tmp_path / "codesign.csv").read_text() == csv_text

    def test_check_gate(self, capture_dir, tmp_path, capsys):
        assert self._run(capture_dir, tmp_path) == 0
        capsys.readouterr()
        assert self._run(capture_dir, tmp_path, "--check") == 0
        assert "current" in capsys.readouterr().out

        csv_path = tmp_path / "codesign.csv"
        csv_path.write_text(csv_path.read_text() + "tampered\n")
        assert self._run(capture_dir, tmp_path, "--check") == 1
        captured = capsys.readouterr()
        assert "STALE" in captured.err
        # The artifact was rewritten, so a second check passes.
        assert self._run(capture_dir, tmp_path, "--check") == 0

    def test_reserved_axes_rejected(self, capture_dir, tmp_path, capsys):
        assert self._run(capture_dir, tmp_path, "--grid", "capture=x") == 1
        assert "capture" in capsys.readouterr().err

    def test_out_scaffold_required(self, capture_dir, tmp_path, capsys):
        assert main(
            ["codesign", str(capture_dir / "fifo.json"),
             "--csv", str(tmp_path / "c.csv"),
             "--out", str(tmp_path / "missing.md"), "--no-cache"]
        ) == 1
        assert "splices" in capsys.readouterr().err

    def test_bad_capture_fails_fast(self, tmp_path, capsys):
        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"schema": "serve_sim/v3"}))
        assert main(
            ["codesign", str(bad), "--csv", str(tmp_path / "c.csv"),
             "--out", str(self._scaffold(tmp_path)), "--no-cache"]
        ) == 1
        assert "--codesign" in capsys.readouterr().err


class TestRegisteredExperiment:
    def test_synthetic_self_check(self):
        result = get_experiment("codesign").run(
            policies=("fifo",), requests=3, max_new=6
        )
        labels = {row.label for row in result.rows}
        assert "fifo/total/cycles_per_token" in labels
        assert "fifo/workload/served_tokens" in labels
        for row in result.rows:
            if row.label.startswith("fifo/identity/"):
                assert row.measured == 1.0

    def test_capture_mode(self, capture_dir):
        result = get_experiment("codesign").run(
            capture=str(capture_dir / "fifo.json"), num_sms=2
        )
        labels = {row.label for row in result.rows}
        assert "fifo/total/cycles_per_token" in labels
        assert not any("identity" in label for label in labels)

    def test_unknown_synthetic_policy(self):
        with pytest.raises(ConfigError, match="unknown synthetic policy"):
            get_experiment("codesign").run(policies=("round-robin",))
