"""Tests for quantization group geometry (repro.quant.groups)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.groups import (
    G32_4,
    G64_4,
    G128,
    G256,
    TABLE2_SPECS,
    GroupSpec,
    spec_from_label,
)


class TestSpecBasics:
    def test_size(self):
        assert GroupSpec(128, 1).size == 128
        assert GroupSpec(32, 4).size == 128

    def test_table2_specs_share_sizes_pairwise(self):
        assert G128.size == G32_4.size == 128
        assert G256.size == G64_4.size == 256

    def test_labels(self):
        assert G128.label == "g128"
        assert G32_4.label == "g[32,4]"

    def test_rejects_nonpositive_extents(self):
        with pytest.raises(QuantizationError):
            GroupSpec(0, 1)
        with pytest.raises(QuantizationError):
            GroupSpec(8, -1)


class TestTiling:
    def test_validate_accepts_exact_tiling(self):
        G128.validate_for(256, 64)

    def test_validate_rejects_ragged_k(self):
        with pytest.raises(QuantizationError):
            G128.validate_for(200, 64)

    def test_validate_rejects_ragged_n(self):
        with pytest.raises(QuantizationError):
            G32_4.validate_for(64, 10)

    def test_grid_shape(self):
        assert G32_4.grid_shape(64, 8) == (2, 2)

    def test_iter_groups_covers_matrix_disjointly(self):
        spec = GroupSpec(4, 2)
        seen = set()
        for ks, ns in spec.iter_groups(8, 4):
            for k in range(ks.start, ks.stop):
                for n in range(ns.start, ns.stop):
                    assert (k, n) not in seen
                    seen.add((k, n))
        assert len(seen) == 8 * 4

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 4), st.integers(1, 4))
    def test_grid_shape_times_group_size_recovers_matrix(self, gk, gn, k, n):
        spec = GroupSpec(k, n)
        shape = spec.grid_shape(gk * k, gn * n)
        assert shape == (gk, gn)
        assert shape[0] * shape[1] * spec.size == gk * k * gn * n


class TestScaleFetches:
    def test_k_only_group_needs_one_fetch_per_output(self):
        assert G128.scale_fetches_per_packed_word(4) == 4

    def test_n_spanning_group_collapses_fetches(self):
        assert G32_4.scale_fetches_per_packed_word(4) == 1

    def test_wider_group_than_word_still_one(self):
        assert GroupSpec(16, 8).scale_fetches_per_packed_word(4) == 1

    def test_int2_word_with_n4_group(self):
        assert G32_4.scale_fetches_per_packed_word(8) == 2

    def test_rejects_straddling_group(self):
        with pytest.raises(QuantizationError):
            GroupSpec(16, 3).scale_fetches_per_packed_word(8)

    def test_rejects_bad_pack(self):
        with pytest.raises(QuantizationError):
            G128.scale_fetches_per_packed_word(0)


class TestLabelParsing:
    def test_simple_label(self):
        assert spec_from_label("g128") == G128

    def test_two_dim_label(self):
        assert spec_from_label("g[32,4]") == G32_4

    def test_whitespace_and_case(self):
        assert spec_from_label("  G256 ") == G256

    def test_rejects_garbage(self):
        with pytest.raises(QuantizationError):
            spec_from_label("x128")

    def test_rejects_malformed_brackets(self):
        with pytest.raises(QuantizationError):
            spec_from_label("g[1,2,3]")

    def test_roundtrip_table2(self):
        for spec in TABLE2_SPECS:
            assert spec_from_label(spec.label) == spec
