"""Tests for architecture presets and the evaluation metrics."""

import pytest

from repro.core.arch import (
    packed_k_baseline,
    pacq,
    standard_dequant,
    table1_inventory,
    volta_w16a16,
)
from repro.core.metrics import (
    edp_reduction,
    evaluate,
    normalized_edp,
    speedup,
    throughput_per_watt,
)
from repro.core.workloads import (
    LLAMA2_7B,
    LlmSpec,
    batch_sweep,
    fig10_workload,
    microbench_workload,
    model_workloads,
)
from repro.errors import ConfigError
from repro.simt.flows import FlowKind
from repro.simt.memoryhier import GemmShape

SHAPE = GemmShape(16, 64, 64)


class TestArchPresets:
    def test_volta_reference(self):
        arch = volta_w16a16()
        assert arch.weight_bits == 16
        assert arch.flow.kind is FlowKind.STANDARD_DEQUANT

    def test_standard_dequant(self):
        assert standard_dequant(4).flow.kind is FlowKind.STANDARD_DEQUANT
        assert standard_dequant(2).weight_bits == 2

    def test_packed_k(self):
        arch = packed_k_baseline(4)
        assert arch.flow.kind is FlowKind.PACKED_K
        assert arch.name == "P(B4)k"

    def test_pacq_defaults(self):
        arch = pacq(4)
        assert arch.sim.core.adder_tree_dup == 2
        assert arch.sim.core.dp_width == 4

    def test_pacq_ablation_knobs(self):
        arch = pacq(2, adder_tree_dup=4, dp_width=8)
        assert arch.sim.core.adder_tree_dup == 4
        assert arch.sim.core.dp_width == 8

    def test_pacq_rejects_int8(self):
        with pytest.raises(ConfigError):
            pacq(8)

    def test_table1_inventory_lists_all_units(self):
        units = dict(table1_inventory())
        assert units["INT11 MUL (baseline)"] == "10 INT16 adders"
        assert "12 INT16 adders" in units["Parallel INT11 MUL"]
        assert len(units) == 8


class TestEvaluate:
    def test_energy_components_positive(self):
        result = evaluate(pacq(4), SHAPE)
        e = result.energy
        assert e.rf > 0 and e.l1 > 0 and e.l2 > 0 and e.dram > 0 and e.compute > 0

    def test_on_chip_excludes_dram(self):
        e = evaluate(pacq(4), SHAPE).energy
        assert e.on_chip == pytest.approx(
            e.rf + e.l1 + e.l2 + e.compute + e.general_core
        )
        assert e.total == pytest.approx(e.on_chip + e.dram)

    def test_general_core_energy_only_for_dequant(self):
        assert evaluate(standard_dequant(4), SHAPE).energy.general_core > 0
        assert evaluate(pacq(4), SHAPE).energy.general_core == 0

    def test_speedup_close_to_two(self):
        std = evaluate(standard_dequant(4), SHAPE)
        ours = evaluate(pacq(4), SHAPE)
        assert speedup(std, ours) == pytest.approx(1.955, abs=0.05)

    def test_edp_reduction_in_paper_range(self):
        std = evaluate(standard_dequant(4), fig10_workload())
        ours = evaluate(pacq(4), fig10_workload())
        assert edp_reduction(std, ours) == pytest.approx(0.704, abs=0.05)

    def test_edp_reduction_int2_exceeds_int4(self):
        shape = fig10_workload()
        red4 = edp_reduction(evaluate(standard_dequant(4), shape), evaluate(pacq(4), shape))
        red2 = edp_reduction(evaluate(standard_dequant(2), shape), evaluate(pacq(2), shape))
        assert red2 > red4

    def test_normalized_edp(self):
        std = evaluate(standard_dequant(4), SHAPE)
        ours = evaluate(pacq(4), SHAPE)
        values = normalized_edp([std, ours], std)
        assert values[0] == pytest.approx(1.0)
        assert values[1] < 1.0

    def test_macs_per_cycle(self):
        result = evaluate(pacq(4), SHAPE)
        assert result.macs_per_cycle > 0

    def test_throughput_per_watt_helper(self):
        assert throughput_per_watt(4, 2.0) == 2.0


class TestWorkloads:
    def test_fig10_shape(self):
        shape = fig10_workload()
        assert (shape.m, shape.n, shape.k) == (16, 4096, 4096)

    def test_microbench_shape(self):
        assert microbench_workload().name == "m16n16k16"

    def test_llama2_7b_layer_gemms(self):
        gemms = dict(LLAMA2_7B.layer_gemms(16))
        assert gemms["qkv_proj"].n == 3 * 4096
        assert gemms["ffn_down"].k == 11008
        assert all(shape.m == 16 for shape in gemms.values())

    def test_batch_sweep(self):
        shapes = batch_sweep(GemmShape(1, 64, 64), [1, 8, 32])
        assert [s.m for s in shapes] == [1, 8, 32]

    def test_model_workloads(self):
        assert len(model_workloads(LLAMA2_7B)) == 5

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            LLAMA2_7B.layer_gemms(0)

    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            GemmShape(0, 1, 1)

    def test_custom_spec(self):
        spec = LlmSpec("toy", hidden=64, intermediate=256, num_layers=2, vocab=100)
        gemms = spec.layer_gemms(4)
        assert dict(gemms)["ffn_up"].n == 256
