"""Tests for the synthetic-LM substrate (repro.llm)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.llm.bigram import fit_bigram_lm, make_bigram_lm
from repro.llm.corpus import make_language, sample_tokens, stationary_distribution
from repro.llm.perplexity import (
    evaluate_perplexity,
    perplexity_from_logits,
    table2_rows,
)
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn


@pytest.fixture(scope="module")
def small_lm():
    return make_bigram_lm(vocab=64, d_model=128, seed=3)


@pytest.fixture(scope="module")
def small_tokens(small_lm):
    return sample_tokens(small_lm.language(), 512, seed=5)


class TestCorpus:
    def test_transition_rows_are_distributions(self):
        lang = make_language(vocab=32)
        sums = lang.transition.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert lang.transition.min() >= 0

    def test_stationary_is_fixed_point(self):
        lang = make_language(vocab=32)
        pi = lang.stationary
        assert np.allclose(pi @ lang.transition, pi, atol=1e-9)

    def test_sample_tokens_in_range(self):
        lang = make_language(vocab=32)
        tokens = sample_tokens(lang, 500)
        assert tokens.min() >= 0
        assert tokens.max() < 32

    def test_sampling_is_deterministic_per_seed(self):
        lang = make_language(vocab=32)
        assert np.array_equal(sample_tokens(lang, 100, seed=1), sample_tokens(lang, 100, seed=1))
        assert not np.array_equal(
            sample_tokens(lang, 100, seed=1), sample_tokens(lang, 100, seed=2)
        )

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ConfigError):
            make_language(vocab=2)

    def test_rejects_short_sample(self):
        with pytest.raises(ConfigError):
            sample_tokens(make_language(vocab=32), 1)

    def test_stationary_distribution_normalizes(self):
        t = np.array([[0.5, 0.5], [0.25, 0.75]])
        pi = stationary_distribution(t)
        assert pi.sum() == pytest.approx(1.0)


class TestBigramLm:
    def test_language_rows_are_distributions(self, small_lm):
        lang = small_lm.language()
        assert np.allclose(lang.transition.sum(axis=1), 1.0)

    def test_logits_shape(self, small_lm):
        logits = small_lm.logits(np.array([0, 1, 2]))
        assert logits.shape == (3, small_lm.vocab)

    def test_model_is_calibrated(self, small_lm, small_tokens):
        # The model defines the language, so its perplexity should be
        # close to the language's conditional entropy.
        ppl = evaluate_perplexity(small_lm, small_tokens)
        lang = small_lm.language()
        probs = np.maximum(lang.transition, 1e-12)
        entropy = -(lang.stationary[:, None] * probs * np.log(probs)).sum()
        assert ppl == pytest.approx(np.exp(entropy), rel=0.25)

    def test_embedding_is_fp16(self, small_lm):
        assert small_lm.embedding.dtype == np.float16

    def test_rejects_tiny_dims(self):
        with pytest.raises(ConfigError):
            make_bigram_lm(vocab=4)

    def test_fitted_lm_is_quantization_brittle(self):
        # Documents why Table II uses the self-calibrated model: the
        # inverse-solve head collapses under 4-bit quantization.
        lang = make_language(vocab=64, seed=9)
        lm = fit_bigram_lm(lang)
        tokens = sample_tokens(lang, 256, seed=1)
        base = evaluate_perplexity(lm, tokens)
        qhead = quantize_rtn(lm.head, 4, GroupSpec(16, 4))
        quant = evaluate_perplexity(lm, tokens, quantized=qhead)
        assert quant > 2.0 * base


class TestPerplexity:
    def test_uniform_logits_give_vocab_perplexity(self):
        logits = np.zeros((10, 64))
        targets = np.arange(10) % 64
        assert perplexity_from_logits(logits, targets) == pytest.approx(64.0)

    def test_perfect_prediction_gives_one(self):
        logits = np.full((4, 8), -1e9)
        targets = np.array([1, 3, 5, 7])
        for i, t in enumerate(targets):
            logits[i, t] = 0.0
        assert perplexity_from_logits(logits, targets) == pytest.approx(1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigError):
            perplexity_from_logits(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_batched_equals_unbatched(self, small_lm, small_tokens):
        a = evaluate_perplexity(small_lm, small_tokens, batch=64)
        b = evaluate_perplexity(small_lm, small_tokens, batch=1000)
        assert a == pytest.approx(b, rel=1e-9)

    def test_quantization_degrades_perplexity(self, small_lm, small_tokens):
        base = evaluate_perplexity(small_lm, small_tokens)
        qhead = quantize_rtn(small_lm.head, 2, GroupSpec(32, 4))
        quant = evaluate_perplexity(small_lm, small_tokens, quantized=qhead)
        assert quant > base

    def test_int4_better_than_int2(self, small_lm, small_tokens):
        q4 = quantize_rtn(small_lm.head, 4, GroupSpec(32, 4))
        q2 = quantize_rtn(small_lm.head, 2, GroupSpec(32, 4))
        p4 = evaluate_perplexity(small_lm, small_tokens, quantized=q4)
        p2 = evaluate_perplexity(small_lm, small_tokens, quantized=q2)
        assert p4 < p2


class TestTable2:
    def test_iso_perplexity_of_group_shapes(self, small_lm, small_tokens):
        # The paper's Table II claim: spanning the group over [k, n]
        # is perplexity-neutral vs k-only groups of the same size.
        specs = (GroupSpec(32, 1), GroupSpec(8, 4))
        rows = table2_rows(small_lm, small_tokens, specs, bits=4)
        fp16_ppl = rows[0].perplexity
        k_only, spanned = rows[1].perplexity, rows[2].perplexity
        assert k_only > fp16_ppl
        assert abs(spanned - k_only) / k_only < 0.10

    def test_rows_structure(self, small_lm, small_tokens):
        rows = table2_rows(small_lm, small_tokens, (GroupSpec(32, 1),), bits=4)
        assert rows[0].label == "fp16"
        assert rows[0].bits is None
        assert rows[1].bits == 4
