"""Tests for the model layer: policies, quantize_model, checkpoints."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, QuantizationError
from repro.llm.transformer import (
    Decoder,
    TransformerConfig,
    init_weights,
    quantize_weights,
)
from repro.model import (
    InferenceSession,
    LayerRule,
    QuantPolicy,
    load_model,
    parse_policy,
    quantize_model,
    save_model,
)
from repro.model.checkpoint import MANIFEST_NAME
from repro.quant.groups import GroupSpec


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    return config, weights


class TestPolicyParsing:
    def test_uniform_recipe(self):
        policy = parse_policy("rtn4@g[32,4]")
        rule = policy.rule_for("layer0.wq")
        assert rule.bits == 4
        assert rule.group == GroupSpec(32, 4)
        assert rule.algorithm == "rtn"
        assert not rule.symmetric

    def test_int_is_rtn_alias(self):
        assert parse_policy("int2@g128").rules[0].algorithm == "rtn"

    def test_default_group(self):
        assert parse_policy("rtn4").rules[0].group == GroupSpec(32, 4)

    def test_sym_flag(self):
        assert parse_policy("awq4@g128:sym").rules[0].symmetric

    def test_mixed_clauses_first_match_wins(self):
        policy = parse_policy("layer*.w_gate=int2@g[32,4];*=int4@g128")
        assert policy.rule_for("layer0.w_gate").bits == 2
        assert policy.rule_for("layer0.wq").bits == 4

    def test_unmatched_layer_kept(self):
        policy = parse_policy("layer0.*=int4")
        assert policy.rule_for("layer1.wq") is None

    def test_fp16_recipe(self):
        assert parse_policy("fp16").rules[0].algorithm == "fp16"

    def test_label_round_trips(self):
        text = "layer*.w_gate=rtn2@g[32,4];awq4@g128:sym"
        assert parse_policy(parse_policy(text).label).label == \
            parse_policy(text).label

    def test_dict_round_trip(self):
        policy = parse_policy("layer*.w_up=awq2@g[16,4]:sym;*=rtn4@g128")
        assert QuantPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize(
        "bad",
        ["", ";;", "xyz4@g128", "rtn5@g128", "rtn4@h128", "fp16:sym", "a="],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(QuantizationError):
            parse_policy(bad)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(QuantizationError):
            LayerRule(algorithm="gptq")

    def test_unservable_bits_rejected(self):
        with pytest.raises(QuantizationError):
            LayerRule(bits=8)


class TestQuantizeModel:
    def test_uniform_matches_legacy_quantize_weights(self, setup):
        _, weights = setup
        legacy = quantize_weights(weights, bits=4, group=GroupSpec(8, 4))
        policy = QuantPolicy.uniform(bits=4, group=GroupSpec(8, 4))
        model = quantize_model(weights, policy)
        assert set(model.layers) == set(legacy)
        for name, qm in legacy.items():
            assert np.array_equal(model.layers[name].matrix.codes, qm.codes)
            assert np.array_equal(model.layers[name].matrix.scales, qm.scales)

    @pytest.mark.parametrize("bits", [3, 8])
    def test_legacy_quantize_weights_keeps_nonservable_widths(self, setup, bits):
        # The seed's quantize_weights accepted every RTN width; the
        # policy-backed wrapper must not regress INT3/INT8 studies.
        _, weights = setup
        quantized = quantize_weights(weights, bits=bits, group=GroupSpec(8, 4))
        assert len(quantized) == len(weights.linear_matrices())
        assert all(qm.bits == bits for qm in quantized.values())

    def test_mixed_precision_bits(self, setup):
        _, weights = setup
        policy = parse_policy("layer*.w_gate=int2@g[8,4];*=int4@g[8,4]")
        model = quantize_model(weights, policy)
        assert model.layers["layer0.w_gate"].matrix.bits == 2
        assert model.layers["layer0.wq"].matrix.bits == 4

    def test_fp16_rule_keeps_layer(self, setup):
        _, weights = setup
        policy = parse_policy("layer*.wo=fp16;*=int4@g[8,4]")
        model = quantize_model(weights, policy)
        assert "layer0.wo" not in model.layers
        assert "layer0.wo" in model.kept_fp16
        assert "layer1.wo" in model.kept_fp16

    def test_group_clipped_to_layer_dims(self, setup):
        _, weights = setup
        model = quantize_model(
            weights, QuantPolicy.uniform(group=GroupSpec(4096, 4096))
        )
        for layer in model.layers.values():
            assert layer.matrix.group.k <= layer.matrix.k_dim
            assert layer.matrix.group.n <= layer.matrix.n_dim

    def test_reports_finite(self, setup):
        _, weights = setup
        model = quantize_model(weights, QuantPolicy.uniform(group=GroupSpec(8, 4)))
        for name, report in model.reports().items():
            assert np.isfinite(report.mse) and report.mse > 0
            assert np.isfinite(report.sqnr_db)

    def test_awq_with_calibration_not_worse_than_rtn(self):
        rng = np.random.default_rng(3)
        k, n = 64, 32
        weight = rng.normal(size=(k, n)) * (1 + np.arange(n)) ** -0.3
        profile = np.abs(rng.normal(size=k)) + 0.1
        spec = GroupSpec(16, 4)
        rtn = quantize_model(
            {"w": weight}, QuantPolicy.uniform(bits=2, group=spec)
        )
        awq = quantize_model(
            {"w": weight},
            QuantPolicy.uniform(bits=2, group=spec, algorithm="awq"),
            calibration={"w": profile},
        )
        # AWQ minimizes the importance-weighted error; alpha=0 is RTN,
        # so the weighted reconstruction error cannot be worse.
        imp = profile / profile.mean()
        def weighted(recon):
            diff = (weight - recon) * imp[:, None]
            return float(np.mean(diff * diff))
        rtn_recon = rtn.layers["w"].matrix.dequantize()
        aw = awq.layers["w"]
        awq_recon = aw.matrix.dequantize()
        if aw.channel_scales is not None:
            awq_recon = awq_recon / aw.channel_scales[:, None]
        assert weighted(awq_recon) <= weighted(rtn_recon) + 1e-12

    def test_awq_without_calibration_degenerates_to_rtn(self, setup):
        _, weights = setup
        spec = GroupSpec(8, 4)
        rtn = quantize_model(weights, QuantPolicy.uniform(bits=4, group=spec))
        awq = quantize_model(
            weights, QuantPolicy.uniform(bits=4, group=spec, algorithm="awq")
        )
        for name in rtn.layers:
            assert awq.layers[name].channel_scales is None
            assert np.array_equal(
                awq.layers[name].matrix.codes, rtn.layers[name].matrix.codes
            )

    def test_plain_mapping_input(self):
        rng = np.random.default_rng(0)
        model = quantize_model(
            {"head": rng.normal(size=(32, 16))},
            QuantPolicy.uniform(group=GroupSpec(8, 4)),
        )
        assert set(model.layers) == {"head"}
        assert model.config is None and model.weights is None


class TestCheckpoint:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        config = TransformerConfig(
            vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
        )
        weights = init_weights(config, seed=1)
        policy = parse_policy(
            "layer*.w_gate=int2@g[8,4];layer1.wo=fp16;*=awq4@g[8,4]"
        )
        calibration = {
            name: np.abs(w).mean(axis=1) + 0.1
            for name, w in weights.linear_matrices()
        }
        model = quantize_model(
            weights, policy, config=config, calibration=calibration
        )
        path = tmp_path_factory.mktemp("ckpt") / "model"
        save_model(path, model)
        return config, weights, model, path

    def test_layers_round_trip_exactly(self, saved):
        _, _, model, path = saved
        loaded = load_model(path)
        assert set(loaded.layers) == set(model.layers)
        for name, layer in model.layers.items():
            other = loaded.layers[name]
            assert np.array_equal(other.matrix.codes, layer.matrix.codes)
            assert np.array_equal(other.matrix.scales, layer.matrix.scales)
            assert np.array_equal(other.matrix.zeros, layer.matrix.zeros)
            assert other.matrix.group == layer.matrix.group
            assert other.matrix.symmetric == layer.matrix.symmetric
            assert other.rule == layer.rule
            if layer.channel_scales is None:
                assert other.channel_scales is None
            else:
                assert np.array_equal(other.channel_scales, layer.channel_scales)

    def test_policy_config_reports_round_trip(self, saved):
        _, _, model, path = saved
        loaded = load_model(path)
        assert loaded.policy == model.policy
        assert loaded.config == model.config
        assert loaded.kept_fp16 == model.kept_fp16
        for name, report in model.reports().items():
            assert loaded.reports()[name] == report

    def test_kept_masters_and_embedding_exact(self, saved):
        _, weights, _, path = saved
        loaded = load_model(path)
        assert np.array_equal(loaded.weights.embedding, weights.embedding)
        assert np.array_equal(
            loaded.weights.blocks[1]["wo"], weights.blocks[1]["wo"]
        )
        assert np.array_equal(
            loaded.weights.norms[0]["attn"], weights.norms[0]["attn"]
        )

    def test_round_trip_generation_identical(self, saved):
        _, _, model, path = saved
        a = InferenceSession(model, backend="fast")
        b = InferenceSession.from_checkpoint(path, backend="fast")
        prompt = np.asarray([1, 5, 9])
        ra = a.generate(prompt, 12, top_k=6, seed=11)
        rb = b.generate(prompt, 12, top_k=6, seed=11)
        assert np.array_equal(ra.tokens, rb.tokens)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(QuantizationError):
            load_model(tmp_path)

    def test_version_mismatch_rejected(self, saved, tmp_path):
        _, _, model, path = saved
        clone = tmp_path / "clone"
        save_model(clone, model)
        manifest = json.loads((clone / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (clone / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(QuantizationError, match="version 99"):
            load_model(clone)

    def test_missing_version_rejected(self, saved, tmp_path):
        _, _, model, path = saved
        clone = tmp_path / "clone"
        save_model(clone, model)
        manifest = json.loads((clone / MANIFEST_NAME).read_text())
        del manifest["version"]
        (clone / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(QuantizationError, match="version"):
            load_model(clone)

    def test_wrong_kind_rejected(self, saved, tmp_path):
        clone = tmp_path / "clone"
        clone.mkdir()
        (clone / MANIFEST_NAME).write_text(json.dumps({"kind": "other"}))
        with pytest.raises(QuantizationError):
            load_model(clone)

    def test_resave_removes_stale_layer_files(self, saved, tmp_path):
        config, weights, model, _ = saved
        target = tmp_path / "ckpt"
        save_model(target, model)
        first_files = {p.name for p in target.glob("layer-*.npz")}
        narrow = quantize_model(
            weights, parse_policy("layer0.wq=int4@g[16,4];*=fp16"),
            config=config,
        )
        save_model(target, narrow)
        remaining = {p.name for p in target.glob("layer-*.npz")}
        assert remaining == {"layer-layer0.wq.npz"}
        assert first_files - remaining  # old files really were removed
        loaded = load_model(target)
        assert set(loaded.layers) == {"layer0.wq"}

    def test_reports_optional_round_trip(self, saved, tmp_path):
        config, weights, _, _ = saved
        model = quantize_model(
            weights, QuantPolicy.uniform(group=GroupSpec(8, 4)),
            config=config, compute_reports=False,
        )
        assert model.reports() == {}
        assert all(row[2] == "-" for row in model.summary_rows())
        target = tmp_path / "ckpt"
        save_model(target, model)
        loaded = load_model(target)
        assert loaded.reports() == {}

    def test_session_requires_weights(self):
        rng = np.random.default_rng(0)
        model = quantize_model(
            {"head": rng.normal(size=(32, 16))},
            QuantPolicy.uniform(group=GroupSpec(8, 4)),
        )
        with pytest.raises(ConfigError):
            InferenceSession(model)


class TestDecoderShims:
    def test_legacy_dict_still_accepted(self, setup):
        config, weights = setup
        tokens = np.arange(10) % config.vocab
        legacy = quantize_weights(weights, bits=4, group=GroupSpec(8, 4))
        model = quantize_model(
            weights, QuantPolicy.uniform(bits=4, group=GroupSpec(8, 4))
        )
        via_dict = Decoder(config, weights, legacy).forward(tokens)
        via_model = Decoder(config, weights, model).forward(tokens)
        assert np.array_equal(via_dict, via_model)

    def test_fallback_w16_cached_at_construction(self, setup):
        config, weights = setup
        decoder = Decoder(config, weights)  # nothing quantized
        key = "layer0.wq"
        assert key in decoder._w16
        assert np.array_equal(
            decoder._w16[key],
            weights.blocks[0]["wq"].astype(np.float16).astype(np.float64),
        )
        # Quantized layers get plans, not fallback copies.
        q = quantize_weights(weights, bits=4, group=GroupSpec(8, 4))
        quantized = Decoder(config, weights, q)
        assert key not in quantized._w16
        assert key in quantized.plans
