"""Tests for the experiment runners (repro.core.experiments).

These assert the reproduced *shape* of every paper result: orderings,
crossovers and rough factors, with the paper's printed values attached
to each row for EXPERIMENTS.md.
"""

import pytest

from repro.core.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    ResultRow,
    fig7a,
    fig7b,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12a,
    fig12b,
    table1,
    table2,
)


@pytest.fixture(scope="module")
def results():
    # table2 is the slow one; share across tests.
    return {
        "fig7a": fig7a(),
        "fig7b": fig7b(),
        "fig8": fig8(),
        "fig9": fig9(),
        "fig10": fig10(),
        "fig11": fig11(),
        "fig12a": fig12a(),
        "fig12b": fig12b(),
        "table2": table2(vocab=128, d_model=256, corpus_len=512),
    }


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12a",
            "fig12b",
            "table2",
        }

    def test_table1_is_static_inventory(self):
        assert len(table1()) == 8

    def test_result_row_deviation(self):
        row = ResultRow("x", 1.1, 1.0)
        assert row.deviation == pytest.approx(0.1)
        assert ResultRow("x", 1.0, None).deviation is None

    def test_experiment_result_lookup(self, results):
        r = results["fig7b"]
        assert isinstance(r, ExperimentResult)
        assert r.row("INT4 speedup vs P(B4)k").measured > 1
        with pytest.raises(KeyError):
            r.row("nope")

    def test_table_rows_renderable(self, results):
        for result in results.values():
            rows = result.table_rows()
            assert rows
            assert all(len(r) == len(result.headers()) for r in rows)


class TestFig7:
    def test_rf_reductions_positive_and_ordered(self, results):
        r = results["fig7a"]
        red4 = r.row("INT4 RF reduction vs P(B4)k").measured
        red2 = r.row("INT2 RF reduction vs P(B8)k").measured
        assert 0 < red4 < red2 < 1

    def test_int2_reduction_matches_paper_closely(self, results):
        row = results["fig7a"].row("INT2 RF reduction vs P(B8)k")
        assert row.measured == pytest.approx(row.paper, abs=0.05)

    def test_speedups_near_two(self, results):
        r = results["fig7b"]
        for label in ("INT4 speedup vs P(B4)k", "INT2 speedup vs P(B8)k"):
            assert r.row(label).measured == pytest.approx(1.98, abs=0.05)


class TestFig8:
    def test_mul_gains(self, results):
        r = results["fig8"]
        gain4 = r.row("FP-MUL INT4").measured
        gain2 = r.row("FP-MUL INT2").measured
        assert gain4 == pytest.approx(3.38, rel=0.15)
        assert gain2 > gain4  # INT2 parallelism wins more

    def test_dp4_gains_above_one(self, results):
        r = results["fig8"]
        assert r.row("DP-4 INT4").measured > 1.0
        assert r.row("DP-4 INT2").measured > 1.0


class TestFig9:
    def test_reuse_fractions_close_to_paper(self, results):
        for row in results["fig9"].rows:
            assert row.measured == pytest.approx(row.paper, abs=0.05)

    def test_int11_reuse_is_highest(self, results):
        r = results["fig9"]
        assert (
            r.rows[0].measured > r.rows[2].measured
        )  # INT11 MUL reuse > DP-4 reuse


class TestFig10:
    def test_pacq_always_best(self, results):
        r = results["fig10"]
        for bits in (4, 2):
            std = r.row(f"INT{bits} standard (normalized EDP)").measured
            pk = r.row(f"INT{bits} P(B{16 // bits})k (normalized EDP)").measured
            ours = r.row(f"INT{bits} PacQ (normalized EDP)").measured
            assert ours < pk < std

    def test_int4_reduction_matches_paper(self, results):
        row = results["fig10"].row("INT4 PacQ EDP reduction")
        assert row.measured == pytest.approx(row.paper, abs=0.05)

    def test_int2_reduction_larger_than_int4(self, results):
        r = results["fig10"]
        assert (
            r.row("INT2 PacQ EDP reduction").measured
            > r.row("INT4 PacQ EDP reduction").measured
        )


class TestFig11:
    def test_dup2_is_the_knee(self, results):
        r = results["fig11"]
        gain12 = r.row("INT4 gain dup1->dup2").measured
        gain24 = r.row("INT4 gain dup2->dup4").measured
        assert gain12 > gain24 > 0.9

    def test_int4_dup8_declines(self, results):
        r = results["fig11"]
        assert (
            r.row("INT4 dup=8 (T/W vs baseline)").measured
            < r.row("INT4 dup=4 (T/W vs baseline)").measured
        )

    def test_dup2_beats_baseline(self, results):
        r = results["fig11"]
        assert r.row("INT4 dup=2 (T/W vs baseline)").measured > 1.0


class TestFig12:
    def test_gains_orthogonal_to_dp_width(self, results):
        r = results["fig12a"]
        g8 = r.row("DP-8 INT4 (T/W vs DP-8 baseline)").measured
        g16 = r.row("DP-16 INT4 (T/W vs DP-16 baseline)").measured
        assert g8 > 1.0 and g16 > 1.0
        assert g8 == pytest.approx(g16, rel=0.15)  # orthogonality

    def test_pacq_beats_mixgemm_by_paper_factor(self, results):
        r = results["fig12b"]
        row4 = r.row("INT4 PacQ vs Mix-GEMM")
        row2 = r.row("INT2 PacQ vs Mix-GEMM")
        assert row4.measured == pytest.approx(4.12, rel=0.15)
        assert row2.measured == pytest.approx(3.75, rel=0.15)
        assert row4.measured > row2.measured  # same ordering as paper


class TestTable2:
    def test_quantized_worse_than_fp16(self, results):
        rows = {r.label: r.measured for r in results["table2"].rows}
        assert rows["g128"] > rows["fp16"]

    def test_iso_perplexity_between_group_shapes(self, results):
        rows = {r.label: r.measured for r in results["table2"].rows}
        assert abs(rows["g[32,4]"] - rows["g128"]) / rows["g128"] < 0.10
        assert abs(rows["g[64,4]"] - rows["g256"]) / rows["g256"] < 0.10

    def test_paper_references_attached(self, results):
        for row in results["table2"].rows:
            assert row.paper is not None
