"""Tests for the multi-request serving layer (repro.serve)."""

import numpy as np
import pytest

from repro.errors import ConfigError, RequestError
from repro.llm.transformer import (
    BatchedKVCache,
    Decoder,
    TransformerConfig,
    init_weights,
)
from repro.model import InferenceSession, parse_policy, quantize_model
from repro.serve import (
    BatchedSession,
    Request,
    Scheduler,
    TraceSpec,
    replay,
    synthesize,
)

#: Engine backends whose kernels compute each activation row
#: independently of the batch (the bit-identity guarantee; "reference"
#: is BLAS-backed and excluded).
BACKENDS = ("fast", "batched", "bitexact")


@pytest.fixture(scope="module")
def setup():
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=2, n_layers=2, d_ffn=64, max_seq=64
    )
    weights = init_weights(config, seed=1)
    qmodel = quantize_model(
        weights, parse_policy("*=int4@g[8,4]"), config=config
    )
    return config, weights, qmodel


def make_session(qmodel, backend="fast", max_slots=4, capacity=16):
    return BatchedSession(
        qmodel, backend=backend, max_slots=max_slots, capacity=capacity
    )


class TestBatchedKVCache:
    def test_slot_lifecycle(self, setup):
        config, _, _ = setup
        cache = BatchedKVCache(config, max_slots=2, capacity=8)
        a = cache.allocate()
        b = cache.allocate()
        assert {a, b} == {0, 1}
        assert cache.free_slots == 0
        with pytest.raises(ConfigError, match="no free slot"):
            cache.allocate()
        cache.release(a)
        assert cache.free_slots == 1
        assert cache.active_slots == [b]
        with pytest.raises(ConfigError, match="already free"):
            cache.release(a)
        assert cache.allocate() == a  # lowest slot reused first

    def test_grow_preserves_content(self, setup):
        config, _, _ = setup
        cache = BatchedKVCache(config, max_slots=2, capacity=4)
        slot = cache.allocate()
        k = np.arange(config.n_heads * 3 * config.d_head, dtype=float).reshape(
            config.n_heads, 3, config.d_head
        )
        cache.store(slot, 0, 0, k, 2 * k)
        cache.lengths[slot] = 3
        cache.ensure(slot, 4)  # 3 + 4 > 4 -> grow
        assert cache.capacity == 8
        k_view, v_view = cache.view(slot, 0, 3)
        assert np.array_equal(k_view, k)
        assert np.array_equal(v_view, 2 * k)

    def test_grow_caps_at_context_window(self, setup):
        config, _, _ = setup
        cache = BatchedKVCache(config, max_slots=1, capacity=4)
        slot = cache.allocate()
        with pytest.raises(ConfigError, match=f"max_seq={config.max_seq}"):
            cache.ensure(slot, config.max_seq + 1)

    def test_overflow_without_grow(self, setup):
        config, _, _ = setup
        cache = BatchedKVCache(config, max_slots=1, capacity=2)
        slot = cache.allocate()
        k = np.zeros((config.n_heads, 3, config.d_head))
        with pytest.raises(ConfigError, match="cache overflow"):
            cache.store(slot, 0, 0, k, k)


class TestBitIdentity:
    """Batched multi-sequence decode == single-sequence decode, per row."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ragged_prefill_matches_single(self, setup, backend):
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend=backend)
        rng = np.random.default_rng(0)
        sizes = (3, 5) if backend == "bitexact" else (5, 9, 3, 12)
        prompts = [rng.integers(0, config.vocab, size=n) for n in sizes]
        singles = []
        for prompt in prompts:
            cache = decoder.init_cache()
            singles.append(decoder.prefill(prompt, cache))
        batched_cache = decoder.init_batched_cache(len(prompts), capacity=16)
        slots = [batched_cache.allocate() for _ in prompts]
        ragged = decoder.prefill_ragged(prompts, batched_cache, slots)
        for i, rows in enumerate(ragged):
            assert np.array_equal(rows, singles[i]), (backend, i)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lockstep_decode_matches_single(self, setup, backend):
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend=backend)
        rng = np.random.default_rng(1)
        steps = 2 if backend == "bitexact" else 5
        sizes = (3, 4) if backend == "bitexact" else (5, 9, 3)
        prompts = [rng.integers(0, config.vocab, size=n) for n in sizes]
        single_caches = []
        last = []
        for prompt in prompts:
            cache = decoder.init_cache()
            last.append(decoder.prefill(prompt, cache)[-1])
            single_caches.append(cache)
        batched_cache = decoder.init_batched_cache(len(prompts), capacity=16)
        slots = [batched_cache.allocate() for _ in prompts]
        ragged = decoder.prefill_ragged(prompts, batched_cache, slots)
        batch_last = [rows[-1] for rows in ragged]
        for step in range(steps):
            tokens = [int(np.argmax(row)) for row in batch_last]
            batch = decoder.decode_batch(tokens, batched_cache, slots)
            for i, token in enumerate(tokens):
                single = decoder.decode_step(token, single_caches[i])
                assert np.array_equal(batch[i], single), (backend, i, step)
            batch_last = list(batch)

    def test_join_retire_midstream(self, setup):
        """Evict one sequence mid-decode, join another; rows stay exact."""
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        rng = np.random.default_rng(2)
        prompts = [rng.integers(0, config.vocab, size=n) for n in (6, 4, 8)]
        caches = []
        for prompt in prompts:
            cache = decoder.init_cache()
            decoder.prefill(prompt, cache)
            caches.append(cache)
        batched_cache = decoder.init_batched_cache(3, capacity=16)
        slots = [batched_cache.allocate() for _ in prompts]
        decoder.prefill_ragged(prompts, batched_cache, slots)
        decoder.decode_batch([1, 2, 3], batched_cache, slots)
        for i, token in enumerate((1, 2, 3)):
            decoder.decode_step(token, caches[i])
        # retire the middle sequence; the survivors keep decoding exactly
        batched_cache.release(slots[1])
        batch = decoder.decode_batch([4, 5], batched_cache, [slots[0], slots[2]])
        assert np.array_equal(batch[0], decoder.decode_step(4, caches[0]))
        assert np.array_equal(batch[1], decoder.decode_step(5, caches[2]))
        # a new sequence joins in the freed slot
        joined = rng.integers(0, config.vocab, size=5)
        slot = batched_cache.allocate()
        assert slot == slots[1]
        fresh = decoder.init_cache()
        expect = decoder.prefill(joined, fresh)
        got = decoder.prefill_ragged([joined], batched_cache, [slot])
        assert np.array_equal(got[0], expect)

    def test_decode_batch_with_grow(self, setup):
        """Capacity growth mid-stream does not perturb the rows."""
        config, weights, qmodel = setup
        decoder = Decoder(config, weights, qmodel, backend="fast")
        prompt = np.arange(6) % config.vocab
        single = decoder.init_cache()
        decoder.prefill(prompt, single)
        cache = decoder.init_batched_cache(1, capacity=7)
        slot = cache.allocate()
        decoder.prefill_ragged([prompt], cache, [slot])
        for token in (1, 2, 3):  # crosses capacity 7 -> grows to 14
            batch = decoder.decode_batch([token], cache, [slot])
            assert np.array_equal(batch[0], decoder.decode_step(token, single))
        assert cache.capacity == 14


class TestBatchedSession:
    def test_join_returns_last_rows(self, setup):
        config, _, qmodel = setup
        session = make_session(qmodel)
        reference = InferenceSession(qmodel, backend="fast")
        prompts = [np.arange(5) % config.vocab, np.arange(3) % config.vocab]
        slots, last = session.join(prompts)
        assert len(slots) == 2 and last.shape == (2, config.vocab)
        for i, prompt in enumerate(prompts):
            assert np.array_equal(last[i], reference.prefill(prompt)[-1])
            assert session.position(slots[i]) == prompt.shape[0]

    def test_join_overflow_rejected(self, setup):
        _, _, qmodel = setup
        session = make_session(qmodel, max_slots=2)
        with pytest.raises(ConfigError, match="slots free"):
            session.join([np.array([1]), np.array([2]), np.array([3])])

    def test_join_rejects_long_prompt(self, setup):
        config, _, qmodel = setup
        session = make_session(qmodel)
        too_long = np.zeros(config.max_seq + 1, dtype=np.int64)
        with pytest.raises(ConfigError, match=f"max_seq={config.max_seq}"):
            session.join([too_long])

    def test_decode_unprefilled_slot(self, setup):
        _, _, qmodel = setup
        session = make_session(qmodel)
        slot = session.cache.allocate()
        with pytest.raises(ConfigError, match="no prefilled tokens"):
            session.decode_step([slot], [1])

    def test_retire_frees_slot(self, setup):
        _, _, qmodel = setup
        session = make_session(qmodel, max_slots=1)
        slots, _ = session.join([np.array([1, 2])])
        assert session.free_slots == 0
        session.retire(slots[0])
        assert session.free_slots == 1


class TestScheduler:
    def test_matches_single_sequence_generate(self, setup):
        """Continuous batching serves each request the exact tokens the
        single-sequence session would generate (greedy and top-k)."""
        config, _, qmodel = setup
        session = make_session(qmodel, max_slots=3)
        scheduler = Scheduler(session, max_batch=3)
        rng = np.random.default_rng(3)
        requests = [
            Request(
                prompt=rng.integers(0, config.vocab, size=4 + i),
                max_new=3 + i,
                top_k=None if i % 2 else 4,
                seed=i,
            )
            for i in range(6)
        ]
        results = scheduler.run(requests)
        assert [r.request_id for r in results] == list(range(6))
        for request, result in zip(requests, results, strict=False):
            single = InferenceSession(qmodel, backend="fast").generate(
                request.prompt,
                request.max_new,
                top_k=request.top_k,
                seed=request.seed,
            )
            assert np.array_equal(result.tokens, single.tokens)
            assert result.finish_reason == "length"

    def test_eos_retires_early(self, setup):
        config, _, qmodel = setup
        probe = Scheduler(make_session(qmodel), max_batch=1)
        prompt = np.arange(5) % config.vocab
        [first] = probe.run([Request(prompt=prompt, max_new=6)])
        eos = int(first.new_tokens[2])
        stop_at = int(np.argmax(first.new_tokens == eos)) + 1  # first hit
        scheduler = Scheduler(make_session(qmodel), max_batch=1)
        [result] = scheduler.run(
            [Request(prompt=prompt, max_new=6, eos_token=eos)]
        )
        assert result.finish_reason == "eos"
        assert len(result.new_tokens) == stop_at
        assert int(result.new_tokens[-1]) == eos

    def test_rejects_oversized_request(self, setup):
        config, _, qmodel = setup
        scheduler = Scheduler(make_session(qmodel))
        prompt = np.zeros(config.max_seq - 2, dtype=np.int64)
        with pytest.raises(RequestError, match=f"max_seq={config.max_seq}"):
            scheduler.submit(Request(prompt=prompt, max_new=10))
        # also an idiomatic ValueError for callers outside the library
        with pytest.raises(ValueError):
            scheduler.submit(Request(prompt=prompt, max_new=10))
        assert scheduler.stats().rejected == 2
        with pytest.raises(RequestError, match="max_new"):
            scheduler.submit(Request(prompt=np.array([1]), max_new=0))

    def test_rejects_invalid_sampling_at_submit(self, setup):
        """Bad sampling params are refused up front, never mid-step
        (where a failure would strand the other resident requests)."""
        _, _, qmodel = setup
        scheduler = Scheduler(make_session(qmodel))
        with pytest.raises(RequestError, match="top_k"):
            scheduler.submit(Request(prompt=np.array([1]), max_new=2, top_k=0))
        with pytest.raises(RequestError, match="temperature"):
            scheduler.submit(
                Request(prompt=np.array([1]), max_new=2, top_k=4, temperature=0.0)
            )
        # a malformed prompt also counts as a refusal in the telemetry
        with pytest.raises(ConfigError):
            scheduler.submit(Request(prompt=np.array([[1, 2]]), max_new=2))
        assert scheduler.stats().rejected == 3
        assert scheduler.active == 0 and scheduler.queued == 0

    def test_continuous_admission(self, setup):
        """More requests than slots: later ones wait, then join."""
        config, _, qmodel = setup
        scheduler = Scheduler(make_session(qmodel, max_slots=2), max_batch=2)
        requests = [
            Request(prompt=np.array([i + 1, i + 2]), max_new=2 + i, seed=i)
            for i in range(5)
        ]
        results = scheduler.run(requests)
        assert len(results) == 5
        assert any(r.queue_wait_steps > 0 for r in results)
        stats = scheduler.stats()
        assert stats.completed == 5
        assert 0 < stats.mean_occupancy <= 1.0
        assert stats.total_new_tokens == sum(2 + i for i in range(5))
        assert stats.aggregate_tokens_per_s > 0

    def test_max_batch_validated(self, setup):
        _, _, qmodel = setup
        with pytest.raises(ConfigError, match="max_batch"):
            Scheduler(make_session(qmodel, max_slots=2), max_batch=3)


class TestTraceReplay:
    def run_trace(self, qmodel, spec, vocab, max_seq):
        scheduler = Scheduler(make_session(qmodel, max_slots=4), max_batch=4)
        trace = synthesize(spec, vocab, max_seq)
        report = replay(scheduler, trace)
        return report, scheduler.stats()

    def test_deterministic_under_fixed_seed(self, setup):
        config, _, qmodel = setup
        spec = TraceSpec(
            requests=10,
            seed=5,
            prompt_len=(3, 12),
            max_new=(2, 8),
            mean_interarrival=3.0,
            top_k=4,
        )
        first, stats_a = self.run_trace(qmodel, spec, config.vocab, config.max_seq)
        second, stats_b = self.run_trace(qmodel, spec, config.vocab, config.max_seq)
        tokens_a = [r.tokens.tolist() for r in first.results]
        tokens_b = [r.tokens.tolist() for r in second.results]
        assert tokens_a == tokens_b
        assert stats_a.steps == stats_b.steps
        assert stats_a.decode_steps == stats_b.decode_steps
        assert stats_a.total_new_tokens == stats_b.total_new_tokens

    def test_arrival_pacing(self, setup):
        config, _, qmodel = setup
        spec = TraceSpec(
            requests=4, seed=1, mean_interarrival=10.0, max_new=(2, 3)
        )
        trace = synthesize(spec, config.vocab, config.max_seq)
        scheduler = Scheduler(make_session(qmodel, max_slots=4), max_batch=4)
        report = replay(scheduler, trace)
        assert len(report.results) == 4
        # the clock must have ticked through the idle arrival gaps
        assert scheduler.steps >= max(r.arrival for r in trace)

    def test_synthesize_rejects_unservable_max_new(self, setup):
        """A max_new range no prompt could accompany is a spec error,
        not a stream of doomed requests."""
        config, _, _ = setup
        spec = TraceSpec(requests=2, max_new=(config.max_seq, config.max_seq))
        with pytest.raises(ConfigError, match="context window"):
            synthesize(spec, config.vocab, config.max_seq)

    def test_unsorted_trace_rejected(self, setup):
        config, _, qmodel = setup
        scheduler = Scheduler(make_session(qmodel))
        requests = [
            Request(prompt=np.array([1]), max_new=1, arrival=5),
            Request(prompt=np.array([2]), max_new=1, arrival=0),
        ]
        with pytest.raises(ConfigError, match="sorted by arrival"):
            replay(scheduler, requests)

    def test_lenient_replay_records_rejections(self, setup):
        config, _, qmodel = setup
        scheduler = Scheduler(make_session(qmodel))
        oversized = Request(
            prompt=np.zeros(config.max_seq, dtype=np.int64), max_new=8
        )
        fine = Request(prompt=np.array([1, 2, 3]), max_new=2)
        report = replay(scheduler, [oversized, fine], strict=False)
        assert len(report.results) == 1
        assert len(report.rejected) == 1
        index, message = report.rejected[0]
        assert index == 0 and f"max_seq={config.max_seq}" in message
        with pytest.raises(RequestError):
            replay(Scheduler(make_session(qmodel)), [oversized], strict=True)


class TestChunkedPrefill:
    def test_token_identical_and_bounded(self, setup):
        """Chunked ingestion changes scheduling, never tokens: every
        request's stream matches the unchunked run, and no step
        prefills more than the budget."""
        config, _, qmodel = setup
        rng = np.random.default_rng(9)
        requests = [
            Request(
                prompt=rng.integers(0, config.vocab, size=n),
                max_new=4,
                top_k=4,
                seed=20 + n,
            )
            for n in (40, 3, 25, 5)
        ]

        def run(prefill_chunk):
            scheduler = Scheduler(
                make_session(qmodel, max_slots=4, capacity=64),
                max_batch=4,
                prefill_chunk=prefill_chunk,
            )
            return scheduler.run(requests), scheduler.stats()

        plain, plain_stats = run(None)
        chunked, stats = run(8)
        for a, b in zip(plain, chunked, strict=False):
            assert np.array_equal(a.tokens, b.tokens), a.request_id
        assert stats.max_prefill_tokens_per_step <= 8
        assert stats.prefill_stall_steps >= 1
        assert stats.prefill_tokens == plain_stats.prefill_tokens == sum(
            r.prompt.shape[0] for r in requests
        )
        # bounding the per-step prefill takes more scheduler steps
        assert stats.prefill_steps > plain_stats.prefill_steps

    def test_residents_decode_while_long_prompt_ingests(self, setup):
        """A long prompt must not stall the batch: short residents keep
        decoding (and can finish) while it streams in chunks."""
        config, _, qmodel = setup
        scheduler = Scheduler(
            make_session(qmodel, max_slots=2, capacity=64),
            max_batch=2,
            prefill_chunk=4,
        )
        rng = np.random.default_rng(10)
        scheduler.submit(
            Request(prompt=rng.integers(0, config.vocab, size=3), max_new=2)
        )
        scheduler.submit(
            Request(prompt=rng.integers(0, config.vocab, size=40), max_new=2)
        )
        while not scheduler.results():
            assert scheduler.step()
        # the short request finished; the long prompt is still ingesting
        assert [r.request_id for r in scheduler.results()] == [0]
        assert any(s.ingesting for s in scheduler._active)
        while scheduler.step():
            pass
        assert [r.request_id for r in scheduler.results()] == [0, 1]
        assert scheduler.stats().prefill_stall_steps >= 1

    def test_prefill_chunk_validated(self, setup):
        _, _, qmodel = setup
        with pytest.raises(ConfigError, match="prefill_chunk"):
            Scheduler(make_session(qmodel), prefill_chunk=0)
        with pytest.raises(ConfigError, match="prefill_chunk"):
            make_session(qmodel).join([np.array([1])], prefill_chunk=0)

    def test_join_chunked_matches_monolithic(self, setup):
        config, _, qmodel = setup
        rng = np.random.default_rng(11)
        prompts = [rng.integers(0, config.vocab, size=n) for n in (17, 5, 26)]
        _, mono = make_session(qmodel, capacity=32).join(prompts)
        _, chunked = make_session(qmodel, capacity=32).join(
            prompts, prefill_chunk=6
        )
        assert np.array_equal(mono, chunked)


class TestSlotChurn:
    def test_slot_reuse_after_release_under_churn(self, setup):
        """Interleaved join/decode/retire keeps every slot's state
        exact: a freed slot re-admits a fresh prompt whose rows match a
        clean single-sequence session."""
        config, _, qmodel = setup
        session = make_session(qmodel, max_slots=2, capacity=32)
        rng = np.random.default_rng(12)
        resident: dict[int, InferenceSession] = {}  # slot -> reference

        def admit_one():
            prompt = rng.integers(0, config.vocab, size=int(rng.integers(3, 9)))
            reference = InferenceSession(qmodel, backend="fast")
            expect = reference.prefill(prompt)[-1]
            slots, last = session.join([prompt])
            assert np.array_equal(last[0], expect)
            resident[slots[0]] = reference

        admit_one()
        admit_one()
        for round_ in range(6):
            # decode all residents lock-step, checked per row
            slots = sorted(resident)
            tokens = [int(rng.integers(0, config.vocab)) for _ in slots]
            batch = session.decode_step(slots, tokens)
            for row, slot, token in zip(batch, slots, tokens, strict=False):
                assert np.array_equal(row, resident[slot].decode_step(token))
            # retire one resident (alternating which) and refill its slot
            victim = slots[round_ % len(slots)]
            session.retire(victim)
            del resident[victim]
            assert session.free_slots == 1
            admit_one()
            assert session.free_slots == 0
