"""detlint self-test: the fixture corpus, the real tree, and the CLI.

Three layers of assurance:

* every shipped rule demonstrably fires on its fixture (including the
  historical failure shapes: ``@`` in a deterministic module, the
  pool-view aliasing class) and stays quiet on conforming code;
* the repository itself lints clean under the committed
  ``detlint.toml`` — in strict mode, so stale waivers fail CI too;
* reverting a known determinism fix makes the tree red again (the
  analyzer guards the invariant, not just the fixtures).
"""

from __future__ import annotations

import json
import pathlib
import shutil
from dataclasses import replace

import pytest

from repro.analysis import lint_paths, load_config, render_findings
from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "detlint"


@pytest.fixture(scope="module")
def corpus_report():
    config = load_config(FIXTURES / "detlint.toml")
    return lint_paths(config, strict=True)


def fired(report, rule, path=None):
    return [
        f
        for f in report.findings
        if f.rule == rule and (path is None or f.path == path)
    ]


class TestCorpusRules:
    @pytest.mark.parametrize(
        "rule, path, count",
        [
            ("D001", "bad_d001.py", 4),  # @, np.matmul, .dot, np.tensordot
            ("D002", "bad_d002.py", 2),  # default and optimize=True
            ("D003", "bad_d003.py", 2),  # np.sum and .sum()
            ("D004", "bad_d004.py", 4),  # listdir, .glob, .iterdir, glob.glob
            ("D005", "bad_d005.py", 3),  # unseeded default_rng, legacy, stdlib
            ("D006", "bad_d006.py", 3),  # time.time, datetime.now, set iter
            ("D007", "bad_d007.py", 3),  # two on the tuple line + one single
            ("D008", "bad_d008.py", 4),  # from-import, Process, get_context, Pool
            ("D999", "bad_parse.py", 1),
        ],
    )
    def test_rule_fires_expected_count(self, corpus_report, rule, path, count):
        assert len(fired(corpus_report, rule, path)) == count

    def test_d001_historical_matmul_shape(self, corpus_report):
        lines = {f.line for f in fired(corpus_report, "D001", "bad_d001.py")}
        source = (FIXTURES / "bad_d001.py").read_text().splitlines()
        assert any("@" in source[line - 1] for line in lines)

    def test_d007_aliasing_shape_both_tuple_elements(self, corpus_report):
        source = (FIXTURES / "bad_d007.py").read_text().splitlines()
        tuple_line = [
            f
            for f in fired(corpus_report, "D007", "bad_d007.py")
            if "self.keys" in source[f.line - 1]
        ]
        line_counts: dict[int, int] = {}
        for f in fired(corpus_report, "D007", "bad_d007.py"):
            line_counts[f.line] = line_counts.get(f.line, 0) + 1
        assert 2 in line_counts.values()  # both elements of the returned tuple
        assert tuple_line

    def test_conforming_variants_quiet(self, corpus_report):
        # Each fixture carries a `conforming` sibling; none of its lines fire.
        for path in sorted(FIXTURES.glob("bad_d0*.py")):
            source = path.read_text().splitlines()
            conforming_lines = {
                i + 1
                for i, text in enumerate(source)
                if "conforming" in text or "pinned" in text
            }
            for f in corpus_report.findings:
                if f.path == path.name:
                    assert f.line not in conforming_lines, (f, path.name)

    def test_clean_module_is_clean(self, corpus_report):
        assert not [f for f in corpus_report.findings if f.path == "clean.py"]

    def test_rules_only_fire_under_their_contract(self):
        # Without contracts, D001/D003/D007 are silent and D006 is too;
        # D002/D004/D005 are universal.
        config = load_config(FIXTURES / "detlint.toml")
        bare = replace(config, deterministic=(), artifact=(), process_owner=())
        report = lint_paths(bare)
        rules = {f.rule for f in report.findings}
        assert {"D001", "D003", "D006", "D007"}.isdisjoint(rules)
        assert {"D002", "D004", "D005", "D008"} <= rules


class TestSuppressionHygiene:
    def test_malformed_markers_are_findings_and_waive_nothing(self, corpus_report):
        d000 = fired(corpus_report, "D000", "bad_suppress.py")
        assert len(d000) == 4  # bare (2 problems), no-justification, bad id
        # every malformed marker's D004 still fires
        assert len(fired(corpus_report, "D004", "bad_suppress.py")) == 3

    def test_well_formed_marker_waives(self, corpus_report):
        waived = [
            f
            for f in corpus_report.suppressed
            if f.path == "bad_suppress.py" and f.rule == "D004"
        ]
        assert len(waived) == 1
        assert "order-free" in waived[0].message

    def test_stale_suppression_reported_under_strict_only(self):
        config = load_config(FIXTURES / "detlint.toml")
        strict = lint_paths(config, strict=True)
        lax = lint_paths(config, strict=False)
        assert fired(strict, "D010", "stale_suppress.py")
        assert not fired(lax, "D010", "stale_suppress.py")


class TestRepositoryIsClean:
    def test_tree_lints_clean_strict(self):
        config = load_config(REPO / "detlint.toml")
        report = lint_paths(config, strict=True)
        assert report.ok, render_findings(report)
        assert report.files > 80  # the whole package was actually scanned
        assert report.suppressed  # and the waivers are exercised

    def test_reverting_checkpoint_fix_turns_tree_red(self, tmp_path):
        # PR satellite: model/checkpoint.py sorts its stale-shard glob.
        # Undo that fix in a copied tree and detlint must fail.
        src = REPO / "src" / "repro" / "model" / "checkpoint.py"
        fixed = src.read_text()
        broken = fixed.replace(
            'stale.extend(sorted(directory.glob("layer-*.npz")))',
            'stale.extend(directory.glob("layer-*.npz"))',
        )
        assert broken != fixed  # the satellite fix is present
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "model"
        target.mkdir(parents=True)
        shutil.copy(REPO / "detlint.toml", root / "detlint.toml")
        (target / "checkpoint.py").write_text(broken)
        config = load_config(root / "detlint.toml")
        report = lint_paths(config, paths=[target / "checkpoint.py"])
        assert [f.rule for f in report.findings] == ["D004"]


class TestCli:
    def test_lint_clean_tree_exit_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["lint", "--strict"]) == 0
        assert "detlint: clean" in capsys.readouterr().out

    def test_lint_corpus_json_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(REPO)
        out = tmp_path / "findings.json"
        argv = [
            "lint",
            "--config",
            str(FIXTURES / "detlint.toml"),
            "--format",
            "json",
            "--out",
            str(out),
        ]
        code = main(argv)
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["schema"] == "detlint/v1"
        assert payload["summary"]["active"] > 0
        by_rule = payload["summary"]["by_rule"]
        for rule in [f"D00{i}" for i in range(1, 9)]:
            assert by_rule.get(rule, 0) > 0, rule

    def test_lint_rule_filter_and_paths(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        argv = [
            "lint",
            "--config",
            str(FIXTURES / "detlint.toml"),
            "--rules",
            "D005",
            str(FIXTURES / "bad_d005.py"),
        ]
        code = main(argv)
        out = capsys.readouterr().out
        assert code == 1
        assert "D005" in out and "D004" not in out

    def test_lint_unknown_rule_is_config_error(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["lint", "--rules", "D437"]) == 1
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in [f"D00{i}" for i in range(1, 9)]:
            assert rule in out
