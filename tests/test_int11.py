"""Tests for the significand multiplier arrays (repro.multiplier.int11)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.multiplier.int11 import (
    BASELINE_INT11_INVENTORY,
    PARALLEL_INT11_INVENTORY,
    PARALLEL_INT11_REUSED,
    AdderInventory,
    baseline_activity,
    baseline_int11_mul,
    parallel_activity,
    parallel_int11_mul,
    partial_product_rows,
)


class TestPartialProducts:
    def test_rows_sum_to_product(self):
        rows = partial_product_rows(0b10110010101, 0b1011, 4)
        assert sum(rows) == 0b10110010101 * 0b1011

    def test_zero_bit_gives_zero_row(self):
        rows = partial_product_rows(1023, 0b0101, 4)
        assert rows[1] == 0 and rows[3] == 0

    def test_rejects_wide_a(self):
        with pytest.raises(EncodingError):
            partial_product_rows(1 << 11, 1, 4)

    def test_rejects_wide_b(self):
        with pytest.raises(EncodingError):
            partial_product_rows(1, 16, 4)

    @given(st.integers(0, 2047), st.integers(0, 15))
    def test_property_int4(self, a, b):
        assert sum(partial_product_rows(a, b, 4)) == a * b


class TestBaselineArray:
    @given(st.integers(0, 2047), st.integers(0, 2047))
    @settings(max_examples=300)
    def test_exact(self, a, b):
        assert baseline_int11_mul(a, b) == a * b

    def test_max_operands(self):
        assert baseline_int11_mul(2047, 2047) == 2047 * 2047


class TestParallelArray:
    @given(st.integers(0, 2047), st.lists(st.integers(0, 15), min_size=1, max_size=4))
    @settings(max_examples=300)
    def test_exact_int4(self, a, bs):
        assert parallel_int11_mul(a, bs, 4) == [a * b for b in bs]

    @given(st.integers(0, 2047), st.lists(st.integers(0, 3), min_size=1, max_size=8))
    @settings(max_examples=300)
    def test_exact_int2(self, a, bs):
        assert parallel_int11_mul(a, bs, 2) == [a * b for b in bs]

    def test_rejects_wide_lane(self):
        with pytest.raises(EncodingError):
            parallel_int11_mul(1, [1], 8)


class TestInventories:
    def test_baseline_matches_table1(self):
        assert BASELINE_INT11_INVENTORY.adders == {16: 10}

    def test_parallel_matches_table1(self):
        assert PARALLEL_INT11_INVENTORY.adders == {16: 12, 6: 4}

    def test_reused_subset(self):
        assert PARALLEL_INT11_REUSED.adders == {16: 10}

    def test_total_full_adder_bits(self):
        assert BASELINE_INT11_INVENTORY.total_full_adder_bits() == 160
        assert PARALLEL_INT11_INVENTORY.total_full_adder_bits() == 216

    def test_merge(self):
        merged = AdderInventory({16: 2}).merged_with(AdderInventory({16: 1, 6: 4}))
        assert merged.adders == {16: 3, 6: 4}


class TestActivity:
    def test_baseline_and_plane(self):
        assert baseline_activity().and_plane_bits == 121

    def test_parallel_and_plane_int4(self):
        assert parallel_activity(4).and_plane_bits == 11 * 4 * 4

    def test_parallel_and_plane_int2(self):
        assert parallel_activity(2).and_plane_bits == 11 * 2 * 8

    def test_parallel_rejects_other_widths(self):
        with pytest.raises(EncodingError):
            parallel_activity(3)
