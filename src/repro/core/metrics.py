"""Energy, delay, EDP and throughput/watt evaluation (paper Section V).

Combines the simulator's measured activity (cycles, RF beats,
hierarchy traffic, general-core instructions) with the analytical cost
model of :mod:`repro.energy` into the metrics the paper reports.

Unit bridging: compute-unit costs are expressed in gate-level units
(full-adder bit == 1); memory energies in pJ-like units.  The bridge
constant ``ENERGY_UNIT_PJ`` is chosen so a baseline FP16 multiply
costs ~0.9 pJ, squarely inside published 32-45 nm datapoints, making
compute and memory energy commensurable.

Following the paper's methodology ("we utilized CACTI 7.0 to model
**on-chip** SRAM and register files"), the EDP energy covers on-chip
components (RF, L1, L2, compute units, general core); DRAM traffic is
tracked in the stats but excluded from EDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.arch import Architecture
from repro.energy.memory import DEFAULT_MEMORY, MemoryModel
from repro.energy.tech import DEFAULT_TECH, TechnologyModel
from repro.energy.units import dp_unit
from repro.simt.memoryhier import GemmShape
from repro.simt.sm import dp_busy_cycles_for_gemm, simulate_gemm
from repro.simt.stats import SimStats

#: Gate-level energy units -> pJ bridge (see module docstring).
ENERGY_UNIT_PJ = 0.004
#: Energy of one general-core instruction (unpack / dequant FMA), pJ.
GENERAL_INSTR_PJ = 1.5


@dataclass(frozen=True)
class EnergyReport:
    """Energy split of one GEMM execution, pJ-like units."""

    rf: float
    l1: float
    l2: float
    dram: float
    compute: float
    general_core: float

    @property
    def on_chip(self) -> float:
        """EDP energy basis (paper models on-chip SRAM/RF via CACTI)."""
        return self.rf + self.l1 + self.l2 + self.compute + self.general_core

    @property
    def total(self) -> float:
        return self.on_chip + self.dram


@dataclass(frozen=True)
class EvalResult:
    """Full evaluation of one architecture on one GEMM."""

    architecture: str
    shape: GemmShape
    stats: SimStats
    energy: EnergyReport

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def edp(self) -> float:
        """Energy-delay product over on-chip energy (normalized use only)."""
        return self.energy.on_chip * self.stats.cycles

    @property
    def macs_per_cycle(self) -> float:
        return self.stats.products / self.stats.cycles


def evaluate(
    arch: Architecture,
    shape: GemmShape,
    tech: TechnologyModel = DEFAULT_TECH,
    memory: MemoryModel = DEFAULT_MEMORY,
) -> EvalResult:
    """Simulate + price one GEMM on one architecture."""
    stats = simulate_gemm(arch.flow, shape, arch.sim)

    rf_beats = stats.rf.total + stats.scale_fetches
    rf_energy = memory.register_file.energy(rf_beats)
    l1_energy = memory.l1.energy(stats.mem.l1)
    l2_energy = memory.l2.energy(stats.mem.l2)
    dram_energy = memory.dram.energy(stats.mem.dram)

    core = arch.sim.core
    pack = arch.flow.pack_factor if arch.flow.uses_parallel_multiplier else 1
    dup = core.adder_tree_dup if arch.flow.uses_parallel_multiplier else 1
    unit = dp_unit(width=core.dp_width, pack=pack, dup=dup, tech=tech)
    busy = dp_busy_cycles_for_gemm(arch.flow, shape, arch.sim)
    dp_units_per_octet = arch.sim.octet.dp_units
    compute_energy = busy * dp_units_per_octet * unit.energy_per_op * ENERGY_UNIT_PJ

    general_energy = stats.dequant_instructions * GENERAL_INSTR_PJ

    return EvalResult(
        architecture=arch.name,
        shape=shape,
        stats=stats,
        energy=EnergyReport(
            rf=rf_energy,
            l1=l1_energy,
            l2=l2_energy,
            dram=dram_energy,
            compute=compute_energy,
            general_core=general_energy,
        ),
    )


def evaluate_many(
    arch: Architecture,
    shapes: Sequence[GemmShape],
    tech: TechnologyModel = DEFAULT_TECH,
    memory: MemoryModel = DEFAULT_MEMORY,
) -> list[EvalResult]:
    """Batch :func:`evaluate`: one result per shape, memoizing duplicates.

    The replay entry point for served-workload pricing
    (:mod:`repro.codesign`): a serving histogram's buckets collapse —
    after warp-tile padding — onto few distinct shapes, each simulated
    and priced once.  Output order matches input order.
    """
    memo: dict[GemmShape, EvalResult] = {}
    out: list[EvalResult] = []
    for shape in shapes:
        result = memo.get(shape)
        if result is None:
            result = memo[shape] = evaluate(arch, shape, tech, memory)
        out.append(result)
    return out


def speedup(baseline: EvalResult, contender: EvalResult) -> float:
    """Delay ratio baseline/contender (>1 means contender is faster)."""
    return baseline.cycles / contender.cycles


def edp_reduction(baseline: EvalResult, contender: EvalResult) -> float:
    """Fractional EDP reduction of contender vs baseline (paper Fig. 10)."""
    return 1.0 - contender.edp / baseline.edp


def normalized_edp(results: list[EvalResult], reference: EvalResult) -> list[float]:
    """EDP of each result normalized to a reference run."""
    return [r.edp / reference.edp for r in results]


def throughput_per_watt(ops_per_cycle: float, energy_per_cycle: float) -> float:
    """Throughput/watt proxy: work per unit energy (frequency cancels)."""
    return ops_per_cycle / energy_per_cycle
