"""Shared multiprocessing primitives: start-method pick + worker spawn.

Every multi-process corner of the repo (the harness executor's job
pool, the serving layer's data-parallel router, the tensor-parallel
GEMM workers) needs the same two decisions made the same way:

* **Start method.** ``fork`` shares the already-imported package with
  workers (fast start, no re-import); fall back to ``spawn`` where fork
  is unavailable (e.g. macOS defaults, Windows).
* **Bootstrap.** Under ``spawn`` the child re-imports the target's
  module from scratch, which only works if the ``repro`` package is
  importable in the fresh interpreter.  The parent may have made it
  importable via a ``sys.path`` hack rather than ``PYTHONPATH`` (e.g.
  ``PYTHONPATH=src pytest`` sets it, but an embedding script might
  not), so :func:`spawn_worker` pins the package root into the child's
  ``PYTHONPATH`` before starting it.

Keeping both here means the harness and the serving shards cannot
drift apart on either choice.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import multiprocessing.context
import os
from pathlib import Path
from typing import Any, Callable


def preferred_start_method() -> str:
    """Return ``"fork"`` where available, else ``"spawn"``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def pool_context() -> multiprocessing.context.BaseContext:
    """Multiprocessing context using :func:`preferred_start_method`."""
    return multiprocessing.get_context(preferred_start_method())


def package_root() -> Path:
    """Directory that must be on ``sys.path`` for ``import repro``."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def bootstrap_pythonpath() -> str:
    """``PYTHONPATH`` value that makes ``repro`` importable in a child.

    Prepends :func:`package_root` to the current ``PYTHONPATH`` unless
    it is already listed, so spawn-mode children (fresh interpreters)
    import the same package tree as the parent.
    """
    root = str(package_root())
    existing = os.environ.get("PYTHONPATH", "")
    if root in existing.split(os.pathsep):
        return existing
    return os.pathsep.join(part for part in (root, existing) if part)


def spawn_worker(
    target: Callable[..., None],
    args: tuple[Any, ...] = (),
    *,
    name: str | None = None,
) -> tuple[Any, multiprocessing.connection.Connection]:
    """Start a persistent worker process wired to a duplex pipe.

    ``target`` must be a module-level callable (spawn pickles it by
    qualified name) and receives the child end of the pipe as its first
    argument, followed by ``args``.  Returns ``(process, parent_conn)``;
    the child end is closed in the parent so a dead worker surfaces as
    ``EOFError`` on ``parent_conn.recv()`` instead of a hang.  Workers
    are daemonic: an exiting parent never leaks them.
    """
    ctx = pool_context()
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=target, args=(child_conn, *args), name=name)
    proc.daemon = True
    if preferred_start_method() == "spawn":
        # Pin the package root for the child's fresh interpreter; fork
        # children inherit the parent's sys.path and never read this.
        previous = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = bootstrap_pythonpath()
        try:
            proc.start()
        finally:
            if previous is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = previous
    else:
        proc.start()
    child_conn.close()
    return proc, parent_conn
