"""Whole-model evaluation: aggregate PacQ gains over an LLM.

Rolls per-layer simulator results up to model level: total cycles,
energy, weight storage and the aggregate speedup / EDP reduction of
deploying one architecture instead of another across every decoder
GEMM (times the layer count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arch import Architecture
from repro.core.metrics import EvalResult, evaluate
from repro.core.workloads import LlmSpec
from repro.errors import ConfigError
from repro.simt.memoryhier import weight_beats


@dataclass(frozen=True)
class LayerReport:
    """One decoder GEMM's evaluation under one architecture."""

    name: str
    result: EvalResult


@dataclass(frozen=True)
class ModelReport:
    """Aggregate over all decoder layers of a model."""

    model: str
    architecture: str
    layers: tuple[LayerReport, ...]
    num_decoder_layers: int

    @property
    def total_cycles(self) -> int:
        return self.num_decoder_layers * sum(ly.result.cycles for ly in self.layers)

    @property
    def total_onchip_energy(self) -> float:
        return self.num_decoder_layers * sum(
            ly.result.energy.on_chip for ly in self.layers
        )

    @property
    def total_edp(self) -> float:
        return self.total_onchip_energy * self.total_cycles

    def weight_storage_bytes(self, weight_bits: int) -> float:
        per_layer = sum(
            weight_beats(ly.result.shape, weight_bits) * 2 for ly in self.layers
        )
        return float(self.num_decoder_layers * per_layer)


def evaluate_model(arch: Architecture, spec: LlmSpec, batch: int = 16) -> ModelReport:
    """Evaluate every decoder GEMM of ``spec`` under ``arch``."""
    layers = []
    for name, shape in spec.layer_gemms(batch):
        if shape.m % 16 or shape.n % 16 or shape.k % 16:
            raise ConfigError(f"layer {name} shape {shape.name} is not MMA-tileable")
        layers.append(LayerReport(name, evaluate(arch, shape)))
    return ModelReport(
        model=spec.name,
        architecture=arch.name,
        layers=tuple(layers),
        num_decoder_layers=spec.num_layers,
    )


def compare_models(baseline: ModelReport, contender: ModelReport) -> dict[str, float]:
    """Aggregate speedup / energy / EDP deltas between two reports."""
    if baseline.model != contender.model:
        raise ConfigError("reports describe different models")
    return {
        "speedup": baseline.total_cycles / contender.total_cycles,
        "energy_ratio": contender.total_onchip_energy / baseline.total_onchip_energy,
        "edp_reduction": 1.0 - contender.total_edp / baseline.total_edp,
    }
