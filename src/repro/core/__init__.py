"""PacQ core: architectures, functional GEMM, metrics, experiments.

* :mod:`repro.core.arch` — Table I architecture presets.
* :mod:`repro.core.gemm` — functional hyper-asymmetric GEMM API.
* :mod:`repro.core.workloads` — LLM GEMM shapes.
* :mod:`repro.core.metrics` — energy / EDP / throughput-per-watt.
* :mod:`repro.core.experiments` — one runner per paper table/figure.
* :mod:`repro.core.report` — plain-text result tables.
"""

from repro.core.arch import (
    Architecture,
    packed_k_baseline,
    pacq,
    standard_dequant,
    table1_inventory,
    volta_w16a16,
)
from repro.core.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    ResultRow,
    fig7a,
    fig7b,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12a,
    fig12b,
    table1,
    table2,
)
from repro.core.gemm import dequant_reference, hyper_gemm, pack_for_flow
from repro.core.metrics import (
    EnergyReport,
    EvalResult,
    edp_reduction,
    evaluate,
    normalized_edp,
    speedup,
    throughput_per_watt,
)
from repro.core.modelreport import (
    LayerReport,
    ModelReport,
    compare_models,
    evaluate_model,
)
from repro.core.report import render_table
from repro.core.roofline import (
    MachineRoofline,
    RooflinePoint,
    analyze,
    crossover_batch,
    machine_for,
)
from repro.core.workloads import (
    LLAMA2_7B,
    LLAMA2_13B,
    OPT_6_7B,
    LlmSpec,
    batch_sweep,
    fig10_workload,
    microbench_workload,
    model_workloads,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "Architecture",
    "EnergyReport",
    "EvalResult",
    "ExperimentResult",
    "LLAMA2_13B",
    "LLAMA2_7B",
    "LayerReport",
    "LlmSpec",
    "ModelReport",
    "compare_models",
    "evaluate_model",
    "MachineRoofline",
    "OPT_6_7B",
    "ResultRow",
    "RooflinePoint",
    "analyze",
    "batch_sweep",
    "crossover_batch",
    "machine_for",
    "dequant_reference",
    "edp_reduction",
    "evaluate",
    "fig10",
    "fig10_workload",
    "fig11",
    "fig12a",
    "fig12b",
    "fig7a",
    "fig7b",
    "fig8",
    "fig9",
    "hyper_gemm",
    "microbench_workload",
    "model_workloads",
    "normalized_edp",
    "pack_for_flow",
    "packed_k_baseline",
    "pacq",
    "render_table",
    "speedup",
    "standard_dequant",
    "table1",
    "table1_inventory",
    "table2",
    "throughput_per_watt",
    "volta_w16a16",
]
