"""Architecture presets (paper Table I).

Bundles the octet/tensor-core/SM parameters of PacQ and its baselines
into named presets so experiments and examples configure one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.octet import OctetArch
from repro.simt.sm import GemmSimConfig, MachineConfig
from repro.simt.tensorcore import TensorCoreConfig


@dataclass(frozen=True)
class Architecture:
    """A named architecture: flow + hardware parameters.

    Attributes:
        name: display name.
        flow: execution flow and weight precision.
        sim: simulator configuration (machine, octet, tensor core).
    """

    name: str
    flow: FlowConfig
    sim: GemmSimConfig = field(default_factory=GemmSimConfig)

    @property
    def weight_bits(self) -> int:
        return self.flow.weight_bits


def _sim_for(machine: MachineConfig | None) -> GemmSimConfig:
    if machine is None:
        return GemmSimConfig()
    return GemmSimConfig(machine=machine)


def volta_w16a16(machine: MachineConfig | None = None) -> Architecture:
    """The unquantized FP16 reference (standard GEMM, FP16 weights)."""
    return Architecture(
        "Volta W16A16", FlowConfig(FlowKind.STANDARD_DEQUANT, 16), _sim_for(machine)
    )


def standard_dequant(
    weight_bits: int = 4, machine: MachineConfig | None = None
) -> Architecture:
    """Fig. 1(a): weight-only quantized model on the unmodified baseline."""
    return Architecture(
        f"standard dequant INT{weight_bits}",
        FlowConfig(FlowKind.STANDARD_DEQUANT, weight_bits),
        _sim_for(machine),
    )


def packed_k_baseline(
    weight_bits: int = 4, machine: MachineConfig | None = None
) -> Architecture:
    """Hyper-asymmetric flow with the conventional k-dim packing."""
    flow = FlowConfig(FlowKind.PACKED_K, weight_bits)
    return Architecture(flow.label, flow, _sim_for(machine))


def volta_full_machine() -> MachineConfig:
    """A full Volta-class part with Volta's compute:bandwidth balance.

    The paper's unit-level cycle model (11 cycles per DP-4 burst) is
    slower than real silicon, so reproducing Volta's *machine balance*
    — the ridge point near 125 TFLOP/s over 900 GB/s, i.e. ~69 MACs
    per byte — requires shrinking the modelled bandwidth by the same
    factor as the modelled compute: 14 SMs at ~1 DRAM beat per cycle
    each.  This is the machine on which the paper's Section I
    motivation (small-batch = memory-bound, multi-batch = compute-
    bound) plays out; the default single-SM `MachineConfig` keeps a
    generous bandwidth so microbenchmarks stay compute-limited.
    """
    return MachineConfig(num_sms=14, dram_beats_per_cycle=1.0)


def pacq(
    weight_bits: int = 4,
    adder_tree_dup: int = 2,
    dp_width: int = 4,
    machine: MachineConfig | None = None,
) -> Architecture:
    """PacQ: n-dim packing + parallel FP-INT multipliers (Table I).

    ``adder_tree_dup`` and ``dp_width`` expose the Fig. 11 / Fig. 12(a)
    ablation knobs.
    """
    if weight_bits not in (2, 4):
        raise ConfigError(f"PacQ supports INT4/INT2 weights, not INT{weight_bits}")
    flow = FlowConfig(FlowKind.PACQ, weight_bits)
    sim = GemmSimConfig(
        machine=machine if machine is not None else MachineConfig(),
        octet=OctetArch(),
        core=TensorCoreConfig(dp_width=dp_width, adder_tree_dup=adder_tree_dup),
    )
    return Architecture(f"PacQ INT{weight_bits}", flow, sim)


def table1_inventory() -> list[tuple[str, str]]:
    """The unit inventory of Table I, as (unit, composition) rows."""
    return [
        ("INT11 MUL (baseline)", "10 INT16 adders"),
        ("Parallel INT11 MUL", "12 INT16 adders, 4 INT6 adders"),
        (
            "FP16 MUL (baseline)",
            "1 INT11 MUL, 1 INT5 adder, 1 normalization unit, 1 rounding unit",
        ),
        (
            "Parallel FP-INT-16 MUL",
            "1 parallel INT11 MUL, 1 INT5 adder, 1 normalization unit, 4 rounding units",
        ),
        ("FP-16 DP-4 (baseline)", "4 FP16 MUL, 4 FP16 adders"),
        ("Parallel FP-INT-16 DP-4", "4 parallel FP-INT-16 MUL, 8 FP16 adders"),
        (
            "Tensor core",
            "4 parallel FP-INT-16 DP-4 (baseline: 4 FP16 DP-4), "
            "2x3072-bit buffers, 256KB register file",
        ),
        ("Streaming multiprocessor", "8 tensor cores, 96KB shared L1 cache"),
    ]
