"""Extension experiments beyond the paper's figures.

These runners cover analyses the paper motivates in prose but does not
plot, using the same infrastructure as :mod:`repro.core.experiments`:

* ``batch_sweep`` — Section I's argument quantified: speedup and EDP
  reduction of PacQ vs the standard flow across batch sizes on the
  Llama2-7B FFN facet, showing the compute-bound regime is where PacQ
  pays.
* ``roofline`` — the memory/compute-bound crossover for each Llama2-7B
  layer at several batch sizes.
* ``area`` — Fig. 9's reuse story restated in silicon area: the
  gate-equivalent overhead each PacQ unit adds over its baseline.
"""

from __future__ import annotations

from repro.core.arch import (
    pacq,
    standard_dequant,
    volta_full_machine,
    volta_w16a16,
)
from repro.core.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    ResultRow,
    register_experiment,
)
from repro.core.metrics import edp_reduction, evaluate, speedup
from repro.core.roofline import analyze, crossover_batch
from repro.core.workloads import LLAMA2_7B
from repro.energy.area import area_overhead_vs_baseline
from repro.simt.memoryhier import GemmShape


@register_experiment(
    name="batch_sweep",
    artifact="Section I (extension)",
    headline="PacQ speedup/EDP across batch sizes on the Llama2-7B FFN facet",
    extension=True,
)
def batch_sweep_experiment(
    batches: tuple[int, ...] = (16, 32, 64, 128, 256),
    n: int = 4096,
    k: int = 4096,
    weight_bits: int = 4,
) -> ExperimentResult:
    """PacQ vs standard flow across batch sizes (multi-batch serving)."""
    rows = []
    for batch in batches:
        shape = GemmShape(batch, n, k)
        std = evaluate(standard_dequant(weight_bits), shape)
        ours = evaluate(pacq(weight_bits), shape)
        rows.append(
            ResultRow(f"batch {batch} speedup", speedup(std, ours), None, "x")
        )
        rows.append(
            ResultRow(
                f"batch {batch} EDP reduction",
                edp_reduction(std, ours),
                None,
                "fraction",
            )
        )
    return ExperimentResult(
        "batch_sweep",
        f"PacQ INT{weight_bits} vs standard dequant across batches (n={n}, k={k})",
        tuple(rows),
    )


@register_experiment(
    name="roofline",
    artifact="Section I (extension)",
    headline="memory/compute-bound crossover of each Llama2-7B layer",
    extension=True,
)
def roofline_experiment(batches: tuple[int, ...] = (1, 16, 256)) -> ExperimentResult:
    """Memory- vs compute-bound placement of Llama2-7B layers."""
    rows = []
    arch = pacq(4)
    for batch in batches:
        for name, shape in LLAMA2_7B.layer_gemms(batch):
            point = analyze(arch, shape)
            rows.append(
                ResultRow(
                    f"batch {batch} {name} ({'compute' if point.compute_bound else 'memory'}-bound)",
                    point.arithmetic_intensity,
                    None,
                    "MACs/B",
                )
            )
    ffn_cross = crossover_batch(arch, 4096, 4096)
    if ffn_cross is not None:
        rows.append(
            ResultRow("FFN compute-bound crossover batch", float(ffn_cross), None, "")
        )
    return ExperimentResult(
        "roofline", "Arithmetic intensity and boundedness of Llama2-7B layers", tuple(rows)
    )


@register_experiment(
    name="area",
    artifact="Fig. 9 (extension)",
    headline="gate-equivalent area overhead of each PacQ unit",
    extension=True,
)
def area_experiment() -> ExperimentResult:
    """Gate-equivalent area overhead of PacQ's units over baselines."""
    rows = [
        ResultRow(f"{unit} area overhead", overhead, None, "fraction")
        for unit, overhead in area_overhead_vs_baseline().items()
    ]
    return ExperimentResult(
        "area", "Silicon-area overhead of the parallel units (GE model)", tuple(rows)
    )


@register_experiment(
    name="motivation",
    artifact="Fig. 1 / Section I (extension)",
    headline="where weight-only quantization pays: memory- vs compute-bound",
    extension=True,
)
def motivation_experiment(
    small_batch: int = 16, large_batch: int = 256
) -> ExperimentResult:
    """The Fig. 1 / Section I story, measured on a 14-SM machine.

    In the memory-bound small-batch regime, weight-only quantization
    alone (standard dequant flow) already speeds up inference — the
    packed weights move 4x less DRAM traffic.  In the compute-bound
    multi-batch regime that advantage vanishes (the tensor cores still
    run FP16 GEMMs) and only PacQ's hyper-asymmetric compute recovers
    a speedup.
    """
    machine = volta_full_machine()
    rows = []
    for batch, regime in ((small_batch, "memory-bound"), (large_batch, "compute-bound")):
        shape = GemmShape(batch, 4096, 4096)
        fp16 = evaluate(volta_w16a16(machine), shape)
        std = evaluate(standard_dequant(4, machine), shape)
        ours = evaluate(pacq(4, machine=machine), shape)
        rows.append(
            ResultRow(
                f"batch {batch} ({regime}): dequant INT4 vs W16A16",
                speedup(fp16, std),
                None,
                "x",
            )
        )
        rows.append(
            ResultRow(
                f"batch {batch} ({regime}): PacQ INT4 vs W16A16",
                speedup(fp16, ours),
                None,
                "x",
            )
        )
    return ExperimentResult(
        "motivation",
        "Section I motivation: where weight-only quantization pays (14-SM machine)",
        tuple(rows),
    )


@register_experiment(
    name="spec_decode",
    artifact="serving layer (extension)",
    headline="speculative decoding: acceptance and step reduction by draft and k",
    extension=True,
)
def spec_decode_experiment(
    drafts: tuple[str, ...] = ("bigram", "int2"),
    ks: tuple[int, ...] = (2, 4),
    requests: int = 6,
    vocab: int = 64,
    d_model: int = 32,
    max_new: int = 24,
) -> ExperimentResult:
    """Draft x window sweep of bit-exact speculative decoding.

    Replays one greedy trace through the continuous-batching scheduler
    without speculation, then once per (draft, k) with it; every row is
    a deterministic count (acceptance rate, draft tokens accepted per
    verify step, decode-step reduction) plus a token-identity check
    (1.0 = every request's stream matches the non-speculative replay,
    which the verify scheme guarantees by construction).
    """
    from repro.llm.transformer import TransformerConfig, init_weights
    from repro.model import parse_policy, quantize_model

    # sweep grids pass bare values through; normalize the axes
    if isinstance(drafts, str):
        drafts = (drafts,)
    if isinstance(ks, int):
        ks = (ks,)
    from repro.serve import (
        BatchedSession,
        BigramDraft,
        Scheduler,
        SessionDraft,
        TraceSpec,
        replay,
        synthesize,
    )

    config = TransformerConfig(
        vocab=vocab, d_model=d_model, n_heads=4, n_layers=2,
        d_ffn=2 * d_model, max_seq=64,
    )
    weights = init_weights(config, seed=0)
    qmodel = quantize_model(
        weights, parse_policy("rtn4@g[32,4]"), config=config,
        compute_reports=False,
    )
    spec = TraceSpec(
        requests=requests, seed=0, prompt_len=(4, 12),
        max_new=(4, max_new), mean_interarrival=1.0, eos_token=3,
    )
    trace = synthesize(spec, config.vocab, config.max_seq)

    def run(speculate):
        session = BatchedSession(qmodel, backend="fast", max_slots=requests)
        scheduler = Scheduler(session, max_batch=requests, speculate=speculate)
        report = replay(scheduler, trace, strict=True)
        streams = [tuple(r.new_tokens) for r in report.results]
        return streams, scheduler.stats()

    def make_draft(name):
        if name == "bigram":
            session = BatchedSession(qmodel, backend="fast", max_slots=1)
            return BigramDraft.distill(session.decoder)
        draft_model = quantize_model(
            weights, parse_policy(f"*={name}@g[32,4]"), config=config,
            compute_reports=False,
        )
        return SessionDraft(draft_model, backend="fast", max_slots=requests)

    base_streams, base_stats = run(None)
    rows = []
    for name in drafts:
        draft = make_draft(name)
        for k in ks:
            streams, stats = run((draft, k))
            identical = float(streams == base_streams)
            rows.append(
                ResultRow(
                    f"{name} k={k} token identity", identical, 1.0, "exact"
                )
            )
            rows.append(
                ResultRow(
                    f"{name} k={k} acceptance rate",
                    stats.draft_acceptance_rate,
                    None,
                    "fraction",
                )
            )
            rows.append(
                ResultRow(
                    f"{name} k={k} accepted per verify step",
                    stats.accepted_per_verify_step,
                    None,
                    "tok",
                )
            )
            rows.append(
                ResultRow(
                    f"{name} k={k} decode-step reduction",
                    base_stats.decode_steps / max(stats.decode_steps, 1),
                    None,
                    "x",
                )
            )
    return ExperimentResult(
        "spec_decode",
        "Bit-exact speculative decoding: draft x window sweep on the "
        "continuous-batching scheduler (greedy trace, counts only)",
        tuple(rows),
    )


# The co-design replay experiment lives with its capture/replay code;
# importing it here registers it for the CLI and the pool workers alike.
from repro.codesign import experiment as _codesign  # noqa: E402,F401

#: Plain name -> callable view of the extension experiments (merged
#: into the CLI; metadata lives in ``EXPERIMENT_REGISTRY``).
EXTENSION_EXPERIMENTS = {
    name: exp.runner
    for name, exp in sorted(EXPERIMENT_REGISTRY.items())
    if exp.extension
}
