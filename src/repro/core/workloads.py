"""LLM GEMM workloads (paper Section V).

The paper evaluates weight-only-quantized LLM inference in the
multi-batch (compute-bound) regime; its headline EDP workload is
``m16n4096k4096`` — "a FFN layer in Llama2-7B with 16 batches".  This
module enumerates the GEMM shapes of the standard decoder layers so
sweeps can cover whole models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simt.memoryhier import GemmShape


@dataclass(frozen=True)
class LlmSpec:
    """Decoder-layer dimensions of one LLM."""

    name: str
    hidden: int
    intermediate: int
    num_layers: int
    vocab: int

    def layer_gemms(self, batch: int) -> list[tuple[str, GemmShape]]:
        """GEMM shapes of one decoder layer at a given batch size.

        Shapes follow the paper's ``[m, k] x [k, n]`` convention with
        ``m`` the token-batch dimension.
        """
        if batch < 1:
            raise ConfigError("batch must be >= 1")
        h, f = self.hidden, self.intermediate
        return [
            ("qkv_proj", GemmShape(batch, 3 * h, h)),
            ("o_proj", GemmShape(batch, h, h)),
            ("ffn_gate", GemmShape(batch, f, h)),
            ("ffn_up", GemmShape(batch, f, h)),
            ("ffn_down", GemmShape(batch, h, f)),
        ]


#: Llama2-7B per its published configuration.
LLAMA2_7B = LlmSpec("Llama2-7B", hidden=4096, intermediate=11008, num_layers=32, vocab=32000)
#: Llama2-13B.
LLAMA2_13B = LlmSpec("Llama2-13B", hidden=5120, intermediate=13824, num_layers=40, vocab=32000)
#: OPT-6.7B (the OPT family uses 4x FFN expansion).
OPT_6_7B = LlmSpec("OPT-6.7B", hidden=4096, intermediate=16384, num_layers=32, vocab=50272)


def fig10_workload() -> GemmShape:
    """The paper's EDP workload: Llama2-7B FFN slice at batch 16.

    ``m16n4096k4096`` — the down-projection facet of the FFN with both
    GEMM dims at the hidden size.
    """
    return GemmShape(16, 4096, 4096)


def microbench_workload() -> GemmShape:
    """The warp-level workload of Figs. 7, 11 and 12 (m16n16k16)."""
    return GemmShape(16, 16, 16)


def batch_sweep(base: GemmShape, batches: list[int]) -> list[GemmShape]:
    """The same layer at several batch sizes (single-batch -> serving)."""
    return [GemmShape(b, base.n, base.k) for b in batches]


def model_workloads(spec: LlmSpec, batch: int = 16) -> list[tuple[str, GemmShape]]:
    """All distinct GEMMs of one model at a batch size."""
    return spec.layer_gemms(batch)
