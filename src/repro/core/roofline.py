"""Roofline analysis: when does PacQ's compute advantage matter?

The paper's motivation (Section I): weight-only quantization already
speeds up *memory-bound* single-batch generation on stock hardware,
but real serving is multi-batch and *compute-bound*, where the
conventional flow forfeits every computational saving.  This module
quantifies that crossover: for a GEMM and an architecture it computes
arithmetic intensity, the memory-bandwidth and compute rooflines, and
the batch size at which a layer turns compute-bound — the regime
PacQ's 2x compute throughput targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.arch import Architecture
from repro.errors import ConfigError
from repro.simt.memoryhier import GemmShape, weight_beats


@dataclass(frozen=True)
class RooflinePoint:
    """One GEMM's placement against the machine rooflines."""

    shape: GemmShape
    arithmetic_intensity: float  #: MACs per DRAM byte
    compute_bound: bool
    compute_cycles: float
    memory_cycles: float

    @property
    def attainable_utilization(self) -> float:
        """Fraction of peak MACs the memory system can sustain."""
        if self.compute_cycles <= 0:
            raise ConfigError("degenerate roofline point")
        return min(1.0, self.compute_cycles / max(self.memory_cycles, 1e-12))


@dataclass(frozen=True)
class MachineRoofline:
    """Peak rates of a machine for roofline placement.

    Attributes:
        macs_per_cycle: tensor-core peak MAC throughput.
        dram_bytes_per_cycle: DRAM bandwidth in bytes per core cycle.
    """

    macs_per_cycle: float
    dram_bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.macs_per_cycle <= 0 or self.dram_bytes_per_cycle <= 0:
            raise ConfigError(f"invalid roofline machine: {self}")

    @property
    def ridge_intensity(self) -> float:
        """MACs/byte above which a kernel is compute-bound."""
        return self.macs_per_cycle / self.dram_bytes_per_cycle


def machine_for(arch: Architecture) -> MachineRoofline:
    """Derive peak rates from an architecture's simulator config.

    Peak MACs: every DP multiplier slot busy every cycle, times the
    PacQ packing parallelism capped by the adder-tree duplication
    (the sustained bound the cycle model enforces).  DRAM bandwidth is
    a Volta-like 900 GB/s at 1.4 GHz scaled per SM pair of octets.
    """
    machine = arch.sim.machine
    core = arch.sim.core
    dp_slots = (
        machine.octet_slots * arch.sim.octet.dp_units * core.dp_width
    )
    if arch.flow.uses_parallel_multiplier:
        sustained_pack = min(arch.flow.pack_factor, core.adder_tree_dup)
        peak = dp_slots * sustained_pack
    else:
        peak = dp_slots
    bytes_per_cycle = machine.dram_beat_slots * 2.0  # beats are 16-bit
    return MachineRoofline(macs_per_cycle=peak, dram_bytes_per_cycle=bytes_per_cycle)


def dram_bytes(shape: GemmShape, weight_bits: int) -> float:
    """Compulsory DRAM traffic of one GEMM in bytes."""
    a_bytes = shape.m * shape.k * 2  # FP16 activations
    b_bytes = weight_beats(shape, weight_bits) * 2
    c_bytes = shape.m * shape.n * 2
    return float(a_bytes + b_bytes + c_bytes)


def analyze(arch: Architecture, shape: GemmShape) -> RooflinePoint:
    """Place one GEMM against an architecture's rooflines."""
    machine = machine_for(arch)
    total_bytes = dram_bytes(shape, arch.flow.weight_bits)
    intensity = shape.macs / total_bytes
    compute_cycles = shape.macs / machine.macs_per_cycle
    memory_cycles = total_bytes / machine.dram_bytes_per_cycle
    return RooflinePoint(
        shape=shape,
        arithmetic_intensity=intensity,
        compute_bound=compute_cycles >= memory_cycles,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
    )


def analyze_many(
    arch: Architecture, shapes: Sequence[GemmShape]
) -> list[RooflinePoint]:
    """Batch :func:`analyze`: one point per shape, memoizing duplicates.

    The roofline-placement counterpart of
    :func:`repro.core.metrics.evaluate_many`, used by the workload
    replay (:mod:`repro.codesign`) to classify every served histogram
    bucket as memory- or compute-bound.  Output order matches input
    order.
    """
    memo: dict[GemmShape, RooflinePoint] = {}
    out: list[RooflinePoint] = []
    for shape in shapes:
        point = memo.get(shape)
        if point is None:
            point = memo[shape] = analyze(arch, shape)
        out.append(point)
    return out


def crossover_batch(
    arch: Architecture, n: int, k: int, max_batch: int = 4096
) -> int | None:
    """Smallest batch at which a [b, k] x [k, n] layer turns compute-bound.

    Returns ``None`` when the layer stays memory-bound up to
    ``max_batch`` (e.g. tiny layers on a bandwidth-starved machine).
    """
    batch = 1
    while batch <= max_batch:
        if analyze(arch, GemmShape(batch, n, k)).compute_bound:
            return batch
        batch *= 2
    return None
