"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table with a title line."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [title, "-" * len(title), line(list(headers))]
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def render_bars(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
) -> str:
    """Render a horizontal ASCII bar chart (for figure-type results).

    Values must be non-negative; bars are scaled to the maximum.
    """
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values, default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    out = [title, "-" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * (round(value / peak * width) if peak else 0)
        out.append(f"{label.ljust(label_width)}  {bar} {_fmt(float(value))}")
    return "\n".join(out)
