"""Rendering and artifact sinks for experiment results.

Two layers live here:

* **Plain-text rendering** (:func:`render_table`, :func:`render_bars`)
  — what the CLI prints.
* **Artifact sinks** over :class:`RunRecord` values — the structured
  outputs the harness emits: per-run JSON (:func:`record_to_dict`),
  a merged CSV (:func:`render_csv`), and the committed paper-vs-
  measured ``EXPERIMENTS.md`` (:func:`render_experiments_md`) with
  deviation columns.  :func:`check_records` implements the
  ``report --check`` tolerance gate against the per-row tolerances
  registered in :mod:`repro.core.experiments`.

Everything the markdown/CSV sinks emit is deterministic for a given
set of results (fixed float formatting, sorted ordering, no
timestamps), so ``EXPERIMENTS.md`` regenerates byte-identically and
staleness is a simple string comparison.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    table1,
)


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table with a title line."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [title, "-" * len(title), line(list(headers))]
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


# ---------------------------------------------------------------------------
# Artifact sink layer (harness output: JSON / CSV / EXPERIMENTS.md).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunRecord:
    """One executed experiment run, ready for the artifact sinks."""

    experiment: str
    params: Mapping[str, object] = field(default_factory=dict)
    result: ExperimentResult | None = None
    cached: bool = False
    elapsed_s: float = 0.0


def record_to_dict(record: RunRecord) -> dict[str, object]:
    """Per-run JSON artifact payload."""
    return {
        "experiment": record.experiment,
        "params": dict(record.params),
        "cached": record.cached,
        "elapsed_s": record.elapsed_s,
        "result": record.result.to_dict() if record.result else None,
    }


def _params_str(params: Mapping[str, object]) -> str:
    return ";".join(f"{k}={v}" for k, v in sorted(params.items()))


def _csv_cell(value: object) -> str:
    text = "" if value is None else str(value)
    if any(c in text for c in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


def render_csv(records: Sequence[RunRecord]) -> str:
    """Merge records into one CSV (row per result row, full precision)."""
    out = ["experiment,params,configuration,measured,paper,deviation,unit"]
    for record in records:
        if record.result is None:
            continue
        params = _params_str(record.params)
        for row in record.result.rows:
            dev = "" if row.deviation is None else repr(row.deviation)
            paper = "" if row.paper is None else repr(row.paper)
            out.append(
                ",".join(
                    _csv_cell(cell)
                    for cell in (
                        record.experiment,
                        params,
                        row.label,
                        repr(row.measured),
                        paper,
                        dev,
                        row.unit,
                    )
                )
            )
    return "\n".join(out) + "\n"


def row_tolerance(experiment: str, label: str) -> float:
    """Deviation tolerance for one result row.

    The experiment's registered per-row tolerance
    (:meth:`repro.core.experiments.Experiment.row_tolerance`);
    unregistered experiments fall back to a 25% default.  The single
    predicate behind both ``report --check`` and the markdown
    summary's ok/**over** column.
    """
    exp = EXPERIMENT_REGISTRY.get(experiment)
    return exp.row_tolerance(label) if exp else 0.25


def check_records(records: Sequence[RunRecord]) -> list[str]:
    """Tolerance violations (``report --check``): one message per row."""
    violations = []
    for record in records:
        if record.result is None:
            continue
        for row in record.result.rows:
            if row.deviation is None:
                continue
            tol = row_tolerance(record.experiment, row.label)
            if abs(row.deviation) > tol:
                violations.append(
                    f"{record.experiment}: row {row.label!r} deviates "
                    f"{row.deviation:+.1%} from the paper "
                    f"(tolerance ±{tol:.0%})"
                )
    return violations


def _sig(value: object) -> str:
    """Stable 4-significant-digit formatting for committed artifacts."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


_EXPERIMENTS_MD_PREAMBLE = """\
# EXPERIMENTS — paper vs measured

**Generated file — do not edit.**  Regenerate with::

    PYTHONPATH=src python -m repro report

``python -m repro report --check`` additionally exits non-zero when
any measured/paper deviation exceeds its registered per-row tolerance
or when this committed file is stale (CI runs exactly that).

Absolute numbers are not expected to match the paper (our substrate is
an analytical simulator, not the authors' RTL + CACTI testbed); the
*shape* — who wins, by what factor, where the knees fall — is the
reproduction target.  Per-row tolerances encode how far each measured
value may drift from the paper's printed number before the check
fails.
"""

_EXPERIMENTS_MD_NOTES = """\
## Method notes

* **Fig. 7(a)**: RF beats measured by the trace-driven octet simulator
  (LRU operand buffers per Fig. 3(d)).  Our INT4 reduction overshoots
  the paper because PacQ's output-stationary flow eliminates *all*
  partial-sum RF round-trips in our model, while the paper's flow
  appears to retain some; the INT2 point lands within 1 pt.
* **Fig. 7(b)**: the ~2x is emergent — `P(Bx)k` cannot use the
  parallel multiplier (its packed weights need different activations),
  and PacQ is adder-tree-bound at dup 2.  Pipeline-fill overhead gives
  ~1.96x vs the paper's 1.98/1.99x.
* **Table II**: synthetic self-calibrated bigram LM (no LLM checkpoint
  offline; see DESIGN.md).  Absolute perplexities differ by
  construction; the claim under test — reshaping the 128-element group
  to [32, 4] is perplexity-neutral — reproduces.
* **Fig. 8**: unit energies from the Table I inventories + 32 nm
  component constants.  INT2 undershoots the paper's 6.75x because our
  model charges the eight per-lane rounding units and output registers
  linearly; the paper's synthesis evidently amortizes them better.
* **Fig. 10**: EDP over on-chip energy (RF + L1 + L2 + units +
  general core), matching the paper's CACTI-based on-chip methodology;
  DRAM is tracked but excluded.  INT2 undershoots the paper's -81.4%
  mainly because our INT2 compute-energy premium (extra rounding
  lanes) is charged every cycle.
* **Fig. 12(b)**: Mix-GEMM modelled as binary segmentation whose cost
  is dominated by the two activation segments FP16 requires — INT4 and
  INT2 cost the same, reproducing the paper's near-equal bars.
"""


def render_experiments_md(records: Sequence[RunRecord]) -> str:
    """Render the committed ``EXPERIMENTS.md`` from run records.

    Layout: preamble, a per-experiment summary (artifact, headline,
    worst deviation vs tolerance, status), the static method notes,
    Table I, then one paper-vs-measured table per experiment with a
    deviation column.  Output is deterministic for a given record set.
    """
    paper_records = [
        r
        for r in records
        if r.result is not None
        and not getattr(EXPERIMENT_REGISTRY.get(r.experiment), "extension", False)
    ]
    ext_records = [
        r
        for r in records
        if r.result is not None
        and getattr(EXPERIMENT_REGISTRY.get(r.experiment), "extension", False)
    ]

    out = io.StringIO()
    out.write(_EXPERIMENTS_MD_PREAMBLE)
    out.write("\n## Summary\n\n")
    out.write(
        "| experiment | paper artifact | headline | worst deviation "
        "| tolerance | status |\n|---|---|---|---|---|---|\n"
    )
    for record in paper_records:
        exp = EXPERIMENT_REGISTRY.get(record.experiment)
        devs = [
            (abs(row.deviation), row)
            for row in record.result.rows
            if row.deviation is not None
        ]
        if devs:
            _, worst = max(devs, key=lambda d: d[0])
            worst_txt = f"{worst.deviation:+.1%}"
            tol_txt = f"±{row_tolerance(record.experiment, worst.label):.0%}"
        else:
            worst_txt, tol_txt = "-", "-"
        bad = any(
            abs(row.deviation) > row_tolerance(record.experiment, row.label)
            for row in record.result.rows
            if row.deviation is not None
        )
        out.write(
            f"| {record.experiment} "
            f"| {exp.artifact if exp else '-'} "
            f"| {exp.headline if exp else '-'} "
            f"| {worst_txt} | {tol_txt} | {'**over**' if bad else 'ok'} |\n"
        )
    out.write("\n")
    out.write(_EXPERIMENTS_MD_NOTES)

    out.write("\n## Table I — configuration (identity with the paper)\n\n")
    out.write("| unit | composition |\n|---|---|\n")
    for unit, composition in table1():
        out.write(f"| {unit} | {composition} |\n")

    out.write("\n## Paper experiments\n")
    for record in paper_records:
        result = record.result
        out.write(f"\n### {record.experiment} — {result.description}\n\n")
        if record.params:
            out.write(f"Parameters: `{_params_str(record.params)}`\n\n")
        out.write(
            "| configuration | measured | paper | deviation | unit |\n"
            "|---|---|---|---|---|\n"
        )
        for row in result.rows:
            paper = "-" if row.paper is None else _sig(row.paper)
            dev = "-" if row.deviation is None else f"{row.deviation:+.1%}"
            out.write(
                f"| {row.label} | {_sig(row.measured)} | {paper} "
                f"| {dev} | {row.unit} |\n"
            )

    out.write("\n## Extension experiments (beyond the paper's figures)\n")
    for record in ext_records:
        result = record.result
        out.write(f"\n### {record.experiment} — {result.description}\n\n")
        out.write("| configuration | measured | unit |\n|---|---|---|\n")
        for row in result.rows:
            out.write(f"| {row.label} | {_sig(row.measured)} | {row.unit} |\n")

    return out.getvalue()


def render_bars(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
) -> str:
    """Render a horizontal ASCII bar chart (for figure-type results).

    Values must be non-negative; bars are scaled to the maximum.
    """
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values, default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    out = [title, "-" * len(title)]
    for label, value in zip(labels, values, strict=False):
        bar = "#" * (round(value / peak * width) if peak else 0)
        out.append(f"{label.ljust(label_width)}  {bar} {_fmt(float(value))}")
    return "\n".join(out)
