"""Functional hyper-asymmetric GEMM (the user-facing compute API).

``hyper_gemm`` multiplies an FP16 activation matrix by a group-
quantized, packed INT weight matrix exactly the way the PacQ
microarchitecture does (Fig. 6):

1. packed signed codes are re-biased (``B -> B + 2**(bits-1)``) and
   offset by 1024, so every product runs through the parallel FP-INT
   multiplier's constant-exponent datapath;
2. products accumulate per k-group alongside the small ``sum(A)``
   accumulators;
3. the general core applies Eq. (1)'s correction
   (``- offset * sum(A)``), the zero-point adjustment and the group
   scale.

Two execution modes:

* ``"fast"`` — vectorized NumPy with FP16-rounded products and wide
  accumulation (tensor-core FP32-accumulate behaviour); use for real
  workloads;
* ``"bitexact"`` — every product goes through the bit-level parallel
  multiplier of :mod:`repro.multiplier.parallel`; use to validate the
  datapath on small matrices.

Both modes agree bit-for-bit on products (asserted in the tests).

Numerics note: each product is the FP16 rounding of
``A * (B + 1032)`` — bit-identical to multiplying by the transformed
weight (the paper's "no approximation" claim, which holds at the
product level).  Because the product's magnitude is dominated by the
``1032 * A`` term, its 11-bit significand carries fewer effective bits
of the *signal* ``A * B`` than the dequantize-first baseline does, so
``hyper_gemm`` outputs deviate from :func:`dequant_reference` by up to
``~0.5 * ulp(1032 * |A|)`` per product before scaling.  The test suite
bounds this envelope analytically, and the Table II experiment shows
it is perplexity-neutral end-to-end.

A second consequence of the same amplification: transformed products
saturate FP16 (overflow to inf) once ``|A| > 65504 / 1039 ~ 63``,
whereas the dequant baseline handles such activations fine.  Real
deployments keep FP16 activations well inside that range; the test
suite pins the behaviour so users hit a documented edge, not a
mystery.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.fp import fp16
from repro.multiplier.parallel import (
    parallel_fp_int_mul,
    rebias_offset,
    transform_offset,
)
from repro.quant.packing import PackDim, PackSpec, pack, unpack
from repro.quant.rtn import QuantizedMatrix


def _as_fp16(a: np.ndarray) -> np.ndarray:
    """Round activations to FP16 (they enter the datapath as binary16)."""
    return np.asarray(a, dtype=np.float16)


def dequant_reference(a: np.ndarray, qm: QuantizedMatrix) -> np.ndarray:
    """The baseline flow: dequantize to FP16, then FP16xFP16 matmul.

    Products are rounded to FP16 elementwise (via float32 matmul over
    FP16-rounded weights) with wide accumulation.
    """
    a16 = _as_fp16(a).astype(np.float64)
    w16 = np.asarray(qm.dequantize(), dtype=np.float16).astype(np.float64)
    return a16 @ w16


def hyper_gemm(
    a: np.ndarray,
    qm: QuantizedMatrix,
    mode: str = "fast",
) -> np.ndarray:
    """``C = A @ dequant(B)`` through PacQ's transformed-weight path.

    Args:
        a: ``[m, k]`` activations (rounded to FP16 on entry).
        qm: group-quantized ``[k, n]`` weights (INT4 or INT2).
        mode: ``"fast"`` or ``"bitexact"``.

    Returns:
        ``[m, n]`` float64 outputs (FP32-accumulate semantics).
    """
    if qm.bits not in (2, 4):
        raise QuantizationError(f"hyper_gemm requires INT4/INT2 weights, got INT{qm.bits}")
    if a.ndim != 2 or a.shape[1] != qm.k_dim:
        raise QuantizationError(
            f"activation shape {a.shape} does not match weights [{qm.k_dim}, {qm.n_dim}]"
        )
    if mode == "fast":
        return _hyper_gemm_fast(a, qm)
    if mode == "bitexact":
        return _hyper_gemm_bitexact(a, qm)
    raise QuantizationError(f"unknown mode: {mode!r}")


def _group_adjust(qm: QuantizedMatrix) -> np.ndarray:
    """Per-group additive code adjustment applied with the scale.

    The multiplier computes ``sum(A * signed)``; the dequantized value
    is ``scale * (storage_code - zero)``.  For asymmetric storage
    ``storage_code = signed + rebias`` so the adjustment is
    ``rebias - zero``; symmetric storage has ``storage_code = signed``
    and ``zero = 0``, so no adjustment.
    """
    if qm.symmetric:
        return np.zeros_like(qm.zeros)
    return rebias_offset(qm.bits) - qm.zeros


def _hyper_gemm_fast(a: np.ndarray, qm: QuantizedMatrix) -> np.ndarray:
    a16 = _as_fp16(a)
    a_wide = a16.astype(np.float64)
    signed = qm.signed_codes().astype(np.float64)
    offset = float(transform_offset(qm.bits))
    gk, gn = qm.group.grid_shape(qm.k_dim, qm.n_dim)
    adjust = _group_adjust(qm)  # [gk, gn]
    m = a.shape[0]
    out = np.zeros((m, qm.n_dim), dtype=np.float64)

    for gi in range(gk):
        ks = slice(gi * qm.group.k, (gi + 1) * qm.group.k)
        a_slab = a_wide[:, ks]
        # Transformed-weight products, FP16-rounded elementwise.  The
        # transformed weights (1024..2047 + code) are exact in FP16, so
        # float16 multiply here is bit-identical to the parallel
        # multiplier (verified against the bitexact path in tests).
        t_slab = signed[ks, :] + offset  # [group.k, n]
        with np.errstate(over="ignore"):  # FP16 saturation is modelled
            prods = (a16[:, ks, None].astype(np.float32)
                     * t_slab[None, :, :].astype(np.float32)).astype(np.float16)
        s1 = prods.astype(np.float64).sum(axis=1)  # [m, n]
        s_a = a_slab.sum(axis=1, keepdims=True)  # the sum(A) accumulator
        corrected = s1 - offset * s_a  # Eq. (1): sum(A * signed)
        for gj in range(gn):
            ns = slice(gj * qm.group.n, (gj + 1) * qm.group.n)
            scale = qm.scales[gi, gj]
            out[:, ns] += scale * (corrected[:, ns] + adjust[gi, gj] * s_a)
    return out


def _hyper_gemm_bitexact(a: np.ndarray, qm: QuantizedMatrix) -> np.ndarray:
    a16 = _as_fp16(a)
    signed = qm.signed_codes()
    offset = float(transform_offset(qm.bits))
    pack_factor = 16 // qm.bits
    if qm.n_dim % pack_factor:
        raise QuantizationError(
            f"n={qm.n_dim} not divisible by pack factor {pack_factor}"
        )
    gk, gn = qm.group.grid_shape(qm.k_dim, qm.n_dim)
    adjust = _group_adjust(qm)
    m = a.shape[0]
    out = np.zeros((m, qm.n_dim), dtype=np.float64)

    for i in range(m):
        for gi in range(gk):
            ks = range(gi * qm.group.k, (gi + 1) * qm.group.k)
            s_a = 0.0
            s1 = np.zeros(qm.n_dim, dtype=np.float64)
            for k in ks:
                a_bits = fp16.from_float(float(a16[i, k]))
                s_a += fp16.to_float(a_bits)
                for nw in range(qm.n_dim // pack_factor):
                    codes = [
                        int(signed[k, nw * pack_factor + j])
                        for j in range(pack_factor)
                    ]
                    result = parallel_fp_int_mul(a_bits, codes, qm.bits)
                    for j, bits in enumerate(result.products):
                        s1[nw * pack_factor + j] += fp16.to_float(bits)
            corrected = s1 - offset * s_a
            for gj in range(gn):
                ns = slice(gj * qm.group.n, (gj + 1) * qm.group.n)
                out[i, ns] += qm.scales[gi, gj] * (
                    corrected[ns] + adjust[gi, gj] * s_a
                )
    return out


def pack_for_flow(qm: QuantizedMatrix, along_n: bool = True):
    """Pack a quantized matrix the way a flow stores it.

    PacQ packs along ``n`` (:data:`True`); the conventional frameworks
    the paper criticizes pack along ``k``.  Returns a
    :class:`repro.quant.packing.PackedMatrix`.
    """
    spec = PackSpec(qm.bits, PackDim.N if along_n else PackDim.K)
    return pack(qm.signed_codes(), spec)


def unpack_roundtrip(qm: QuantizedMatrix, along_n: bool = True) -> np.ndarray:
    """Pack + unpack the codes (identity; exists for end-to-end tests)."""
    return unpack(pack_for_flow(qm, along_n))
