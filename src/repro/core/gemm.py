"""Functional hyper-asymmetric GEMM (the user-facing compute API).

``hyper_gemm`` multiplies an FP16 activation matrix by a group-
quantized, packed INT weight matrix exactly the way the PacQ
microarchitecture does (Fig. 6):

1. packed signed codes are re-biased (``B -> B + 2**(bits-1)``) and
   offset by 1024, so every product runs through the parallel FP-INT
   multiplier's constant-exponent datapath;
2. products accumulate per k-group alongside the small ``sum(A)``
   accumulators;
3. the general core applies Eq. (1)'s correction
   (``- offset * sum(A)``), the zero-point adjustment and the group
   scale.

Plan/execute architecture
-------------------------

Since the engine refactor this module is a thin dispatcher into
:mod:`repro.engine`, which splits the GEMM into a one-time **plan**
step and a repeated **execute** step:

* :func:`repro.engine.plan_gemm` precomputes per-weight-matrix state
  (transformed-weight slabs, folded ``rebias - zero`` adjustments,
  expanded scale grids, pack layout) into a cached
  :class:`repro.engine.GemmPlan`;
* :meth:`GemmPlan.execute(a, backend=...) <repro.engine.GemmPlan.execute>`
  runs the hot path through a named backend from the engine registry.

``hyper_gemm(a, qm, mode=...)`` keeps its original signature: ``mode``
is simply a registered backend name, and plans are memoized per weight
matrix, so repeated calls (per-token decoding, perplexity sweeps) plan
once and execute many times.  Built-in backends:

* ``"fast"`` — vectorized NumPy with FP16-rounded products and wide
  accumulation (tensor-core FP32-accumulate behaviour); use for real
  workloads;
* ``"batched"`` — the same numerics as one batched channel-indicator
  contraction (BLAS), bit-for-bit identical to ``fast`` and
  substantially faster at serving shapes;
* ``"bitexact"`` — every product goes through the bit-level parallel
  multiplier of :mod:`repro.multiplier.parallel`; use to validate the
  datapath on small matrices;
* ``"reference"`` — the dequantize-then-matmul baseline flow
  (equivalent to :func:`dequant_reference`).

Custom backends plug in without touching this module::

    from repro.engine import register_backend

    @register_backend("tiled", description="cache-tiled execution")
    def execute_tiled(a, plan):  # (activations, GemmPlan) -> [m, n]
        ...

    hyper_gemm(a, qm, mode="tiled")  # dispatches to the new backend

``"fast"`` and ``"bitexact"`` agree bit-for-bit on products (asserted
in the tests), and ``"batched"`` is asserted bit-identical to
``"fast"`` across random group specs.

Numerics note: each product is the FP16 rounding of
``A * (B + 1032)`` — bit-identical to multiplying by the transformed
weight (the paper's "no approximation" claim, which holds at the
product level).  Because the product's magnitude is dominated by the
``1032 * A`` term, its 11-bit significand carries fewer effective bits
of the *signal* ``A * B`` than the dequantize-first baseline does, so
``hyper_gemm`` outputs deviate from :func:`dequant_reference` by up to
``~0.5 * ulp(1032 * |A|)`` per product before scaling.  The test suite
bounds this envelope analytically, and the Table II experiment shows
it is perplexity-neutral end-to-end.

A second consequence of the same amplification: transformed products
saturate FP16 (overflow to inf) once ``|A| > 65504 / 1039 ~ 63``,
whereas the dequant baseline handles such activations fine.  Real
deployments keep FP16 activations well inside that range; the test
suite pins the behaviour so users hit a documented edge, not a
mystery.
"""

from __future__ import annotations

import numpy as np

from repro.engine import plan_gemm
from repro.quant.packing import PackDim, PackSpec, pack, unpack
from repro.quant.rtn import QuantizedMatrix


def _as_fp16(a: np.ndarray) -> np.ndarray:
    """Round activations to FP16 (they enter the datapath as binary16)."""
    return np.asarray(a, dtype=np.float16)


def dequant_reference(a: np.ndarray, qm: QuantizedMatrix) -> np.ndarray:
    """The baseline flow: dequantize to FP16, then matmul.

    Weights are rounded to FP16 elementwise; the matmul itself runs in
    float64 over the FP16-rounded operands (i.e. exact products with
    wide accumulation — the idealized tensor-core baseline).
    """
    a16 = _as_fp16(a).astype(np.float64)
    w16 = np.asarray(qm.dequantize(), dtype=np.float16).astype(np.float64)
    return a16 @ w16


def hyper_gemm(
    a: np.ndarray,
    qm: QuantizedMatrix,
    mode: str = "fast",
) -> np.ndarray:
    """``C = A @ dequant(B)`` through PacQ's transformed-weight path.

    Thin wrapper over the execution engine: plans are cached per
    ``qm`` (see :func:`repro.engine.plan_gemm`), so repeated calls pay
    planning cost once.

    Args:
        a: ``[m, k]`` activations (rounded to FP16 on entry).
        qm: group-quantized ``[k, n]`` weights (INT4 or INT2).
        mode: a registered backend name — ``"fast"``, ``"batched"``,
            ``"bitexact"``, ``"reference"``, or any custom
            registration.

    Returns:
        ``[m, n]`` float64 outputs (FP32-accumulate semantics).

    Raises:
        QuantizationError: from the engine, for non-INT4/INT2 weights,
            mismatched activation shapes, or unknown modes.
    """
    return plan_gemm(qm).execute(a, backend=mode)


def pack_for_flow(qm: QuantizedMatrix, along_n: bool = True):
    """Pack a quantized matrix the way a flow stores it.

    PacQ packs along ``n`` (:data:`True`); the conventional frameworks
    the paper criticizes pack along ``k``.  Returns a
    :class:`repro.quant.packing.PackedMatrix`.
    """
    spec = PackSpec(qm.bits, PackDim.N if along_n else PackDim.K)
    return pack(qm.signed_codes(), spec)


def unpack_roundtrip(qm: QuantizedMatrix, along_n: bool = True) -> np.ndarray:
    """Pack + unpack the codes (identity; exists for end-to-end tests)."""
    return unpack(pack_for_flow(qm, along_n))
