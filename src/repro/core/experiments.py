"""One runner per paper table/figure (the reproduction registry).

Each ``figNN()`` / ``tableN()`` function regenerates the corresponding
result of the paper's evaluation section and returns a structured
:class:`ExperimentResult` whose rows can be printed
(:func:`repro.core.report.render_table`), benchmarked or asserted in
tests.  ``paper`` fields carry the value the paper reports (where it
prints one) so EXPERIMENTS.md's paper-vs-measured tables come straight
from this module.

Runners are not bare callables: each registers through
:func:`register_experiment` as an :class:`Experiment` entry carrying
metadata — the paper artifact it reproduces, its headline metric, and
the per-row deviation tolerance ``pacq-repro report --check`` enforces.
The orchestration layer (:mod:`repro.harness`) discovers experiments,
their sweepable keyword parameters, and their tolerances exclusively
through this registry; ``ALL_EXPERIMENTS`` remains as the plain
name-to-callable view for backward compatibility.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.arch import (
    packed_k_baseline,
    pacq,
    standard_dequant,
    table1_inventory,
)
from repro.core.metrics import evaluate
from repro.core.workloads import fig10_workload
from repro.energy.breakdown import average_reuse, fig9_breakdowns
from repro.energy.tech import DEFAULT_TECH
from repro.energy.units import dp_unit, fp16_mul_baseline, fp_int16_mul_parallel
from repro.errors import ConfigError
from repro.llm.bigram import make_bigram_lm
from repro.llm.corpus import sample_tokens
from repro.llm.perplexity import evaluate_perplexity
from repro.mixgemm.binseg import mixgemm_point
from repro.multiplier.dp import (
    DpConfig,
    TileWork,
    cycles_for,
    fig8_dp4_workload,
    packed_outputs,
)
from repro.quant.groups import TABLE2_SPECS, spec_from_label
from repro.quant.rtn import quantize_rtn
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.memoryhier import GemmShape
from repro.simt.octet import simulate_octet
from repro.simt.tensorcore import TensorCoreConfig, octet_cycles
from repro.simt.warp import OctetWorkload


@dataclass(frozen=True)
class ResultRow:
    """One row of a reproduced table/figure."""

    label: str
    measured: float
    paper: float | None = None
    unit: str = ""

    @property
    def deviation(self) -> float | None:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper - 1.0

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (harness cache and artifact files)."""
        return {
            "label": self.label,
            "measured": self.measured,
            "paper": self.paper,
            "unit": self.unit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultRow":
        return cls(
            label=str(data["label"]),
            measured=float(data["measured"]),
            paper=None if data.get("paper") is None else float(data["paper"]),
            unit=str(data.get("unit", "")),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced experiment: id, description, rows."""

    experiment: str
    description: str
    rows: tuple[ResultRow, ...] = field(default_factory=tuple)

    def row(self, label: str) -> ResultRow:
        for row in self.rows:
            if row.label == label:
                return row
        available = ", ".join(repr(r.label) for r in self.rows) or "<none>"
        raise KeyError(
            f"{self.experiment}: no row {label!r} (available: {available})"
        )

    def headers(self) -> list[str]:
        return ["configuration", "measured", "paper", "unit"]

    def table_rows(self) -> list[list[object]]:
        return [
            [r.label, r.measured, "-" if r.paper is None else r.paper, r.unit]
            for r in self.rows
        ]

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form, inverse of :meth:`from_dict`."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "rows": [r.to_dict() for r in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            experiment=str(data["experiment"]),
            description=str(data["description"]),
            rows=tuple(ResultRow.from_dict(r) for r in data.get("rows", ())),
        )


# ---------------------------------------------------------------------------
# Experiment registry — runners with metadata, the harness's substrate.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Experiment:
    """A registered experiment runner plus its reproduction metadata.

    Attributes:
        name: registry key (CLI experiment name).
        runner: the ``figNN()``-style callable returning an
            :class:`ExperimentResult`; keyword parameters are the
            experiment's sweepable knobs.
        artifact: the paper artifact reproduced (``"Fig. 7(a)"``).
        headline: one-line headline metric of the reproduction.
        extension: True for analyses beyond the paper's figures.
        tolerance: default ``|measured/paper - 1|`` bound per row for
            ``report --check``.
        row_tolerances: per-row-label overrides of ``tolerance``.
    """

    name: str
    runner: Callable[..., ExperimentResult]
    artifact: str
    headline: str
    extension: bool = False
    tolerance: float = 0.25
    row_tolerances: Mapping[str, float] = field(default_factory=dict)

    def params(self) -> dict[str, object]:
        """Sweepable keyword parameters mapped to their defaults."""
        out: dict[str, object] = {}
        for pname, param in inspect.signature(self.runner).parameters.items():
            if param.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                out[pname] = param.default
        return out

    def accepts(self, param: str) -> bool:
        """Whether the runner takes keyword parameter ``param``."""
        return param in self.params()

    def run(self, **params: Any) -> ExperimentResult:
        """Invoke the runner, rejecting unknown parameters up front."""
        unknown = sorted(set(params) - set(self.params()))
        if unknown:
            raise ConfigError(
                f"experiment {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; it accepts: "
                f"{', '.join(sorted(self.params())) or '<none>'}"
            )
        return self.runner(**params)

    def row_tolerance(self, label: str) -> float:
        """Deviation tolerance for one row (per-label override wins)."""
        return self.row_tolerances.get(label, self.tolerance)


#: name -> :class:`Experiment`; single source of truth for the CLI and
#: the harness.  Populated by :func:`register_experiment` at import of
#: this module and :mod:`repro.core.extensions`.
EXPERIMENT_REGISTRY: dict[str, Experiment] = {}


def register_experiment(
    *,
    artifact: str,
    headline: str,
    extension: bool = False,
    tolerance: float = 0.25,
    row_tolerances: Mapping[str, float] | None = None,
    name: str | None = None,
):
    """Decorator: register a runner in :data:`EXPERIMENT_REGISTRY`."""

    def decorate(fn: Callable[..., ExperimentResult]):
        exp = Experiment(
            name=name or fn.__name__,
            runner=fn,
            artifact=artifact,
            headline=headline,
            extension=extension,
            tolerance=tolerance,
            row_tolerances=dict(row_tolerances or {}),
        )
        if exp.name in EXPERIMENT_REGISTRY:
            raise ConfigError(f"experiment {exp.name!r} already registered")
        EXPERIMENT_REGISTRY[exp.name] = exp
        return fn

    return decorate


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment; the error lists what exists."""
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"no experiment {name!r} (registered: "
            f"{', '.join(sorted(EXPERIMENT_REGISTRY))})"
        ) from None


def unregister_experiment(name: str) -> None:
    """Remove a registered experiment (tests and plugins)."""
    EXPERIMENT_REGISTRY.pop(name, None)


def registered_experiments(include_extensions: bool = True) -> list[Experiment]:
    """All registered experiments, sorted by name."""
    return [
        exp
        for name, exp in sorted(EXPERIMENT_REGISTRY.items())
        if include_extensions or not exp.extension
    ]


# ---------------------------------------------------------------------------
# Table I — architecture configuration.
# ---------------------------------------------------------------------------


def table1() -> list[tuple[str, str]]:
    """Unit inventory of PacQ and the baselines (identity with Table I)."""
    return table1_inventory()


# ---------------------------------------------------------------------------
# Fig. 7 — packing/dataflow: RF traffic and speedup at m16n16k16.
# ---------------------------------------------------------------------------

_OCTET_M16 = OctetWorkload(8, 8, 16)  # one octet of the m16n16k16 warp op


def _octet_rf(flow: FlowConfig) -> int:
    return simulate_octet(flow, _OCTET_M16).rf_total


@register_experiment(
    artifact="Fig. 7(a)",
    headline="RF-traffic reduction vs k-dim packing (paper: -36.8% INT4, -54.3% INT2)",
    tolerance=0.10,
    row_tolerances={"INT4 RF reduction vs P(B4)k": 0.50},
)
def fig7a() -> ExperimentResult:
    """Reproduces Fig. 7(a): RF-access reduction of PacQ vs ``P(Bx)k``."""
    rows = []
    for bits, paper_reduction in ((4, 0.368), (2, 0.543)):
        packed_k = _octet_rf(FlowConfig(FlowKind.PACKED_K, bits))
        ours = _octet_rf(FlowConfig(FlowKind.PACQ, bits))
        rows.append(
            ResultRow(
                f"INT{bits} RF reduction vs P(B{16 // bits})k",
                1.0 - ours / packed_k,
                paper_reduction,
                "fraction",
            )
        )
        rows.append(
            ResultRow(f"INT{bits} normalized RF traffic", ours / packed_k, None, "x")
        )
    return ExperimentResult(
        "fig7a", "Register-file traffic, m16n16k16 (PacQ vs k-packing)", tuple(rows)
    )


def _octet_latency(flow: FlowConfig, dup: int = 2) -> int:
    trace = simulate_octet(flow, _OCTET_M16)
    return octet_cycles(flow, trace, core=TensorCoreConfig(adder_tree_dup=dup))


@register_experiment(
    artifact="Fig. 7(b)",
    headline="speedup vs k-dim packing at m16n16k16 (paper: 1.98x/1.99x)",
    tolerance=0.05,
)
def fig7b() -> ExperimentResult:
    """Reproduces Fig. 7(b): PacQ speedup vs ``P(Bx)k``, ~2x at dup-2."""
    rows = []
    for bits, paper_speedup in ((4, 1.98), (2, 1.99)):
        packed_k = _octet_latency(FlowConfig(FlowKind.PACKED_K, bits))
        ours = _octet_latency(FlowConfig(FlowKind.PACQ, bits))
        rows.append(
            ResultRow(f"INT{bits} speedup vs P(B{16 // bits})k", packed_k / ours, paper_speedup, "x")
        )
    return ExperimentResult("fig7b", "Speedup, m16n16k16 (PacQ vs k-packing)", tuple(rows))


# ---------------------------------------------------------------------------
# Table II — perplexity with group-shape modifications.
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _table2_lm(vocab: int, d_model: int):
    return make_bigram_lm(vocab=vocab, d_model=d_model)


@lru_cache(maxsize=8)
def _table2_tokens(vocab: int, d_model: int, corpus_len: int):
    lm = _table2_lm(vocab, d_model)
    return sample_tokens(lm.language(), corpus_len)


@lru_cache(maxsize=64)
def _table2_qhead(vocab: int, d_model: int, label: str, bits: int):
    lm = _table2_lm(vocab, d_model)
    return quantize_rtn(lm.head, bits=bits, group=spec_from_label(label))


@lru_cache(maxsize=64)
def _table2_policy_head(vocab: int, d_model: int, policy_text: str):
    """Quantize the LM head under a model-level policy recipe.

    AWQ rules calibrate on the model's own activations (mean absolute
    embedding magnitude per input channel).
    """
    from repro.model.policy import parse_policy, quantize_model

    lm = _table2_lm(vocab, d_model)
    policy = parse_policy(policy_text)
    calibration = {
        "head": np.abs(lm.embedding.astype(np.float64)).mean(axis=0)
    }
    model = quantize_model(
        {"head": lm.head}, policy, calibration=calibration,
        compute_reports=False,
    )
    if "head" not in model.layers:
        raise ConfigError(
            f"policy {policy_text!r} keeps the LM head in FP16; nothing to "
            "measure beyond the fp16 row"
        )
    return model.layers["head"]


#: Perplexities Table II reports for Llama2-7B on WikiText-2.
_TABLE2_PAPER = {
    "fp16": 5.47,
    "g128": 5.73,
    "g[32,4]": 5.72,
    "g256": 5.75,
    "g[64,4]": 5.77,
}


@register_experiment(
    artifact="Table II",
    headline="iso-perplexity of k-only vs [k,n]-spanning RTN W4A16 groups",
    tolerance=0.25,
)
def table2(
    vocab: int = 256,
    d_model: int = 512,
    corpus_len: int = 2048,
    backend: str = "fast",
    spec: str | None = None,
    policy: str | None = None,
) -> ExperimentResult:
    """Reproduces Table II: RTN W4A16 perplexity by quantization-group shape.

    Offline substitution: the synthetic self-calibrated bigram LM (see
    DESIGN.md).  The paper's claim under test is *iso-perplexity of
    k-only vs [k, n]-spanning groups*; absolute values differ from the
    Llama2-7B/WikiText-2 numbers by construction.

    ``backend`` selects the engine backend the quantized GEMMs execute
    through (CLI ``--backend``); ``fast`` and ``batched`` produce
    bit-identical perplexities.  ``spec`` restricts the run to one
    group geometry by its paper label (``"g128"``, ``"g[32,4]"``, ...)
    — a harness sweep axis.  ``policy`` replaces the stock RTN-INT4
    rows with one row quantized under a model-level policy recipe
    (:func:`repro.model.parse_policy` grammar, e.g. ``"rtn2@g[32,4]"``
    or ``"awq4@g128"``) — the axis mixed-precision sweeps expand;
    ``spec`` is ignored when a policy is given.

    The LM, corpus and quantized heads are memoized per configuration,
    so a sweep over backends at a fixed spec re-executes through the
    engine's cached :class:`~repro.engine.GemmPlan` instead of
    re-planning per job.
    """
    lm = _table2_lm(vocab, d_model)
    tokens = _table2_tokens(vocab, d_model, corpus_len)
    rows = [
        ResultRow("fp16", evaluate_perplexity(lm, tokens), _TABLE2_PAPER["fp16"], "ppl")
    ]
    if policy is not None:
        qlayer = _table2_policy_head(vocab, d_model, policy)
        ppl = evaluate_perplexity(lm, tokens, quantized=qlayer, mode=backend)
        rows.append(ResultRow(policy, ppl, None, "ppl"))
        return ExperimentResult(
            "table2",
            "Perplexity under a model-level quantization policy "
            "(synthetic-LM proxy)",
            tuple(rows),
        )
    specs = TABLE2_SPECS if spec is None else (spec_from_label(spec),)
    for s in specs:
        qhead = _table2_qhead(vocab, d_model, s.label, 4)
        ppl = evaluate_perplexity(lm, tokens, quantized=qhead, mode=backend)
        rows.append(ResultRow(s.label, ppl, _TABLE2_PAPER.get(s.label), "ppl"))
    return ExperimentResult(
        "table2",
        "RTN W4A16 perplexity by quantization-group shape (synthetic-LM proxy; "
        "paper column: Llama2-7B on WikiText-2)",
        tuple(rows),
    )


# ---------------------------------------------------------------------------
# Fig. 8 — throughput/watt of the multiplier and DP-4.
# ---------------------------------------------------------------------------


@register_experiment(
    artifact="Fig. 8",
    headline="throughput/watt of the parallel FP-INT units (paper: 3.38x/6.75x MUL)",
    tolerance=0.10,
    row_tolerances={"FP-MUL INT2": 0.30},
)
def fig8() -> ExperimentResult:
    """Reproduces Fig. 8: throughput/watt of parallel FP-INT vs FP16 units."""
    tech = DEFAULT_TECH
    base_mul = fp16_mul_baseline(tech)
    rows = []
    for bits, paper_gain in ((4, 3.38), (2, 6.75)):
        ours = fp_int16_mul_parallel(bits, tech)
        lanes = 16 // bits
        gain = (lanes / ours.energy_per_op) / (1.0 / base_mul.energy_per_op)
        rows.append(ResultRow(f"FP-MUL INT{bits}", gain, paper_gain, "x T/W"))

    base_dp = dp_unit(width=4, pack=1, dup=1, tech=tech)
    work = fig8_dp4_workload()
    base_cycles = cycles_for(DpConfig(4, 1, 1), work).total
    base_tpw = (work.outputs / base_cycles) / base_dp.energy_per_op
    for bits, paper_cycles, paper_outputs in ((4, 19, 32), (2, 35, 64)):
        pack = 16 // bits
        ours_dp = dp_unit(width=4, pack=pack, dup=2, tech=tech)
        packed = packed_outputs(work, pack)
        ours_cycles = cycles_for(DpConfig(4, pack, 2), packed).total
        assert ours_cycles == paper_cycles and packed.outputs == paper_outputs
        tpw = (packed.outputs / ours_cycles) / ours_dp.energy_per_op
        rows.append(ResultRow(f"DP-4 INT{bits}", tpw / base_tpw, None, "x T/W"))
    return ExperimentResult(
        "fig8", "Throughput/watt vs baseline FP16 units (MUL scalar; DP-4 m2n4k4)", tuple(rows)
    )


# ---------------------------------------------------------------------------
# Fig. 9 — power breakdowns.
# ---------------------------------------------------------------------------


@register_experiment(
    artifact="Fig. 9",
    headline="reused-resource power fraction of each PacQ unit (paper avg ~69%)",
    tolerance=0.10,
)
def fig9() -> ExperimentResult:
    """Reproduces Fig. 9: reused vs extra power fractions of PacQ's units."""
    breakdowns = fig9_breakdowns(weight_bits=4)
    paper = {
        "Parallel INT11 MUL": 0.745,
        "Parallel FP-INT-16 MUL (INT4)": 0.727,
        "Parallel FP-INT-16 DP-4": 0.602,
    }
    rows = [
        ResultRow(b.unit, b.reused_fraction, paper.get(b.unit), "fraction")
        for b in breakdowns
    ]
    rows.append(
        ResultRow("average reuse ratio", average_reuse(breakdowns), 0.69, "fraction")
    )
    return ExperimentResult("fig9", "Power breakdown: reused vs extra resources", tuple(rows))


# ---------------------------------------------------------------------------
# Fig. 10 — end-to-end EDP on the Llama2-7B FFN workload.
# ---------------------------------------------------------------------------


@register_experiment(
    artifact="Fig. 10",
    headline="end-to-end EDP reduction on the Llama2-7B FFN (paper: -70.4%/-81.4%)",
    tolerance=0.15,
)
def fig10(shape: GemmShape | None = None) -> ExperimentResult:
    """Reproduces Fig. 10: normalized EDP of PacQ vs baselines, m16n4096k4096."""
    workload = shape if shape is not None else fig10_workload()
    rows = []
    for bits, paper_reduction in ((4, 0.704), (2, 0.814)):
        std = evaluate(standard_dequant(bits), workload)
        packed_k = evaluate(packed_k_baseline(bits), workload)
        ours = evaluate(pacq(bits), workload)
        rows.append(
            ResultRow(f"INT{bits} standard (normalized EDP)", 1.0, 1.0, "x")
        )
        rows.append(
            ResultRow(
                f"INT{bits} P(B{16 // bits})k (normalized EDP)",
                packed_k.edp / std.edp,
                None,
                "x",
            )
        )
        rows.append(
            ResultRow(
                f"INT{bits} PacQ (normalized EDP)", ours.edp / std.edp, None, "x"
            )
        )
        rows.append(
            ResultRow(
                f"INT{bits} PacQ EDP reduction",
                1.0 - ours.edp / std.edp,
                paper_reduction,
                "fraction",
            )
        )
    return ExperimentResult(
        "fig10", f"Normalized EDP on {workload.name} (Llama2-7B FFN, batch 16)", tuple(rows)
    )


# ---------------------------------------------------------------------------
# Fig. 11 — adder-tree duplication ablation.
# ---------------------------------------------------------------------------


@register_experiment(
    artifact="Fig. 11",
    headline="adder-tree duplication knee at dup-2 (paper: 1.33x then 1.11x)",
    tolerance=0.35,
)
def fig11(duplications: tuple[int, ...] = (1, 2, 4, 8)) -> ExperimentResult:
    """Reproduces Fig. 11: throughput/watt vs adder-tree duplication."""
    tech = DEFAULT_TECH
    base_dp = dp_unit(width=4, pack=1, dup=1, tech=tech)
    base_flow = FlowConfig(FlowKind.STANDARD_DEQUANT, 16)
    base_cycles = _octet_latency(base_flow, dup=1)
    base_tpw = (1.0 / base_cycles) / base_dp.energy_per_op

    rows = []
    paper_steps = {4: {2: 1.33, 4: 1.11}, 2: {2: 1.38, 4: 1.18}}
    for bits in (4, 2):
        pack = 16 // bits
        tpw_by_dup = {}
        for dup in duplications:
            ours_dp = dp_unit(width=4, pack=pack, dup=dup, tech=tech)
            cycles = _octet_latency(FlowConfig(FlowKind.PACQ, bits), dup=dup)
            tpw_by_dup[dup] = (1.0 / cycles) / ours_dp.energy_per_op
            rows.append(
                ResultRow(
                    f"INT{bits} dup={dup} (T/W vs baseline)",
                    tpw_by_dup[dup] / base_tpw,
                    None,
                    "x",
                )
            )
        for step, paper_gain in paper_steps[bits].items():
            if step in tpw_by_dup and step // 2 in tpw_by_dup:
                rows.append(
                    ResultRow(
                        f"INT{bits} gain dup{step // 2}->dup{step}",
                        tpw_by_dup[step] / tpw_by_dup[step // 2],
                        paper_gain,
                        "x",
                    )
                )
    return ExperimentResult(
        "fig11", "Adder-tree duplication ablation, m16n16k16", tuple(rows)
    )


# ---------------------------------------------------------------------------
# Fig. 12 — DP-unit size study and Mix-GEMM comparison.
# ---------------------------------------------------------------------------


@register_experiment(
    artifact="Fig. 12(a)",
    headline="PacQ gains orthogonal to DP-unit width (DP-8 vs DP-16)",
)
def fig12a(widths: tuple[int, ...] = (8, 16)) -> ExperimentResult:
    """Reproduces Fig. 12(a): near-identical PacQ gains on DP-8 / DP-16 units."""
    tech = DEFAULT_TECH
    rows = []
    work = TileWork(outputs=64, k=16)  # one octet quadrant of m16n16k16
    for width in widths:
        base_dp = dp_unit(width=width, pack=1, dup=1, tech=tech)
        base_cycles = cycles_for(DpConfig(width, 1, 1), work).total
        base_tpw = (work.outputs / base_cycles) / base_dp.energy_per_op
        for bits in (4, 2):
            pack = 16 // bits
            ours_dp = dp_unit(width=width, pack=pack, dup=2, tech=tech)
            ours_cycles = cycles_for(DpConfig(width, pack, 2), work).total
            tpw = (work.outputs / ours_cycles) / ours_dp.energy_per_op
            rows.append(
                ResultRow(f"DP-{width} INT{bits} (T/W vs DP-{width} baseline)",
                          tpw / base_tpw, None, "x")
            )
    return ExperimentResult(
        "fig12a", "Effect of DP-unit size (gains orthogonal to width)", tuple(rows)
    )


@register_experiment(
    artifact="Fig. 12(b)",
    headline="throughput/watt vs Mix-GEMM (paper: 4.12x INT4, 3.75x INT2)",
    tolerance=0.10,
)
def fig12b() -> ExperimentResult:
    """Reproduces Fig. 12(b): PacQ vs Mix-GEMM throughput/watt, m16n16k16."""
    tech = DEFAULT_TECH
    rows = []
    for bits, paper_gain in ((4, 4.12), (2, 3.75)):
        pack = 16 // bits
        ours_dp = dp_unit(width=4, pack=pack, dup=2, tech=tech)
        work = TileWork(outputs=64, k=16)
        cycles = cycles_for(DpConfig(4, pack, 2), work).total
        # Products-per-energy basis on both sides (lane count cancels).
        pacq_tpw = (work.products / cycles) / ours_dp.energy_per_op
        mix = mixgemm_point(bits, tech)
        gain = pacq_tpw / mix.throughput_per_watt
        rows.append(ResultRow(f"INT{bits} PacQ vs Mix-GEMM", gain, paper_gain, "x"))
    return ExperimentResult(
        "fig12b", "PacQ vs Mix-GEMM (binary segmentation), FP16 activations", tuple(rows)
    )


#: Plain name -> callable view of the paper experiments (backward
#: compatibility; the metadata-carrying registry is
#: :data:`EXPERIMENT_REGISTRY`).
ALL_EXPERIMENTS = {
    name: exp.runner
    for name, exp in sorted(EXPERIMENT_REGISTRY.items())
    if not exp.extension
}
