"""One runner per paper table/figure (the reproduction harness).

Each ``figNN()`` / ``tableN()`` function regenerates the corresponding
result of the paper's evaluation section and returns a structured
:class:`ExperimentResult` whose rows can be printed
(:func:`repro.core.report.render_table`), benchmarked or asserted in
tests.  ``paper`` fields carry the value the paper reports (where it
prints one) so EXPERIMENTS.md's paper-vs-measured tables come straight
from this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.arch import (
    Architecture,
    packed_k_baseline,
    pacq,
    standard_dequant,
    table1_inventory,
)
from repro.core.metrics import evaluate
from repro.core.workloads import fig10_workload
from repro.energy.breakdown import average_reuse, fig9_breakdowns
from repro.energy.tech import DEFAULT_TECH
from repro.energy.units import dp_unit, fp16_mul_baseline, fp_int16_mul_parallel
from repro.llm.bigram import make_bigram_lm
from repro.llm.corpus import sample_tokens
from repro.llm.perplexity import table2_rows
from repro.mixgemm.binseg import mixgemm_point
from repro.multiplier.dp import (
    DpConfig,
    TileWork,
    cycles_for,
    fig8_dp4_workload,
    packed_outputs,
)
from repro.quant.groups import TABLE2_SPECS
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.memoryhier import GemmShape
from repro.simt.octet import simulate_octet
from repro.simt.tensorcore import TensorCoreConfig, octet_cycles
from repro.simt.warp import OctetWorkload


@dataclass(frozen=True)
class ResultRow:
    """One row of a reproduced table/figure."""

    label: str
    measured: float
    paper: float | None = None
    unit: str = ""

    @property
    def deviation(self) -> float | None:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper - 1.0


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced experiment: id, description, rows."""

    experiment: str
    description: str
    rows: tuple[ResultRow, ...] = field(default_factory=tuple)

    def row(self, label: str) -> ResultRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"{self.experiment}: no row {label!r}")

    def headers(self) -> list[str]:
        return ["configuration", "measured", "paper", "unit"]

    def table_rows(self) -> list[list[object]]:
        return [
            [r.label, r.measured, "-" if r.paper is None else r.paper, r.unit]
            for r in self.rows
        ]


# ---------------------------------------------------------------------------
# Table I — architecture configuration.
# ---------------------------------------------------------------------------


def table1() -> list[tuple[str, str]]:
    """Unit inventory of PacQ and the baselines (identity with Table I)."""
    return table1_inventory()


# ---------------------------------------------------------------------------
# Fig. 7 — packing/dataflow: RF traffic and speedup at m16n16k16.
# ---------------------------------------------------------------------------

_OCTET_M16 = OctetWorkload(8, 8, 16)  # one octet of the m16n16k16 warp op


def _octet_rf(flow: FlowConfig) -> int:
    return simulate_octet(flow, _OCTET_M16).rf_total


def fig7a() -> ExperimentResult:
    """Normalized RF accesses: PacQ vs ``P(Bx)k`` (paper Fig. 7(a))."""
    rows = []
    for bits, paper_reduction in ((4, 0.368), (2, 0.543)):
        packed_k = _octet_rf(FlowConfig(FlowKind.PACKED_K, bits))
        ours = _octet_rf(FlowConfig(FlowKind.PACQ, bits))
        rows.append(
            ResultRow(
                f"INT{bits} RF reduction vs P(B{16 // bits})k",
                1.0 - ours / packed_k,
                paper_reduction,
                "fraction",
            )
        )
        rows.append(
            ResultRow(f"INT{bits} normalized RF traffic", ours / packed_k, None, "x")
        )
    return ExperimentResult(
        "fig7a", "Register-file traffic, m16n16k16 (PacQ vs k-packing)", tuple(rows)
    )


def _octet_latency(flow: FlowConfig, dup: int = 2) -> int:
    trace = simulate_octet(flow, _OCTET_M16)
    return octet_cycles(flow, trace, core=TensorCoreConfig(adder_tree_dup=dup))


def fig7b() -> ExperimentResult:
    """Normalized speedup: PacQ vs ``P(Bx)k`` (paper Fig. 7(b))."""
    rows = []
    for bits, paper_speedup in ((4, 1.98), (2, 1.99)):
        packed_k = _octet_latency(FlowConfig(FlowKind.PACKED_K, bits))
        ours = _octet_latency(FlowConfig(FlowKind.PACQ, bits))
        rows.append(
            ResultRow(f"INT{bits} speedup vs P(B{16 // bits})k", packed_k / ours, paper_speedup, "x")
        )
    return ExperimentResult("fig7b", "Speedup, m16n16k16 (PacQ vs k-packing)", tuple(rows))


# ---------------------------------------------------------------------------
# Table II — perplexity with group-shape modifications.
# ---------------------------------------------------------------------------


def table2(
    vocab: int = 256,
    d_model: int = 512,
    corpus_len: int = 2048,
    backend: str = "fast",
) -> ExperimentResult:
    """RTN W4A16 perplexity across group geometries (paper Table II).

    Offline substitution: the synthetic self-calibrated bigram LM (see
    DESIGN.md).  The paper's claim under test is *iso-perplexity of
    k-only vs [k, n]-spanning groups*; absolute values differ from the
    Llama2-7B/WikiText-2 numbers by construction.

    ``backend`` selects the engine backend the quantized GEMMs execute
    through (CLI ``--backend``); ``fast`` and ``batched`` produce
    bit-identical perplexities.
    """
    lm = make_bigram_lm(vocab=vocab, d_model=d_model)
    tokens = sample_tokens(lm.language(), corpus_len)
    rows = table2_rows(lm, tokens, TABLE2_SPECS, bits=4, mode=backend)
    paper = {"fp16": 5.47, "g128": 5.73, "g[32,4]": 5.72, "g256": 5.75, "g[64,4]": 5.77}
    return ExperimentResult(
        "table2",
        "RTN W4A16 perplexity by quantization-group shape (synthetic-LM proxy; "
        "paper column: Llama2-7B on WikiText-2)",
        tuple(
            ResultRow(r.label, r.perplexity, paper.get(r.label), "ppl") for r in rows
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 8 — throughput/watt of the multiplier and DP-4.
# ---------------------------------------------------------------------------


def fig8() -> ExperimentResult:
    """Throughput/watt: parallel FP-INT units vs FP16 units (Fig. 8)."""
    tech = DEFAULT_TECH
    base_mul = fp16_mul_baseline(tech)
    rows = []
    for bits, paper_gain in ((4, 3.38), (2, 6.75)):
        ours = fp_int16_mul_parallel(bits, tech)
        lanes = 16 // bits
        gain = (lanes / ours.energy_per_op) / (1.0 / base_mul.energy_per_op)
        rows.append(ResultRow(f"FP-MUL INT{bits}", gain, paper_gain, "x T/W"))

    base_dp = dp_unit(width=4, pack=1, dup=1, tech=tech)
    work = fig8_dp4_workload()
    base_cycles = cycles_for(DpConfig(4, 1, 1), work).total
    base_tpw = (work.outputs / base_cycles) / base_dp.energy_per_op
    for bits, paper_cycles, paper_outputs in ((4, 19, 32), (2, 35, 64)):
        pack = 16 // bits
        ours_dp = dp_unit(width=4, pack=pack, dup=2, tech=tech)
        packed = packed_outputs(work, pack)
        ours_cycles = cycles_for(DpConfig(4, pack, 2), packed).total
        assert ours_cycles == paper_cycles and packed.outputs == paper_outputs
        tpw = (packed.outputs / ours_cycles) / ours_dp.energy_per_op
        rows.append(ResultRow(f"DP-4 INT{bits}", tpw / base_tpw, None, "x T/W"))
    return ExperimentResult(
        "fig8", "Throughput/watt vs baseline FP16 units (MUL scalar; DP-4 m2n4k4)", tuple(rows)
    )


# ---------------------------------------------------------------------------
# Fig. 9 — power breakdowns.
# ---------------------------------------------------------------------------


def fig9() -> ExperimentResult:
    """Reused-resource power fractions of PacQ's units (Fig. 9)."""
    breakdowns = fig9_breakdowns(weight_bits=4)
    paper = {
        "Parallel INT11 MUL": 0.745,
        "Parallel FP-INT-16 MUL (INT4)": 0.727,
        "Parallel FP-INT-16 DP-4": 0.602,
    }
    rows = [
        ResultRow(b.unit, b.reused_fraction, paper.get(b.unit), "fraction")
        for b in breakdowns
    ]
    rows.append(
        ResultRow("average reuse ratio", average_reuse(breakdowns), 0.69, "fraction")
    )
    return ExperimentResult("fig9", "Power breakdown: reused vs extra resources", tuple(rows))


# ---------------------------------------------------------------------------
# Fig. 10 — end-to-end EDP on the Llama2-7B FFN workload.
# ---------------------------------------------------------------------------


def fig10(shape: GemmShape | None = None) -> ExperimentResult:
    """Normalized EDP of PacQ vs baselines, m16n4096k4096 (Fig. 10)."""
    workload = shape if shape is not None else fig10_workload()
    rows = []
    for bits, paper_reduction in ((4, 0.704), (2, 0.814)):
        std = evaluate(standard_dequant(bits), workload)
        packed_k = evaluate(packed_k_baseline(bits), workload)
        ours = evaluate(pacq(bits), workload)
        rows.append(
            ResultRow(f"INT{bits} standard (normalized EDP)", 1.0, 1.0, "x")
        )
        rows.append(
            ResultRow(
                f"INT{bits} P(B{16 // bits})k (normalized EDP)",
                packed_k.edp / std.edp,
                None,
                "x",
            )
        )
        rows.append(
            ResultRow(
                f"INT{bits} PacQ (normalized EDP)", ours.edp / std.edp, None, "x"
            )
        )
        rows.append(
            ResultRow(
                f"INT{bits} PacQ EDP reduction",
                1.0 - ours.edp / std.edp,
                paper_reduction,
                "fraction",
            )
        )
    return ExperimentResult(
        "fig10", f"Normalized EDP on {workload.name} (Llama2-7B FFN, batch 16)", tuple(rows)
    )


# ---------------------------------------------------------------------------
# Fig. 11 — adder-tree duplication ablation.
# ---------------------------------------------------------------------------


def fig11(duplications: tuple[int, ...] = (1, 2, 4, 8)) -> ExperimentResult:
    """Throughput/watt vs adder-tree duplication, m16n16k16 (Fig. 11)."""
    tech = DEFAULT_TECH
    base_dp = dp_unit(width=4, pack=1, dup=1, tech=tech)
    base_flow = FlowConfig(FlowKind.STANDARD_DEQUANT, 16)
    base_cycles = _octet_latency(base_flow, dup=1)
    base_tpw = (1.0 / base_cycles) / base_dp.energy_per_op

    rows = []
    paper_steps = {4: {2: 1.33, 4: 1.11}, 2: {2: 1.38, 4: 1.18}}
    for bits in (4, 2):
        pack = 16 // bits
        tpw_by_dup = {}
        for dup in duplications:
            ours_dp = dp_unit(width=4, pack=pack, dup=dup, tech=tech)
            cycles = _octet_latency(FlowConfig(FlowKind.PACQ, bits), dup=dup)
            tpw_by_dup[dup] = (1.0 / cycles) / ours_dp.energy_per_op
            rows.append(
                ResultRow(
                    f"INT{bits} dup={dup} (T/W vs baseline)",
                    tpw_by_dup[dup] / base_tpw,
                    None,
                    "x",
                )
            )
        for step, paper_gain in paper_steps[bits].items():
            if step in tpw_by_dup and step // 2 in tpw_by_dup:
                rows.append(
                    ResultRow(
                        f"INT{bits} gain dup{step // 2}->dup{step}",
                        tpw_by_dup[step] / tpw_by_dup[step // 2],
                        paper_gain,
                        "x",
                    )
                )
    return ExperimentResult(
        "fig11", "Adder-tree duplication ablation, m16n16k16", tuple(rows)
    )


# ---------------------------------------------------------------------------
# Fig. 12 — DP-unit size study and Mix-GEMM comparison.
# ---------------------------------------------------------------------------


def fig12a(widths: tuple[int, ...] = (8, 16)) -> ExperimentResult:
    """PacQ gains across DP-8 / DP-16 units, m16n16k16 (Fig. 12(a))."""
    tech = DEFAULT_TECH
    rows = []
    work = TileWork(outputs=64, k=16)  # one octet quadrant of m16n16k16
    for width in widths:
        base_dp = dp_unit(width=width, pack=1, dup=1, tech=tech)
        base_cycles = cycles_for(DpConfig(width, 1, 1), work).total
        base_tpw = (work.outputs / base_cycles) / base_dp.energy_per_op
        for bits in (4, 2):
            pack = 16 // bits
            ours_dp = dp_unit(width=width, pack=pack, dup=2, tech=tech)
            ours_cycles = cycles_for(DpConfig(width, pack, 2), work).total
            tpw = (work.outputs / ours_cycles) / ours_dp.energy_per_op
            rows.append(
                ResultRow(f"DP-{width} INT{bits} (T/W vs DP-{width} baseline)",
                          tpw / base_tpw, None, "x")
            )
    return ExperimentResult(
        "fig12a", "Effect of DP-unit size (gains orthogonal to width)", tuple(rows)
    )


def fig12b() -> ExperimentResult:
    """PacQ vs Mix-GEMM throughput/watt, m16n16k16 (Fig. 12(b))."""
    tech = DEFAULT_TECH
    rows = []
    for bits, paper_gain in ((4, 4.12), (2, 3.75)):
        pack = 16 // bits
        ours_dp = dp_unit(width=4, pack=pack, dup=2, tech=tech)
        work = TileWork(outputs=64, k=16)
        cycles = cycles_for(DpConfig(4, pack, 2), work).total
        # Products-per-energy basis on both sides (lane count cancels).
        pacq_tpw = (work.products / cycles) / ours_dp.energy_per_op
        mix = mixgemm_point(bits, tech)
        gain = pacq_tpw / mix.throughput_per_watt
        rows.append(ResultRow(f"INT{bits} PacQ vs Mix-GEMM", gain, paper_gain, "x"))
    return ExperimentResult(
        "fig12b", "PacQ vs Mix-GEMM (binary segmentation), FP16 activations", tuple(rows)
    )


#: Registry used by the CLI and the benchmark harness.
ALL_EXPERIMENTS = {
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12a": fig12a,
    "fig12b": fig12b,
    "table2": table2,
}
