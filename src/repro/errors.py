"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An architecture / experiment configuration is inconsistent."""


class QuantizationError(ReproError):
    """A quantization or packing request cannot be satisfied."""


class SimulationError(ReproError):
    """The SIMT simulator was driven into an invalid state."""


class EncodingError(ReproError):
    """A value cannot be represented in the requested bit-level format."""


class RequestError(ReproError, ValueError):
    """A serving request cannot be admitted (e.g. prompt exceeds the
    model context window).

    Also a :class:`ValueError`, so callers holding only the request —
    not the library's error types — can catch rejection idiomatically.
    """
