"""A bigram language model expressed as a GEMM (Table II substrate).

The model is ``logits(t) = embed(t) @ W`` with a fixed FP16 embedding
``E [vocab, d]`` and an LM-head weight ``W [d, vocab]``.  Instead of
fitting ``W`` to an external corpus (offline we have none, and an
inverse-solve would be pathologically quantization-brittle), the
language is defined **by the model itself**: the true next-token
distribution is ``softmax(E[t] @ W)`` and the evaluation corpus is
sampled from it.  The full-precision model is therefore perfectly
calibrated, its weights have the benign statistics of trained LLM
matrices (zero-mean, per-channel scale variation), and any perplexity
increase is attributable purely to weight quantization.

Per-column scales follow a Zipf-like profile so output channels differ
in dynamic range — the property that makes quantization-group *shape*
(``g128`` vs ``g[32,4]``, Table II) a meaningful variable.

Prediction through the model is exactly a hyper-asymmetric GEMM over
``W``; the quantized path routes through the GEMM execution engine
(:mod:`repro.engine`, one cached plan per head), i.e. PacQ's compute
stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.llm.corpus import SyntheticLanguage, _stationary_distribution
from repro.quant.rtn import QuantizedMatrix

#: Target standard deviation of the logits (sets language entropy).
LOGIT_STD = 2.6
#: Zipf exponent of the per-output-channel weight scales.
COLUMN_SCALE_EXPONENT = 0.35


@dataclass(frozen=True)
class BigramLm:
    """The GEMM-shaped bigram model.

    Attributes:
        embedding: ``[vocab, d]`` FP16 activations (``A`` operands).
        head: ``[d, vocab]`` float64 LM-head weights (``B`` operands,
            the matrix the experiments quantize).
    """

    embedding: np.ndarray
    head: np.ndarray

    @property
    def vocab(self) -> int:
        return int(self.embedding.shape[0])

    @property
    def d_model(self) -> int:
        return int(self.embedding.shape[1])

    def logits(self, tokens: np.ndarray) -> np.ndarray:
        """Full-precision logits for a batch of context tokens."""
        # detlint: ignore[D001]: full-precision oracle path — quantized
        # serving routes through repro.engine (see logits_quantized).
        return self.embedding[tokens].astype(np.float64) @ self.head

    def serve(self, qhead, backend: str = "fast"):
        """A :class:`~repro.model.session.MatrixSession` over the head.

        ``qhead`` is a :class:`~repro.quant.rtn.QuantizedMatrix` or a
        :class:`~repro.model.policy.QuantizedLayer` (policy output,
        AWQ equalization scales applied to activations at execution).
        The session precompiles the head's plan (cached by the engine)
        and records telemetry per executed batch.
        """
        from repro.model.session import MatrixSession

        return MatrixSession(qhead, backend=backend, name="head")

    def logits_quantized(
        self, tokens: np.ndarray, qhead: QuantizedMatrix, mode: str = "fast"
    ) -> np.ndarray:
        """Logits through the PacQ hyper-asymmetric GEMM path.

        Routes through a single-matrix serving session
        (:meth:`serve`); plans for ``qhead`` are cached by the engine,
        so batched evaluation loops plan once and execute per batch.
        ``mode`` is any registered backend name.  Callers that want
        cumulative telemetry should hold their own :meth:`serve`
        session instead.
        """
        return self.serve(qhead, backend=mode)(self.embedding[tokens])

    def language(self) -> SyntheticLanguage:
        """The true next-token process implied by the model."""
        # detlint: ignore[D001]: defines the true next-token process — one
        # full-matrix product at a fixed shape, never a served path.
        logits = self.embedding.astype(np.float64) @ self.head
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        # detlint: ignore[D003]: per-row reduction over the fixed vocab axis.
        probs /= probs.sum(axis=1, keepdims=True)
        return SyntheticLanguage(
            transition=probs, stationary=_stationary_distribution(probs)
        )


def make_bigram_lm(vocab: int = 256, d_model: int = 512, seed: int = 11) -> BigramLm:
    """Build the self-calibrated bigram LM.

    The head is zero-mean Gaussian with Zipfian per-column scales,
    globally rescaled so the logits have ``LOGIT_STD`` — realistic LLM
    weight statistics with controlled language entropy.
    """
    if vocab < 8 or d_model < 8:
        raise ConfigError("vocab and d_model must be >= 8")
    rng = np.random.default_rng(seed)
    embedding = rng.normal(size=(vocab, d_model)).astype(np.float16)

    column_scales = (1.0 + np.arange(vocab)) ** -COLUMN_SCALE_EXPONENT
    rng.shuffle(column_scales)
    head = rng.normal(size=(d_model, vocab)) * column_scales[None, :]

    # detlint: ignore[D001]: seeded weight synthesis at a fixed shape — the
    # result *is* the model definition, not a computation over it.
    logits = embedding.astype(np.float64) @ head
    head = head * (LOGIT_STD / logits.std())
    return BigramLm(embedding=embedding, head=head)


def fit_bigram_lm(
    language: SyntheticLanguage, d_model: int | None = None, seed: int = 11
) -> BigramLm:
    """Least-squares fit of an LM head to an *external* language.

    Kept for completeness (and to demonstrate why Table II uses the
    self-calibrated construction): the inverse-solve produces heads
    whose logits are extremely sensitive to weight perturbations, so
    4-bit quantization destroys them — see the tests.
    """
    vocab = language.vocab
    d = vocab if d_model is None else d_model
    if d < 2:
        raise ConfigError("d_model must be >= 2")
    rng = np.random.default_rng(seed)
    embedding = rng.normal(size=(vocab, d)).astype(np.float16).astype(np.float64)
    log_probs = np.log(np.maximum(language.transition, 1e-6))
    head, *_ = np.linalg.lstsq(embedding, log_probs, rcond=None)
    return BigramLm(embedding=embedding.astype(np.float16), head=head)
