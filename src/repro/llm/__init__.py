"""Synthetic-LM substrate for the Table II perplexity experiment.

* :mod:`repro.llm.corpus` — Zipf-Markov synthetic language + sampler.
* :mod:`repro.llm.bigram` — bigram LM expressed as a GEMM.
* :mod:`repro.llm.perplexity` — NLL/perplexity through quantized GEMMs.
"""

from repro.llm.bigram import BigramLm, fit_bigram_lm, make_bigram_lm
from repro.llm.corpus import (
    SyntheticLanguage,
    make_language,
    sample_tokens,
    stationary_distribution,
)
from repro.llm.perplexity import (
    PerplexityRow,
    evaluate_perplexity,
    perplexity_from_logits,
    table2_rows,
)
from repro.llm.transformer import (
    Decoder,
    DecoderWeights,
    TransformerConfig,
    gemm_shapes,
    init_weights,
    quantize_weights,
)

__all__ = [
    "BigramLm",
    "Decoder",
    "DecoderWeights",
    "PerplexityRow",
    "SyntheticLanguage",
    "TransformerConfig",
    "evaluate_perplexity",
    "gemm_shapes",
    "init_weights",
    "quantize_weights",
    "fit_bigram_lm",
    "make_bigram_lm",
    "make_language",
    "perplexity_from_logits",
    "sample_tokens",
    "stationary_distribution",
    "table2_rows",
]
