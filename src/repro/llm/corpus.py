"""Synthetic Zipf-Markov corpus generator (Table II substitute).

WikiText-2 / C4 are unavailable offline, so Table II's perplexity
experiment runs on a synthetic language with the statistical features
that make the experiment meaningful:

* a Zipfian unigram distribution (a few very frequent tokens, a long
  tail) — this gives the LM head's weight columns realistic
  per-channel dynamic-range variation, which is exactly what group-
  shaped quantization scales must track;
* first-order Markov structure with sparse, peaked transition rows —
  so a bigram model has real predictive power and quantization error
  measurably degrades perplexity.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class SyntheticLanguage:
    """A sampled synthetic language.

    Attributes:
        transition: row-stochastic ``[vocab, vocab]`` matrix; row ``i``
            is the distribution of the token following ``i``.
        stationary: the chain's stationary distribution.
    """

    transition: np.ndarray
    stationary: np.ndarray

    @property
    def vocab(self) -> int:
        return int(self.transition.shape[0])


def make_language(
    vocab: int = 512,
    zipf_exponent: float = 1.1,
    peakedness: float = 6.0,
    branching: int = 48,
    seed: int = 2025,
) -> SyntheticLanguage:
    """Build a Zipf-marginal, sparse-transition synthetic language.

    Each row mixes a Zipfian base distribution with a sparse set of
    ``branching`` preferred successors (Dirichlet-weighted, sharpened
    by ``peakedness``), giving rows both shared structure and
    idiosyncratic peaks.
    """
    if vocab < 4:
        raise ConfigError("vocab must be >= 4")
    branching = min(branching, vocab)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    zipf = ranks**-zipf_exponent
    # detlint: ignore[D003]: seeded one-shot synthesis at fixed [vocab] shape.
    zipf /= zipf.sum()

    transition = np.zeros((vocab, vocab), dtype=np.float64)
    for row in range(vocab):
        successors = rng.choice(vocab, size=branching, replace=False, p=zipf)
        weights = rng.dirichlet(np.full(branching, 1.0 / peakedness))
        sparse = np.zeros(vocab)
        np.add.at(sparse, successors, weights)
        transition[row] = 0.35 * zipf + 0.65 * sparse
        # detlint: ignore[D003]: seeded synthesis, fixed [vocab] row shape.
        transition[row] /= transition[row].sum()

    stationary = stationary_distribution(transition)
    return SyntheticLanguage(transition=transition, stationary=stationary)


def stationary_distribution(transition: np.ndarray, iters: int = 200) -> np.ndarray:
    """Fixed point of the chain by power iteration."""
    pi = np.full(transition.shape[0], 1.0 / transition.shape[0])
    for _ in range(iters):
        # detlint: ignore[D001]: fixed [vocab] power iteration in one-shot
        # corpus synthesis — no batch dimension to destabilize.
        pi = pi @ transition
    # detlint: ignore[D003]: fixed [vocab] reduction in one-shot synthesis.
    return pi / pi.sum()


#: Backwards-compatible private alias.
_stationary_distribution = stationary_distribution


def sample_tokens(
    language: SyntheticLanguage, length: int, seed: int = 7
) -> np.ndarray:
    """Sample a token stream from the Markov chain."""
    if length < 2:
        raise ConfigError("need at least two tokens")
    rng = np.random.default_rng(seed)
    tokens = np.empty(length, dtype=np.int64)
    tokens[0] = rng.choice(language.vocab, p=language.stationary)
    cdf = np.cumsum(language.transition, axis=1)
    draws = rng.random(length - 1)
    for i in range(1, length):
        tokens[i] = np.searchsorted(cdf[tokens[i - 1]], draws[i - 1])
    return tokens
