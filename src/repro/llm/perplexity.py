"""Perplexity evaluation through the quantized GEMM path (Table II)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.llm.bigram import BigramLm
from repro.quant.groups import GroupSpec
from repro.quant.rtn import quantize_rtn


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    # detlint: ignore[D003]: per-row reduction over the fixed vocab axis.
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def perplexity_from_logits(logits: np.ndarray, targets: np.ndarray) -> float:
    """``exp(mean NLL)`` of targets under the model's logits."""
    if logits.shape[0] != targets.shape[0]:
        raise ConfigError("logits/targets length mismatch")
    log_probs = _log_softmax(logits)
    nll = -log_probs[np.arange(targets.shape[0]), targets]
    return float(np.exp(nll.mean()))


def evaluate_perplexity(
    model: BigramLm,
    tokens: np.ndarray,
    batch: int = 256,
    quantized=None,
    mode: str = "fast",
) -> float:
    """Perplexity of a token stream, optionally through quantized weights.

    ``quantized`` is a :class:`repro.quant.rtn.QuantizedMatrix` (or a
    policy-produced :class:`repro.model.policy.QuantizedLayer`) for the
    LM head; when given, every logits GEMM runs through one serving
    session (:meth:`repro.llm.bigram.BigramLm.serve`) over the
    execution engine (:mod:`repro.engine`) — the PacQ compute path.
    The head is planned once and executed per batch; ``mode`` is any
    registered backend name.
    """
    session = None if quantized is None else model.serve(quantized, backend=mode)
    contexts = tokens[:-1]
    targets = tokens[1:]
    nll_sum = 0.0
    count = 0
    for start in range(0, contexts.shape[0], batch):
        ctx = contexts[start : start + batch]
        tgt = targets[start : start + batch]
        if session is None:
            logits = model.logits(ctx)
        else:
            logits = session(model.embedding[ctx])
        log_probs = _log_softmax(logits)
        # detlint: ignore[D003]: scalar NLL accumulator — perplexity is a
        # tolerance-checked metric, not a bit-exact artifact.
        nll_sum += float(-log_probs[np.arange(tgt.shape[0]), tgt].sum())
        count += tgt.shape[0]
    return float(np.exp(nll_sum / count))


@dataclass(frozen=True)
class PerplexityRow:
    """One Table II cell: a configuration and its measured perplexity."""

    label: str
    bits: int | None  #: None for the FP16 reference
    perplexity: float


def table2_rows(
    model: BigramLm,
    tokens: np.ndarray,
    specs: tuple[GroupSpec, ...],
    bits: int = 4,
    symmetric: bool = False,
    mode: str = "fast",
) -> list[PerplexityRow]:
    """The Table II sweep: FP16 reference + each group geometry.

    ``mode`` selects the engine backend every quantized GEMM runs
    through (``"fast"``/``"batched"`` are bit-identical).
    """
    rows = [
        PerplexityRow("fp16", None, evaluate_perplexity(model, tokens))
    ]
    for spec in specs:
        qhead = quantize_rtn(model.head, bits=bits, group=spec, symmetric=symmetric)
        ppl = evaluate_perplexity(model, tokens, quantized=qhead, mode=mode)
        rows.append(PerplexityRow(spec.label, bits, ppl))
    return rows
