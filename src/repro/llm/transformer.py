"""A NumPy decoder-only transformer with quantizable linear layers.

The bigram LM of :mod:`repro.llm.bigram` isolates Table II's claim;
this module provides the *full* workload the paper motivates: a
Llama-style decoder (RMSNorm, multi-head causal attention, SwiGLU FFN,
tied LM head) whose every linear layer is a ``[k, n]`` weight matrix
that can be quantized and executed through the GEMM engine
(:mod:`repro.engine`) — i.e. the PacQ compute path end to end.
Weights are seeded-random with realistic per-channel scale variation
(no checkpoints are available offline), so the model is used for
*relative* studies: quantized-vs-fp16 drift, group-shape effects, and
generating the exact GEMM shapes the simulator prices.

Incremental decoding
--------------------

Serving decodes one token at a time; re-running the full sequence per
token is O(seq) redundant work.  :class:`Decoder` therefore exposes a
cache-aware step path — :meth:`Decoder.prefill` /
:meth:`Decoder.decode_step` over a :class:`KVCache` — whose logits are
**bit-identical** to :meth:`Decoder.forward` on the concatenated
sequence.

Batched decoding
----------------

A server decodes *many* sequences concurrently; stepping them one by
one pays one GEMM per weight matrix **per sequence** even though the
engine's backends amortize over activation rows.  The multi-sequence
path — :class:`BatchedKVCache` (a preallocated slot pool with per-slot
lengths, grow and release) plus :meth:`Decoder.prefill_ragged` /
:meth:`Decoder.decode_batch` — packs the new tokens of every active
sequence into one row stack so each linear layer issues **one** GEMM
for the whole batch (rows = active slots), while attention, RoPE and
norms stay per-sequence.  Because every reduction on the path computes
each activation row independently of its batch neighbours (see below),
each sequence's logits are bit-identical to stepping it alone.  That guarantee needs reductions whose result for one token
row does not depend on how many other rows are in the batch, so every
matmul-shaped reduction here goes through :func:`_contract`
(``np.einsum`` with ``optimize=False``): its per-output-element
accumulation order is fixed by the reduction length alone, and
trailing *exact zeros* (masked attention columns) do not perturb it.
BLAS ``@`` has neither property (its accumulation blocking depends on
the batch dimension), which is why it is not used on this path.  The
quantized linears keep the same guarantee because the engine's
``fast``/``batched``/``bitexact`` backends compute each activation row
independently (``reference`` is BLAS-backed and excluded).

The implementation favours clarity over speed; dimensions are kept
small enough for tests while scaling to ~10M parameters for examples.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.engine import plan_gemm
from repro.errors import ConfigError
from repro.quant.groups import GroupSpec
from repro.quant.rtn import QuantizedMatrix


@dataclass(frozen=True)
class TransformerConfig:
    """Dimensions of the toy decoder."""

    vocab: int = 256
    d_model: int = 128
    n_heads: int = 4
    n_layers: int = 2
    d_ffn: int = 256
    max_seq: int = 128
    rms_eps: float = 1e-5

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ConfigError("d_model must divide evenly into heads")
        if min(self.vocab, self.d_model, self.n_heads, self.n_layers, self.d_ffn) < 1:
            raise ConfigError(f"invalid transformer config: {self}")

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads


#: The linear-layer names of one decoder block, with [k, n] shapes.
def _layer_shapes(config: TransformerConfig) -> dict[str, tuple[int, int]]:
    d, f = config.d_model, config.d_ffn
    return {
        "wq": (d, d),
        "wk": (d, d),
        "wv": (d, d),
        "wo": (d, d),
        "w_gate": (d, f),
        "w_up": (d, f),
        "w_down": (f, d),
    }


@dataclass
class DecoderWeights:
    """All parameters of the decoder (float64 masters)."""

    embedding: np.ndarray  #: [vocab, d_model]
    blocks: list[dict[str, np.ndarray]]
    final_norm: np.ndarray  #: [d_model]
    norms: list[dict[str, np.ndarray]] = field(default_factory=list)

    def linear_matrices(self) -> list[tuple[str, np.ndarray]]:
        """Every quantizable [k, n] weight, with a qualified name."""
        out = []
        for i, block in enumerate(self.blocks):
            for name, weight in block.items():
                out.append((f"layer{i}.{name}", weight))
        return out

    def num_parameters(self) -> int:
        total = self.embedding.size + self.final_norm.size
        for block in self.blocks:
            total += sum(w.size for w in block.values())
        for norm in self.norms:
            total += sum(v.size for v in norm.values())
        return total


def init_weights(config: TransformerConfig, seed: int = 0) -> DecoderWeights:
    """Seeded init with per-output-channel scale variation.

    Channel scales follow a shuffled Zipf profile (as in
    :mod:`repro.llm.bigram`) so quantization-group geometry matters the
    way it does for trained LLM weights.
    """
    rng = np.random.default_rng(seed)
    embedding = rng.normal(scale=0.8, size=(config.vocab, config.d_model))

    blocks = []
    norms = []
    for _ in range(config.n_layers):
        block = {}
        for name, (k, n) in _layer_shapes(config).items():
            scales = (1.0 + np.arange(n)) ** -0.3
            rng.shuffle(scales)
            block[name] = rng.normal(size=(k, n)) * scales[None, :] / np.sqrt(k)
        blocks.append(block)
        norms.append(
            {
                "attn": np.ones(config.d_model),
                "ffn": np.ones(config.d_model),
            }
        )
    final_norm = np.ones(config.d_model)
    return DecoderWeights(embedding, blocks, final_norm, norms)


def quantize_weights(
    weights: DecoderWeights,
    bits: int = 4,
    group: GroupSpec | None = None,
) -> dict[str, QuantizedMatrix]:
    """RTN-quantize every linear layer; returns name -> quantized matrix.

    Legacy uniform entry point, now a thin wrapper over the policy
    layer: equivalent to ``quantize_model(weights,
    QuantPolicy.uniform(bits, group)).matrices()``.  Prefer
    :func:`repro.model.quantize_model` for mixed-precision recipes,
    checkpointing and serving.

    Policies only accept the engine-servable widths (INT2/INT4); for
    the other RTN widths (INT3/INT8, storage/error studies) this
    wrapper keeps the seed's direct per-layer loop.
    """
    from repro.model.policy import SERVABLE_BITS, QuantPolicy, quantize_model
    from repro.quant.rtn import quantize_rtn

    spec = group if group is not None else GroupSpec(32, 4)
    if bits not in SERVABLE_BITS:
        quantized = {}
        for name, weight in weights.linear_matrices():
            k, n = weight.shape
            layer_spec = GroupSpec(min(spec.k, k), min(spec.n, n))
            quantized[name] = quantize_rtn(weight, bits=bits, group=layer_spec)
        return quantized
    policy = QuantPolicy.uniform(bits=bits, group=spec)
    return quantize_model(weights, policy, compute_reports=False).matrices()


def _rms_norm(x: np.ndarray, gain: np.ndarray, eps: float) -> np.ndarray:
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / rms * gain


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def _contract(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """Batch-stable contraction: the decoder's only matmul primitive.

    ``np.einsum(optimize=False)`` accumulates each output element over
    the contracted axis in a fixed order that depends only on the axis
    length — not on the batch (row) dimension — and trailing exact
    zeros leave the nonzero prefix's accumulation unchanged.  Both
    properties are required for ``prefill``/``decode_step`` to be
    bit-identical to ``forward`` (see module docstring); plain ``@``
    provides neither.
    """
    return np.einsum(subscripts, *operands, optimize=False)


def _rope(x: np.ndarray, offset: int = 0) -> np.ndarray:
    """Rotary position embedding over the last dimension (pairs).

    ``x`` is ``[..., m, d]`` holding positions ``offset .. offset+m-1``
    (``offset`` is the number of tokens already in the cache).  Purely
    elementwise per position, so cached and block evaluation agree
    bit-for-bit.
    """
    m, d = x.shape[-2], x.shape[-1]
    half = d // 2
    positions = (offset + np.arange(m))[:, None]
    freqs = 1.0 / (10000 ** (np.arange(half) / half))
    angles = positions * freqs[None, :]
    cos, sin = np.cos(angles), np.sin(angles)
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)


class KVCache:
    """Per-layer rotary key/value cache for incremental decoding.

    Buffers are preallocated at ``[n_layers, n_heads, capacity,
    d_head]`` so appending a block is a slice write, not a
    reallocation.  ``length`` counts the tokens already decoded;
    :meth:`Decoder.decode_step` advances it.
    """

    def __init__(self, config: TransformerConfig, capacity: int | None = None) -> None:
        self.capacity = config.max_seq if capacity is None else capacity
        if self.capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        shape = (config.n_layers, config.n_heads, self.capacity, config.d_head)
        self.keys = np.zeros(shape)
        self.values = np.zeros(shape)
        self.length = 0

    def store(self, layer: int, offset: int, k: np.ndarray, v: np.ndarray) -> None:
        """Write a block's roped keys/values at positions ``offset..``."""
        m = k.shape[1]
        if offset + m > self.capacity:
            raise ConfigError(
                f"cache overflow: {offset + m} tokens > capacity {self.capacity}"
            )
        self.keys[layer][:, offset : offset + m] = k
        self.values[layer][:, offset : offset + m] = v

    def view(self, layer: int, upto: int) -> tuple[np.ndarray, np.ndarray]:
        """Keys/values of the first ``upto`` positions, ``[h, upto, d]``."""
        # detlint: ignore[D007]: deliberate read-only attention view — consumed
        # within the step; callers that retain state use snapshot()/copy_into().
        return self.keys[layer][:, :upto], self.values[layer][:, :upto]


class BatchedKVCache:
    """A preallocated pool of per-sequence KV caches ("slots").

    The serving layer's cache: ``max_slots`` independent sequences
    share one pair of ``[slots, layers, heads, capacity, d_head]``
    buffers, so admitting a request is a slot allocation (no array
    allocation on the hot path) and retiring one returns the slot to
    the free list.  Each slot keeps its own ``lengths[slot]`` position,
    letting sequences of different ages decode lock-step.

    * :meth:`allocate` / :meth:`release` — slot lifecycle (release is
      the eviction primitive: the slot's tokens are dropped and the
      slot is immediately reusable);
    * :meth:`ensure` — grow the shared ``capacity`` axis (doubling,
      capped at ``config.max_seq``) when a sequence is about to
      outrun it;
    * :meth:`store` / :meth:`view` — the per-slot equivalents of
      :class:`KVCache`'s accessors;
    * :meth:`snapshot` / :meth:`copy_into` — copy a prefix of a slot's
      KV state out of / into the pool.  These are the prefix-cache
      primitives (:mod:`repro.serve.prefix`): both *copy*, so a cached
      snapshot and a slot seeded from it can never alias — mutating
      one request's slot cannot corrupt a cached prefix or a sibling
      slot (copy-on-write isolation).
    """

    def __init__(
        self,
        config: TransformerConfig,
        max_slots: int,
        capacity: int | None = None,
    ) -> None:
        if max_slots < 1:
            raise ConfigError("a batched cache needs at least one slot")
        self.config = config
        self.max_slots = max_slots
        self.capacity = config.max_seq if capacity is None else capacity
        if not 1 <= self.capacity <= config.max_seq:
            raise ConfigError(
                f"cache capacity must lie in [1, max_seq={config.max_seq}], "
                f"got {self.capacity}"
            )
        shape = (
            max_slots,
            config.n_layers,
            config.n_heads,
            self.capacity,
            config.d_head,
        )
        self.keys = np.zeros(shape)
        self.values = np.zeros(shape)
        self.lengths = np.zeros(max_slots, dtype=np.int64)
        # Free slots, popped lowest-first so occupancy packs densely.
        self._free = list(range(max_slots - 1, -1, -1))

    @property
    def free_slots(self) -> int:
        """Slots currently available for :meth:`allocate`."""
        return len(self._free)

    @property
    def active_slots(self) -> list[int]:
        """Allocated slots, in ascending order."""
        free = set(self._free)
        return [s for s in range(self.max_slots) if s not in free]

    def allocate(self) -> int:
        """Claim a free slot (length 0); raises when the pool is full."""
        if not self._free:
            raise ConfigError(
                f"no free slot: all {self.max_slots} in use "
                "(retire a sequence first)"
            )
        slot = self._free.pop()
        self.lengths[slot] = 0
        return slot

    def release(self, slot: int) -> None:
        """Evict a sequence: drop its tokens and free its slot."""
        self._check_slot(slot)
        if slot in self._free:
            raise ConfigError(f"slot {slot} is already free")
        self.lengths[slot] = 0
        self._free.append(slot)
        self._free.sort(reverse=True)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.max_slots:
            raise ConfigError(
                f"slot {slot} out of range [0, {self.max_slots})"
            )

    def ensure(self, slot: int, extra: int) -> None:
        """Grow ``capacity`` so ``slot`` can take ``extra`` more tokens.

        Doubles the shared capacity axis (all slots grow together —
        one reallocation, existing entries copied) up to the model
        context window ``config.max_seq``; beyond that the sequence
        cannot fit and a :class:`~repro.errors.ConfigError` is raised.
        """
        self._check_slot(slot)
        needed = int(self.lengths[slot]) + extra
        if needed <= self.capacity:
            return
        if needed > self.config.max_seq:
            raise ConfigError(
                f"sequence of {needed} tokens exceeds the model context "
                f"window max_seq={self.config.max_seq}"
            )
        new_capacity = min(
            self.config.max_seq, max(needed, 2 * self.capacity)
        )
        shape = list(self.keys.shape)
        shape[3] = new_capacity
        for name in ("keys", "values"):
            old = getattr(self, name)
            grown = np.zeros(tuple(shape))
            grown[:, :, :, : self.capacity] = old
            setattr(self, name, grown)
        self.capacity = new_capacity

    def store(
        self, slot: int, layer: int, offset: int, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Write a block's roped keys/values for one slot."""
        self._check_slot(slot)
        m = k.shape[1]
        if offset + m > self.capacity:
            raise ConfigError(
                f"cache overflow in slot {slot}: {offset + m} tokens > "
                f"capacity {self.capacity} (grow first via ensure())"
            )
        self.keys[slot, layer][:, offset : offset + m] = k
        self.values[slot, layer][:, offset : offset + m] = v

    def view(self, slot: int, layer: int, upto: int) -> tuple[np.ndarray, np.ndarray]:
        """One slot's keys/values over its first ``upto`` positions."""
        self._check_slot(slot)
        # detlint: ignore[D007]: deliberate read-only attention view — consumed
        # within the step; callers that retain state use snapshot()/copy_into().
        return self.keys[slot, layer][:, :upto], self.values[slot, layer][:, :upto]

    def truncate(self, slot: int, length: int) -> None:
        """Roll ``slot`` back to its first ``length`` tokens.

        The speculative-decoding rollback primitive: a verify pass
        appends the whole drafted window to the slot, then truncates
        away the rejected suffix.  Only the per-slot length moves — the
        stale keys/values beyond it are unreachable (``view``/
        ``snapshot`` stop at ``lengths[slot]``) and are overwritten in
        place by the next ``store`` at that offset, so decoding after a
        truncate is bit-identical to never having decoded the dropped
        tokens at all.
        """
        self._check_slot(slot)
        if slot in self._free:
            raise ConfigError(f"cannot truncate free slot {slot}")
        held = int(self.lengths[slot])
        if not 0 <= length <= held:
            raise ConfigError(
                f"cannot truncate slot {slot} to {length} tokens: it "
                f"holds {held} (length must lie in [0, {held}])"
            )
        self.lengths[slot] = length

    def snapshot(self, slot: int, upto: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy the first ``upto`` positions of ``slot`` out of the pool.

        Returns ``(keys, values)`` shaped ``[layers, heads, upto,
        d_head]`` — independent copies, so later writes to the slot
        (or its release) cannot disturb them.  This is what a prefix
        cache stores after a prompt has been fully ingested.
        """
        self._check_slot(slot)
        if not 0 <= upto <= int(self.lengths[slot]):
            raise ConfigError(
                f"snapshot of {upto} tokens from slot {slot} holding "
                f"{int(self.lengths[slot])}"
            )
        return (
            self.keys[slot, :, :, :upto].copy(),
            self.values[slot, :, :, :upto].copy(),
        )

    def copy_into(self, slot: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Seed an empty slot with snapshot KV state (copy-on-write).

        ``keys``/``values`` are ``[layers, heads, m, d_head]`` as
        returned by :meth:`snapshot` (or a prefix-cache lookup); they
        are *copied* into the slot's own buffers and the slot's length
        becomes ``m``, exactly as if those ``m`` tokens had just been
        prefilled.  Subsequent writes touch only the slot — never the
        source arrays — which is the isolation a shared prefix cache
        relies on.
        """
        self._check_slot(slot)
        if self.lengths[slot] != 0:
            raise ConfigError(f"copy_into needs an empty slot, got slot {slot}")
        expected = (
            self.config.n_layers,
            self.config.n_heads,
            keys.shape[2] if keys.ndim == 4 else -1,
            self.config.d_head,
        )
        if keys.shape != values.shape or keys.shape != expected:
            raise ConfigError(
                f"copy_into expects [layers, heads, m, d_head] keys/values, "
                f"got {keys.shape} / {values.shape}"
            )
        m = keys.shape[2]
        if m < 1:
            raise ConfigError("copy_into needs at least one token of KV state")
        self.ensure(slot, m)
        self.keys[slot, :, :, :m] = keys
        self.values[slot, :, :, :m] = values
        self.lengths[slot] = m


class Decoder:
    """Forward-only decoder, optionally running quantized linears.

    ``quantized`` maps layer names to
    :class:`~repro.quant.rtn.QuantizedMatrix` (the legacy form) or is a
    :class:`~repro.model.QuantizedModel`; every such matmul routes
    through the GEMM execution engine (:mod:`repro.engine`): each
    weight matrix is planned **once** at construction and the cached
    :class:`~repro.engine.GemmPlan` is executed per call, so per-token
    decoding pays no repeated planning cost.  ``backend`` selects any
    registered engine backend (``"fast"`` by default; ``"batched"`` is
    bit-identical).  Layers without a quantized matrix fall back to
    FP16-rounded reference weights, cached at construction.

    A model-level quantized bundle also carries AWQ equalization
    scales; the corresponding activations are divided by them before
    the GEMM (the fold-upstream deployment, applied at runtime).

    ``telemetry`` (see :class:`repro.model.session.Telemetry`) receives
    one record per linear execution — GEMM shape and bytes moved — and
    is normally installed by :class:`~repro.model.InferenceSession`.
    """

    def __init__(
        self,
        config: TransformerConfig,
        weights: DecoderWeights,
        quantized: "dict[str, QuantizedMatrix] | object | None" = None,
        backend: str = "fast",
        telemetry=None,
    ) -> None:
        self.config = config
        self.weights = weights
        self.backend = backend
        self.telemetry = telemetry
        # Model-level bundles carry activation scales; duck-typed so
        # this module does not import repro.model (which imports us).
        if hasattr(quantized, "matrices"):
            self.quantized = quantized.matrices()
            act_scales = quantized.activation_scales()
        else:
            self.quantized = dict(quantized or {})
            act_scales = {}
        #: One plan per quantized weight matrix, built up front.
        self.plans = {name: plan_gemm(qm) for name, qm in self.quantized.items()}
        #: Reciprocal AWQ equalization scales, applied to activations.
        self._inv_scales = {
            name: 1.0 / np.asarray(scales, dtype=np.float64)
            for name, scales in act_scales.items()
        }
        #: Storage bits per execution of each planned layer (telemetry).
        self._weight_bits = {
            name: qm.storage_bits() for name, qm in self.quantized.items()
        }
        #: FP16-rounded reference weights for every layer without a
        #: plan, cached once here instead of being re-derived per call.
        self._w16: dict[str, np.ndarray] = {}
        for i, block in enumerate(weights.blocks):
            for name, weight in block.items():
                key = f"layer{i}.{name}"
                if key not in self.plans:
                    self._w16[key] = weight.astype(np.float16).astype(np.float64)
        #: Pipeline phase label the public entry points stamp on every
        #: engine execution they issue (``GemmPlan.execute(phase=...)``)
        #: so per-plan shape histograms separate prefill / decode /
        #: verify traffic.  ``None`` outside a public call.
        self._phase: str | None = None

    @contextmanager
    def _phased(self, phase: str):
        """Stamp engine executions inside the block with ``phase``."""
        previous = self._phase
        self._phase = phase
        try:
            yield
        finally:
            self._phase = previous

    def _record(self, name: str, m: int, n: int, k: int, weight_bits: int) -> None:
        if self.telemetry is not None:
            self.telemetry.record(name, m=m, n=n, k=k, weight_bits=weight_bits)

    def _linear(self, x: np.ndarray, layer: int, name: str) -> np.ndarray:
        key = f"layer{layer}.{name}"
        plan = self.plans.get(key)
        if plan is not None:
            inv = self._inv_scales.get(key)
            a = x if inv is None else x * inv[None, :]
            self._record(key, x.shape[0], plan.n_dim, plan.k_dim,
                         self._weight_bits[key])
            return plan.execute(a, backend=self.backend, phase=self._phase)
        w16 = self._w16[key]
        self._record(key, x.shape[0], w16.shape[1], w16.shape[0],
                     16 * w16.size)
        return _contract(
            "ij,jk->ik", x.astype(np.float16).astype(np.float64), w16
        )

    def _heads(self, t: np.ndarray) -> np.ndarray:
        """``[m, d_model]`` rows -> ``[heads, m, d_head]`` per-head view."""
        cfg = self.config
        return t.reshape(t.shape[0], cfg.n_heads, cfg.d_head).transpose(1, 0, 2)

    def _attend(
        self,
        q: np.ndarray,
        k_all: np.ndarray,
        v_all: np.ndarray,
        offset: int,
    ) -> np.ndarray:
        """Causal attention of roped queries against one sequence's cache.

        ``q`` is ``[heads, m, d_head]`` (positions ``offset..``),
        ``k_all``/``v_all`` are ``[heads, total, d_head]`` with
        ``total = offset + m``.  Returns the merged ``[m, d_model]``
        context rows (pre-``wo``).  Pure per-sequence work — the
        batched path calls this once per active slot.
        """
        cfg = self.config
        m, total = q.shape[1], k_all.shape[1]
        scores = _contract("hid,hjd->hij", q, k_all) / np.sqrt(cfg.d_head)
        if m > 1:
            # Causal mask inside the block: key j visible to query row i
            # iff j <= offset + i.  (A single-row step sees only cached
            # keys, all visible.)
            j = np.arange(total)[None, :]
            i = offset + np.arange(m)[:, None]
            scores = scores + np.where(j > i, -np.inf, 0.0)[None, :, :]
        shifted = scores - scores.max(axis=-1, keepdims=True)
        e = np.exp(shifted)  # masked columns are exact zeros
        denom = _contract("hij,hjo->hio", e, np.ones((cfg.n_heads, total, 1)))
        attn = e / denom
        mixed = _contract("hij,hjd->hid", attn, v_all)  # [heads, m, d_head]
        return mixed.transpose(1, 0, 2).reshape(m, cfg.d_model)

    def _attention(
        self, x: np.ndarray, layer: int, cache: KVCache, offset: int
    ) -> np.ndarray:
        m = x.shape[0]
        q = self._linear(x, layer, "wq")
        k = self._linear(x, layer, "wk")
        v = self._linear(x, layer, "wv")

        q = _rope(self._heads(q), offset)
        k = _rope(self._heads(k), offset)
        cache.store(layer, offset, k, self._heads(v))
        k_all, v_all = cache.view(layer, offset + m)
        merged = self._attend(q, k_all, v_all, offset)
        return self._linear(merged, layer, "wo")

    def _ffn(self, x: np.ndarray, layer: int) -> np.ndarray:
        gate = self._linear(x, layer, "w_gate")
        up = self._linear(x, layer, "w_up")
        return self._linear(_silu(gate) * up, layer, "w_down")

    def _block(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Run a block of new tokens against the cache; returns logits."""
        cfg = self.config
        offset = cache.length
        x = self.weights.embedding[tokens]
        for layer in range(cfg.n_layers):
            norm = self.weights.norms[layer]
            x = x + self._attention(
                _rms_norm(x, norm["attn"], cfg.rms_eps), layer, cache, offset
            )
            x = x + self._ffn(_rms_norm(x, norm["ffn"], cfg.rms_eps), layer)
        x = _rms_norm(x, self.weights.final_norm, cfg.rms_eps)
        cache.length = offset + tokens.shape[0]
        # Tied LM head, scaled so random-init logits stay O(1).
        return _contract("id,vd->iv", x, self.weights.embedding) / np.sqrt(
            cfg.d_model
        )

    def _block_multi(
        self,
        groups: list[np.ndarray],
        cache: BatchedKVCache,
        slots: list[int],
    ) -> list[np.ndarray]:
        """Run one block of new tokens for several slots with shared GEMMs.

        ``groups[i]`` is the (non-empty, 1-D) token block appended to
        ``slots[i]``; blocks may have different lengths (ragged).  All
        rows are packed into one stack so every linear layer issues a
        single GEMM of ``m = sum(len(g))`` rows; RoPE, cache writes and
        attention run per slot at that slot's own offset.  Returns one
        ``[len(groups[i]), vocab]`` logits array per group, each
        bit-identical to running that block alone through
        :meth:`_block` at the same offset (row-independent reductions
        throughout — see the module docstring).
        """
        cfg = self.config
        if len(groups) != len(slots) or not groups:
            raise ConfigError("groups and slots must be non-empty and aligned")
        if len(set(slots)) != len(slots):
            raise ConfigError(f"duplicate slots in batch: {slots}")
        offsets = [int(cache.lengths[slot]) for slot in slots]
        lengths = [g.shape[0] for g in groups]
        if min(lengths) < 1:
            raise ConfigError("every token block must be non-empty")
        starts = np.concatenate([[0], np.cumsum(lengths)])
        total_rows = int(starts[-1])
        spans = [slice(int(starts[i]), int(starts[i + 1]))
                 for i in range(len(groups))]

        x = self.weights.embedding[np.concatenate(groups)]
        for layer in range(cfg.n_layers):
            norm = self.weights.norms[layer]
            h = _rms_norm(x, norm["attn"], cfg.rms_eps)
            q = self._linear(h, layer, "wq")
            k = self._linear(h, layer, "wk")
            v = self._linear(h, layer, "wv")
            merged = np.empty((total_rows, cfg.d_model))
            for span, slot, offset, m in zip(spans, slots, offsets, lengths, strict=False):
                q_i = _rope(self._heads(q[span]), offset)
                k_i = _rope(self._heads(k[span]), offset)
                cache.store(slot, layer, offset, k_i, self._heads(v[span]))
                k_all, v_all = cache.view(slot, layer, offset + m)
                merged[span] = self._attend(q_i, k_all, v_all, offset)
            x = x + self._linear(merged, layer, "wo")
            x = x + self._ffn(_rms_norm(x, norm["ffn"], cfg.rms_eps), layer)
        x = _rms_norm(x, self.weights.final_norm, cfg.rms_eps)
        for slot, offset, m in zip(slots, offsets, lengths, strict=False):
            cache.lengths[slot] = offset + m
        logits = _contract("id,vd->iv", x, self.weights.embedding) / np.sqrt(
            cfg.d_model
        )
        return [logits[span] for span in spans]

    # -- public inference API ------------------------------------------------

    def init_cache(self, capacity: int | None = None) -> KVCache:
        """A fresh KV cache (default capacity: ``config.max_seq``)."""
        return KVCache(self.config, capacity)

    def init_batched_cache(
        self, max_slots: int, capacity: int | None = None
    ) -> BatchedKVCache:
        """A fresh slot-pool cache for multi-sequence decoding."""
        return BatchedKVCache(self.config, max_slots, capacity)

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Logits for every position of a token sequence."""
        cfg = self.config
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ConfigError("forward takes a 1-D token sequence")
        if tokens.shape[0] > cfg.max_seq:
            raise ConfigError(f"sequence longer than max_seq={cfg.max_seq}")
        if tokens.shape[0] == 0:
            return np.zeros((0, cfg.vocab))
        # One code path with prefill: forward is a prefill into a
        # throwaway cache, so the two are bit-identical by construction.
        with self._phased("prefill"):
            return self._block(tokens, KVCache(cfg, capacity=tokens.shape[0]))

    def prefill(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Process the prompt into an empty cache; returns its logits.

        Bit-identical to :meth:`forward` on the same tokens (it *is*
        the same computation, with keys/values retained).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or tokens.shape[0] < 1:
            raise ConfigError("prefill takes a non-empty 1-D token sequence")
        if cache.length != 0:
            raise ConfigError("prefill needs an empty cache")
        with self._phased("prefill"):
            return self._block(tokens, cache)

    def decode_step(self, token: int, cache: KVCache) -> np.ndarray:
        """Append one token; returns its ``[vocab]`` logits row.

        After ``prefill(tokens[:p])`` followed by steps over
        ``tokens[p:]``, each step's row is bit-identical to the
        corresponding row of ``forward(tokens)``.
        """
        if cache.length < 1:
            raise ConfigError("decode_step needs a prefilled cache")
        with self._phased("decode"):
            return self._block(np.asarray([token]), cache)[0]

    def prefill_ragged(
        self,
        prompts: list[np.ndarray],
        cache: BatchedKVCache,
        slots: list[int],
        resume: bool = False,
        phase: str = "prefill",
    ) -> list[np.ndarray]:
        """Prefill several prompts into their slots with shared GEMMs.

        Prompts may have different lengths; their rows are packed so
        each linear layer runs once over all of them.  Returns one
        ``[len(prompt_i), vocab]`` logits array per prompt, each
        bit-identical to ``prefill(prompt_i, fresh_cache)``.  Slots
        must be empty (fresh from :meth:`BatchedKVCache.allocate`)
        unless ``resume=True``, in which case each block is appended
        at its slot's current offset — the chunked-prefill primitive:
        ingesting a prompt as several ``resume`` chunks (or on top of
        KV state seeded via :meth:`BatchedKVCache.copy_into`) produces
        logits rows bit-identical to the corresponding rows of one
        monolithic prefill, because every reduction on the path
        computes each token row independently (see the module
        docstring).  ``phase`` labels the engine executions this pass
        issues; the speculative verify path reuses this method with
        ``phase="verify"`` so plan histograms keep the phases apart.
        """
        prompts = [np.asarray(p) for p in prompts]
        for p in prompts:
            if p.ndim != 1 or p.shape[0] < 1:
                raise ConfigError(
                    "prefill_ragged takes non-empty 1-D token sequences"
                )
        for prompt, slot in zip(prompts, slots, strict=False):
            if not resume and cache.lengths[slot] != 0:
                raise ConfigError(f"slot {slot} is not empty")
            cache.ensure(slot, prompt.shape[0])
        with self._phased(phase):
            return self._block_multi(prompts, cache, slots)

    def decode_batch(
        self,
        tokens: list[int] | np.ndarray,
        cache: BatchedKVCache,
        slots: list[int],
    ) -> np.ndarray:
        """Append one token to each slot; returns ``[batch, vocab]`` logits.

        The lock-step serving hot path: one GEMM per weight matrix for
        the whole batch.  Row ``i`` is bit-identical to
        ``decode_step(tokens[i], <slot i's cache alone>)``.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or tokens.shape[0] != len(slots):
            raise ConfigError("decode_batch needs one token per slot")
        for slot in slots:
            if cache.lengths[slot] < 1:
                raise ConfigError(
                    f"slot {slot} has no prefilled tokens"
                )
            cache.ensure(slot, 1)
        with self._phased("decode"):
            rows = self._block_multi(
                [np.asarray([int(t)]) for t in tokens], cache, slots
            )
        return np.concatenate(rows, axis=0)

    def sequence_nll(self, tokens: np.ndarray) -> float:
        """Mean next-token negative log-likelihood over a sequence."""
        logits = self.forward(tokens[:-1])
        shifted = logits - logits.max(axis=1, keepdims=True)
        # detlint: ignore[D003]: per-row reduction over the fixed vocab axis.
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        targets = tokens[1:]
        return float(-log_probs[np.arange(targets.shape[0]), targets].mean())

    def perplexity(self, tokens: np.ndarray) -> float:
        return float(np.exp(self.sequence_nll(tokens)))


def gemm_shapes(config: TransformerConfig, batch_tokens: int) -> list[tuple[str, tuple[int, int, int]]]:
    """The (m, n, k) GEMM shapes one forward pass issues per block.

    These are the shapes to hand to the simulator when pricing the
    decoder on PacQ (``m`` is the token count, paper convention).
    """
    shapes = []
    for name, (k, n) in _layer_shapes(config).items():
        shapes.append((name, (batch_tokens, n, k)))
    return shapes
