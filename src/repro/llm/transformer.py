"""A NumPy decoder-only transformer with quantizable linear layers.

The bigram LM of :mod:`repro.llm.bigram` isolates Table II's claim;
this module provides the *full* workload the paper motivates: a
Llama-style decoder (RMSNorm, multi-head causal attention, SwiGLU FFN,
tied LM head) whose every linear layer is a ``[k, n]`` weight matrix
that can be RTN-quantized and executed through
:func:`repro.core.gemm.hyper_gemm` — i.e. the PacQ compute path end to
end.  Weights are seeded-random with realistic per-channel scale
variation (no checkpoints are available offline), so the model is used
for *relative* studies: quantized-vs-fp16 drift, group-shape effects,
and generating the exact GEMM shapes the simulator prices.

The implementation favours clarity over speed; dimensions are kept
small enough for tests while scaling to ~10M parameters for examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import plan_gemm
from repro.errors import ConfigError
from repro.quant.groups import GroupSpec
from repro.quant.rtn import QuantizedMatrix, quantize_rtn


@dataclass(frozen=True)
class TransformerConfig:
    """Dimensions of the toy decoder."""

    vocab: int = 256
    d_model: int = 128
    n_heads: int = 4
    n_layers: int = 2
    d_ffn: int = 256
    max_seq: int = 128
    rms_eps: float = 1e-5

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ConfigError("d_model must divide evenly into heads")
        if min(self.vocab, self.d_model, self.n_heads, self.n_layers, self.d_ffn) < 1:
            raise ConfigError(f"invalid transformer config: {self}")

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads


#: The linear-layer names of one decoder block, with [k, n] shapes.
def _layer_shapes(config: TransformerConfig) -> dict[str, tuple[int, int]]:
    d, f = config.d_model, config.d_ffn
    return {
        "wq": (d, d),
        "wk": (d, d),
        "wv": (d, d),
        "wo": (d, d),
        "w_gate": (d, f),
        "w_up": (d, f),
        "w_down": (f, d),
    }


@dataclass
class DecoderWeights:
    """All parameters of the decoder (float64 masters)."""

    embedding: np.ndarray  #: [vocab, d_model]
    blocks: list[dict[str, np.ndarray]]
    final_norm: np.ndarray  #: [d_model]
    norms: list[dict[str, np.ndarray]] = field(default_factory=list)

    def linear_matrices(self) -> list[tuple[str, np.ndarray]]:
        """Every quantizable [k, n] weight, with a qualified name."""
        out = []
        for i, block in enumerate(self.blocks):
            for name, weight in block.items():
                out.append((f"layer{i}.{name}", weight))
        return out

    def num_parameters(self) -> int:
        total = self.embedding.size + self.final_norm.size
        for block in self.blocks:
            total += sum(w.size for w in block.values())
        for norm in self.norms:
            total += sum(v.size for v in norm.values())
        return total


def init_weights(config: TransformerConfig, seed: int = 0) -> DecoderWeights:
    """Seeded init with per-output-channel scale variation.

    Channel scales follow a shuffled Zipf profile (as in
    :mod:`repro.llm.bigram`) so quantization-group geometry matters the
    way it does for trained LLM weights.
    """
    rng = np.random.default_rng(seed)
    embedding = rng.normal(scale=0.8, size=(config.vocab, config.d_model))

    blocks = []
    norms = []
    for _ in range(config.n_layers):
        block = {}
        for name, (k, n) in _layer_shapes(config).items():
            scales = (1.0 + np.arange(n)) ** -0.3
            rng.shuffle(scales)
            block[name] = rng.normal(size=(k, n)) * scales[None, :] / np.sqrt(k)
        blocks.append(block)
        norms.append(
            {
                "attn": np.ones(config.d_model),
                "ffn": np.ones(config.d_model),
            }
        )
    final_norm = np.ones(config.d_model)
    return DecoderWeights(embedding, blocks, final_norm, norms)


def quantize_weights(
    weights: DecoderWeights,
    bits: int = 4,
    group: GroupSpec | None = None,
) -> dict[str, QuantizedMatrix]:
    """RTN-quantize every linear layer; returns name -> quantized matrix.

    Group extents are clipped to each matrix's dimensions so one spec
    covers layers of different shapes.
    """
    spec = group if group is not None else GroupSpec(32, 4)
    quantized = {}
    for name, weight in weights.linear_matrices():
        k, n = weight.shape
        layer_spec = GroupSpec(min(spec.k, k), min(spec.n, n))
        quantized[name] = quantize_rtn(weight, bits=bits, group=layer_spec)
    return quantized


def _rms_norm(x: np.ndarray, gain: np.ndarray, eps: float) -> np.ndarray:
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / rms * gain


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def _rope(x: np.ndarray) -> np.ndarray:
    """Rotary position embedding over the last dimension (pairs)."""
    seq, d = x.shape[-2], x.shape[-1]
    half = d // 2
    positions = np.arange(seq)[:, None]
    freqs = 1.0 / (10000 ** (np.arange(half) / half))
    angles = positions * freqs[None, :]
    cos, sin = np.cos(angles), np.sin(angles)
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)


class Decoder:
    """Forward-only decoder, optionally running quantized linears.

    When ``quantized`` maps layer names to
    :class:`~repro.quant.rtn.QuantizedMatrix`, every such matmul routes
    through the GEMM execution engine (:mod:`repro.engine`): each
    weight matrix is planned **once** at construction and the cached
    :class:`~repro.engine.GemmPlan` is executed per forward pass, so
    per-token decoding pays no repeated planning cost.  ``backend``
    selects any registered engine backend (``"fast"`` by default; pass
    ``"batched"`` for the BLAS contraction path — bit-identical
    outputs).  Missing names fall back to the FP16-rounded reference
    weights.
    """

    def __init__(
        self,
        config: TransformerConfig,
        weights: DecoderWeights,
        quantized: dict[str, QuantizedMatrix] | None = None,
        backend: str = "fast",
    ) -> None:
        self.config = config
        self.weights = weights
        self.quantized = quantized or {}
        self.backend = backend
        #: One plan per quantized weight matrix, built up front.
        self.plans = {name: plan_gemm(qm) for name, qm in self.quantized.items()}

    def _linear(self, x: np.ndarray, layer: int, name: str) -> np.ndarray:
        key = f"layer{layer}.{name}"
        if key in self.plans:
            return self.plans[key].execute(x, backend=self.backend)
        weight = self.weights.blocks[layer][name]
        w16 = weight.astype(np.float16).astype(np.float64)
        return x.astype(np.float16).astype(np.float64) @ w16

    def _attention(self, x: np.ndarray, layer: int) -> np.ndarray:
        cfg = self.config
        seq = x.shape[0]
        q = self._linear(x, layer, "wq")
        k = self._linear(x, layer, "wk")
        v = self._linear(x, layer, "wv")

        def heads(t: np.ndarray) -> np.ndarray:
            return t.reshape(seq, cfg.n_heads, cfg.d_head).transpose(1, 0, 2)

        q, k, v = heads(q), heads(k), heads(v)
        q = np.stack([_rope(h) for h in q])
        k = np.stack([_rope(h) for h in k])

        scores = q @ k.transpose(0, 2, 1) / np.sqrt(cfg.d_head)
        mask = np.triu(np.full((seq, seq), -np.inf), k=1)
        attn = _softmax(scores + mask[None, :, :])
        mixed = attn @ v  # [heads, seq, d_head]
        merged = mixed.transpose(1, 0, 2).reshape(seq, cfg.d_model)
        return self._linear(merged, layer, "wo")

    def _ffn(self, x: np.ndarray, layer: int) -> np.ndarray:
        gate = self._linear(x, layer, "w_gate")
        up = self._linear(x, layer, "w_up")
        return self._linear(_silu(gate) * up, layer, "w_down")

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Logits for every position of a token sequence."""
        cfg = self.config
        if tokens.ndim != 1:
            raise ConfigError("forward takes a 1-D token sequence")
        if tokens.shape[0] > cfg.max_seq:
            raise ConfigError(f"sequence longer than max_seq={cfg.max_seq}")
        x = self.weights.embedding[tokens]
        for layer in range(cfg.n_layers):
            norm = self.weights.norms[layer]
            x = x + self._attention(
                _rms_norm(x, norm["attn"], cfg.rms_eps), layer
            )
            x = x + self._ffn(_rms_norm(x, norm["ffn"], cfg.rms_eps), layer)
        x = _rms_norm(x, self.weights.final_norm, cfg.rms_eps)
        # Tied LM head, scaled so random-init logits stay O(1).
        return (x @ self.weights.embedding.T) / np.sqrt(cfg.d_model)

    def sequence_nll(self, tokens: np.ndarray) -> float:
        """Mean next-token negative log-likelihood over a sequence."""
        logits = self.forward(tokens[:-1])
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        targets = tokens[1:]
        return float(-log_probs[np.arange(targets.shape[0]), targets].mean())

    def perplexity(self, tokens: np.ndarray) -> float:
        return float(np.exp(self.sequence_nll(tokens)))


def gemm_shapes(config: TransformerConfig, batch_tokens: int) -> list[tuple[str, tuple[int, int, int]]]:
    """The (m, n, k) GEMM shapes one forward pass issues per block.

    These are the shapes to hand to the simulator when pricing the
    decoder on PacQ (``m`` is the token count, paper convention).
    """
    shapes = []
    for name, (k, n) in _layer_shapes(config).items():
        shapes.append((name, (batch_tokens, n, k)))
    return shapes
