"""Power breakdowns of PacQ's units (paper Fig. 9).

Fig. 9 reports, for the parallel INT-11 MUL, the parallel FP-INT-16
MUL and the parallel FP-INT-16 DP-4, how much of the unit's power is
drawn by resources **reused** from the baseline design versus the
duplicated/added blocks.  The paper measures ~74.5 % / ~72.7 % /
~60.2 % reuse and highlights an average reuse ratio of ~69 %.

Here the same breakdown falls out of the tagged component inventories
in :mod:`repro.energy.units`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.tech import DEFAULT_TECH, TechnologyModel
from repro.energy.units import (
    UnitCost,
    dp_unit,
    fp_int16_mul_parallel,
    int11_mul_parallel,
)


@dataclass(frozen=True)
class PowerBreakdown:
    """Fractional power split of one unit."""

    unit: str
    reused_fraction: float
    extra_by_category: dict[str, float]

    @property
    def extra_fraction(self) -> float:
        return sum(self.extra_by_category.values())

    def as_rows(self) -> list[tuple[str, float]]:
        rows = [("reused resources", self.reused_fraction)]
        rows.extend(
            (f"extra {category}", share)
            for category, share in sorted(self.extra_by_category.items())
        )
        return rows


def breakdown(unit: UnitCost) -> PowerBreakdown:
    """Compute the reused/extra power split of a unit."""
    total = unit.energy_per_op
    extra: dict[str, float] = {}
    for component in unit.components:
        if not component.reused:
            extra[component.category] = (
                extra.get(component.category, 0.0) + component.energy / total
            )
    return PowerBreakdown(unit.name, unit.reuse_fraction, extra)


def fig9_breakdowns(
    weight_bits: int = 4, tech: TechnologyModel = DEFAULT_TECH
) -> list[PowerBreakdown]:
    """The three breakdowns of Fig. 9 (INT4 configuration by default)."""
    pack = 16 // weight_bits
    return [
        breakdown(int11_mul_parallel(tech)),
        breakdown(fp_int16_mul_parallel(weight_bits, tech)),
        breakdown(dp_unit(width=4, pack=pack, dup=2, tech=tech)),
    ]


def average_reuse(breakdowns: list[PowerBreakdown]) -> float:
    """Average reuse ratio across units (the paper quotes ~69 %)."""
    if not breakdowns:
        return 0.0
    return sum(b.reused_fraction for b in breakdowns) / len(breakdowns)
