"""Analytical hardware cost model (Design Compiler / CACTI substitute).

* :mod:`repro.energy.tech` — 32 nm / 400 MHz component constants.
* :mod:`repro.energy.units` — per-unit costs from Table I inventories.
* :mod:`repro.energy.memory` — RF/L1/L2/DRAM per-access energies.
* :mod:`repro.energy.breakdown` — reused-vs-extra splits (Fig. 9).
"""

from repro.energy.area import (
    AreaReport,
    area_of,
    area_overhead_vs_baseline,
    throughput_per_area,
)
from repro.energy.breakdown import (
    PowerBreakdown,
    average_reuse,
    breakdown,
    fig9_breakdowns,
)
from repro.energy.memory import BEAT_BITS, DEFAULT_MEMORY, MemoryLevel, MemoryModel
from repro.energy.tech import DEFAULT_TECH, TechnologyModel
from repro.energy.units import (
    Component,
    UnitCost,
    dp_unit,
    fp16_adder,
    fp16_mul_baseline,
    fp_int16_mul_parallel,
    int11_mul_baseline,
    int11_mul_parallel,
    tensor_core,
)

__all__ = [
    "AreaReport",
    "BEAT_BITS",
    "Component",
    "area_of",
    "area_overhead_vs_baseline",
    "throughput_per_area",
    "DEFAULT_MEMORY",
    "DEFAULT_TECH",
    "MemoryLevel",
    "MemoryModel",
    "PowerBreakdown",
    "TechnologyModel",
    "UnitCost",
    "average_reuse",
    "breakdown",
    "dp_unit",
    "fig9_breakdowns",
    "fp16_adder",
    "fp16_mul_baseline",
    "fp_int16_mul_parallel",
    "int11_mul_baseline",
    "int11_mul_parallel",
    "tensor_core",
]
