"""Technology constants for the 32 nm / 400 MHz cost model.

The paper synthesizes its units with Synopsys Design Compiler at
400 MHz in 32 nm and models SRAM/RF with CACTI 7.0.  Neither tool is
available offline, so this module substitutes an *analytical* model:
every unit's per-operation dynamic energy is assembled from a small
set of per-component constants, and power is ``energy_per_op x
frequency`` for a fully-pipelined unit.  Only **ratios** between units
matter for every figure in the paper (all results are normalized), so
the constants are expressed in arbitrary femtojoule-like units whose
relative magnitudes follow published 32-45 nm datapoints (Horowitz,
"Computing's energy problem", ISSCC 2014; CACTI reports).

Calibration notes (see EXPERIMENTS.md for paper-vs-measured):

* A full-adder bit switch is the unit (1.0).
* Adder dynamic energy scales with the operand width that actually
  toggles.  In the parallel INT11 array the twelve INT16 adders reduce
  4-row (<= 15-bit) columns instead of 11-row (22-bit) columns, so
  their effective width is lower than the baseline's — without this
  activity correction the parallel multiplier would be charged for
  carry chains it never exercises.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyModel:
    """Per-component energy/area constants of the modelled process node.

    Attributes (energies are per operation, arbitrary units):
        full_adder_bit: one full-adder bit position switching.
        and_gate_bit: one AND-plane bit (partial-product generation).
        flop_bit: one pipeline-register bit write.
        shifter_bit: one bit through one barrel-shifter stage.
        lzc_normalizer: an 11-bit leading-zero count + normalize shift.
        rounding_unit: one RNE rounding decision + increment.
        frequency_mhz: clock frequency (only used to express power).
    """

    full_adder_bit: float = 1.0
    and_gate_bit: float = 0.12
    flop_bit: float = 0.35
    shifter_bit: float = 0.5
    lzc_normalizer: float = 28.0
    rounding_unit: float = 9.0
    frequency_mhz: float = 400.0
    node_nm: int = 32

    def adder_energy(self, width: int, effective_width: int | None = None) -> float:
        """Energy of one add on a ``width``-bit adder.

        ``effective_width`` caps the toggled carry chain when the
        operands are known to be narrower than the adder (the activity
        correction described in the module docstring).
        """
        toggled = width if effective_width is None else min(width, effective_width)
        return self.full_adder_bit * toggled

    def register_energy(self, bits: int) -> float:
        """Energy of latching ``bits`` pipeline-register bits."""
        return self.flop_bit * bits

    def shifter_energy(self, bits: int, stages: int) -> float:
        """Energy of a ``bits``-wide, ``stages``-deep barrel shifter."""
        return self.shifter_bit * bits * stages

    def power_mw(self, energy_per_op: float) -> float:
        """Power of a fully-pipelined unit issuing one op per cycle.

        Arbitrary-unit energy x MHz; meaningful only as a ratio.
        """
        return energy_per_op * self.frequency_mhz * 1e-6


#: Default technology: the paper's 32 nm / 400 MHz corner.
DEFAULT_TECH = TechnologyModel()
