"""Area model for PacQ's units (companion to the power model).

The paper reports power breakdowns (Fig. 9) but its efficiency story
also rests on *area* frugality: ~69 % of the parallel units' resources
are reused from the baseline, so the added silicon is small.  This
module prices unit area from the same Table I inventories using
per-component gate-equivalent (GE) counts at 32 nm, enabling
area-efficiency (throughput/mm^2-style) comparisons alongside
throughput/watt.

GE anchors (standard-cell folklore, NAND2-equivalents):
full-adder bit ~ 6 GE, AND gate ~ 1.5 GE, flop bit ~ 8 GE,
barrel-shifter bit-stage ~ 3 GE, LZC+normalizer ~ 170 GE,
rounding unit ~ 55 GE.  Only ratios matter downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.units import (
    UnitCost,
    dp_unit,
    fp16_mul_baseline,
    fp_int16_mul_parallel,
    int11_mul_baseline,
    int11_mul_parallel,
)
from repro.errors import ConfigError

#: Gate-equivalents per component category unit (see module docstring).
GE_FULL_ADDER_BIT = 6.0
GE_AND_BIT = 1.5
GE_FLOP_BIT = 8.0
GE_SHIFTER_BIT_STAGE = 3.0
GE_NORMALIZER = 170.0
GE_ROUNDING = 55.0

#: Map from the energy model's per-component energy constants to GE.
#: Energy components were built from the same structural counts, so a
#: category-wise conversion reproduces the inventory areas.
_CATEGORY_GE_PER_ENERGY = {
    # full-adder bit costs 1.0 energy unit and 6 GE.
    "adders": GE_FULL_ADDER_BIT / 1.0,
    # AND-plane bit: 0.12 energy units, 1.5 GE.
    "mul": GE_AND_BIT / 0.12,
    # rounding unit: 9 energy units, 55 GE.
    "rounding": GE_ROUNDING / 9.0,
    # normalizer/registers bucket: dominated by the 28-unit normalizer
    # (170 GE) and 0.35-unit flop bits (8 GE); use the normalizer rate.
    "other": GE_NORMALIZER / 28.0,
}


@dataclass(frozen=True)
class AreaReport:
    """Gate-equivalent area of one unit, split reused/extra."""

    unit: str
    total_ge: float
    reused_ge: float

    @property
    def extra_ge(self) -> float:
        return self.total_ge - self.reused_ge

    @property
    def reuse_fraction(self) -> float:
        if self.total_ge <= 0:
            raise ConfigError(f"unit {self.unit} has zero area")
        return self.reused_ge / self.total_ge


def area_of(unit: UnitCost) -> AreaReport:
    """Convert a unit's tagged components into a gate-equivalent area."""
    total = 0.0
    reused = 0.0
    for component in unit.components:
        rate = _CATEGORY_GE_PER_ENERGY.get(component.category)
        if rate is None:
            raise ConfigError(f"no GE rate for category {component.category!r}")
        ge = component.energy * rate
        total += ge
        if component.reused:
            reused += ge
    return AreaReport(unit.name, total, reused)


def area_overhead_vs_baseline() -> dict[str, float]:
    """Fractional area increase of each PacQ unit over its baseline.

    Returns unit-name -> overhead (e.g. 0.28 means +28 % area).
    """
    pairs = {
        "INT11 MUL": (int11_mul_baseline(), int11_mul_parallel()),
        "FP-INT-16 MUL": (fp16_mul_baseline(), fp_int16_mul_parallel(4)),
        "DP-4": (dp_unit(4, 1, 1), dp_unit(4, 4, 2)),
    }
    overheads = {}
    for name, (baseline, ours) in pairs.items():
        base_area = area_of(baseline).total_ge
        our_area = area_of(ours).total_ge
        overheads[name] = our_area / base_area - 1.0
    return overheads


def throughput_per_area(
    ops_per_cycle: float, unit: UnitCost
) -> float:
    """Area-efficiency proxy: work per cycle per gate-equivalent."""
    report = area_of(unit)
    return ops_per_cycle / report.total_ge
