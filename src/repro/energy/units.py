"""Per-unit energy/area costs assembled from Table I inventories.

Each builder returns a :class:`UnitCost` whose components are tagged
``reused`` (inherited from the baseline design) or ``extra`` (added by
PacQ), so the Fig. 9 power breakdowns and the Fig. 8 throughput/watt
comparisons derive from one shared structural model.

Component inventories follow Table I of the paper verbatim:

===========================  ==============================================
INT11 MUL (baseline)         10 INT16 adders
Parallel INT11 MUL           12 INT16 adders, 4 INT6 adders
FP16 MUL (baseline)          1 INT11 MUL, 1 INT5 adder,
                             1 normalization unit, 1 rounding unit
Parallel FP-INT-16 MUL       1 parallel INT11 MUL, 1 INT5 adder,
                             1 normalization unit, 4 rounding units
FP-16 DP-4 (baseline)        4 FP16 MUL, 4 FP16 adders
Parallel FP-INT-16 DP-4      4 parallel FP-INT-16 MUL, 8 FP16 adders
Tensor core                  4 DP-4 units
===========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.tech import DEFAULT_TECH, TechnologyModel
from repro.errors import ConfigError
from repro.multiplier.int11 import SIGNIFICAND_BITS


@dataclass(frozen=True)
class Component:
    """One energy-bearing component of a unit."""

    name: str
    energy: float
    reused: bool = True  #: inherited from the baseline design?
    category: str = "other"  #: adders / mul / rounding / other — for Fig. 9


@dataclass(frozen=True)
class UnitCost:
    """Energy cost of one hardware unit, per fully-utilized cycle."""

    name: str
    components: tuple[Component, ...] = field(default_factory=tuple)

    @property
    def energy_per_op(self) -> float:
        return sum(component.energy for component in self.components)

    @property
    def reused_energy(self) -> float:
        return sum(c.energy for c in self.components if c.reused)

    @property
    def extra_energy(self) -> float:
        return sum(c.energy for c in self.components if not c.reused)

    @property
    def reuse_fraction(self) -> float:
        total = self.energy_per_op
        if total == 0:
            raise ConfigError(f"unit {self.name} has zero energy")
        return self.reused_energy / total

    def category_energy(self, category: str, reused: bool | None = None) -> float:
        return sum(
            c.energy
            for c in self.components
            if c.category == category and (reused is None or c.reused == reused)
        )

    def scaled(self, name: str, factor: float) -> "UnitCost":
        """A copy with every component energy scaled by ``factor``."""
        return UnitCost(
            name,
            tuple(
                Component(c.name, c.energy * factor, c.reused, c.category)
                for c in self.components
            ),
        )

    def merged_with(self, other: "UnitCost", name: str) -> "UnitCost":
        return UnitCost(name, self.components + other.components)


#: Effective toggled width of the INT16 adders in the parallel array
#: (they reduce 4-row columns; see tech.py calibration notes).
PARALLEL_ADDER_EFFECTIVE_WIDTH = 12


def int11_mul_baseline(tech: TechnologyModel = DEFAULT_TECH) -> UnitCost:
    """Baseline 11x11 significand multiplier: 10 INT16 adders + AND plane."""
    return UnitCost(
        "INT11 MUL (baseline)",
        (
            Component(
                "and-plane 11x11",
                tech.and_gate_bit * SIGNIFICAND_BITS * SIGNIFICAND_BITS,
                reused=True,
                category="mul",
            ),
            Component(
                "10x INT16 adders",
                10 * tech.adder_energy(16),
                reused=True,
                category="adders",
            ),
        ),
    )


def int11_mul_parallel(tech: TechnologyModel = DEFAULT_TECH) -> UnitCost:
    """Parallel INT11 MUL: the baseline's 10 adders reused, 2 INT16 + 4 INT6 added.

    The reused adders run at reduced effective width (narrow lanes);
    the AND plane shrinks to four 11x4 lanes.
    """
    return UnitCost(
        "Parallel INT11 MUL",
        (
            Component(
                "and-plane 4x(11x4)",
                tech.and_gate_bit * SIGNIFICAND_BITS * 4 * 4,
                reused=True,
                category="mul",
            ),
            Component(
                "10x INT16 adders (reused)",
                10 * tech.adder_energy(16, PARALLEL_ADDER_EFFECTIVE_WIDTH),
                reused=True,
                category="adders",
            ),
            Component(
                "2x INT16 adders (extra)",
                2 * tech.adder_energy(16, PARALLEL_ADDER_EFFECTIVE_WIDTH),
                reused=False,
                category="adders",
            ),
            Component(
                "4x INT6 adders (extra)",
                4 * tech.adder_energy(6),
                reused=False,
                category="adders",
            ),
        ),
    )


def fp16_mul_baseline(tech: TechnologyModel = DEFAULT_TECH) -> UnitCost:
    """Baseline FP16 multiplier (Fig. 5(a))."""
    core = int11_mul_baseline(tech)
    return UnitCost(
        "FP16 MUL (baseline)",
        core.components
        + (
            Component("INT5 exponent adder", tech.adder_energy(5), True, "adders"),
            Component("normalization unit", tech.lzc_normalizer, True, "other"),
            Component("rounding unit", tech.rounding_unit, True, "rounding"),
            Component("pipeline registers", tech.register_energy(38), True, "other"),
        ),
    )


def fp_int16_mul_parallel(
    weight_bits: int = 4, tech: TechnologyModel = DEFAULT_TECH
) -> UnitCost:
    """Parallel FP-INT-16 multiplier (Fig. 5(b)); INT4 or INT2 lanes."""
    if weight_bits not in (2, 4):
        raise ConfigError(f"unsupported weight precision INT{weight_bits}")
    num_lanes = 16 // weight_bits
    core = int11_mul_parallel(tech)
    return UnitCost(
        f"Parallel FP-INT-16 MUL (INT{weight_bits})",
        core.components
        + (
            Component("INT5 exponent adder", tech.adder_energy(5), True, "adders"),
            Component("normalization unit", tech.lzc_normalizer, True, "other"),
            Component(
                "rounding unit (reused)", tech.rounding_unit, True, "rounding"
            ),
            Component(
                f"{num_lanes - 1}x rounding units (extra)",
                (num_lanes - 1) * tech.rounding_unit,
                False,
                "rounding",
            ),
            Component("pipeline registers", tech.register_energy(38), True, "other"),
            Component(
                "lane output registers (extra)",
                tech.register_energy(16 * (num_lanes - 1)),
                False,
                "other",
            ),
        ),
    )


def fp16_adder(tech: TechnologyModel = DEFAULT_TECH) -> UnitCost:
    """One FP16 adder: align, 13-bit significand add, renormalize, round."""
    return UnitCost(
        "FP16 adder",
        (
            Component("align shifter", tech.shifter_energy(13, 4), True, "adders"),
            Component("13-bit significand adder", tech.adder_energy(13), True, "adders"),
            Component("normalization unit", tech.lzc_normalizer, True, "other"),
            Component("rounding unit", tech.rounding_unit, True, "rounding"),
            Component("pipeline registers", tech.register_energy(18), True, "other"),
        ),
    )


def dp_unit(
    width: int = 4,
    pack: int = 1,
    dup: int = 1,
    tech: TechnologyModel = DEFAULT_TECH,
) -> UnitCost:
    """A DP unit: ``width`` multipliers + ``dup`` adder-tree ways.

    ``pack == 1`` builds the baseline FP16 DP; ``pack in (4, 8)``
    builds the parallel FP-INT DP with weight precision ``16 / pack``.
    PacQ's extra adder-tree ways and the sum(A) accumulators are tagged
    ``extra`` per Fig. 9.
    """
    if pack == 1:
        mul = fp16_mul_baseline(tech)
    else:
        mul = fp_int16_mul_parallel(16 // pack, tech)
    adder = fp16_adder(tech)

    components: list[Component] = []
    for i in range(width):
        for c in mul.components:
            components.append(
                Component(f"mul{i}/{c.name}", c.energy, c.reused, c.category)
            )
    for way in range(dup):
        reused_way = way == 0  # the baseline ships one tree way
        for j in range(width):
            for c in adder.components:
                components.append(
                    Component(
                        f"tree{way}/add{j}/{c.name}", c.energy, reused_way, c.category
                    )
                )
    if pack > 1:
        # Small accumulators for sum(A) (Eq. (1) fusion) + psum regs.
        components.append(
            Component(
                "sum(A) accumulators",
                tech.adder_energy(16) + tech.register_energy(16),
                False,
                "other",
            )
        )
    name = "FP-16 DP-{w} (baseline)" if pack == 1 else "Parallel FP-INT-16 DP-{w}"
    return UnitCost(name.format(w=width), tuple(components))


def tensor_core(
    width: int = 4,
    pack: int = 1,
    dup: int = 1,
    num_dp: int = 4,
    tech: TechnologyModel = DEFAULT_TECH,
) -> UnitCost:
    """A tensor core: ``num_dp`` DP units + operand buffers (Table I)."""
    dp = dp_unit(width, pack, dup, tech)
    components = []
    for i in range(num_dp):
        for c in dp.components:
            components.append(Component(f"dp{i}/{c.name}", c.energy, c.reused, c.category))
    # Two 3072-bit operand buffers (Table I); charged per active cycle.
    components.append(
        Component("operand buffers", tech.register_energy(128), True, "other")
    )
    kind = "baseline" if pack == 1 else f"PacQ INT{16 // pack}"
    return UnitCost(f"Tensor core ({kind})", tuple(components))
