"""Memory-hierarchy access energies (CACTI substitute).

The paper uses CACTI 7.0 for on-chip SRAM and register-file
statistics.  Offline we substitute a capacity-scaled analytical model:
the per-access energy of an SRAM grows roughly with the square root of
its capacity (wordline/bitline lengths scale with array edge), so

``E(capacity) = E_ref * sqrt(capacity / ref_capacity)``

anchored at published 32-45 nm datapoints (Horowitz ISSCC'14: ~10 pJ
for a 64-bit access to an 8 KB SRAM; DRAM ~1.3-2.6 nJ per 64-bit).
Energies are **per 16-bit beat** because the simulator counts operand
elements.  All figures consume ratios of these energies, so the model
only needs the relative ordering RF << L1 << L2 << DRAM and plausible
spacing, which it inherits from the anchors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Bits per counted access beat (one FP16 operand element / INT16 word).
BEAT_BITS = 16


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy."""

    name: str
    capacity_bytes: int
    energy_per_beat: float  #: pJ-like units per 16-bit access

    def energy(self, beats: float) -> float:
        return self.energy_per_beat * beats


def _scaled_energy(ref_energy: float, ref_bytes: int, capacity_bytes: int) -> float:
    if capacity_bytes <= 0:
        raise ConfigError("capacity must be positive")
    return ref_energy * math.sqrt(capacity_bytes / ref_bytes)


@dataclass(frozen=True)
class MemoryModel:
    """The full RF / L1 / L2 / DRAM energy model.

    Defaults follow Table I: 256 KB register file per SM, 96 KB shared
    L1; a Volta-like 6 MB L2 and HBM-class DRAM close the hierarchy.
    """

    register_file: MemoryLevel
    l1: MemoryLevel
    l2: MemoryLevel
    dram: MemoryLevel

    @classmethod
    def volta_like(
        cls,
        rf_bytes: int = 256 * 1024,
        l1_bytes: int = 96 * 1024,
        l2_bytes: int = 6 * 1024 * 1024,
        l2_bank_bytes: int = 256 * 1024,
    ) -> "MemoryModel":
        """Build the default hierarchy with capacity-scaled energies.

        Both the register file and the L2 are heavily banked on real
        SIMT hardware, so their per-access energy follows the *bank*
        array size (RF: capacity / 16 banks; L2: 256 KB slices), not
        the aggregate capacity — sqrt-scaling a 6 MB monolith would
        overstate L2 access energy several-fold.
        """
        rf_bank = rf_bytes // 16
        return cls(
            register_file=MemoryLevel(
                "RF", rf_bytes, _scaled_energy(1.2, 8 * 1024, rf_bank)
            ),
            l1=MemoryLevel("L1", l1_bytes, _scaled_energy(2.5, 8 * 1024, l1_bytes)),
            l2=MemoryLevel("L2", l2_bytes, _scaled_energy(2.5, 8 * 1024, l2_bank_bytes)),
            dram=MemoryLevel("DRAM", 16 * 1024**3, 320.0),
        )

    def level(self, name: str) -> MemoryLevel:
        key = name.lower()
        mapping = {
            "rf": self.register_file,
            "register_file": self.register_file,
            "l1": self.l1,
            "l2": self.l2,
            "dram": self.dram,
        }
        if key not in mapping:
            raise ConfigError(f"unknown memory level: {name}")
        return mapping[key]

    def traffic_energy(self, beats_by_level: dict[str, float]) -> float:
        """Total energy of a traffic vector ``{level: beats}``."""
        return sum(self.level(name).energy(beats) for name, beats in beats_by_level.items())


#: Default hierarchy used across experiments.
DEFAULT_MEMORY = MemoryModel.volta_like()
