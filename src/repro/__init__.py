"""PacQ reproduction: SIMT microarchitecture for hyper-asymmetric GEMMs.

Python reproduction of *"PacQ: A SIMT Microarchitecture for Efficient
Dataflow in Hyper-asymmetric GEMMs"* (Yin, Li, Panda - DAC 2025).

Sub-packages:

* :mod:`repro.fp` - bit-exact IEEE-754 binary16 arithmetic.
* :mod:`repro.quant` - RTN PTQ, group geometry, ``P(Bx)y`` packing.
* :mod:`repro.multiplier` - the parallel FP-INT multiplier + DP units.
* :mod:`repro.energy` - analytical 32 nm cost model (DC/CACTI stand-in).
* :mod:`repro.simt` - trace-driven octet / tensor-core / SM simulator.
* :mod:`repro.engine` - pluggable GEMM execution engine
  (plan/execute split, backend registry).
* :mod:`repro.core` - architectures, functional GEMM, metrics,
  experiment runners for every paper table and figure.
* :mod:`repro.harness` - experiment orchestration: declarative sweeps,
  content-addressed result caching, serial/parallel execution,
  JSON/CSV/EXPERIMENTS.md artifact emission.
* :mod:`repro.mixgemm` - Mix-GEMM (binary segmentation) comparator.
* :mod:`repro.llm` - synthetic-LM substrate for Table II.
* :mod:`repro.model` - model-level quantization policies, directory
  checkpoints, and KV-cached inference sessions (the serving API).

Quickstart::

    import numpy as np
    from repro.quant import GroupSpec, quantize_rtn
    from repro.core import hyper_gemm, pacq, evaluate, fig10_workload

    weights = np.random.default_rng(0).normal(size=(4096, 4096))
    qweights = quantize_rtn(weights, bits=4, group=GroupSpec(128))
    activations = np.random.default_rng(1).normal(size=(16, 4096))
    outputs = hyper_gemm(activations, qweights)          # PacQ compute path
    result = evaluate(pacq(4), fig10_workload())          # PacQ cost model
"""

from repro import (
    core,
    energy,
    engine,
    fp,
    harness,
    llm,
    mixgemm,
    model,
    multiplier,
    quant,
    simt,
)
from repro.core import evaluate, hyper_gemm, pacq, standard_dequant
from repro.errors import (
    ConfigError,
    EncodingError,
    QuantizationError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "EncodingError",
    "QuantizationError",
    "ReproError",
    "SimulationError",
    "__version__",
    "core",
    "energy",
    "engine",
    "evaluate",
    "fp",
    "harness",
    "hyper_gemm",
    "llm",
    "mixgemm",
    "model",
    "multiplier",
    "pacq",
    "quant",
    "simt",
    "standard_dequant",
]
