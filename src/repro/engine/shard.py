"""Column-wise sharding of quantized matrices for tensor parallelism.

A quantized ``[k, n]`` matrix is split along ``n`` into ``world``
contiguous column spans, each a self-contained
:class:`~repro.quant.rtn.QuantizedMatrix` that plans and executes like
any other.  Two invariants make the split safe:

* **Group alignment.** Scales and zeros live on a ``[gk, gn]`` group
  grid, so span boundaries must fall on multiples of ``group.n`` —
  :func:`shard_spans` distributes whole *column groups*, never splits
  one.  (Group-aligned spans also preserve the pack alignment the
  ``bitexact`` backends check: ``n % (16 // bits) == 0`` holds for
  every shard whenever ``group.n`` is a multiple of the pack factor.)
* **Bit-identity.** Every backend computes output element ``[i, j]``
  from activation row ``i`` and column ``j``'s codes/scales alone,
  reducing only over ``k`` with the einsum-stable ``_contract``
  discipline.  Sharding along ``n`` therefore changes *which process*
  computes a column, never *how* — concatenating the per-rank partial
  products ``[m, n_r]`` back in rank order reproduces the unsharded
  output bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.quant.rtn import QuantizedMatrix


def shard_spans(n_dim: int, group_n: int, world: int) -> list[tuple[int, int]]:
    """Group-aligned column spans ``[(lo, hi), ...]`` for each rank.

    The ``n_dim // group_n`` column groups are distributed as evenly as
    possible (earlier ranks receive the remainder), so every rank gets
    at least one group and span widths differ by at most ``group_n``.
    """
    if world < 1:
        raise QuantizationError(f"shard world must be >= 1, got {world}")
    if n_dim % group_n != 0:
        raise QuantizationError(
            f"n_dim {n_dim} is not a multiple of group_n {group_n}"
        )
    gn = n_dim // group_n
    if world > gn:
        raise QuantizationError(
            f"cannot shard {gn} column group(s) across {world} workers"
        )
    base, extra = divmod(gn, world)
    spans: list[tuple[int, int]] = []
    lo = 0
    for rank in range(world):
        hi = lo + (base + (1 if rank < extra else 0)) * group_n
        spans.append((lo, hi))
        lo = hi
    return spans


def shard_matrix(qm: QuantizedMatrix, world: int) -> list[QuantizedMatrix]:
    """Split ``qm`` column-wise into ``world`` quantized shards.

    Each shard keeps the original group geometry, bits, and scheme;
    codes/scales/zeros are sliced contiguously so rank ``r`` owns
    output columns ``spans[r]``.  Concatenating the shards' dequantized
    (or GEMM-partial) outputs in rank order reconstructs the original.
    """
    spans = shard_spans(qm.n_dim, qm.group.n, world)
    shards = []
    for lo, hi in spans:
        g_lo, g_hi = lo // qm.group.n, hi // qm.group.n
        shards.append(
            QuantizedMatrix(
                codes=np.ascontiguousarray(qm.codes[:, lo:hi]),
                scales=np.ascontiguousarray(qm.scales[:, g_lo:g_hi]),
                zeros=np.ascontiguousarray(qm.zeros[:, g_lo:g_hi]),
                bits=qm.bits,
                group=qm.group,
                symmetric=qm.symmetric,
            )
        )
    return shards
