"""Backend registry of the GEMM execution engine.

A *backend* is a named strategy for executing a planned
hyper-asymmetric GEMM (:class:`repro.engine.plan.GemmPlan`).  The
registry is the engine's extension seam: alternative numerics,
tiled/multithreaded execution or accelerator offloads plug in by
registering a new backend — no changes to the dispatcher or callers.

Registering a custom backend::

    from repro.engine import register_backend

    @register_backend("mybackend", description="my execution strategy")
    def my_execute(a, plan):
        # a: [m, k] float activations; plan: GemmPlan
        return ...  # [m, n] float64 outputs

Backends that route products through PacQ's transformed-weight
datapath inherit its FP16 saturation edge (``|A| > ~63`` overflows the
transformed products); mark backends that do *not* go through the
transform with ``transformed=False`` so tests and tooling know the
edge does not apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import QuantizationError

#: Execution signature: ``(activations, plan) -> [m, n] float64``.
ExecuteFn = Callable[[np.ndarray, "GemmPlan"], np.ndarray]  # noqa: F821


@dataclass(frozen=True)
class Backend:
    """A registered GEMM execution strategy.

    Attributes:
        name: registry key (also the ``mode=`` string of
            :func:`repro.core.gemm.hyper_gemm`).
        execute: the execution function.
        description: one-line human-readable summary.
        transformed: whether products run through the transformed-weight
            (``B + 1032``) datapath, i.e. whether the FP16 saturation
            edge ``|A| > ~63`` applies.
    """

    name: str
    execute: ExecuteFn = field(repr=False)
    description: str = ""
    transformed: bool = True


_REGISTRY: dict[str, Backend] = {}


def register_backend(
    name: str,
    execute: ExecuteFn | None = None,
    *,
    description: str = "",
    transformed: bool = True,
    overwrite: bool = False,
):
    """Register an execution backend; usable directly or as a decorator.

    Args:
        name: unique backend name.
        execute: ``(a, plan) -> out`` function.  Omit to use the call
            as a decorator.
        description: one-line summary (shown by ``python -m repro backends``).
        transformed: see :class:`Backend`.
        overwrite: allow replacing an existing registration.

    Returns:
        The :class:`Backend` record (direct call) or a decorator.

    Raises:
        QuantizationError: on duplicate registration without
            ``overwrite``.
    """
    if execute is None:

        def decorator(fn: ExecuteFn) -> ExecuteFn:
            register_backend(
                name,
                fn,
                description=description,
                transformed=transformed,
                overwrite=overwrite,
            )
            return fn

        return decorator

    if not overwrite and name in _REGISTRY:
        raise QuantizationError(f"backend {name!r} is already registered")
    backend = Backend(
        name=name,
        execute=execute,
        description=description,
        transformed=transformed,
    )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend registration (mainly for tests/extensions)."""
    if name not in _REGISTRY:
        raise QuantizationError(f"unknown backend: {name!r}")
    del _REGISTRY[name]


def get_backend(name: str) -> Backend:
    """Look up a backend by name.

    Raises:
        QuantizationError: for unknown names.  The message mirrors the
            pre-engine ``hyper_gemm`` error so callers keep seeing the
            same failure mode.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise QuantizationError(f"unknown mode: {name!r}") from None


def list_backends() -> list[Backend]:
    """All registered backends, sorted by name."""
    return sorted(_REGISTRY.values(), key=lambda b: b.name)


def backend_names() -> list[str]:
    """Sorted registered backend names."""
    return sorted(_REGISTRY)
