"""Built-in execution backends of the GEMM engine.

Four strategies over one :class:`repro.engine.plan.GemmPlan`:

* ``reference`` — dequantize-then-matmul baseline (no transformed
  datapath, so no FP16 saturation edge);
* ``fast`` — the seed's vectorized per-k-group path, ported onto
  plans (products FP16-rounded, float64 wide accumulation);
* ``batched`` — one reshaped product tensor over
  ``[m, gk, group_k] x [gk, group_k, n]`` contracted with a single
  einsum, plus vectorized scale/adjust application.  Bit-for-bit
  identical to ``fast`` (see the numerics notes inline);
* ``bitexact`` — every product through the bit-level parallel
  multiplier, vectorized over numpy integer lanes by
  :mod:`repro.fp.vec`; the datapath validator, now fast enough for
  real LLM layer shapes;
* ``bitexact-scalar`` — the original per-element Python loop over
  :func:`repro.multiplier.parallel.parallel_fp_int_mul`; kept as the
  oracle the vectorized validator is tested against.

All transformed backends share the plan's precomputed slabs, so the
per-call cost is purely the product/accumulate work.
"""

from __future__ import annotations

import numpy as np

from repro.engine.plan import GemmPlan
from repro.engine.registry import register_backend
from repro.errors import QuantizationError
from repro.fp import fp16, vec
from repro.multiplier.parallel import parallel_fp_int_mul, rebias_offset


@register_backend(
    "reference",
    description="dequantize-to-FP16 then matmul (baseline flow, no transform)",
    transformed=False,
)
def execute_reference(a: np.ndarray, plan: GemmPlan) -> np.ndarray:
    """The baseline flow: FP16 activations times FP16-rounded weights."""
    a16 = np.asarray(a, dtype=np.float16).astype(np.float64)
    # detlint: ignore[D001]: the reference backend is the BLAS baseline the
    # engine is measured against — deliberately outside the bit-exact envelope.
    return a16 @ plan.w16


@register_backend(
    "fast",
    description="vectorized per-k-group transformed products (seed path)",
)
def execute_fast(a: np.ndarray, plan: GemmPlan) -> np.ndarray:
    """The seed's vectorized path, reading precomputed slabs off the plan."""
    a16 = np.asarray(a, dtype=np.float16)
    a_wide = a16.astype(np.float64)
    m = a16.shape[0]
    out = np.zeros((m, plan.n_dim), dtype=np.float64)

    for gi in range(plan.gk):
        ks = slice(gi * plan.group_k, (gi + 1) * plan.group_k)
        # Transformed-weight products, FP16-rounded elementwise.  The
        # transformed weights (1024..2047 + code) are exact in FP16, so
        # float16 multiply here is bit-identical to the parallel
        # multiplier (verified against the bitexact path in tests).
        with np.errstate(over="ignore"):  # FP16 saturation is modelled
            prods = (
                a16[:, ks, None].astype(np.float32)
                * plan.t_blocked[gi][None, :, :]
            ).astype(np.float16)
        # detlint: ignore[D003]: reduces the k-group axis, whose length is
        # fixed by the plan — the order is the same for every batch row.
        s1 = prods.astype(np.float64).sum(axis=1)  # [m, n]
        # detlint: ignore[D003]: same k-group axis argument as s1 above.
        s_a = a_wide[:, ks].sum(axis=1, keepdims=True)  # the sum(A) accumulator
        corrected = s1 - plan.offset * s_a  # Eq. (1): sum(A * signed)
        out += plan.scale_rows[gi][None, :] * (
            corrected + plan.adjust_rows[gi][None, :] * s_a
        )
    return out


#: ``group_k`` ceiling for the exact-contraction argument below: sums of
#: up to 4096 FP16 values stay exact in float64 (<= 2**29 magnitude at
#: 2**-24 granularity = 53 significand bits).
_BATCHED_MAX_GROUP_K = 4096

#: Ceiling on the cached channel-indicator operand (``channels * 8``
#: bytes per weight element: 128 B for INT4, 32 B for INT2).  Matrices
#: whose indicator would exceed this take the ``fast`` slab path
#: instead of trading this much resident memory for the BLAS
#: contraction.
_BATCHED_MAX_ONEHOT_BYTES = 1 << 30


@register_backend(
    "batched",
    description="batched channel-indicator contraction (bit-exact with fast)",
)
def execute_batched(a: np.ndarray, plan: GemmPlan) -> np.ndarray:
    """All k-groups in one reshaped BLAS contraction, no Python loops.

    A transformed weight takes only ``channels = 2**bits`` distinct
    values (``1024 + c``), so every FP16-rounded product appears in the
    small table ``table[m, k, c] = fp16(a[m, k] * (1024 + c))``.  The
    per-group product sums of ``fast`` are then one batched einsum
    ``[gk, m, group_k * channels] x [gk, group_k * channels, n]``
    against the plan's 0/1 channel indicator (executed via
    ``np.matmul`` -> BLAS), followed by a vectorized scale/adjust
    application over the ``[gk, m, n]`` group partials.

    Bit-for-bit identical to ``fast``:

    * the table entries are the same float32-multiply-then-cast
      FP16-rounded products ``fast`` computes;
    * each contraction sums ``group_k`` FP16-exact float64 values (the
      indicator zeros add exactly); such sums fit float64's 53-bit
      significand for ``group_k <= 4096``, so BLAS reassociation
      cannot change the result;
    * the final reduction over ``gk`` is a strided float64 sum, which
      NumPy evaluates in index order — the same left-to-right
      accumulation as ``fast``'s ``out +=`` loop (pinned by the
      cross-backend property tests).

    Activations large enough to saturate FP16 (``|A| * t_max`` at the
    overflow boundary) would put ``inf`` into the table, and
    ``inf * 0`` in the contraction is NaN rather than the datapath's
    saturating ``inf`` — those calls, group extents beyond the
    exactness ceiling, and matrices whose indicator operand would
    exceed the memory ceiling all take the ``fast`` slab path instead
    (identical results, including the documented saturation
    behaviour).
    """
    a16 = np.asarray(a, dtype=np.float16)
    a32 = a16.astype(np.float32)
    t_max = float(plan.lut32[-1])
    amax = float(np.abs(a32).max(initial=0.0))
    if (
        plan.group_k > _BATCHED_MAX_GROUP_K
        or plan.onehot_nbytes > _BATCHED_MAX_ONEHOT_BYTES
        or amax * t_max >= 65500.0
    ):
        return execute_fast(a, plan)

    m = a16.shape[0]
    c = plan.channels
    # Every possible FP16-rounded product of this call: [m, k, channels].
    table = (a32[:, :, None] * plan.lut32[None, None, :]).astype(np.float16)
    table_blk = np.ascontiguousarray(
        table.astype(np.float64)
        .reshape(m, plan.gk, plan.group_k * c)
        .transpose(1, 0, 2)
    )  # [gk, m, group_k * channels]
    # detlint: ignore[D001]: indicator contraction — the selected FP16-exact
    # products sum exactly in float64 (group_k <= _BATCHED_MAX_GROUP_K is
    # enforced below), so BLAS blocking cannot change the bits.
    s1 = np.matmul(table_blk, plan.onehot)  # [gk, m, n] group partial sums
    a_blk = a16.astype(np.float64).reshape(m, plan.gk, plan.group_k)
    # detlint: ignore[D003]: reduces the k-group axis, whose length is fixed
    # by the plan — the order is the same for every batch row.
    s_a = a_blk.sum(axis=2).T[:, :, None]  # [gk, m, 1] sum(A) accumulators
    corrected = s1 - plan.offset * s_a  # Eq. (1): sum(A * signed)
    contrib = plan.scale_rows[:, None, :] * (
        corrected + plan.adjust_rows[:, None, :] * s_a
    )
    # detlint: ignore[D003]: reduces the gk group axis, whose length is fixed
    # by the plan alone — batch-independent; identity with the fast backend's
    # sequential accumulation is asserted bit-for-bit in tests.
    return contrib.sum(axis=0)


def _check_pack_alignment(plan: GemmPlan) -> None:
    pack_factor = 16 // plan.bits
    if plan.n_dim % pack_factor:
        raise QuantizationError(
            f"n={plan.n_dim} not divisible by pack factor {pack_factor}"
        )


def _group_sum_like_oracle(blocked: np.ndarray) -> np.ndarray:
    """Sum the middle (group_k) axis of ``[gk, group_k, ...]`` blocks.

    Up to 4096 FP16-exact float64 terms sum exactly (53-bit
    significand), so numpy's pairwise reduction is bit-identical to any
    order and the fast ``sum`` applies.  Beyond that the sums can
    round, so match the scalar oracle's association order exactly: one
    add per k element, in k order (inf/NaN propagation is
    order-independent either way).
    """
    if blocked.shape[1] <= _BATCHED_MAX_GROUP_K:
        # detlint: ignore[D003]: exact — <= 4096 FP16-exact float64 terms
        # (docstring argument), so no summation order can round.
        return blocked.sum(axis=1)
    total = blocked[:, 0].copy()
    for kk in range(1, blocked.shape[1]):
        total += blocked[:, kk]
    return total


@register_backend(
    "bitexact",
    description="vectorized bit-level parallel FP-INT multiplier (datapath validator)",
)
def execute_bitexact(a: np.ndarray, plan: GemmPlan) -> np.ndarray:
    """Every product through the bit-level multiplier, vectorized.

    The kernel evaluates, for each activation, all ``2**bits`` lanes of
    the transformed-weight datapath at once through the vectorized
    parallel multiplier (:func:`repro.fp.vec.parallel_products`) — a
    ``[m, k, channels]`` table of product bits — then gathers each
    weight's channel into the ``[k, n]`` product block and group-sums
    it.  Every ``(k, n)`` product's bits therefore come from a datapath
    evaluation with exactly those operands; per-element agreement with
    the scalar oracle loop (``bitexact-scalar``) is pinned by the
    engine tests.  The only Python-level iteration left is the per-row
    gather (bounding the float64 product block to ``[k, n]``) and the
    per-k-group accumulation, which mirrors ``fast``'s group order.
    """
    a16 = np.asarray(a, dtype=np.float16)
    _check_pack_alignment(plan)
    m = a16.shape[0]
    a_bits = vec.from_float(a16.astype(np.float64))  # [m, k] raw patterns
    a_wide = vec.to_float(a_bits)
    all_codes = np.arange(plan.channels, dtype=np.int64) - rebias_offset(plan.bits)
    # All lanes of the datapath for every activation element: the
    # [m, k, channels] bit table covers every product of this call.
    table = vec.to_float(
        vec.parallel_products(a_bits[:, :, None], all_codes[None, None, :], plan.bits)
    )
    out = np.zeros((m, plan.n_dim), dtype=np.float64)
    k_rows = np.arange(plan.k_dim)[:, None]
    for i in range(m):
        products = table[i][k_rows, plan.unsigned]  # [k, n] lane values
        s1 = _group_sum_like_oracle(
            products.reshape(plan.gk, plan.group_k, plan.n_dim)
        )
        s_a = _group_sum_like_oracle(
            a_wide[i].reshape(plan.gk, plan.group_k, 1)
        )[:, 0]
        for gi in range(plan.gk):
            corrected = s1[gi] - plan.offset * s_a[gi]
            out[i, :] += plan.scale_rows[gi] * (
                corrected + plan.adjust_rows[gi] * s_a[gi]
            )
    return out


@register_backend(
    "bitexact-scalar",
    description="per-element scalar parallel multiplier (oracle for bitexact)",
)
def execute_bitexact_scalar(a: np.ndarray, plan: GemmPlan) -> np.ndarray:
    """Every product through the scalar bit-level multiplier (slow, exact).

    The original quadruple-nested validator loop, kept as the oracle
    the vectorized ``bitexact`` backend is checked against.
    """
    a16 = np.asarray(a, dtype=np.float16)
    _check_pack_alignment(plan)
    pack_factor = 16 // plan.bits
    m = a16.shape[0]
    out = np.zeros((m, plan.n_dim), dtype=np.float64)

    for i in range(m):
        for gi in range(plan.gk):
            ks = range(gi * plan.group_k, (gi + 1) * plan.group_k)
            s_a = 0.0
            s1 = np.zeros(plan.n_dim, dtype=np.float64)
            for k in ks:
                a_bits = fp16.from_float(a16[i, k])
                s_a += fp16.to_float(a_bits)
                for nw in range(plan.n_dim // pack_factor):
                    codes = [
                        plan.signed[k, nw * pack_factor + j]
                        for j in range(pack_factor)
                    ]
                    result = parallel_fp_int_mul(a_bits, codes, plan.bits)
                    for j, bits in enumerate(result.products):
                        s1[nw * pack_factor + j] += fp16.to_float(bits)
            corrected = s1 - plan.offset * s_a
            out[i, :] += plan.scale_rows[gi] * (
                corrected + plan.adjust_rows[gi] * s_a
            )
    return out
