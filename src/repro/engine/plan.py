"""GEMM planning: one-time per-weight-matrix state for repeated execution.

The seed implementation of :func:`repro.core.gemm.hyper_gemm` re-derived
everything on every call — signed codes, transformed-weight slabs, the
folded ``rebias - zero`` group adjustments — so workloads that execute
the *same* quantized matrix thousands of times (per-token decoding,
perplexity sweeps) paid planning cost on every token.  ``GemmPlan``
hoists all of that into a one-time *plan* step, mirroring the
prepare/execute split of the frameworks the paper positions against
(AutoGPTQ, AWQ): quantized weights are packed/laid out once, then the
hot loop only executes.

Precomputed (eagerly, at plan time):

* ``signed`` — int16 signed codes (the representation PacQ packs);
* ``t_blocked`` — float32 transformed weights ``signed + offset``
  reshaped to ``[gk, group_k, n]``, ready for vectorized FP16-rounded
  products;
* ``adjust`` / ``adjust_rows`` — the folded ``rebias - zero`` group
  adjustment, as a ``[gk, gn]`` grid and expanded to ``[gk, n]`` rows;
* ``scale_rows`` — the scale grid expanded to ``[gk, n]`` rows.

Computed lazily (first use, then cached on the plan):

* ``w16`` — FP16-rounded dequantized weights (the ``reference``
  backend's operand);
* ``packed`` — the ``P(Bx)n`` packed storage layout.

Plans hold the quantized matrix only weakly, so caching plans does not
extend weight lifetimes; :func:`plan_gemm` memoizes one plan per live
``QuantizedMatrix`` and evicts the entry when the matrix is collected.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.errors import QuantizationError
from repro.multiplier.parallel import rebias_offset, transform_offset
from repro.quant.groups import GroupSpec
from repro.quant.packing import PackDim, PackSpec, pack
from repro.quant.rtn import QuantizedMatrix


class GemmPlan:
    """Precomputed execution state for one quantized weight matrix.

    Build via :func:`plan_gemm` (cached) or directly (uncached); then
    run :meth:`execute` with any registered backend name.
    """

    def __init__(self, qm: QuantizedMatrix) -> None:
        if qm.bits not in (2, 4):
            raise QuantizationError(
                f"hyper_gemm requires INT4/INT2 weights, got INT{qm.bits}"
            )
        self.bits: int = qm.bits
        self.symmetric: bool = qm.symmetric
        self.k_dim: int = qm.k_dim
        self.n_dim: int = qm.n_dim
        self.group: GroupSpec = qm.group
        self.gk, self.gn = qm.group.grid_shape(qm.k_dim, qm.n_dim)
        self.group_k: int = qm.group.k
        self.group_n: int = qm.group.n
        #: Additive constant of Eq. (1): 1032 for INT4, 1026 for INT2.
        self.offset: float = float(transform_offset(qm.bits))
        #: Distinct transformed-weight values: 16 for INT4, 4 for INT2.
        self.channels: int = 1 << qm.bits

        self.signed: np.ndarray = qm.signed_codes()
        #: Unsigned (re-biased) codes, the channel index of each weight.
        self.unsigned: np.ndarray = (
            self.signed + rebias_offset(qm.bits)
        ).astype(np.uint8)
        #: All possible transformed-weight values, float32-exact:
        #: ``lut32[c] == 1024 + c`` and ``t[k, n] == lut32[unsigned[k, n]]``.
        self.lut32: np.ndarray = (
            1024.0 + np.arange(self.channels, dtype=np.float64)
        ).astype(np.float32)
        # Transformed weights are integers in [1024, 1024 + 2**bits),
        # exact in float32, pre-blocked per k-group for the product
        # kernels: t_blocked[gi] == (signed[ks, :] + offset) for the
        # gi-th k-group slice.
        self.t_blocked: np.ndarray = (
            (self.signed.astype(np.float64) + self.offset)
            .astype(np.float32)
            .reshape(self.gk, self.group_k, self.n_dim)
        )
        self.scales: np.ndarray = qm.scales
        self.zeros: np.ndarray = qm.zeros
        if qm.symmetric:
            self.adjust: np.ndarray = np.zeros_like(qm.zeros)
        else:
            self.adjust = rebias_offset(qm.bits) - qm.zeros
        # Row-expanded [gk, n] grids so scale/adjust application needs
        # no per-group indexing.
        self.scale_rows: np.ndarray = np.repeat(self.scales, self.group_n, axis=1)
        self.adjust_rows: np.ndarray = np.repeat(self.adjust, self.group_n, axis=1)

        self._qm_ref = weakref.ref(qm)
        self._w16: np.ndarray | None = None
        self._packed = None
        self._onehot: np.ndarray | None = None
        #: Executions per activation row count ``m``.  Nothing in the
        #: plan depends on ``m``, so one plan serves every batch size;
        #: a serving workload whose batch grows and shrinks as requests
        #: join and retire shows up here as many distinct keys against
        #: a single planning cost (see :meth:`row_stats`).
        self.executions: dict[int, int] = {}
        #: Executions per ``(phase, m)``: the same histogram split by
        #: the caller-declared pipeline phase (``"prefill"`` /
        #: ``"decode"`` / ``"verify"``).  Needed because the total
        #: histogram cannot distinguish a k+1-row speculative verify
        #: step from a batch of k+1 single-token decodes — both are one
        #: execution at ``m = k + 1``.
        self.phase_executions: dict[tuple[str, int], int] = {}

    # -- lazily derived state ------------------------------------------------

    @property
    def w16(self) -> np.ndarray:
        """FP16-rounded dequantized weights as float64 (``reference``).

        Bit-identical to ``fp16(qm.dequantize())``: the dequantized
        value ``scale * (code - zero)`` equals
        ``scale * (signed + adjust)`` exactly (all-integer operands,
        exact in float64).
        """
        if self._w16 is None:
            scale_full = np.repeat(self.scale_rows, self.group_k, axis=0)
            adjust_full = np.repeat(self.adjust_rows, self.group_k, axis=0)
            w = (self.signed.astype(np.float64) + adjust_full) * scale_full
            self._w16 = w.astype(np.float16).astype(np.float64)
        return self._w16

    @property
    def onehot_nbytes(self) -> int:
        """Size the :attr:`onehot` operand would occupy, without building it."""
        return self.k_dim * self.n_dim * self.channels * 8

    @property
    def onehot(self) -> np.ndarray:
        """Channel-indicator operand of the ``batched`` backend.

        ``onehot[gi, kk * channels + c, n]`` is 1.0 iff weight
        ``[gi * group_k + kk, n]`` has unsigned code ``c``, so the
        batched contraction ``table @ onehot`` selects and group-sums
        exactly one FP16-rounded product per (k, n) — a BLAS matmul in
        place of the per-group Python loops.

        Sized ``channels * 8`` bytes per weight element (128 B for
        INT4, 32 B for INT2); built lazily on first ``batched``
        execution and cached on the plan.
        """
        if self._onehot is None:
            c = self.channels
            onehot = np.zeros(
                (self.gk, self.group_k * c, self.n_dim), dtype=np.float64
            )
            k_idx = np.arange(self.k_dim)[:, None]
            gi = np.broadcast_to(k_idx // self.group_k, self.unsigned.shape)
            row = (k_idx % self.group_k) * c + self.unsigned
            col = np.broadcast_to(
                np.arange(self.n_dim)[None, :], self.unsigned.shape
            )
            onehot[gi, row, col] = 1.0
            self._onehot = onehot
        return self._onehot

    @property
    def packed(self):
        """The ``P(Bx)n`` packed storage layout (PacQ's convention)."""
        if self._packed is None:
            self._packed = pack(self.signed, PackSpec(self.bits, PackDim.N))
        return self._packed

    # -- execution -----------------------------------------------------------

    def validate_activations(self, a: np.ndarray) -> None:
        """Reject activations that do not match the planned weights."""
        if a.ndim != 2 or a.shape[1] != self.k_dim:
            raise QuantizationError(
                f"activation shape {a.shape} does not match weights "
                f"[{self.k_dim}, {self.n_dim}]"
            )

    def execute(
        self,
        a: np.ndarray,
        backend: str = "batched",
        phase: str | None = None,
    ) -> np.ndarray:
        """Run ``C = A @ dequant(B)`` through a registered backend.

        Args:
            a: ``[m, k]`` activations (rounded to FP16 on entry).
            backend: a registered backend name
                (:func:`repro.engine.backend_names`).
            phase: optional pipeline phase label (``"prefill"`` /
                ``"decode"`` / ``"verify"``) recorded alongside the row
                count, so :meth:`row_stats` can report the histogram of
                one phase in isolation.  Unlabelled executions count
                only toward the total.

        Returns:
            ``[m, n]`` float64 outputs (FP32-accumulate semantics).
        """
        from repro.engine.registry import get_backend

        a = np.asarray(a)
        self.validate_activations(a)
        m = a.shape[0]
        self.executions[m] = self.executions.get(m, 0) + 1
        if phase is not None:
            key = (phase, m)
            self.phase_executions[key] = self.phase_executions.get(key, 0) + 1
        return get_backend(backend).execute(a, self)

    @property
    def execute_count(self) -> int:
        """Total executions of this plan (any row count)."""
        return sum(self.executions.values())

    def row_stats(self, phase: str | None = None) -> dict[int, int]:
        """``{m: executions}`` histogram over activation row counts.

        The plan-reuse-across-batch-sizes signal: a continuous-batching
        server whose active batch varies per step still executes this
        one plan, so the histogram spans many ``m`` values while the
        plan was built exactly once.

        With ``phase`` given, only executions labelled with that phase
        are counted (see :meth:`execute`): ``row_stats("verify")`` is
        the shape histogram of speculative verify passes alone, which
        the total cannot expose — a k+1-row verify and a batch of k+1
        single-token decodes land on the same ``m`` bucket.
        """
        if phase is None:
            return dict(self.executions)
        return {
            m: count
            for (p, m), count in sorted(self.phase_executions.items())
            if p == phase
        }

    def phases(self) -> dict[str, dict[int, int]]:
        """Per-phase ``{phase: {m: executions}}`` view of the histogram."""
        out: dict[str, dict[int, int]] = {}
        for (p, m), count in sorted(self.phase_executions.items()):
            out.setdefault(p, {})[m] = count
        return out

    def matches(self, qm: QuantizedMatrix) -> bool:
        """Whether this plan was built from exactly this matrix object."""
        return self._qm_ref() is qm


#: Plan memo: id(qm) -> plan.  Plans reference their matrix weakly and
#: a finalizer evicts the entry when the matrix is collected, so the
#: cache cannot leak weights or resurrect a recycled id.
_PLAN_CACHE: dict[int, GemmPlan] = {}

#: Lifetime counters for the memo (reported by ``pacq-repro sweep``):
#: ``builds`` counts plans constructed, ``reuses`` counts memo hits.
_PLAN_STATS = {"builds": 0, "reuses": 0}


def plan_gemm(qm: QuantizedMatrix) -> GemmPlan:
    """Plan a quantized matrix for execution, memoized per live object.

    Repeated calls with the same ``QuantizedMatrix`` return the same
    :class:`GemmPlan`, so per-token workloads (and the backward-compat
    :func:`repro.core.gemm.hyper_gemm` wrapper) plan once and execute
    many times.
    """
    key = id(qm)
    plan = _PLAN_CACHE.get(key)
    if plan is not None and plan.matches(qm):
        _PLAN_STATS["reuses"] += 1
        return plan
    plan = GemmPlan(qm)
    _PLAN_STATS["builds"] += 1
    _PLAN_CACHE[key] = plan
    weakref.finalize(qm, _PLAN_CACHE.pop, key, None)
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Lifetime ``{"builds": ..., "reuses": ...}`` counters of the memo.

    Sweeps that hold their quantized matrices across jobs (e.g. the
    harness's ``table2`` backend x group-spec grid) show ``reuses``
    growing while ``builds`` stays at one per distinct matrix — the
    cross-job plan-reuse signal ``pacq-repro sweep`` prints.
    """
    return dict(_PLAN_STATS)


def clear_plan_cache() -> None:
    """Drop all memoized plans and reset the lifetime counters."""
    _PLAN_CACHE.clear()
    _PLAN_STATS["builds"] = 0
    _PLAN_STATS["reuses"] = 0


def plan_cache_size() -> int:
    """Number of currently memoized plans."""
    return len(_PLAN_CACHE)


def plan_histograms(plans: dict) -> dict[str, dict]:
    """Serializable ``{site: {"rows": ..., "phases": ...}}`` snapshot.

    Collects :meth:`GemmPlan.row_stats` / :meth:`GemmPlan.phases` from
    every plan in ``plans`` (any mapping of site name to an object with
    those methods) into plain dicts a worker process can ship over a
    pipe; :func:`merge_plan_histograms` folds snapshots from many
    workers into one fleet-level histogram.
    """
    return {
        name: {
            "rows": {int(m): int(c) for m, c in plan.row_stats().items()},
            "phases": {
                phase: {int(m): int(c) for m, c in hist.items()}
                for phase, hist in plan.phases().items()
            },
        }
        for name, plan in plans.items()
    }


def plan_dims(plans: dict) -> dict[str, dict[str, int | None]]:
    """Serializable ``{site: {"n": ..., "k": ..., "bits": ...}}`` dims.

    The fixed-per-site companion of :func:`plan_histograms`: where the
    histogram snapshot carries what *varies* per execution (the ``m``
    counts), this carries what does not — each site's weight dimensions
    and storage precision, which a workload replay
    (:mod:`repro.codesign`) needs to rebuild full GEMM shapes.  Plan
    views without a ``bits`` attribute (tensor-shard proxies) report
    ``None``; callers fall back to telemetry-derived precision.
    """
    return {
        name: {
            "n": int(plan.n_dim),
            "k": int(plan.k_dim),
            "bits": None if getattr(plan, "bits", None) is None
            else int(plan.bits),
        }
        for name, plan in plans.items()
    }


def merge_plan_histograms(into: dict[str, dict], fresh: dict[str, dict]) -> dict:
    """Fold one :func:`plan_histograms` snapshot into ``into`` (returned).

    Row counts add per ``m`` bucket; sites or phases absent from
    ``into`` are copied.  ``into`` is mutated and returned for chaining
    across a worker fleet.
    """
    for name, snap in fresh.items():
        site = into.setdefault(name, {"rows": {}, "phases": {}})
        for m, count in snap["rows"].items():
            site["rows"][m] = site["rows"].get(m, 0) + count
        for phase, hist in snap["phases"].items():
            merged = site["phases"].setdefault(phase, {})
            for m, count in hist.items():
                merged[m] = merged.get(m, 0) + count
    return into
