"""Pluggable GEMM execution engine: plan once, execute many times.

The engine splits PacQ's hyper-asymmetric GEMM into two steps:

1. **Plan** (:func:`plan_gemm` / :class:`GemmPlan`) — one-time,
   per-weight-matrix: signed codes, transformed-weight slabs, folded
   ``rebias - zero`` group adjustments, expanded scale grids, and
   (lazily) the dequantized reference operand and the packed layout.
2. **Execute** (:meth:`GemmPlan.execute`) — the repeated hot path,
   dispatched through a named backend from the registry.

Built-in backends (:mod:`repro.engine.backends`):

========== ==================================================== ===========
name       strategy                                             transformed
========== ==================================================== ===========
reference  dequantize to FP16, then matmul (baseline flow)      no
fast       vectorized per-k-group transformed products (seed)   yes
batched    single-einsum batched products, bit-exact with fast  yes
bitexact   bit-level parallel multiplier (validator, slow)      yes
========== ==================================================== ===========

Typical use::

    from repro.engine import plan_gemm

    plan = plan_gemm(qm)              # cached per QuantizedMatrix
    for step in range(tokens):
        out = plan.execute(a[step])   # backend="batched" by default

Custom backends register through :func:`register_backend` (see
:mod:`repro.engine.registry`); :func:`repro.core.gemm.hyper_gemm`
remains the stable one-shot wrapper and accepts any registered backend
name as its ``mode``.
"""

from repro.engine import backends as _backends  # noqa: F401  (registers built-ins)
from repro.engine.plan import (
    GemmPlan,
    clear_plan_cache,
    merge_plan_histograms,
    plan_cache_size,
    plan_cache_stats,
    plan_dims,
    plan_gemm,
    plan_histograms,
)
from repro.engine.registry import (
    Backend,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
    unregister_backend,
)
from repro.engine.shard import shard_matrix, shard_spans

__all__ = [
    "Backend",
    "GemmPlan",
    "backend_names",
    "clear_plan_cache",
    "get_backend",
    "list_backends",
    "merge_plan_histograms",
    "plan_cache_size",
    "plan_dims",
    "plan_histograms",
    "plan_cache_stats",
    "plan_gemm",
    "register_backend",
    "shard_matrix",
    "shard_spans",
    "unregister_backend",
]
