"""Workload captures: served GEMM histograms in a replayable form.

A :class:`WorkloadCapture` is the bridge object between the serving
layer and the hardware models: one phase-tagged ``{m: count}``
histogram per GEMM site (with the site's fixed ``n``/``k`` and weight
precision) plus the policy metadata needed to normalize costs per
served token.  Everything is a plain count — no wall-clock fields —
so a capture written by ``serve-sim --codesign`` replays to
byte-identical artifacts on any machine.

Builders cover both capture sources:

* :func:`capture_from_plans` — a live ``{site: GemmPlan}`` mapping
  (single-process serving, including tensor-shard proxies, whose
  missing ``bits`` attribute falls back to telemetry-derived
  precision);
* :func:`capture_from_histograms` — a fleet-merged
  :func:`repro.engine.plan_histograms` snapshot plus
  :func:`site_dims` from the fleet's merged telemetry (data-parallel
  serving, where the plans live in worker processes).

The JSON form (``codesign_capture/v1``) round-trips exactly:
``WorkloadCapture.from_dict(json.loads(json.dumps(c.to_dict()))) == c``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigError

#: Schema tag of a bare capture file (also embedded as the
#: ``codesign`` block of a ``serve_sim/v5`` record).
CAPTURE_SCHEMA = "codesign_capture/v1"

Histogram = tuple[tuple[int, int], ...]

#: Phase label the replay assigns to executions recorded outside any
#: ``Decoder._phased`` context (present only if such executions exist).
UNTAGGED_PHASE = "untagged"


def _freeze_hist(hist: Mapping[Any, Any]) -> Histogram:
    """Sorted ``((m, count), ...)`` from any ``{m: count}`` mapping."""
    return tuple(sorted((int(m), int(c)) for m, c in hist.items()))


@dataclass(frozen=True)
class SiteCapture:
    """One GEMM site's captured histogram.

    ``rows`` is the total ``(m, count)`` histogram over activation row
    counts; ``phases`` splits the phase-tagged portion of it by
    pipeline phase (``prefill`` / ``decode`` / ``verify``).  Phase
    counts never exceed the totals; executions issued outside a phase
    context appear only in ``rows``.
    """

    name: str
    n: int
    k: int
    weight_bits: int
    rows: Histogram
    phases: tuple[tuple[str, Histogram], ...]

    def __post_init__(self) -> None:
        if self.n < 1 or self.k < 1 or self.weight_bits < 1:
            raise ConfigError(f"invalid site capture dims: {self.name!r}")
        totals = dict(self.rows)
        tagged: dict[int, int] = {}
        for _, hist in self.phases:
            for m, count in hist:
                tagged[m] = tagged.get(m, 0) + count
        for m, count in sorted(tagged.items()):
            if count > totals.get(m, 0):
                raise ConfigError(
                    f"site {self.name!r}: phase-tagged count {count} at "
                    f"m={m} exceeds the total histogram ({totals.get(m, 0)})"
                )

    @property
    def calls(self) -> int:
        """Total executions of this site."""
        return sum(count for _, count in self.rows)

    @property
    def total_rows(self) -> int:
        """Total activation rows (sum of ``m * count``)."""
        return sum(m * count for m, count in self.rows)

    @property
    def macs(self) -> int:
        """Exact (unpadded) MACs the site executed."""
        return self.total_rows * self.n * self.k

    def untagged_rows(self) -> Histogram:
        """The ``rows`` remainder not covered by any phase histogram."""
        remainder = dict(self.rows)
        for _, hist in self.phases:
            for m, count in hist:
                remainder[m] = remainder.get(m, 0) - count
        return tuple(
            (m, count) for m, count in sorted(remainder.items()) if count > 0
        )


@dataclass(frozen=True)
class WorkloadCapture:
    """A served workload: per-site histograms plus policy metadata.

    ``served_tokens`` (generated tokens) is the denominator of every
    per-token cost the replay reports; ``prompt_tokens`` counts prompt
    tokens ingested (prefilled or copied from a prefix cache) and
    ``requests`` the completed requests.
    """

    policy: str
    served_tokens: int
    prompt_tokens: int
    requests: int
    sites: tuple[SiteCapture, ...]

    def __post_init__(self) -> None:
        if not self.policy:
            raise ConfigError("a workload capture needs a policy label")
        if self.served_tokens < 1:
            raise ConfigError(
                f"capture {self.policy!r} served no tokens — nothing to "
                "normalize per-token costs against"
            )
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate site names in capture: {names}")

    @property
    def gemm_calls(self) -> int:
        return sum(site.calls for site in self.sites)

    @property
    def macs(self) -> int:
        return sum(site.macs for site in self.sites)

    def phase_names(self) -> tuple[str, ...]:
        """All phase labels present, sorted."""
        seen = {phase for site in self.sites for phase, _ in site.phases}
        if any(site.untagged_rows() for site in self.sites):
            seen.add(UNTAGGED_PHASE)
        return tuple(sorted(seen))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (``codesign_capture/v1``)."""
        return {
            "schema": CAPTURE_SCHEMA,
            "policy": self.policy,
            "served_tokens": self.served_tokens,
            "prompt_tokens": self.prompt_tokens,
            "requests": self.requests,
            "sites": {
                site.name: {
                    "n": site.n,
                    "k": site.k,
                    "weight_bits": site.weight_bits,
                    "rows": {str(m): count for m, count in site.rows},
                    "phases": {
                        phase: {str(m): count for m, count in hist}
                        for phase, hist in site.phases
                    },
                }
                for site in self.sites
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadCapture":
        schema = data.get("schema")
        if schema != CAPTURE_SCHEMA:
            raise ConfigError(
                f"not a workload capture: schema {schema!r} "
                f"(expected {CAPTURE_SCHEMA!r})"
            )
        sites = tuple(
            SiteCapture(
                name=name,
                n=int(site["n"]),
                k=int(site["k"]),
                weight_bits=int(site["weight_bits"]),
                rows=_freeze_hist(site["rows"]),
                phases=tuple(
                    sorted(
                        (phase, _freeze_hist(hist))
                        for phase, hist in site["phases"].items()
                    )
                ),
            )
            for name, site in sorted(data["sites"].items())
        )
        return cls(
            policy=str(data["policy"]),
            served_tokens=int(data["served_tokens"]),
            prompt_tokens=int(data["prompt_tokens"]),
            requests=int(data["requests"]),
            sites=sites,
        )


def site_dims(telemetry) -> dict[str, tuple[int, int, int]]:
    """``{site: (n, k, weight_bits)}`` recovered from a ``Telemetry``.

    ``weight_bits`` comes from the accounted storage traffic:
    ``weight_bytes`` accumulates one full quantized matrix per call, so
    ``8 * weight_bytes / (calls * n * k)`` is the per-weight storage
    precision (group scale/zero overhead rounds away for the Table II
    group shapes).  This is the fallback for plan views that do not
    expose ``bits`` (tensor-shard proxies) and the only source for
    fleet-merged histograms, whose plans live in worker processes.
    """
    out: dict[str, tuple[int, int, int]] = {}
    for name, stat in sorted(telemetry.stats.items()):
        if stat.calls < 1:
            continue
        bits = round(8.0 * stat.weight_bytes / (stat.calls * stat.n * stat.k))
        out[name] = (stat.n, stat.k, max(int(bits), 1))
    return out


def capture_from_plans(
    plans: Mapping[str, Any],
    *,
    policy: str,
    served_tokens: int,
    prompt_tokens: int = 0,
    requests: int = 0,
    telemetry=None,
) -> WorkloadCapture:
    """Capture a live ``{site: GemmPlan}`` mapping (single process).

    ``plans`` is any mapping of site name to an object exposing
    ``n_dim`` / ``k_dim`` / ``row_stats()`` / ``phases()`` — real
    :class:`~repro.engine.GemmPlan` objects or the tensor-shard
    proxies.  ``telemetry`` supplies the weight precision for plan
    views without a ``bits`` attribute (see :func:`site_dims`).
    """
    from repro.engine import plan_dims

    dims = plan_dims(plans)
    tele_dims = site_dims(telemetry) if telemetry is not None else {}
    sites = []
    for name, plan in sorted(plans.items()):
        rows = _freeze_hist(plan.row_stats())
        if not rows:
            continue
        bits = dims[name]["bits"]
        if bits is None:
            if name not in tele_dims:
                raise ConfigError(
                    f"cannot determine weight precision of site {name!r}: "
                    "the plan view has no 'bits' and no telemetry was "
                    "provided"
                )
            bits = tele_dims[name][2]
        sites.append(
            SiteCapture(
                name=name,
                n=dims[name]["n"],
                k=dims[name]["k"],
                weight_bits=bits,
                rows=rows,
                phases=tuple(
                    sorted(
                        (phase, _freeze_hist(hist))
                        for phase, hist in plan.phases().items()
                    )
                ),
            )
        )
    return WorkloadCapture(
        policy=policy,
        served_tokens=served_tokens,
        prompt_tokens=prompt_tokens,
        requests=requests,
        sites=tuple(sites),
    )


def capture_from_histograms(
    histograms: Mapping[str, Mapping[str, Any]],
    dims: Mapping[str, tuple[int, int, int]],
    *,
    policy: str,
    served_tokens: int,
    prompt_tokens: int = 0,
    requests: int = 0,
) -> WorkloadCapture:
    """Capture a :func:`repro.engine.plan_histograms` snapshot (fleet).

    ``histograms`` is the ``{site: {"rows": ..., "phases": ...}}``
    shape the data-parallel router merges across workers
    (:meth:`~repro.serve.FleetReport.merged_plan_rows`); ``dims`` maps
    each site to ``(n, k, weight_bits)`` — typically
    ``site_dims(fleet.merged_telemetry())``.
    """
    sites = []
    for name, snap in sorted(histograms.items()):
        rows = _freeze_hist(snap["rows"])
        if not rows:
            continue
        if name not in dims:
            raise ConfigError(
                f"histogram site {name!r} has no (n, k, bits) entry in dims"
            )
        n, k, bits = dims[name]
        sites.append(
            SiteCapture(
                name=name,
                n=n,
                k=k,
                weight_bits=bits,
                rows=rows,
                phases=tuple(
                    sorted(
                        (phase, _freeze_hist(hist))
                        for phase, hist in snap["phases"].items()
                    )
                ),
            )
        )
    return WorkloadCapture(
        policy=policy,
        served_tokens=served_tokens,
        prompt_tokens=prompt_tokens,
        requests=requests,
        sites=tuple(sites),
    )


def load_capture(path: str | pathlib.Path) -> WorkloadCapture:
    """Load a capture from a JSON file.

    Accepts either a bare ``codesign_capture/v1`` file or a
    ``serve_sim/v5`` record (the ``codesign`` block stamped by
    ``serve-sim --codesign``).  Older ``serve_sim`` schemas are
    rejected with a pointer at the flag that adds the block.
    """
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"capture file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"capture {path} is not valid JSON: {exc}") from None
    schema = data.get("schema", "")
    if schema.startswith("serve_sim/"):
        block = data.get("codesign")
        if block is None:
            raise ConfigError(
                f"{path} is a {schema} record without a workload capture — "
                "re-run serve-sim with --codesign POLICY to stamp one in"
            )
        return WorkloadCapture.from_dict(block)
    return WorkloadCapture.from_dict(data)
