"""Replay a workload capture through the cycle/energy/roofline models.

Every ``(site, phase, m, count)`` bucket of a
:class:`~repro.codesign.capture.WorkloadCapture` becomes one GEMM shape
(padded up to the simulator's m16n16k16 warp tile), priced once by
:func:`repro.core.metrics.evaluate_many` (cycle-level SIMT simulation
plus the energy breakdown) and placed against the machine rooflines by
:func:`repro.core.roofline.analyze_many`, then scaled by the bucket's
execution count.  Costs aggregate per pipeline phase and in total;
per-served-token ratios divide by the capture's generated-token count.

The architecture axis is an :class:`ArchPoint`: SM count (octet
count scales with it), DRAM bandwidth in beats/cycle, and the two
PacQ ablation knobs (adder-tree duplication, DP width).  Sites whose
weight precision PacQ supports (INT4/INT2) replay on the PacQ flow;
anything else falls back to the standard-dequant flow on the same
machine, so mixed-precision policies price each site on the flow that
would actually execute it.

Everything here is pure-Python arithmetic over integer counts — no
BLAS, no wall clock — so a capture replays to bit-identical costs on
any machine (the determinism the CSV/report staleness gates rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codesign.capture import UNTAGGED_PHASE, SiteCapture, WorkloadCapture
from repro.core.arch import Architecture, pacq, standard_dequant
from repro.core.metrics import EnergyReport, evaluate_many
from repro.core.roofline import analyze_many
from repro.errors import ConfigError
from repro.simt.memoryhier import GemmShape
from repro.simt.sm import MachineConfig

#: Warp-tile padding: the SIMT simulator only accepts shapes tileable
#: by its ``mma.sync.m16n16k16`` instruction.
PAD_TO = 16


def _pad(value: int, pad_to: int = PAD_TO) -> int:
    return max(pad_to, -(-value // pad_to) * pad_to)


@dataclass(frozen=True)
class ArchPoint:
    """One point on the architecture sweep axis.

    ``num_sms`` scales compute (octet slots), general ALUs and
    aggregate DRAM bandwidth together; ``dram_beats`` sets the
    per-SM bandwidth in 16-bit beats per cycle (Table I default: 24);
    ``adder_tree_dup`` / ``dp_width`` are the Fig. 11 / Fig. 12(a)
    ablation knobs of the PacQ tensor core.
    """

    num_sms: int = 1
    dram_beats: float = 24.0
    adder_tree_dup: int = 2
    dp_width: int = 4

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ConfigError(f"num_sms must be >= 1, got {self.num_sms}")
        if self.dram_beats <= 0:
            raise ConfigError(f"dram_beats must be > 0, got {self.dram_beats}")

    @property
    def label(self) -> str:
        return (
            f"sms{self.num_sms} bw{self.dram_beats:g} "
            f"dup{self.adder_tree_dup} dp{self.dp_width}"
        )

    def machine(self) -> MachineConfig:
        return MachineConfig(
            num_sms=self.num_sms, dram_beats_per_cycle=self.dram_beats
        )

    def architecture(self, weight_bits: int) -> Architecture:
        """The flow a site of this precision executes at this point.

        INT4/INT2 sites run the PacQ flow (n-dim packing + parallel
        FP-INT multipliers); other precisions fall back to the
        standard dequantization flow on the same machine.
        """
        if weight_bits in (2, 4):
            return pacq(
                weight_bits,
                adder_tree_dup=self.adder_tree_dup,
                dp_width=self.dp_width,
                machine=self.machine(),
            )
        return standard_dequant(weight_bits, machine=self.machine())


@dataclass(frozen=True)
class PhaseCost:
    """Aggregate replay cost of one pipeline phase (or the total)."""

    phase: str
    gemm_calls: int
    rows: int  #: activation rows (token rows for decode; chunk rows for prefill)
    macs: int  #: padded MACs priced by the simulator
    cycles: int  #: simulated cycles, summed over buckets
    energy: EnergyReport  #: pJ, summed over buckets
    compute_bound_macs: int  #: padded MACs in buckets the roofline calls compute-bound

    @property
    def compute_bound_fraction(self) -> float:
        """Share of priced MACs sitting above the ridge point."""
        return self.compute_bound_macs / self.macs if self.macs else 0.0


def _sum_energy(a: EnergyReport, b: EnergyReport) -> EnergyReport:
    return EnergyReport(
        rf=a.rf + b.rf,
        l1=a.l1 + b.l1,
        l2=a.l2 + b.l2,
        dram=a.dram + b.dram,
        compute=a.compute + b.compute,
        general_core=a.general_core + b.general_core,
    )


_ZERO_ENERGY = EnergyReport(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


@dataclass(frozen=True)
class ReplayCost:
    """Full replay of one capture on one architecture point."""

    policy: str
    arch: ArchPoint
    served_tokens: int
    prompt_tokens: int
    requests: int
    phases: tuple[PhaseCost, ...]  #: per-phase costs, phase-name order
    total: PhaseCost  #: elementwise sum of ``phases``

    @property
    def cycles_per_token(self) -> float:
        """Simulated cycles per served (generated) token."""
        return self.total.cycles / self.served_tokens

    @property
    def pj_per_token(self) -> float:
        """Total energy (on-chip + DRAM) per served token, pJ."""
        return self.total.energy.total / self.served_tokens

    @property
    def on_chip_pj_per_token(self) -> float:
        """On-chip energy per served token, pJ (the paper's EDP basis)."""
        return self.total.energy.on_chip / self.served_tokens

    def phase(self, name: str) -> PhaseCost:
        for cost in self.phases:
            if cost.phase == name:
                return cost
        available = ", ".join(repr(c.phase) for c in self.phases) or "<none>"
        raise KeyError(f"no phase {name!r} (available: {available})")


@dataclass(frozen=True)
class _Bucket:
    """One priceable unit: a phase-tagged (shape, count) of a site."""

    phase: str
    count: int
    shape: GemmShape
    rows: int  #: unpadded activation rows of one execution
    weight_bits: int


def _site_buckets(site: SiteCapture, pad_to: int) -> list[_Bucket]:
    n_p, k_p = _pad(site.n, pad_to), _pad(site.k, pad_to)
    buckets = []
    for phase, hist in site.phases:
        for m, count in hist:
            buckets.append(
                _Bucket(
                    phase=phase,
                    count=count,
                    shape=GemmShape(_pad(m, pad_to), n_p, k_p),
                    rows=m,
                    weight_bits=site.weight_bits,
                )
            )
    for m, count in site.untagged_rows():
        buckets.append(
            _Bucket(
                phase=UNTAGGED_PHASE,
                count=count,
                shape=GemmShape(_pad(m, pad_to), n_p, k_p),
                rows=m,
                weight_bits=site.weight_bits,
            )
        )
    return buckets


def replay_capture(
    capture: WorkloadCapture,
    arch: ArchPoint = ArchPoint(),
    pad_to: int = PAD_TO,
) -> ReplayCost:
    """Price every histogram bucket of ``capture`` at ``arch``.

    Buckets are grouped by weight precision (each precision selects its
    execution flow via :meth:`ArchPoint.architecture`) and priced
    through the batch entry points, which memoize duplicate shapes.
    Returns per-phase and total costs; ``total`` is the exact
    elementwise sum of the per-phase entries, so the report's phase
    split always reconciles.
    """
    buckets: list[_Bucket] = []
    for site in capture.sites:
        buckets.extend(_site_buckets(site, pad_to))
    if not buckets:
        raise ConfigError(
            f"capture {capture.policy!r} has no executions to replay"
        )

    evals = [None] * len(buckets)
    points = [None] * len(buckets)
    for bits in sorted({b.weight_bits for b in buckets}):
        group = [i for i, b in enumerate(buckets) if b.weight_bits == bits]
        flow_arch = arch.architecture(bits)
        shapes = [buckets[i].shape for i in group]
        for i, ev, pt in zip(
            group,
            evaluate_many(flow_arch, shapes),
            analyze_many(flow_arch, shapes),
            strict=True,
        ):
            evals[i] = ev
            points[i] = pt

    acc: dict[str, dict[str, object]] = {}
    for bucket, ev, pt in zip(buckets, evals, points, strict=True):
        slot = acc.setdefault(
            bucket.phase,
            {
                "calls": 0,
                "rows": 0,
                "macs": 0,
                "cycles": 0,
                "energy": _ZERO_ENERGY,
                "cb_macs": 0,
            },
        )
        macs = bucket.shape.macs * bucket.count
        slot["calls"] += bucket.count
        slot["rows"] += bucket.rows * bucket.count
        slot["macs"] += macs
        slot["cycles"] += ev.stats.cycles * bucket.count
        scaled = EnergyReport(
            rf=ev.energy.rf * bucket.count,
            l1=ev.energy.l1 * bucket.count,
            l2=ev.energy.l2 * bucket.count,
            dram=ev.energy.dram * bucket.count,
            compute=ev.energy.compute * bucket.count,
            general_core=ev.energy.general_core * bucket.count,
        )
        slot["energy"] = _sum_energy(slot["energy"], scaled)
        if pt.compute_bound:
            slot["cb_macs"] += macs

    phases = tuple(
        PhaseCost(
            phase=name,
            gemm_calls=slot["calls"],
            rows=slot["rows"],
            macs=slot["macs"],
            cycles=slot["cycles"],
            energy=slot["energy"],
            compute_bound_macs=slot["cb_macs"],
        )
        for name, slot in sorted(acc.items())
    )
    total = PhaseCost(
        phase="total",
        gemm_calls=sum(p.gemm_calls for p in phases),
        rows=sum(p.rows for p in phases),
        macs=sum(p.macs for p in phases),
        cycles=sum(p.cycles for p in phases),
        energy=_sum_energy(
            _ZERO_ENERGY,
            EnergyReport(
                rf=sum(p.energy.rf for p in phases),
                l1=sum(p.energy.l1 for p in phases),
                l2=sum(p.energy.l2 for p in phases),
                dram=sum(p.energy.dram for p in phases),
                compute=sum(p.energy.compute for p in phases),
                general_core=sum(p.energy.general_core for p in phases),
            ),
        ),
        compute_bound_macs=sum(p.compute_bound_macs for p in phases),
    )
    return ReplayCost(
        policy=capture.policy,
        arch=arch,
        served_tokens=capture.served_tokens,
        prompt_tokens=capture.prompt_tokens,
        requests=capture.requests,
        phases=phases,
        total=total,
    )
