"""The registered ``codesign`` experiment: capture -> replay -> rows.

The harness-facing entry point of the co-design loop.  Two modes share
one runner:

* **Capture replay** (``capture=<path>``) — what ``python -m repro
  codesign`` schedules: load a ``codesign_capture/v1`` file (or a
  ``serve_sim/v5`` record) and price it at one
  :class:`~repro.codesign.replay.ArchPoint`.  The ``digest`` parameter
  carries a content hash of the capture file purely to key the result
  cache — :class:`~repro.harness.ResultCache` hashes job parameters,
  not file contents, so the hash must ride in the parameters for a
  re-captured file to miss the cache.
* **Synthetic self-check** (no ``capture``) — what ``report`` and CI
  run: serve a small deterministic trace under each requested
  scheduling policy, capture it in-process, replay it, and add
  identity guards (capture JSON round-trip, replay determinism) whose
  ``paper=1.0`` rows make any drift a tolerance violation.
"""

from __future__ import annotations

import json

from repro.codesign.capture import (
    WorkloadCapture,
    capture_from_plans,
    load_capture,
)
from repro.codesign.replay import ArchPoint, replay_capture
from repro.codesign.report import cost_rows
from repro.core.experiments import (
    ExperimentResult,
    ResultRow,
    register_experiment,
)
from repro.errors import ConfigError

#: Scheduling policies the synthetic self-check knows how to build.
SYNTHETIC_POLICIES = ("fifo", "prefix-cache", "speculative")


def _synthetic_capture(policy: str, requests: int, max_new: int) -> WorkloadCapture:
    """Serve one deterministic greedy trace under ``policy`` and capture it.

    The model is the small self-calibrated transformer the serving
    tests use; the trace has shared-prefix traffic so ``prefix-cache``
    actually exercises the radix cache.  Greedy decoding keeps every
    count deterministic.
    """
    from repro.llm.transformer import TransformerConfig, init_weights
    from repro.model import parse_policy, quantize_model
    from repro.serve import (
        BatchedSession,
        BigramDraft,
        RadixPrefixCache,
        Scheduler,
        TraceSpec,
        replay,
        synthesize,
    )

    if policy not in SYNTHETIC_POLICIES:
        raise ConfigError(
            f"unknown synthetic policy {policy!r} "
            f"(choose from {', '.join(SYNTHETIC_POLICIES)})"
        )
    config = TransformerConfig(
        vocab=64, d_model=32, n_heads=4, n_layers=2, d_ffn=64, max_seq=96
    )
    weights = init_weights(config, seed=0)
    qmodel = quantize_model(
        weights, parse_policy("rtn4@g[32,4]"), config=config,
        compute_reports=False,
    )
    spec = TraceSpec(
        requests=requests, seed=0, prompt_len=(4, 12), max_new=(4, max_new),
        mean_interarrival=1.0, eos_token=3,
        shared_prefix_len=8, shared_fraction=0.75,
    )
    trace = synthesize(spec, config.vocab, config.max_seq)

    prefix_cache = RadixPrefixCache(16 << 20) if policy == "prefix-cache" else None
    session = BatchedSession(
        qmodel, backend="fast", max_slots=requests, prefix_cache=prefix_cache
    )
    speculate = None
    if policy == "speculative":
        speculate = (BigramDraft.distill(session.decoder), 4)
    scheduler = Scheduler(
        session,
        max_batch=requests,
        prefill_chunk=16 if policy == "prefix-cache" else None,
        speculate=speculate,
    )
    replay(scheduler, trace, strict=True)
    stats = scheduler.stats()
    return capture_from_plans(
        session.decoder.plans,
        policy=policy,
        served_tokens=stats.total_new_tokens,
        prompt_tokens=stats.prefill_tokens + stats.cached_prefix_tokens,
        requests=stats.completed,
        telemetry=session.telemetry,
    )


@register_experiment(
    name="codesign",
    artifact="hardware co-design loop (extension)",
    headline="served workloads replayed through the SIMT/energy/roofline models",
    extension=True,
)
def codesign_experiment(
    capture: str | None = None,
    digest: str | None = None,
    policies: tuple[str, ...] = ("fifo", "prefix-cache"),
    num_sms: int = 1,
    dram_beats: float = 24.0,
    adder_tree_dup: int = 2,
    dp_width: int = 4,
    requests: int = 6,
    max_new: int = 12,
) -> ExperimentResult:
    """Replay a workload capture (or synthetic policies) at one arch point."""
    del digest  # cache-key salt only (content hash of the capture file)
    arch = ArchPoint(
        num_sms=num_sms,
        dram_beats=dram_beats,
        adder_tree_dup=adder_tree_dup,
        dp_width=dp_width,
    )
    rows: list[ResultRow] = []
    if capture is not None:
        rows.extend(cost_rows(replay_capture(load_capture(capture), arch)))
        description = f"served-workload replay at {arch.label}"
    else:
        if isinstance(policies, str):
            policies = (policies,)
        for policy in policies:
            cap = _synthetic_capture(policy, requests=requests, max_new=max_new)
            cost = replay_capture(cap, arch)
            rows.extend(cost_rows(cost))
            roundtrip = WorkloadCapture.from_dict(
                json.loads(json.dumps(cap.to_dict()))
            )
            rows.append(
                ResultRow(
                    f"{policy}/identity/capture_roundtrip",
                    float(roundtrip == cap),
                    1.0,
                    "exact",
                )
            )
            rows.append(
                ResultRow(
                    f"{policy}/identity/replay_deterministic",
                    float(replay_capture(cap, arch) == cost),
                    1.0,
                    "exact",
                )
            )
        description = (
            "synthetic serving policies captured in-process and replayed "
            f"at {arch.label}"
        )
    return ExperimentResult("codesign", description, tuple(rows))
