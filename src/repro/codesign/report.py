"""Artifact sinks for workload replays: result rows, CSV, report section.

The replay pipeline reuses the harness' record machinery end to end: a
:class:`~repro.codesign.replay.ReplayCost` flattens to labeled
:class:`~repro.core.experiments.ResultRow` values (:func:`cost_rows`),
those ride inside ordinary
:class:`~repro.core.report.RunRecord` objects through
:func:`repro.harness.run_jobs`, and this module renders the committed
artifacts from them:

* :func:`render_codesign_csv` — the long-form ``docs/data/codesign.csv``
  (one row per metric, ``repr()`` floats, full precision);
* :func:`render_codesign_section` — the generated section of
  ``docs/codesign.md``, spliced between the ``codesign:begin`` /
  ``codesign:end`` markers by :func:`splice_section` exactly the way
  ``report`` regenerates ``EXPERIMENTS.md``.

Row labels are ``{policy}/{phase}/{metric}``; ``phase`` is a pipeline
phase, ``total``, or the ``workload`` pseudo-phase carrying the
normalization counts.  All sinks are deterministic for a given record
set — fixed ordering, fixed formatting, no timestamps — so staleness
is a byte comparison.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Sequence

from repro.codesign.replay import ArchPoint, ReplayCost
from repro.core.experiments import ResultRow
from repro.core.report import RunRecord, _csv_cell, _sig
from repro.errors import ConfigError

CODESIGN_CSV_HEADER = (
    "capture,policy,num_sms,dram_beats,adder_tree_dup,dp_width,"
    "phase,metric,value,unit"
)

#: Markers delimiting the generated section of ``docs/codesign.md``.
SECTION_BEGIN = "<!-- codesign:begin -->"
SECTION_END = "<!-- codesign:end -->"

#: Architecture sweep axes and their defaults, in CSV column order.
_ARCH_AXES = (
    ("num_sms", ArchPoint().num_sms),
    ("dram_beats", ArchPoint().dram_beats),
    ("adder_tree_dup", ArchPoint().adder_tree_dup),
    ("dp_width", ArchPoint().dp_width),
)


def cost_rows(cost: ReplayCost) -> list[ResultRow]:
    """Flatten one replay into ``{policy}/{phase}/{metric}`` rows.

    Every phase (and the total) contributes its volume counters;
    per-token ratios and the energy split attach to ``total`` only;
    the ``workload`` pseudo-phase carries the normalization counts so
    the CSV is self-describing.
    """
    rows: list[ResultRow] = []
    p = cost.policy
    for phase in (*cost.phases, cost.total):
        name = phase.phase
        rows.append(
            ResultRow(f"{p}/{name}/gemm_calls", float(phase.gemm_calls), unit="call")
        )
        rows.append(ResultRow(f"{p}/{name}/rows", float(phase.rows), unit="row"))
        rows.append(ResultRow(f"{p}/{name}/macs", float(phase.macs), unit="MAC"))
        rows.append(
            ResultRow(f"{p}/{name}/cycles", float(phase.cycles), unit="cycle")
        )
    total = cost.total
    rows.append(
        ResultRow(
            f"{p}/total/cycles_per_token", cost.cycles_per_token, unit="cycle/token"
        )
    )
    rows.append(
        ResultRow(f"{p}/total/energy_pj_per_token", cost.pj_per_token, unit="pJ/token")
    )
    rows.append(
        ResultRow(
            f"{p}/total/on_chip_pj_per_token",
            cost.on_chip_pj_per_token,
            unit="pJ/token",
        )
    )
    for component in ("rf", "l1", "l2", "dram", "compute", "general_core"):
        rows.append(
            ResultRow(
                f"{p}/total/energy_{component}",
                getattr(total.energy, component),
                unit="pJ",
            )
        )
    rows.append(
        ResultRow(
            f"{p}/total/compute_bound_mac_fraction",
            total.compute_bound_fraction,
            unit="fraction",
        )
    )
    rows.append(
        ResultRow(
            f"{p}/workload/served_tokens", float(cost.served_tokens), unit="token"
        )
    )
    rows.append(
        ResultRow(
            f"{p}/workload/prompt_tokens", float(cost.prompt_tokens), unit="token"
        )
    )
    rows.append(
        ResultRow(f"{p}/workload/requests", float(cost.requests), unit="request")
    )
    return rows


def _capture_name(params: Mapping[str, object]) -> str:
    capture = params.get("capture")
    if capture is None:
        return "synthetic"
    return pathlib.Path(str(capture)).stem


def _arch_values(params: Mapping[str, object]) -> list[object]:
    return [params.get(axis, default) for axis, default in _ARCH_AXES]


def _split_label(label: str) -> tuple[str, str, str]:
    parts = label.split("/", 2)
    if len(parts) != 3:
        raise ConfigError(f"not a codesign row label: {label!r}")
    return parts[0], parts[1], parts[2]


def render_codesign_csv(records: Sequence[RunRecord]) -> str:
    """Long-form CSV over codesign records (full ``repr()`` precision).

    One row per (capture, policy, architecture point, phase, metric).
    Input record order is preserved — the harness already guarantees
    order-stable outcomes, so serial and parallel sweeps render the
    same bytes.
    """
    out = [CODESIGN_CSV_HEADER]
    for record in records:
        if record.result is None:
            continue
        capture = _capture_name(record.params)
        arch = _arch_values(record.params)
        for row in record.result.rows:
            policy, phase, metric = _split_label(row.label)
            out.append(
                ",".join(
                    _csv_cell(cell)
                    for cell in (
                        capture,
                        policy,
                        *arch,
                        phase,
                        metric,
                        repr(row.measured),
                        row.unit,
                    )
                )
            )
    return "\n".join(out) + "\n"


def _row_index(record: RunRecord) -> dict[tuple[str, str], dict[str, ResultRow]]:
    """``{(policy, phase): {metric: row}}`` for one record."""
    index: dict[tuple[str, str], dict[str, ResultRow]] = {}
    for row in record.result.rows:
        policy, phase, metric = _split_label(row.label)
        index.setdefault((policy, phase), {})[metric] = row
    return index


def _arch_label(params: Mapping[str, object]) -> str:
    return " ".join(
        f"{axis}={params.get(axis, default):g}"
        if isinstance(params.get(axis, default), float)
        else f"{axis}={params.get(axis, default)}"
        for axis, default in _ARCH_AXES
    )


def render_codesign_section(records: Sequence[RunRecord]) -> str:
    """The generated block of ``docs/codesign.md`` (markers included).

    A policy-comparison table of per-token costs over every (capture,
    policy, architecture point), an energy-split table, and one phase
    table per configuration.  Record order is preserved; policies sort
    within a record.
    """
    lines = [
        SECTION_BEGIN,
        "",
        "_Generated by `python -m repro codesign` — edit nothing between",
        "the markers; regenerate with `scripts/regen_codesign.sh`._",
        "",
        "### Per-token cost by policy and architecture point",
        "",
        "| capture | policy | architecture | cycles/token | pJ/token "
        "| on-chip pJ/token | compute-bound MACs |",
        "|---|---|---|---|---|---|---|",
    ]
    configs = []  # (capture, policy, arch label, {(phase): {metric: row}})
    for record in records:
        if record.result is None:
            continue
        capture = _capture_name(record.params)
        arch = _arch_label(record.params)
        index = _row_index(record)
        for policy in sorted({key[0] for key in index}):
            configs.append((capture, policy, arch, index))
    for capture, policy, arch, index in configs:
        total = index.get((policy, "total"), {})
        if "cycles_per_token" not in total:
            continue  # identity-guard pseudo-policies carry no totals
        lines.append(
            f"| {capture} | {policy} | {arch} "
            f"| {_sig(total['cycles_per_token'].measured)} "
            f"| {_sig(total['energy_pj_per_token'].measured)} "
            f"| {_sig(total['on_chip_pj_per_token'].measured)} "
            f"| {total['compute_bound_mac_fraction'].measured:.1%} |"
        )
    lines += [
        "",
        "### Energy split per served token (pJ, totals)",
        "",
        "| capture | policy | architecture | RF | L1 | L2 | DRAM "
        "| compute | general core |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for capture, policy, arch, index in configs:
        total = index.get((policy, "total"), {})
        if "energy_rf" not in total:
            continue
        served = index[(policy, "workload")]["served_tokens"].measured
        cells = [
            _sig(total[f"energy_{c}"].measured / served)
            for c in ("rf", "l1", "l2", "dram", "compute", "general_core")
        ]
        lines.append(
            f"| {capture} | {policy} | {arch} | " + " | ".join(cells) + " |"
        )
    lines += ["", "### Phase split (cycles)", ""]
    lines += [
        "| capture | policy | architecture | phase | GEMM calls | rows "
        "| MACs | cycles |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for capture, policy, arch, index in configs:
        phases = sorted(
            phase
            for pol, phase in index
            if pol == policy and phase not in ("workload", "total")
        )
        for phase in (*phases, "total"):
            metrics = index.get((policy, phase), {})
            if "cycles" not in metrics:
                continue
            lines.append(
                f"| {capture} | {policy} | {arch} | {phase} "
                f"| {metrics['gemm_calls'].measured:.0f} "
                f"| {metrics['rows'].measured:.0f} "
                f"| {_sig(metrics['macs'].measured)} "
                f"| {_sig(metrics['cycles'].measured)} |"
            )
    lines += ["", SECTION_END]
    return "\n".join(lines) + "\n"


def splice_section(text: str, section: str) -> str:
    """Replace the marker-delimited block of ``text`` with ``section``.

    ``section`` must itself start/end with the markers (the shape
    :func:`render_codesign_section` returns).  Raises
    :class:`~repro.errors.ConfigError` when the document lacks the
    markers — the hand-written scaffold must never be overwritten
    wholesale.
    """
    begin = text.find(SECTION_BEGIN)
    end = text.find(SECTION_END)
    if begin < 0 or end < 0 or end < begin:
        raise ConfigError(
            f"document is missing the {SECTION_BEGIN} / {SECTION_END} "
            "markers — cannot splice the generated section"
        )
    end += len(SECTION_END)
    return text[:begin] + section.strip("\n") + text[end:]
