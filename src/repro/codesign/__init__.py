"""Hardware co-design loop: replay served workloads through the cost models.

The serving stack (:mod:`repro.serve`) records the *exact* GEMM shape
histogram a served trace produced — per-plan ``row_stats(phase=...)``
histograms, session :class:`~repro.model.session.Telemetry`, and the
fleet-merged snapshots of :mod:`repro.serve.shard`.  This package
closes the loop back to the paper's hardware models: a captured
workload is replayed bucket-by-bucket through the cycle-level SIMT
simulator (:func:`repro.simt.simulate_gemm`), the energy breakdown
(:func:`repro.core.metrics.evaluate`) and the roofline placement
(:func:`repro.core.roofline.analyze`), yielding cycles-per-served-token
and pJ-per-served-token per scheduler policy under a sweepable
architecture point.

Layers:

* :mod:`repro.codesign.capture` — :class:`WorkloadCapture`, the
  replayable phase-tagged shape histogram plus policy metadata
  (``codesign_capture/v1`` JSON; stamped into ``serve_sim/v5`` records
  by ``serve-sim --codesign``).
* :mod:`repro.codesign.replay` — :func:`replay_capture` prices every
  ``(site, phase, m, count)`` bucket on an :class:`ArchPoint` and
  aggregates per-phase / total costs.
* :mod:`repro.codesign.report` — deterministic CSV and the regenerated
  figures section of ``docs/codesign.md`` (same idiom as
  ``EXPERIMENTS.md``).
* :mod:`repro.codesign.experiment` — the registered ``codesign``
  experiment the harness sweeps and ``report --check`` gates.

See ``docs/codesign.md`` for the methodology and the CSV schema.
"""

from repro.codesign.capture import (
    CAPTURE_SCHEMA,
    SiteCapture,
    WorkloadCapture,
    capture_from_histograms,
    capture_from_plans,
    load_capture,
    site_dims,
)
from repro.codesign.replay import ArchPoint, PhaseCost, ReplayCost, replay_capture
from repro.codesign.report import (
    CODESIGN_CSV_HEADER,
    cost_rows,
    render_codesign_csv,
    render_codesign_section,
    splice_section,
)

__all__ = [
    "ArchPoint",
    "CAPTURE_SCHEMA",
    "CODESIGN_CSV_HEADER",
    "PhaseCost",
    "ReplayCost",
    "SiteCapture",
    "WorkloadCapture",
    "capture_from_histograms",
    "capture_from_plans",
    "cost_rows",
    "load_capture",
    "render_codesign_csv",
    "render_codesign_section",
    "replay_capture",
    "site_dims",
    "splice_section",
]
