"""Mix-GEMM (binary segmentation) comparator model for Fig. 12(b)."""

from repro.mixgemm.binseg import (
    MixGemmPoint,
    activation_segments,
    mixgemm_point,
    mixgemm_relative_tpw,
    weight_segments,
)

__all__ = [
    "MixGemmPoint",
    "activation_segments",
    "mixgemm_point",
    "mixgemm_relative_tpw",
    "weight_segments",
]
