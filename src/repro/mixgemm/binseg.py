"""Analytical model of Mix-GEMM's binary segmentation (paper Fig. 12(b)).

Mix-GEMM (Reggiani et al., HPCA 2023) accelerates mixed-precision
integer GEMMs by *binary segmentation*: wide operands are split into
narrow bit segments, the segments are multiplied on narrow integer
hardware, and the partial results are recombined with shifts and adds.
Its cost therefore grows with the **product of the operand segment
counts** — efficient when both operands are narrow integers, but
punishing for hyper-asymmetric GEMMs where the activation is FP16:
the activation's 11-bit significand must be handled as two 8-bit
segments (plus exponent bookkeeping), and every weight-segment
combination costs a multiply-shift-add pass.

The model (documented constants, normalized to the baseline FP16
multiplier of :mod:`repro.energy.units`):

* activation segments ``ceil(sig_bits / 8)`` with ``sig_bits = 11``;
* weight segments ``ceil(weight_bits / 4)`` (Mix-GEMM's 4-bit native
  lanes);
* activation segments ``ceil(11 / 8) = 2`` and weight segments
  ``ceil(weight_bits / 4)`` (sub-4-bit weights fit one native lane
  pass, so INT4 and INT2 cost the same — this is precisely why the
  paper finds binary segmentation "performs poorly for
  hyper-asymmetric GEMM": the wide FP16 activation dominates);
* each (activation, weight) segment pair is one pass: throughput =
  ``1 / passes`` products per cycle, energy = ``passes`` x the INT11
  significand array x ``RECOMBINE_OVERHEAD`` (shift-add recombination)
  plus a fixed exponent/alignment path.

The paper's claim this model must preserve: PacQ beats Mix-GEMM by
~4.12x (INT4) / ~3.75x (INT2) in throughput/watt with FP16
activations, because binary segmentation "performs poorly for
hyper-asymmetric GEMM".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.tech import DEFAULT_TECH, TechnologyModel
from repro.energy.units import fp16_mul_baseline, int11_mul_baseline
from repro.errors import ConfigError

#: Significand bits of the FP16 activation that segmentation must cover.
ACTIVATION_SIGNIFICAND_BITS = 11
#: Segment width of the activation path (byte-oriented SIMD lanes).
ACTIVATION_SEGMENT_BITS = 8
#: Native narrow-integer lane width of the Mix-GEMM datapath.
WEIGHT_SEGMENT_BITS = 4
#: Energy overhead of the recombination shift-add network.
RECOMBINE_OVERHEAD = 1.3
#: Fixed exponent/alignment path energy (same units as repro.energy).
EXPONENT_PATH_ENERGY = 20.0


@dataclass(frozen=True)
class MixGemmPoint:
    """Throughput/energy of Mix-GEMM for one operand configuration."""

    weight_bits: int
    products_per_cycle: float
    energy_per_cycle: float

    @property
    def throughput_per_watt(self) -> float:
        return self.products_per_cycle / self.energy_per_cycle


def activation_segments(activation_bits: int = 16) -> int:
    """Segments needed for the activation significand."""
    if activation_bits != 16:
        raise ConfigError("the model covers FP16 activations")
    return math.ceil(ACTIVATION_SIGNIFICAND_BITS / ACTIVATION_SEGMENT_BITS)


def weight_segments(weight_bits: int) -> int:
    if weight_bits < 1:
        raise ConfigError(f"invalid weight precision: {weight_bits}")
    return math.ceil(weight_bits / WEIGHT_SEGMENT_BITS)


def mixgemm_point(
    weight_bits: int, tech: TechnologyModel = DEFAULT_TECH
) -> MixGemmPoint:
    """Mix-GEMM operating point for FP16 x INT(weight_bits)."""
    seg_a = activation_segments()
    seg_b = weight_segments(weight_bits)
    passes = seg_a * seg_b
    throughput = 1.0 / passes
    energy = (
        passes * int11_mul_baseline(tech).energy_per_op * RECOMBINE_OVERHEAD
        + EXPONENT_PATH_ENERGY
    )
    return MixGemmPoint(weight_bits, throughput, energy)


def mixgemm_relative_tpw(
    weight_bits: int, tech: TechnologyModel = DEFAULT_TECH
) -> float:
    """Mix-GEMM throughput/watt normalized to the baseline FP16 multiplier."""
    baseline = fp16_mul_baseline(tech)
    baseline_tpw = 1.0 / baseline.energy_per_op
    point = mixgemm_point(weight_bits, tech)
    return point.throughput_per_watt / baseline_tpw
