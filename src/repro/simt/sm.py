"""Streaming-multiprocessor and full-GEMM assembly (paper Table I).

An SM hosts 8 tensor cores behind a 96 KB L1; each tensor core's four
DP-4 units serve two octets.  A GEMM is tiled into warp-level
``mma.sync.m16n16k16`` operations (Fig. 3(a)), each decomposed into
four octet workloads whose traced activity and cycles come from
:mod:`repro.simt.octet` / :mod:`repro.simt.tensorcore`.  The general
core contributes unpack/dequant instructions (standard flow) or
correction/scale instructions (PacQ) per
:mod:`repro.simt.memoryhier`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.quant.groups import GroupSpec
from repro.simt.flows import FlowConfig
from repro.simt.instruction import MMA_M16N16K16, MmaShape
from repro.simt.memoryhier import GemmShape, general_core_work, hierarchy_traffic
from repro.simt.octet import OctetArch, simulate_octet
from repro.simt.stats import RfTraffic, SimStats
from repro.simt.tensorcore import TensorCoreConfig, dp_busy_cycles, octet_cycles
from repro.simt.warp import decompose


@dataclass(frozen=True)
class MachineConfig:
    """SM-level machine parameters (Table I defaults).

    ``dram_beats_per_cycle`` is the off-chip bandwidth in 16-bit beats
    per core cycle per SM (Volta-class: ~900 GB/s across ~14 SMs at
    1.4 GHz is ~24 beats/cycle/SM).  It bounds the memory-bound regime
    of Fig. 1: single-batch GEMMs stall on weight traffic, which is
    where weight-only quantization already pays on stock hardware.
    """

    num_sms: int = 1
    tensor_cores_per_sm: int = 8
    octets_per_tensor_core: int = 2
    general_alus_per_sm: int = 64
    dram_beats_per_cycle: float = 24.0

    @property
    def octet_slots(self) -> int:
        return self.num_sms * self.tensor_cores_per_sm * self.octets_per_tensor_core

    @property
    def general_alu_slots(self) -> int:
        return self.num_sms * self.general_alus_per_sm

    @property
    def dram_beat_slots(self) -> float:
        return self.num_sms * self.dram_beats_per_cycle


@dataclass(frozen=True)
class GemmSimConfig:
    """Everything needed to price one GEMM under one flow."""

    machine: MachineConfig = MachineConfig()
    octet: OctetArch = OctetArch()
    core: TensorCoreConfig = TensorCoreConfig()
    mma: MmaShape = MMA_M16N16K16
    group: GroupSpec | None = None


#: The paper's full-GEMM simulation setup (shared default).
DEFAULT_SIM_CONFIG = GemmSimConfig()


def _check_tileable(shape: GemmShape, mma: MmaShape) -> tuple[int, int, int]:
    if shape.m % mma.m or shape.n % mma.n or shape.k % mma.k:
        raise ConfigError(f"{shape.name} is not tileable by {mma.name}")
    return shape.m // mma.m, shape.n // mma.n, shape.k // mma.k


def simulate_gemm(
    flow: FlowConfig, shape: GemmShape, config: GemmSimConfig = DEFAULT_SIM_CONFIG
) -> SimStats:
    """Full-GEMM simulation: cycles, RF beats, hierarchy traffic.

    The GEMM is tiled into identical warp MMAs, so one octet is traced
    and its measured activity scaled by the tile count — exact because
    the flows are data-independent.  Cross-MMA partial-sum round trips
    (the DP accumulators only persist within one MMA) are added for
    every k-step beyond the first.
    """
    mt, nt, kt = _check_tileable(shape, config.mma)
    mma_count = mt * nt * kt
    octet_workloads = decompose(config.mma)
    octet_work = octet_workloads[0]

    trace = simulate_octet(flow, octet_work, config.octet)
    per_octet_cycles = octet_cycles(flow, trace, config.octet, config.core)
    octets_total = mma_count * len(octet_workloads)

    rf = RfTraffic(
        a_reads=trace.a_reads,
        b_reads=trace.b_reads,
        c_reads=trace.c_reads,
        c_writes=trace.c_writes,
    ).scaled(octets_total)

    # Cross-MMA psum accumulation: every k-step beyond the first
    # re-reads the octet's 8x8 C tile from the RF.
    nonfirst_octets = mt * nt * (kt - 1) * len(octet_workloads)
    rf.c_reads += nonfirst_octets * octet_work.outputs

    general = general_core_work(flow, shape, config.group)
    rf.b_reads += general.rf_reads
    rf.c_writes += general.rf_writes  # dequantized FP16 weights staged in RF

    tc_cycles = math.ceil(
        octets_total * per_octet_cycles / config.machine.octet_slots
    )
    dequant_cycles = math.ceil(
        general.dequant_instructions / config.machine.general_alu_slots
    )
    mem = hierarchy_traffic(flow, shape)
    dram_cycles = math.ceil(mem.dram / config.machine.dram_beat_slots)
    cycles = max(tc_cycles, dequant_cycles, dram_cycles)
    return SimStats(
        cycles=cycles,
        rf=rf,
        mem=mem,
        fetch_instructions=trace.fetch_instructions * octets_total,
        dequant_instructions=general.dequant_instructions,
        scale_fetches=general.scale_fetches,
        products=trace.products * octets_total,
        outputs=shape.m * shape.n,
        buffer_evictions=trace.evictions * octets_total,
    )


def simulate_gemm_many(
    flow: FlowConfig,
    shapes: Sequence[GemmShape],
    config: GemmSimConfig = DEFAULT_SIM_CONFIG,
) -> list[SimStats]:
    """Batch entry point: one :class:`SimStats` per shape, memoized.

    Workload replays (:mod:`repro.codesign`) price thousands of served
    histogram buckets that collapse — after warp-tile padding — onto a
    handful of distinct shapes; duplicates are simulated once.  Output
    order matches input order, so the memo never changes results, only
    cost.
    """
    memo: dict[GemmShape, SimStats] = {}
    out: list[SimStats] = []
    for shape in shapes:
        stats = memo.get(shape)
        if stats is None:
            stats = memo[shape] = simulate_gemm(flow, shape, config)
        out.append(stats)
    return out


def dp_busy_cycles_for_gemm(
    flow: FlowConfig, shape: GemmShape, config: GemmSimConfig = DEFAULT_SIM_CONFIG
) -> int:
    """Total DP-unit busy cycles across the whole GEMM (energy input)."""
    mt, nt, kt = _check_tileable(shape, config.mma)
    octet_work = decompose(config.mma)[0]
    trace = simulate_octet(flow, octet_work, config.octet)
    per_octet_busy = dp_busy_cycles(flow, trace, config.octet, config.core)
    return per_octet_busy * mt * nt * kt * 4
