"""Tensor-core pipeline cycle model.

Consumes the per-tile issue list produced by the octet simulator and
prices each tile on the octet's DP units via the validated cycle model
of :mod:`repro.multiplier.dp` (the one reproducing the paper's
11/19/35-cycle datapoints).  Operand-fetch instruction pressure is
overlapped against compute up to the octet's fetch-port bandwidth;
the pipeline fill is paid once because consecutive tiles stream
through the same pipeline.

Flow -> DP configuration:

* standard / W16A16 and ``P(Bx)k``: baseline FP16 DP-4s (``pack=1`` —
  k-packed weights multiply different activations, so the parallel
  multiplier is inapplicable even though the data is packed);
* PacQ: parallel FP-INT DP-4s with ``pack = 16 / weight_bits`` and
  dup-2 adder trees (configurable for the Fig. 11/12 ablations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.multiplier.dp import PIPELINE_FILL, DpConfig, TileWork, cycles_for
from repro.simt.flows import FlowConfig
from repro.simt.octet import DEFAULT_OCTET_ARCH, OctetArch, OctetTrace


@dataclass(frozen=True)
class TensorCoreConfig:
    """DP-unit parameters of the tensor core under a given flow."""

    dp_width: int = 4
    adder_tree_dup: int = 2  #: PacQ default (Fig. 11's knee)

    def dp_config(self, flow: FlowConfig) -> DpConfig:
        if flow.uses_parallel_multiplier:
            return DpConfig(
                width=self.dp_width,
                pack=flow.pack_factor,
                dup=self.adder_tree_dup,
            )
        return DpConfig(width=self.dp_width, pack=1, dup=1)


#: The paper's tensor-core configuration (shared default).
DEFAULT_CORE = TensorCoreConfig()


def octet_cycles(
    flow: FlowConfig,
    trace: OctetTrace,
    arch: OctetArch = DEFAULT_OCTET_ARCH,
    core: TensorCoreConfig = DEFAULT_CORE,
) -> int:
    """End-to-end cycles for one octet's traced workload."""
    if not trace.tile_issues:
        raise ConfigError("trace carries no tile issues")
    dp = core.dp_config(flow)
    compute = 0
    for outputs, k_span in trace.tile_issues:
        per_dp_outputs = math.ceil(outputs / arch.dp_units)
        breakdown = cycles_for(dp, TileWork(per_dp_outputs, k_span))
        compute += max(breakdown.mul_cycles, breakdown.adder_cycles)
    fetch = math.ceil(trace.fetch_instructions / arch.fetch_ports)
    return PIPELINE_FILL + max(compute, fetch)


def dp_busy_cycles(
    flow: FlowConfig,
    trace: OctetTrace,
    arch: OctetArch = DEFAULT_OCTET_ARCH,
    core: TensorCoreConfig = DEFAULT_CORE,
) -> int:
    """Cycles the DP units are actually issuing (for energy accounting)."""
    dp = core.dp_config(flow)
    busy = 0
    for outputs, k_span in trace.tile_issues:
        per_dp_outputs = math.ceil(outputs / arch.dp_units)
        breakdown = cycles_for(dp, TileWork(per_dp_outputs, k_span))
        busy += max(breakdown.mul_cycles, breakdown.adder_cycles)
    return busy
