"""Operand buffers inside the tensor core (paper Fig. 3(d), Fig. 4).

Each octet's compute path stages operands in small buffers: two A
buffers (one 2x4 FP16 tile each, shared by four threads) and one B
buffer (a 4x4 tile) shared by the whole octet.  The packing-direction
argument of Section III is entirely about whether these buffers can
*reuse* staged data: ``k``-packed weights force activation evictions
(Fig. 4(b)) while ``n``-packed weights let one staged A tile serve
every weight in a word (Fig. 4(c)).

:class:`OperandBuffer` is a fully associative LRU buffer over abstract
element keys; a miss counts one register-file beat and possibly one
eviction.  The octet simulator drives it with real access traces, so
the Fig. 7(a) RF numbers are measured, not assumed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import SimulationError


@dataclass
class BufferStats:
    """Hit/miss/eviction counters of one buffer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


@dataclass
class OperandBuffer:
    """A small fully-associative LRU operand buffer.

    Attributes:
        name: diagnostic label ("A buffer", "B buffer").
        capacity: entries the buffer can hold (16-bit beats).
    """

    name: str
    capacity: int
    stats: BufferStats = field(default_factory=BufferStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(f"{self.name}: capacity must be >= 1")

    def access(self, key: Hashable) -> bool:
        """Touch ``key``; returns True on hit, False on miss (RF fetch)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = True
        return False

    def invalidate(self) -> None:
        """Drop all staged entries (e.g. at a tile boundary)."""
        self._entries.clear()

    def resident(self, key: Hashable) -> bool:
        return key in self._entries

    def occupancy(self) -> int:
        return len(self._entries)
