"""Trace-driven octet simulator: register-file traffic per flow.

This is the reproduction of the paper's "custom simulator in Python to
monitor memory access patterns" (Section V).  Each flow's loop nest is
executed literally: every operand-element touch goes through the
octet's operand buffers (:mod:`repro.simt.buffers`); buffer misses
count register-file beats, evictions are recorded, and operand-fetch
*instructions* are counted separately (the Fig. 4(a) overhead).

The hardware configuration mirrors Fig. 3(d): two A buffers of one
2x4 FP16 tile each (16 beats combined), a shared B buffer of one 4x4
tile (16 beats), and two DP-4 units per octet.  Partial sums live in
the register file for the weight-stationary flows and in the DP
accumulators for PacQ's output-stationary flow.

Loop nests
----------
* Standard / W16A16 (weight-stationary movement, Fig. 3(c)): for each
  ``(kt, nt)`` the B tile is staged once; A tiles stream over ``mt``;
  psums round-trip through the RF once per k-tile.
* ``P(Bx)k``: a B tile is four packed words covering ``k = x`` for
  four ``n`` columns.  Each word is consumed in ``x / 4`` DP-4 passes;
  every pass issues its own A-fetch instruction.  Pass order is
  k-chunk-major so a staged A chunk serves all four words before the
  next chunk evicts it (the fields of a fetched word are latched).
  Whenever the tile's A footprint exceeds the A buffers (INT2), the
  trace thrashes and the extra RF reads are *measured*.
* PacQ ``P(Bx)n``: output-stationary movement; a B tile is four words
  covering ``k = 4`` and ``x`` output columns; one staged A tile
  serves all ``x`` columns (the parallel multiplier consumes one
  activation against a whole word) and psums never leave the DP
  accumulators until the final write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.simt.buffers import OperandBuffer
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.warp import OctetWorkload

#: Elements along one tile edge consumed by a DP-4 pass.
TILE = 4


@dataclass(frozen=True)
class OctetArch:
    """Per-octet hardware parameters (Fig. 3(d) / Table I)."""

    a_buffer_beats: int = 16  #: two 2x4 FP16 tiles
    b_buffer_beats: int = 16  #: one 4x4 tile (elements or packed words)
    dp_units: int = 2
    fetch_ports: int = 2

    def __post_init__(self) -> None:
        if min(self.a_buffer_beats, self.b_buffer_beats, self.dp_units) < 1:
            raise ConfigError(f"invalid octet architecture: {self}")


#: The paper's octet configuration (shared default for all tracers).
DEFAULT_OCTET_ARCH = OctetArch()


@dataclass
class OctetTrace:
    """Measured register-file / instruction activity of one octet GEMM."""

    a_reads: int = 0
    b_reads: int = 0
    c_reads: int = 0
    c_writes: int = 0
    fetch_instructions: int = 0
    evictions: int = 0
    products: int = 0
    outputs: int = 0
    tile_issues: list[tuple[int, int]] = field(default_factory=list)
    #: each entry: (outputs_in_tile, k_span_of_tile) for the cycle model

    @property
    def rf_total(self) -> int:
        return self.a_reads + self.b_reads + self.c_reads + self.c_writes


def _check_workload(flow: FlowConfig, work: OctetWorkload) -> None:
    if work.m % TILE or work.n % TILE or work.k % TILE:
        raise ConfigError(f"octet workload {work} is not 4x4x4-tileable")
    pack = flow.pack_factor
    if flow.kind is FlowKind.PACKED_K and work.k % pack:
        raise ConfigError(f"k={work.k} not divisible by pack factor {pack}")
    if flow.kind is FlowKind.PACQ and work.n % pack:
        raise ConfigError(f"n={work.n} not divisible by pack factor {pack}")


def simulate_octet(
    flow: FlowConfig, work: OctetWorkload, arch: OctetArch = DEFAULT_OCTET_ARCH
) -> OctetTrace:
    """Run one octet's GEMM under ``flow`` and measure its activity."""
    _check_workload(flow, work)
    if flow.kind is FlowKind.STANDARD_DEQUANT:
        return _trace_weight_stationary(work, arch, pack=1)
    if flow.kind is FlowKind.PACKED_K:
        return _trace_packed_k(work, arch, pack=flow.pack_factor)
    return _trace_pacq(work, arch, pack=flow.pack_factor)


def _trace_weight_stationary(
    work: OctetWorkload, arch: OctetArch, pack: int
) -> OctetTrace:
    """Fig. 3(c): WS tile movement, OS tile computation, FP16 operands."""
    del pack  # weights are FP16 beats after dequantization
    trace = OctetTrace()
    a_buf = OperandBuffer("A", arch.a_buffer_beats)
    b_buf = OperandBuffer("B", arch.b_buffer_beats)

    for kt in range(work.k // TILE):
        for nt in range(work.n // TILE):
            trace.fetch_instructions += 1  # B tile fetch
            for kk in range(TILE):
                for nn in range(TILE):
                    if not b_buf.access(("B", kt * TILE + kk, nt * TILE + nn)):
                        trace.b_reads += 1
            for mt in range(work.m // TILE):
                trace.fetch_instructions += 1  # A tile fetch
                for mm in range(TILE):
                    for kk in range(TILE):
                        if not a_buf.access(("A", mt * TILE + mm, kt * TILE + kk)):
                            trace.a_reads += 1
                # Partial sums round-trip through the RF per k-tile.
                if kt > 0:
                    trace.c_reads += TILE * TILE
                    trace.fetch_instructions += 1
                trace.c_writes += TILE * TILE
                trace.fetch_instructions += 1
                trace.products += TILE * TILE * TILE
                trace.tile_issues.append((TILE * TILE, TILE))
    trace.outputs = work.outputs
    trace.evictions = a_buf.stats.evictions + b_buf.stats.evictions
    return trace


def _trace_packed_k(work: OctetWorkload, arch: OctetArch, pack: int) -> OctetTrace:
    """``P(Bx)k``: packed words along k, WS movement, serial activation use."""
    trace = OctetTrace()
    a_buf = OperandBuffer("A", arch.a_buffer_beats)
    b_buf = OperandBuffer("B", arch.b_buffer_beats)
    chunks_per_word = pack // TILE  # DP-4 passes to drain one word

    for kwt in range(work.k // pack):  # one word-row of B per tile step
        for nt in range(work.n // TILE):
            trace.fetch_instructions += 1  # B tile fetch (4 packed words)
            for nn in range(TILE):
                if not b_buf.access(("Bw", kwt, nt * TILE + nn)):
                    trace.b_reads += 1
            for mt in range(work.m // TILE):
                # k-chunk-major drain: a staged A chunk serves all four
                # words before the next chunk evicts it; each (chunk,
                # word) pass still issues its own A-fetch instruction —
                # the Fig. 4(a) overhead is instructions, and becomes
                # data refetch whenever the footprint exceeds the
                # buffers (measured via the LRU, not assumed).
                for chunk in range(chunks_per_word):
                    for _nn in range(TILE):
                        trace.fetch_instructions += 1  # A fetch per pass
                        for mm in range(TILE):
                            for kk in range(TILE):
                                k_index = kwt * pack + chunk * TILE + kk
                                if not a_buf.access(("A", mt * TILE + mm, k_index)):
                                    trace.a_reads += 1
                        # One pass: 4 m-rows x 4 k against one n column.
                        trace.products += TILE * TILE
                if kwt > 0:
                    trace.c_reads += TILE * TILE
                    trace.fetch_instructions += 1
                trace.c_writes += TILE * TILE
                trace.fetch_instructions += 1
                trace.tile_issues.append((TILE * TILE, pack))
    trace.outputs = work.outputs
    trace.evictions = a_buf.stats.evictions + b_buf.stats.evictions
    return trace


def _trace_pacq(work: OctetWorkload, arch: OctetArch, pack: int) -> OctetTrace:
    """PacQ ``P(Bx)n``: OS movement + compute, parallel activation reuse."""
    trace = OctetTrace()
    a_buf = OperandBuffer("A", arch.a_buffer_beats)
    b_buf = OperandBuffer("B", arch.b_buffer_beats)

    for nt in range(work.n // pack):  # each word covers `pack` outputs
        for mt in range(work.m // TILE):
            for kt in range(work.k // TILE):
                trace.fetch_instructions += 1  # B tile: 4 words (k x pack)
                for kk in range(TILE):
                    if not b_buf.access(("Bw", kt * TILE + kk, nt)):
                        trace.b_reads += 1
                trace.fetch_instructions += 1  # one A tile fetch, reused
                for mm in range(TILE):
                    for kk in range(TILE):
                        if not a_buf.access(("A", mt * TILE + mm, kt * TILE + kk)):
                            trace.a_reads += 1
                trace.products += TILE * TILE * pack
                trace.tile_issues.append((TILE * pack, TILE))
            # Outputs leave the DP accumulators exactly once.
            trace.c_writes += TILE * pack
            trace.fetch_instructions += 1
    trace.outputs = work.outputs
    trace.evictions = a_buf.stats.evictions + b_buf.stats.evictions
    return trace
