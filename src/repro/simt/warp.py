"""Warp -> octet workload decomposition (paper Fig. 3(a)/(b)).

A warp-level ``mma.sync.m16n16k16`` is distributed over four octets
(groups of eight threads).  Each octet owns one 8x8 quadrant of C and
therefore consumes an ``8 x 16`` slab of A and a ``16 x 8`` slab of B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simt.instruction import OCTETS_PER_WARP, MmaShape


@dataclass(frozen=True)
class OctetWorkload:
    """The sub-GEMM one octet executes.

    Attributes:
        m: C-quadrant rows handled by the octet.
        n: C-quadrant columns.
        k: full reduction depth (shared by all octets).
        m_offset / n_offset: quadrant position inside the warp tile.
    """

    m: int
    n: int
    k: int
    m_offset: int = 0
    n_offset: int = 0

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def outputs(self) -> int:
        return self.m * self.n


def decompose(shape: MmaShape) -> list[OctetWorkload]:
    """Split a warp MMA into its four octet workloads.

    The 16x16 C tile splits into 2x2 quadrants of 8x8; each octet gets
    one quadrant and the full k extent, per Fig. 3(b).
    """
    if shape.m % 2 or shape.n % 2:
        raise ConfigError(f"cannot quadrant {shape.name} across octets")
    half_m, half_n = shape.m // 2, shape.n // 2
    workloads = []
    for qm in range(2):
        for qn in range(2):
            workloads.append(
                OctetWorkload(
                    m=half_m,
                    n=half_n,
                    k=shape.k,
                    m_offset=qm * half_m,
                    n_offset=qn * half_n,
                )
            )
    assert len(workloads) == OCTETS_PER_WARP
    assert sum(w.macs for w in workloads) == shape.macs
    return workloads
