"""Cycle-level SIMT / tensor-core simulator (paper Sections II-III, V).

* :mod:`repro.simt.instruction` — warp MMA descriptors.
* :mod:`repro.simt.warp` — warp -> octet decomposition (Fig. 3).
* :mod:`repro.simt.buffers` — LRU operand buffers (Fig. 4).
* :mod:`repro.simt.flows` — the three execution flows.
* :mod:`repro.simt.octet` — trace-driven RF traffic measurement.
* :mod:`repro.simt.tensorcore` — pipeline cycle model.
* :mod:`repro.simt.memoryhier` — L1/L2/DRAM traffic + general core.
* :mod:`repro.simt.sm` — SM assembly and full-GEMM simulation.
"""

from repro.simt.buffers import BufferStats, OperandBuffer
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.instruction import MMA_M16N16K16, OCTET_SIZE, WARP_SIZE, MmaShape
from repro.simt.memoryhier import (
    GemmShape,
    GeneralCoreWork,
    general_core_work,
    hierarchy_traffic,
    weight_beats,
)
from repro.simt.octet import OctetArch, OctetTrace, simulate_octet
from repro.simt.sm import (
    GemmSimConfig,
    MachineConfig,
    dp_busy_cycles_for_gemm,
    simulate_gemm,
)
from repro.simt.stats import MemTraffic, RfTraffic, SimStats
from repro.simt.tensorcore import TensorCoreConfig, dp_busy_cycles, octet_cycles
from repro.simt.warp import OctetWorkload, decompose

__all__ = [
    "BufferStats",
    "FlowConfig",
    "FlowKind",
    "GemmShape",
    "GemmSimConfig",
    "GeneralCoreWork",
    "MMA_M16N16K16",
    "MachineConfig",
    "MemTraffic",
    "MmaShape",
    "OCTET_SIZE",
    "OctetArch",
    "OctetTrace",
    "OctetWorkload",
    "OperandBuffer",
    "RfTraffic",
    "SimStats",
    "TensorCoreConfig",
    "WARP_SIZE",
    "decompose",
    "dp_busy_cycles",
    "dp_busy_cycles_for_gemm",
    "general_core_work",
    "hierarchy_traffic",
    "octet_cycles",
    "simulate_gemm",
    "simulate_octet",
    "weight_beats",
]
