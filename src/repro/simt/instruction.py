"""Warp-level MMA instruction descriptors (paper Fig. 3(a))."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Threads per warp on Volta-class SIMT hardware.
WARP_SIZE = 32
#: Threads per octet (a warp splits into four octets, Fig. 3(b)).
OCTET_SIZE = 8
#: Octets per warp.
OCTETS_PER_WARP = WARP_SIZE // OCTET_SIZE


@dataclass(frozen=True)
class MmaShape:
    """Shape of one warp-level ``mma.sync`` instruction.

    ``mma.sync.m16n16k16`` computes ``C[m, n] += A[m, k] @ B[k, n]``
    with ``m = n = k = 16`` across one warp.
    """

    m: int = 16
    n: int = 16
    k: int = 16

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ConfigError(f"invalid MMA shape: {self}")

    @property
    def name(self) -> str:
        return f"mma.sync.m{self.m}n{self.n}k{self.k}"

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def outputs(self) -> int:
        return self.m * self.n


#: The instruction the paper's examples are built around.
MMA_M16N16K16 = MmaShape(16, 16, 16)
