"""The three GEMM execution flows the paper compares.

* ``STANDARD_DEQUANT`` — Fig. 1(a): weights travel packed through
  DRAM/L2, are unpacked + dequantized to FP16 by the general core at
  the L1 boundary, and the tensor core runs a plain W16A16 GEMM with
  weight-stationary tile movement (Fig. 3(c)).
* ``PACKED_K`` — the hyper-asymmetric baseline ``P(Bx)k``: weights
  stay packed into the register file and tensor core, but are packed
  along ``k``, forcing one activation-fetch instruction per packed
  field (Fig. 4(a)) and preventing use of the parallel multiplier
  (the packed weights multiply *different* activations).
* ``PACQ`` — the proposal ``P(Bx)n``: weights packed along ``n``,
  output-stationary tile movement and computation, parallel FP-INT
  multipliers with dup-2 adder trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class FlowKind(enum.Enum):
    """Execution flow selector."""

    STANDARD_DEQUANT = "standard"
    PACKED_K = "packed_k"
    PACQ = "pacq"


@dataclass(frozen=True)
class FlowConfig:
    """A flow plus the weight precision it runs at.

    ``weight_bits == 16`` is only legal for the standard flow (the
    W16A16 reference); hyper-asymmetric flows take 4 or 2.
    """

    kind: FlowKind
    weight_bits: int = 4

    def __post_init__(self) -> None:
        if self.kind is FlowKind.STANDARD_DEQUANT:
            if self.weight_bits not in (2, 4, 16):
                raise ConfigError(f"standard flow: bad precision INT{self.weight_bits}")
        elif self.weight_bits not in (2, 4):
            raise ConfigError(
                f"{self.kind.value} flow requires INT4/INT2, got INT{self.weight_bits}"
            )

    @property
    def pack_factor(self) -> int:
        """Weights per INT16 word (1 when weights are not packed)."""
        if self.weight_bits == 16:
            return 1
        return 16 // self.weight_bits

    @property
    def weights_packed_in_rf(self) -> bool:
        """Do packed words reach the register file un-expanded?"""
        return self.kind is not FlowKind.STANDARD_DEQUANT

    @property
    def uses_parallel_multiplier(self) -> bool:
        """Only ``n``-packed weights can share one activation per cycle."""
        return self.kind is FlowKind.PACQ

    @property
    def label(self) -> str:
        if self.kind is FlowKind.STANDARD_DEQUANT:
            if self.weight_bits == 16:
                return "standard W16A16"
            return f"standard dequant (INT{self.weight_bits})"
        if self.kind is FlowKind.PACKED_K:
            return f"P(B{self.pack_factor})k"
        return f"PacQ P(B{self.pack_factor})n"
