"""Memory-hierarchy traffic and general-core overhead per flow.

Models the DRAM -> L2 -> L1 path of Fig. 1 for a full ``[m, k] x
[k, n]`` GEMM.  Weights are stored packed in DRAM under **every** flow
(that is the point of weight-only quantization); the flows differ in
where the packed words expand:

* standard dequant: the general core unpacks + dequantizes at the L1
  boundary (Fig. 1(a)), so L1-and-above weight traffic is FP16 and the
  general core spends unpack/dequant instructions and extra RF writes;
* ``P(Bx)k`` / PacQ: packed words flow through L1 and the RF
  unexpanded (Fig. 1(b)).

Traffic is counted in 16-bit beats with classic tiled-GEMM reuse:
with an L1-resident threadblock tile of ``TB x TB`` outputs, each A
element is fetched from L2 once per column-tile and each B beat once
per row-tile (at least once).  The Table II scale fetches of the
general core are also priced here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.quant.groups import GroupSpec
from repro.simt.flows import FlowConfig, FlowKind
from repro.simt.stats import MemTraffic

#: Threadblock tile edge resident in L1 (outputs per side).
DEFAULT_TB_TILE = 64
#: General-core instructions to unpack one packed word.
UNPACK_INSTRS_PER_WORD = 1
#: General-core instructions to dequantize one weight (scale multiply).
DEQUANT_INSTRS_PER_WEIGHT = 1


@dataclass(frozen=True)
class GemmShape:
    """Problem size ``C[m, n] += A[m, k] @ B[k, n]``."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ConfigError(f"invalid GEMM shape: {self}")

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def name(self) -> str:
        return f"m{self.m}n{self.n}k{self.k}"


@dataclass(frozen=True)
class GeneralCoreWork:
    """Instructions the general core contributes to one GEMM."""

    dequant_instructions: int
    scale_fetches: int
    rf_writes: int  #: dequantized FP16 weights written back to the RF
    rf_reads: int  #: packed words read by the general core


def weight_beats(shape: GemmShape, weight_bits: int) -> int:
    """Packed weight-matrix size in 16-bit beats."""
    return math.ceil(shape.k * shape.n * weight_bits / 16)


def hierarchy_traffic(
    flow: FlowConfig, shape: GemmShape, tb_tile: int = DEFAULT_TB_TILE
) -> MemTraffic:
    """L1/L2/DRAM beats of one GEMM under ``flow``."""
    a_beats = shape.m * shape.k
    c_beats = shape.m * shape.n
    packed_b = weight_beats(shape, flow.weight_bits)
    fp16_b = shape.k * shape.n

    # Reuse factors: every element enters a level at least once; the
    # opposing dimension divided by the tile edge bounds refetches.
    a_refetch = max(1.0, shape.n / tb_tile)
    b_refetch = max(1.0, shape.m / tb_tile)

    dram = MemTraffic(
        l1=0.0, l2=0.0, dram=float(a_beats + packed_b + c_beats)
    )
    l2 = a_beats * a_refetch + packed_b * b_refetch + c_beats
    if flow.kind is FlowKind.STANDARD_DEQUANT and flow.weight_bits != 16:
        # Packed words cross L2 -> general core, FP16 expansions enter L1.
        l1 = a_beats * a_refetch + fp16_b * b_refetch + c_beats
    elif flow.weight_bits == 16:
        l1 = a_beats * a_refetch + fp16_b * b_refetch + c_beats
        l2 = a_beats * a_refetch + fp16_b * b_refetch + c_beats
        dram = MemTraffic(dram=float(a_beats + fp16_b + c_beats))
    else:
        l1 = a_beats * a_refetch + packed_b * b_refetch + c_beats
    return MemTraffic(l1=float(l1), l2=float(l2), dram=dram.dram)


def general_core_work(
    flow: FlowConfig,
    shape: GemmShape,
    group: GroupSpec | None = None,
) -> GeneralCoreWork:
    """Unpack/dequant/scale work of the general core under ``flow``.

    For the dequant flow every packed word is unpacked and every weight
    dequantized.  For PacQ the general core applies Eq. (1)'s
    correction and the group scale once per packed output word per
    warp MMA step (the DP accumulators drain at MMA granularity).  A
    ``k``-only group gives every lane of the word its own scale — one
    fetch per lane per correction — while an ``n``-spanning group
    (``g[32, 4]``) shares a single broadcast scale across the word:
    exactly the fetch reduction the paper's Table II modification
    targets (Fig. 6, step 3).
    """
    pack = flow.pack_factor
    if flow.kind is FlowKind.STANDARD_DEQUANT and flow.weight_bits != 16:
        words = weight_beats(shape, flow.weight_bits)
        weights = shape.k * shape.n
        return GeneralCoreWork(
            dequant_instructions=words * UNPACK_INSTRS_PER_WORD
            + weights * DEQUANT_INSTRS_PER_WEIGHT,
            scale_fetches=0,
            rf_writes=weights,
            rf_reads=words,
        )
    if flow.kind is FlowKind.PACQ:
        spec = group if group is not None else GroupSpec(128, 1)
        fetches_per_word = spec.scale_fetches_per_packed_word(pack)
        mma_k_steps = max(1, math.ceil(shape.k / 16))
        mma_m_steps = max(1, math.ceil(shape.m / 16))
        output_words = shape.n // pack
        scale_fetches = (
            mma_m_steps * mma_k_steps * output_words * fetches_per_word
        )
        return GeneralCoreWork(
            dequant_instructions=0,
            scale_fetches=scale_fetches,
            rf_writes=0,
            rf_reads=0,
        )
    return GeneralCoreWork(0, 0, 0, 0)
