"""Statistics containers for the SIMT simulator.

Every simulation layer (octet, tensor core, SM, full GEMM) reports
into these dataclasses; they add component-wise so per-tile counts
aggregate into workload totals.  All traffic is counted in **beats**
of 16 bits (one FP16 element or one packed INT16 word), matching the
granularity the paper's Fig. 7(a) normalizes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RfTraffic:
    """Register-file traffic split by operand, in 16-bit beats."""

    a_reads: int = 0
    b_reads: int = 0
    c_reads: int = 0
    c_writes: int = 0

    @property
    def total(self) -> int:
        return self.a_reads + self.b_reads + self.c_reads + self.c_writes

    @property
    def reads(self) -> int:
        return self.a_reads + self.b_reads + self.c_reads

    def __add__(self, other: "RfTraffic") -> "RfTraffic":
        return RfTraffic(
            self.a_reads + other.a_reads,
            self.b_reads + other.b_reads,
            self.c_reads + other.c_reads,
            self.c_writes + other.c_writes,
        )

    def scaled(self, factor: int) -> "RfTraffic":
        return RfTraffic(
            self.a_reads * factor,
            self.b_reads * factor,
            self.c_reads * factor,
            self.c_writes * factor,
        )


@dataclass
class MemTraffic:
    """Beats moved at each level below the register file."""

    l1: float = 0.0
    l2: float = 0.0
    dram: float = 0.0

    def __add__(self, other: "MemTraffic") -> "MemTraffic":
        return MemTraffic(self.l1 + other.l1, self.l2 + other.l2, self.dram + other.dram)

    def scaled(self, factor: float) -> "MemTraffic":
        return MemTraffic(self.l1 * factor, self.l2 * factor, self.dram * factor)


@dataclass
class SimStats:
    """Complete result of simulating one workload under one flow.

    Attributes:
        cycles: end-to-end cycles (tensor-core pipeline critical path).
        rf: register-file traffic in beats.
        mem: L1/L2/DRAM traffic in beats.
        fetch_instructions: operand fetch instructions issued.
        dequant_instructions: general-core unpack/dequant instructions
            (standard flow only).
        scale_fetches: quantization-scale fetches by the general core.
        products: elementwise multiplies performed.
        outputs: C elements produced.
        buffer_evictions: operand-buffer evictions observed.
    """

    cycles: int = 0
    rf: RfTraffic = field(default_factory=RfTraffic)
    mem: MemTraffic = field(default_factory=MemTraffic)
    fetch_instructions: int = 0
    dequant_instructions: int = 0
    scale_fetches: int = 0
    products: int = 0
    outputs: int = 0
    buffer_evictions: int = 0

    def __add__(self, other: "SimStats") -> "SimStats":
        return SimStats(
            cycles=self.cycles + other.cycles,
            rf=self.rf + other.rf,
            mem=self.mem + other.mem,
            fetch_instructions=self.fetch_instructions + other.fetch_instructions,
            dequant_instructions=self.dequant_instructions + other.dequant_instructions,
            scale_fetches=self.scale_fetches + other.scale_fetches,
            products=self.products + other.products,
            outputs=self.outputs + other.outputs,
            buffer_evictions=self.buffer_evictions + other.buffer_evictions,
        )

    def macs(self) -> int:
        """Multiply-accumulate count (equals products for GEMM)."""
        return self.products
