"""Bit-exact IEEE-754 binary16 arithmetic substrate.

This package models the FP16 datapaths the PacQ paper builds on:

* :mod:`repro.fp.fp16` — format codec (fields, encode/decode, RNE).
* :mod:`repro.fp.mul` — the baseline FP16 multiplier of Fig. 5(a).
* :mod:`repro.fp.add` — the FP16 adder used by DP-4 adder trees.
* :mod:`repro.fp.dotprod` — functional DP-4 / dot-product references.
* :mod:`repro.fp.bf16` — bfloat16 codec + multiplier (extension).
* :mod:`repro.fp.vec` — vectorized array counterparts of the scalar
  kernels (whole-ndarray bit-exact codec, mul/add, tree reductions and
  parallel FP-INT lanes); the scalar modules remain the oracle.
"""

from repro.fp import bf16, vec
from repro.fp.add import fp16_add, fp16_add_float, fp16_sum, fp16_tree_sum
from repro.fp.dotprod import (
    dot_fp16,
    dot_fp16_batch,
    dot_fp32,
    dot_fp32_batch,
    dp4_fp16,
)
from repro.fp.fp16 import (
    Fp16,
    combine,
    from_float,
    from_int_exact,
    is_finite,
    is_inf,
    is_nan,
    is_normalized,
    is_subnormal,
    is_zero,
    significand,
    split,
    to_float,
)
from repro.fp.mul import MulTrace, fp16_mul, fp16_mul_float, fp16_mul_trace

__all__ = [
    "Fp16",
    "MulTrace",
    "bf16",
    "vec",
    "combine",
    "dot_fp16",
    "dot_fp16_batch",
    "dot_fp32",
    "dot_fp32_batch",
    "dp4_fp16",
    "fp16_add",
    "fp16_add_float",
    "fp16_mul",
    "fp16_mul_float",
    "fp16_mul_trace",
    "fp16_sum",
    "fp16_tree_sum",
    "from_float",
    "from_int_exact",
    "is_finite",
    "is_inf",
    "is_nan",
    "is_normalized",
    "is_subnormal",
    "is_zero",
    "significand",
    "split",
    "to_float",
]
