"""Bit-level model of an FP16 adder (used by DP-4 adder trees).

The DP-4 units in both the baseline tensor core and PacQ reduce
multiplier outputs through trees of FP16 adders (paper Table I:
``FP-16 DP-4 (baseline) = 4 FP16 MUL, 4 FP16 adders``; PacQ doubles the
adder trees).  This module models one such adder: operand alignment,
significand add/subtract, renormalization and round-to-nearest-even.

Like :mod:`repro.fp.mul` it implements full IEEE semantics and is
validated against ``numpy.float16`` addition in the tests.  The
implementation computes the exact sum of the two operand values as a
scaled integer before the single rounding step, which is equivalent to
a hardware datapath with sufficient guard/round/sticky bits.
"""

from __future__ import annotations

from repro.fp import fp16
from repro.fp.fp16 import (
    BIAS,
    EXPONENT_SPECIAL,
    MANTISSA_BITS,
    MANTISSA_MASK,
    NAN,
    combine,
    is_inf,
    is_nan,
    is_zero,
    round_to_nearest_even,
    split,
)

#: Unbiased exponent assigned to the LSB of a subnormal significand.
_SUBNORMAL_LSB_EXP = -24


def _as_scaled_int(bits: int) -> tuple[int, int]:
    """Decode finite FP16 bits to ``(signed integer, lsb_exponent)``.

    The value equals ``signed_integer * 2**lsb_exponent`` exactly.
    """
    sign, exponent, mantissa = split(bits)
    if exponent == 0:
        magnitude = mantissa
        lsb = _SUBNORMAL_LSB_EXP
    else:
        magnitude = (1 << MANTISSA_BITS) | mantissa
        lsb = (exponent - BIAS) - MANTISSA_BITS
    return (-magnitude if sign else magnitude), lsb


def _encode_exact_sum(total: int, lsb: int) -> int:
    """Round an exact ``total * 2**lsb`` value into FP16 bits."""
    if total == 0:
        return combine(0, 0, 0)
    sign = 1 if total < 0 else 0
    magnitude = -total if total < 0 else total

    # Normalize: find MSB position to derive the unbiased exponent.
    msb = magnitude.bit_length() - 1
    exp_unbiased = msb + lsb
    biased = exp_unbiased + BIAS

    if biased >= 1:
        drop = msb - MANTISSA_BITS
        rounded = round_to_nearest_even(magnitude, drop)
        if rounded >= (1 << (MANTISSA_BITS + 1)):
            rounded >>= 1
            biased += 1
        if biased >= EXPONENT_SPECIAL:
            return combine(sign, EXPONENT_SPECIAL, 0)  # overflow
        return combine(sign, biased, rounded & MANTISSA_MASK)

    # Subnormal result: align LSB to 2**-24.
    drop = _SUBNORMAL_LSB_EXP - lsb
    rounded = round_to_nearest_even(magnitude, drop) if drop > 0 else magnitude << -drop
    if rounded >= (1 << MANTISSA_BITS):
        return combine(sign, 1, rounded & MANTISSA_MASK)
    return combine(sign, 0, rounded)


def fp16_add(a_bits: int, b_bits: int) -> int:
    """Add two FP16 bit patterns; returns the FP16 result bits."""
    if is_nan(a_bits) or is_nan(b_bits):
        return NAN
    if is_inf(a_bits) or is_inf(b_bits):
        if is_inf(a_bits) and is_inf(b_bits):
            if split(a_bits)[0] != split(b_bits)[0]:
                return NAN  # inf + -inf
            return a_bits
        return a_bits if is_inf(a_bits) else b_bits
    if is_zero(a_bits) and is_zero(b_bits):
        # IEEE: -0 + -0 = -0, otherwise +0 (round-to-nearest modes).
        if split(a_bits)[0] == 1 and split(b_bits)[0] == 1:
            return combine(1, 0, 0)
        return combine(0, 0, 0)

    va, la = _as_scaled_int(a_bits)
    vb, lb = _as_scaled_int(b_bits)
    lsb = min(la, lb)
    total = (va << (la - lsb)) + (vb << (lb - lsb))
    if total == 0:
        return combine(0, 0, 0)  # exact cancellation -> +0 in RNE
    return _encode_exact_sum(total, lsb)


def fp16_add_float(a: float, b: float) -> float:
    """Convenience wrapper: add two floats through the FP16 datapath."""
    return fp16.to_float(fp16_add(fp16.from_float(a), fp16.from_float(b)))


def fp16_sum(values_bits: list[int]) -> int:
    """Left-to-right FP16 accumulation of a list of bit patterns."""
    if not values_bits:
        return combine(0, 0, 0)
    acc = values_bits[0]
    for bits in values_bits[1:]:
        acc = fp16_add(acc, bits)
    return acc


def fp16_tree_sum(values_bits: list[int]) -> int:
    """Balanced-tree FP16 reduction, as an adder tree performs it.

    DP-4 units reduce their four products pairwise; the association
    order matters in FP16, so tests distinguish this from
    :func:`fp16_sum`.
    """
    if not values_bits:
        return combine(0, 0, 0)
    level = list(values_bits)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(fp16_add(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
