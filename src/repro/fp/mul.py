"""Bit-level model of the baseline FP16 multiplier (paper Fig. 5(a)).

The standard datapath computes, for normalized operands::

    s_out = s_a XOR s_b
    e_out = e_a + e_b - bias (+1 on mantissa overflow)
    m_out = round( (1.m_a) * (1.m_b) )

The 11x11-bit significand product is formed by an array of partial
products reduced through 10 parallel 16-bit adders (paper Table I:
``INT11 MUL (baseline) = 10 INT16 adders``); the result is normalized
(1-bit shift at most) and rounded to nearest-even.

:func:`fp16_mul` implements the *complete* IEEE behaviour (specials,
subnormal inputs and outputs, overflow to infinity) and is validated
bit-for-bit against ``numpy.float16`` multiplication in the tests.
:class:`MulTrace` exposes the internal datapath signals so the parallel
FP-INT multiplier of :mod:`repro.multiplier.parallel` can document
exactly which sub-circuits it reuses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fp import fp16
from repro.fp.fp16 import (
    BIAS,
    EXPONENT_SPECIAL,
    MANTISSA_BITS,
    MANTISSA_MASK,
    NAN,
    combine,
    is_inf,
    is_nan,
    is_zero,
    round_to_nearest_even,
    split,
)


@dataclass(frozen=True)
class MulTrace:
    """Internal signals of one FP16 multiply, for inspection/tests.

    Attributes mirror the wires in Fig. 5(a): the raw 22-bit significand
    product, whether the 1-bit normalization shift fired, and the
    pre/post rounding mantissas.
    """

    sign: int
    raw_product: int
    normalize_shift: int
    exponent_before_round: int
    mantissa_after_round: int
    result_bits: int


def _decompose(bits: int) -> tuple[int, int, int]:
    """Return (sign, unbiased exponent, 11-bit significand).

    Subnormal inputs are renormalized into the same ``1.m * 2**e``
    shape the array multiplier expects, so one datapath handles both.
    """
    sign, exponent, mantissa = split(bits)
    if exponent == 0:
        # Subnormal: value = mantissa * 2**-24.  Shift until hidden bit.
        exp = -14
        sig = mantissa
        while sig < (1 << MANTISSA_BITS):
            sig <<= 1
            exp -= 1
        return sign, exp, sig
    return sign, exponent - BIAS, (1 << MANTISSA_BITS) | mantissa


def _pack_result(sign: int, exponent: int, significand_22: int) -> tuple[int, MulTrace]:
    """Normalize, round and encode a 22-bit significand product.

    ``significand_22`` is the exact product of two 11-bit significands,
    valued ``significand_22 * 2**(exponent - 20)``.
    """
    raw = significand_22
    shift = 0
    if raw >= (1 << 21):  # product in [2, 4): one-bit normalization
        shift = 1
    exp_unbiased = exponent + shift
    biased = exp_unbiased + BIAS

    if biased >= 1:
        # Normalized result: keep 11 significand bits out of 21+shift.
        drop = MANTISSA_BITS + shift
        rounded = round_to_nearest_even(raw, drop)
        if rounded >= (1 << (MANTISSA_BITS + 1)):
            rounded >>= 1
            biased += 1
        if biased >= EXPONENT_SPECIAL:
            bits = combine(sign, EXPONENT_SPECIAL, 0)  # overflow -> inf
            return bits, MulTrace(sign, raw, shift, biased, 0, bits)
        bits = combine(sign, biased, rounded & MANTISSA_MASK)
        return bits, MulTrace(sign, raw, shift, biased, rounded & MANTISSA_MASK, bits)

    # Subnormal result: align to 2**-24 then round once.
    # Value = raw * 2**(exponent - 20); target ULP is 2**-24.
    total_shift = MANTISSA_BITS + shift + (1 - biased)
    if total_shift >= 24:
        rounded = 0 if total_shift > 24 else round_to_nearest_even(raw, total_shift)
    else:
        rounded = round_to_nearest_even(raw, total_shift)
    if rounded >= (1 << MANTISSA_BITS):  # rounded back into normal range
        bits = combine(sign, 1, rounded & MANTISSA_MASK)
    else:
        bits = combine(sign, 0, rounded)
    return bits, MulTrace(sign, raw, shift, 0, rounded & MANTISSA_MASK, bits)


def fp16_mul_trace(a_bits: int, b_bits: int) -> MulTrace:
    """Multiply two FP16 bit patterns, returning the full datapath trace."""
    if is_nan(a_bits) or is_nan(b_bits):
        return MulTrace(0, 0, 0, 0, 0, NAN)
    sign = (split(a_bits)[0]) ^ (split(b_bits)[0])
    if is_inf(a_bits) or is_inf(b_bits):
        if is_zero(a_bits) or is_zero(b_bits):
            return MulTrace(sign, 0, 0, 0, 0, NAN)  # inf * 0
        bits = combine(sign, EXPONENT_SPECIAL, 0)
        return MulTrace(sign, 0, 0, EXPONENT_SPECIAL, 0, bits)
    if is_zero(a_bits) or is_zero(b_bits):
        bits = combine(sign, 0, 0)
        return MulTrace(sign, 0, 0, 0, 0, bits)

    _, ea, sa = _decompose(a_bits)
    _, eb, sb = _decompose(b_bits)
    product = sa * sb  # exact 22-bit integer product
    _, trace = _pack_result(sign, ea + eb, product)
    return trace


def fp16_mul(a_bits: int, b_bits: int) -> int:
    """Multiply two FP16 bit patterns; returns the FP16 result bits."""
    return fp16_mul_trace(a_bits, b_bits).result_bits


def fp16_mul_float(a: float, b: float) -> float:
    """Convenience wrapper: multiply two floats through the FP16 datapath."""
    return fp16.to_float(fp16_mul(fp16.from_float(a), fp16.from_float(b)))
