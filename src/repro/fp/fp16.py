"""Bit-exact IEEE-754 binary16 (FP16) codec.

The PacQ paper (Section II, Fig. 2) builds its parallel FP-INT
multiplier on top of the standard FP16 format::

    value = (-1)^s * 2^(e - 15) * (1.m)      for normalized numbers

with a 1-bit sign ``s``, a 5-bit biased exponent ``e`` and a 10-bit
mantissa ``m`` whose hidden bit is 1.  Everything in
:mod:`repro.multiplier` manipulates these raw fields, so this module
provides a small, dependency-free codec with exact round-to-nearest-
even semantics, validated against :class:`numpy.float16` in the test
suite.

All functions operate on plain Python integers holding the 16 raw
bits; :class:`Fp16` is a light convenience wrapper.
"""

from __future__ import annotations

import math
import operator
import struct
from dataclasses import dataclass

from repro.errors import EncodingError

#: Number of explicit mantissa bits in binary16.
MANTISSA_BITS = 10
#: Number of exponent bits in binary16.
EXPONENT_BITS = 5
#: Exponent bias (``2**(EXPONENT_BITS - 1) - 1``).
BIAS = 15
#: All-ones exponent field, reserved for infinities and NaNs.
EXPONENT_SPECIAL = (1 << EXPONENT_BITS) - 1
#: Mask for the mantissa field.
MANTISSA_MASK = (1 << MANTISSA_BITS) - 1
#: Mask for the exponent field (pre-shift).
EXPONENT_MASK = (1 << EXPONENT_BITS) - 1

#: Raw bits of +0.0, +inf, -inf and a canonical quiet NaN.
POS_ZERO = 0x0000
NEG_ZERO = 0x8000
POS_INF = 0x7C00
NEG_INF = 0xFC00
NAN = 0x7E00

#: Largest finite binary16 value (65504.0).
MAX_FINITE = 65504.0
#: Smallest positive normalized binary16 value (2**-14).
MIN_NORMAL = 2.0 ** -14
#: Smallest positive subnormal binary16 value (2**-24).
MIN_SUBNORMAL = 2.0 ** -24


def split(bits: int) -> tuple[int, int, int]:
    """Split raw FP16 bits into ``(sign, exponent, mantissa)`` fields."""
    bits = _check_bits(bits)
    sign = (bits >> 15) & 0x1
    exponent = (bits >> MANTISSA_BITS) & EXPONENT_MASK
    mantissa = bits & MANTISSA_MASK
    return sign, exponent, mantissa


def combine(sign: int, exponent: int, mantissa: int) -> int:
    """Assemble raw FP16 bits from ``(sign, exponent, mantissa)`` fields."""
    sign, exponent, mantissa = _as_index(sign), _as_index(exponent), _as_index(mantissa)
    if sign not in (0, 1):
        raise EncodingError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= exponent <= EXPONENT_MASK:
        raise EncodingError(f"exponent field out of range: {exponent}")
    if not 0 <= mantissa <= MANTISSA_MASK:
        raise EncodingError(f"mantissa field out of range: {mantissa}")
    return (sign << 15) | (exponent << MANTISSA_BITS) | mantissa


def _as_index(value) -> int:
    """Coerce any integer-like (numpy integers included) to a plain int.

    ``operator.index`` accepts everything that implements ``__index__``
    — so array elements flow through the codec without the per-element
    ``int(...)`` conversions callers used to need.
    """
    try:
        return operator.index(value)
    except TypeError:
        raise EncodingError(f"not an integer bit pattern: {value!r}") from None


def _check_bits(bits) -> int:
    """Validate a 16-bit pattern and return it as a plain ``int``."""
    bits = _as_index(bits)
    if not 0 <= bits <= 0xFFFF:
        raise EncodingError(f"not a 16-bit pattern: {bits!r}")
    return bits


def is_nan(bits: int) -> bool:
    """True when ``bits`` encodes a NaN."""
    _, exponent, mantissa = split(bits)
    return exponent == EXPONENT_SPECIAL and mantissa != 0


def is_inf(bits: int) -> bool:
    """True when ``bits`` encodes +/- infinity."""
    _, exponent, mantissa = split(bits)
    return exponent == EXPONENT_SPECIAL and mantissa == 0


def is_zero(bits: int) -> bool:
    """True when ``bits`` encodes +/- zero."""
    _, exponent, mantissa = split(bits)
    return exponent == 0 and mantissa == 0


def is_subnormal(bits: int) -> bool:
    """True when ``bits`` encodes a (non-zero) subnormal number."""
    _, exponent, mantissa = split(bits)
    return exponent == 0 and mantissa != 0


def is_finite(bits: int) -> bool:
    """True when ``bits`` encodes a finite value (zero included)."""
    _, exponent, _ = split(bits)
    return exponent != EXPONENT_SPECIAL


def is_normalized(bits: int) -> bool:
    """True for normalized non-zero finite values (hidden bit == 1).

    The paper's hardware datapath assumes normalized operands; the
    software model uses this predicate to route subnormals through the
    slow reference path.
    """
    _, exponent, _ = split(bits)
    return 0 < exponent < EXPONENT_SPECIAL


def significand(bits: int) -> int:
    """Return the integer significand including the hidden bit.

    For a normalized value the result is ``1024 + mantissa`` (11 bits);
    for subnormals it is the raw mantissa.  Specials are rejected.
    """
    _, exponent, mantissa = split(bits)
    if exponent == EXPONENT_SPECIAL:
        raise EncodingError("significand() is undefined for inf/NaN")
    if exponent == 0:
        return mantissa
    return (1 << MANTISSA_BITS) | mantissa


def to_float(bits: int) -> float:
    """Decode raw FP16 bits into a Python float (exact)."""
    sign, exponent, mantissa = split(bits)
    sign_factor = -1.0 if sign else 1.0
    if exponent == EXPONENT_SPECIAL:
        if mantissa:
            return math.nan
        return sign_factor * math.inf
    if exponent == 0:
        return sign_factor * mantissa * MIN_SUBNORMAL
    return sign_factor * (1 + mantissa / 1024.0) * 2.0 ** (exponent - BIAS)


def round_to_nearest_even(value: int, shift: int) -> int:
    """Shift ``value`` right by ``shift`` bits, rounding to nearest even.

    This is the rounding primitive used by every datapath model.  The
    guard bit is the MSB of the dropped bits and the sticky bit ORs the
    rest, exactly as a hardware rounding unit would compute them.
    """
    if shift <= 0:
        return value << -shift
    truncated = value >> shift
    dropped = value & ((1 << shift) - 1)
    guard = (dropped >> (shift - 1)) & 1
    sticky = dropped & ((1 << (shift - 1)) - 1)
    if guard and (sticky or (truncated & 1)):
        truncated += 1
    return truncated


def from_float(value: float) -> int:
    """Encode a Python float into FP16 bits with round-to-nearest-even.

    Overflow saturates to the correctly-signed infinity (IEEE default
    rounding), underflow denormalizes and eventually flushes to a
    signed zero — the same behaviour as ``numpy.float16``.
    """
    if math.isnan(value):
        return NAN
    sign = 1 if math.copysign(1.0, value) < 0 else 0
    magnitude = abs(value)
    if math.isinf(magnitude):
        return combine(sign, EXPONENT_SPECIAL, 0)
    if magnitude == 0.0:
        return combine(sign, 0, 0)

    # Work from the exact float64 encoding so no precision is lost
    # before the single binary16 rounding step.
    bits64 = struct.unpack("<Q", struct.pack("<d", magnitude))[0]
    exp64 = (bits64 >> 52) & 0x7FF
    man64 = bits64 & ((1 << 52) - 1)
    if exp64 == 0:  # float64 subnormal: far below binary16 range
        return combine(sign, 0, 0)
    unbiased = exp64 - 1023
    significand64 = (1 << 52) | man64  # 53 bits, value = sig * 2**(unbiased-52)

    if unbiased >= -14:
        # Prospectively normalized: round 53-bit significand to 11 bits.
        rounded = round_to_nearest_even(significand64, 52 - MANTISSA_BITS)
        if rounded >= (1 << (MANTISSA_BITS + 1)):
            rounded >>= 1
            unbiased += 1
        exponent = unbiased + BIAS
        if exponent >= EXPONENT_SPECIAL:
            return combine(sign, EXPONENT_SPECIAL, 0)
        return combine(sign, exponent, rounded & MANTISSA_MASK)

    # Subnormal range: align to 2**-24 ULP and round once.
    shift = 52 - MANTISSA_BITS + (-14 - unbiased)
    if shift >= 53 + 2:  # far below half of the smallest subnormal
        rounded = 0
    else:
        rounded = round_to_nearest_even(significand64, shift)
    if rounded >= (1 << MANTISSA_BITS):  # rounded up into the normal range
        return combine(sign, 1, rounded & MANTISSA_MASK)
    return combine(sign, 0, rounded)


def from_int_exact(value: int) -> int:
    """Encode a small integer whose magnitude is exactly representable.

    The packing transform of the paper maps a signed INT4 weight ``B``
    to ``B + 1032 in [1024, 2048)``; such integers are exact in FP16
    (11-bit significand covers ``|x| <= 2048``).  Raises
    :class:`EncodingError` if the integer would round.
    """
    bits = from_float(float(value))
    if to_float(bits) != float(value):
        raise EncodingError(f"{value} is not exactly representable in FP16")
    return bits


def next_after(bits: int) -> int:
    """Return the next representable FP16 value toward +infinity.

    Used by tests to walk the representable grid.
    """
    sign, exponent, mantissa = split(bits)
    if is_nan(bits):
        return bits
    if sign == 0:
        if exponent == EXPONENT_SPECIAL:
            return bits  # +inf has no successor
        return bits + 1
    if exponent == 0 and mantissa == 0:  # -0 -> smallest positive subnormal
        return combine(0, 0, 1)
    return bits - 1


def all_finite_bits():
    """Yield every finite FP16 bit pattern (positive then negative)."""
    for sign in (0, 1):
        for exponent in range(EXPONENT_SPECIAL):
            for mantissa in range(1 << MANTISSA_BITS):
                yield combine(sign, exponent, mantissa)


@dataclass(frozen=True)
class Fp16:
    """Immutable wrapper around raw binary16 bits.

    Arithmetic helpers delegate to the bit-level datapath models so the
    wrapper stays a thin veneer; use it when object identity and
    readable reprs are worth 40 bytes per value.
    """

    bits: int

    def __post_init__(self) -> None:
        # Normalize numpy integers to plain ints so reprs/equality stay
        # canonical regardless of where the bits came from.
        object.__setattr__(self, "bits", _check_bits(self.bits))

    @classmethod
    def from_float(cls, value: float) -> "Fp16":
        return cls(from_float(value))

    @classmethod
    def from_fields(cls, sign: int, exponent: int, mantissa: int) -> "Fp16":
        return cls(combine(sign, exponent, mantissa))

    @property
    def sign(self) -> int:
        return split(self.bits)[0]

    @property
    def exponent(self) -> int:
        return split(self.bits)[1]

    @property
    def mantissa(self) -> int:
        return split(self.bits)[2]

    @property
    def value(self) -> float:
        return to_float(self.bits)

    def is_nan(self) -> bool:
        return is_nan(self.bits)

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Fp16(0x{self.bits:04x}={self.value!r})"
