"""Functional dot-product reference units (DP-4 and friends).

Volta-style tensor cores compute GEMM tiles with four-element
dot-product units (DP-4, paper Fig. 3(d)): four FP16 multipliers feed
an FP16 adder tree whose root accumulates into the partial sum.  This
module provides the *functional* (value-level) model; the cycle/energy
models live in :mod:`repro.multiplier.dp`.

Two accumulation modes are provided because real tensor cores offer
both: ``fp16`` (everything rounded at every step, as the discrete
adder tree does) and ``fp32`` (products accumulated exactly enough that
float64 accumulation is a faithful stand-in).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.fp import fp16, vec
from repro.fp.add import fp16_add, fp16_tree_sum
from repro.fp.mul import fp16_mul


def dp4_fp16(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    acc_bits: int = fp16.POS_ZERO,
) -> int:
    """One DP-4 issue: ``acc + sum(a[i] * b[i])`` fully in FP16.

    ``a_bits``/``b_bits`` hold up to four FP16 bit patterns.  Products
    are rounded individually, reduced through a balanced adder tree and
    the previous accumulator is added at the root — matching the
    baseline DP-4 datapath.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operand length mismatch")
    if len(a_bits) > 4:
        raise ValueError("DP-4 takes at most four element pairs")
    products = [fp16_mul(a, b) for a, b in zip(a_bits, b_bits, strict=False)]
    tree = fp16_tree_sum(products)
    return fp16_add(tree, acc_bits)


def dot_fp16(a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
    """Full-length dot product executed as successive DP-4 issues."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand length mismatch")
    acc = fp16.POS_ZERO
    for i in range(0, len(a_bits), 4):
        acc = dp4_fp16(a_bits[i : i + 4], b_bits[i : i + 4], acc)
    return acc


def dot_fp32(a_values: Iterable[float], b_values: Iterable[float]) -> float:
    """Dot product with FP16-rounded products and wide accumulation.

    Models tensor-core FP32-accumulate mode: each elementwise product
    is rounded to binary16, but the accumulation is wide enough to be
    exact for the lengths used here (float64 suffices).
    """
    total = 0.0
    for a, b in zip(a_values, b_values, strict=False):
        product_bits = fp16_mul(fp16.from_float(a), fp16.from_float(b))
        total += fp16.to_float(product_bits)
    return total


def dot_fp16_batch(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """Vectorized :func:`dot_fp16` over leading axes: ``[..., L] -> [...]``.

    Whole batches of dot products run through the vectorized kernel
    layer — products via :func:`repro.fp.vec.fp16_mul`, four-element
    chunks reduced by the pairwise :func:`repro.fp.vec.fp16_tree_sum`
    and chained into the accumulator exactly as successive DP-4 issues
    do — so each batch element is bit-identical to the scalar
    :func:`dot_fp16` on the same operands.
    """
    a = vec.as_bits(a_bits)
    b = vec.as_bits(b_bits)
    if a.shape != b.shape:
        raise ValueError("operand shape mismatch")
    acc = np.full(a.shape[:-1], fp16.POS_ZERO, dtype=np.uint16)
    for i in range(0, a.shape[-1], 4):
        products = vec.fp16_mul(a[..., i : i + 4], b[..., i : i + 4])
        acc = vec.fp16_add(vec.fp16_tree_sum(products, axis=-1), acc)
    return acc


def dot_fp32_batch(a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`dot_fp32` over leading axes: ``[..., L] -> [...]``.

    FP16-rounded products via the vectorized datapath, accumulated
    wide.  Equal to the scalar loop for the lengths the models use:
    sums of up to 4096 FP16-exact values are exact in float64, so the
    accumulation order cannot matter.
    """
    a = np.asarray(a_values, dtype=np.float64)
    b = np.asarray(b_values, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("operand shape mismatch")
    products = vec.fp16_mul(vec.from_float(a), vec.from_float(b))
    # detlint: ignore[D003]: exact — <= 4096 FP16-exact float64 terms (see
    # docstring), so the accumulation order cannot round.
    return vec.to_float(products).sum(axis=-1)
