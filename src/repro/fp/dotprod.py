"""Functional dot-product reference units (DP-4 and friends).

Volta-style tensor cores compute GEMM tiles with four-element
dot-product units (DP-4, paper Fig. 3(d)): four FP16 multipliers feed
an FP16 adder tree whose root accumulates into the partial sum.  This
module provides the *functional* (value-level) model; the cycle/energy
models live in :mod:`repro.multiplier.dp`.

Two accumulation modes are provided because real tensor cores offer
both: ``fp16`` (everything rounded at every step, as the discrete
adder tree does) and ``fp32`` (products accumulated exactly enough that
float64 accumulation is a faithful stand-in).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.fp import fp16
from repro.fp.add import fp16_add, fp16_tree_sum
from repro.fp.mul import fp16_mul


def dp4_fp16(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    acc_bits: int = fp16.POS_ZERO,
) -> int:
    """One DP-4 issue: ``acc + sum(a[i] * b[i])`` fully in FP16.

    ``a_bits``/``b_bits`` hold up to four FP16 bit patterns.  Products
    are rounded individually, reduced through a balanced adder tree and
    the previous accumulator is added at the root — matching the
    baseline DP-4 datapath.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operand length mismatch")
    if len(a_bits) > 4:
        raise ValueError("DP-4 takes at most four element pairs")
    products = [fp16_mul(a, b) for a, b in zip(a_bits, b_bits)]
    tree = fp16_tree_sum(products)
    return fp16_add(tree, acc_bits)


def dot_fp16(a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
    """Full-length dot product executed as successive DP-4 issues."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand length mismatch")
    acc = fp16.POS_ZERO
    for i in range(0, len(a_bits), 4):
        acc = dp4_fp16(a_bits[i : i + 4], b_bits[i : i + 4], acc)
    return acc


def dot_fp32(a_values: Iterable[float], b_values: Iterable[float]) -> float:
    """Dot product with FP16-rounded products and wide accumulation.

    Models tensor-core FP32-accumulate mode: each elementwise product
    is rounded to binary16, but the accumulation is wide enough to be
    exact for the lengths used here (float64 suffices).
    """
    total = 0.0
    for a, b in zip(a_values, b_values):
        product_bits = fp16_mul(fp16.from_float(a), fp16.from_float(b))
        total += fp16.to_float(product_bits)
    return total
