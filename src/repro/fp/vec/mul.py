"""Vectorized bit-exact FP16 multiplier.

Array counterpart of :func:`repro.fp.mul.fp16_mul`: whole ndarrays of
raw bit patterns through the Fig. 5(a) datapath — subnormal operand
renormalization, exact 22-bit significand product, one-bit normalize,
round-to-nearest-even, overflow to infinity and subnormal outputs —
with numpy integer ops only.  Bit-for-bit identical to the scalar
model (the oracle) on every input, specials included.
"""

from __future__ import annotations

import numpy as np

from repro.fp.fp16 import BIAS, EXPONENT_SPECIAL, MANTISSA_BITS, MANTISSA_MASK, NAN
from repro.fp.vec.codec import as_bits, bit_length, round_to_nearest_even


def _decompose(exponent: np.ndarray, mantissa: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(unbiased exponent, 11-bit significand)`` of finite bits.

    Subnormals renormalize into the ``1.m * 2**e`` shape the array
    multiplier expects: shift the mantissa up to its hidden-bit slot and
    debit the exponent per shifted position.
    """
    norm_shift = (MANTISSA_BITS + 1) - bit_length(mantissa)  # subnormals only
    sub = exponent == 0
    sig = np.where(sub, mantissa << np.clip(norm_shift, 0, MANTISSA_BITS + 1),
                   mantissa | (1 << MANTISSA_BITS))
    exp = np.where(sub, -(BIAS - 1) - norm_shift, exponent - BIAS)
    return exp, sig


def pack_finite(sign: np.ndarray, exponent: np.ndarray, raw22: np.ndarray) -> np.ndarray:
    """Normalize, round and encode 22-bit significand products.

    ``raw22`` holds exact products of two 11-bit significands, valued
    ``raw22 * 2**(exponent - 20)`` — the vectorized mirror of the scalar
    ``_pack_result``, shared by the generic multiplier and the parallel
    FP-INT lanes.
    """
    shift = (raw22 >= (np.int64(1) << (2 * MANTISSA_BITS + 1))).astype(np.int64)
    biased = exponent + shift + BIAS

    # Normalized results (biased >= 1): drop to 11 significand bits.
    rounded = round_to_nearest_even(raw22, MANTISSA_BITS + shift)
    carry = rounded >= (1 << (MANTISSA_BITS + 1))
    rounded = np.where(carry, rounded >> 1, rounded)
    biased_n = biased + carry
    normal = (sign << 15) | (np.clip(biased_n, 0, EXPONENT_SPECIAL) << MANTISSA_BITS) \
        | (rounded & MANTISSA_MASK)
    normal = np.where(biased_n >= EXPONENT_SPECIAL, (sign << 15) | 0x7C00, normal)

    # Subnormal results (biased < 1): align the ULP to 2**-24, round
    # once; a shift past 24 positions drops below half an ULP -> 0.
    total_shift = MANTISSA_BITS + shift + (1 - biased)
    rounded_s = round_to_nearest_even(raw22, np.clip(total_shift, 1, 62))
    rounded_s = np.where(total_shift > 24, np.int64(0), rounded_s)
    # rounded_s == 1024 (rounded back into the normal range) already
    # encodes exponent field 1 / mantissa 0 by bit adjacency.
    subnormal = (sign << 15) | rounded_s

    return np.where(biased >= 1, normal, subnormal)


def fp16_mul(a_bits, b_bits) -> np.ndarray:
    """Multiply arrays of FP16 bit patterns element-wise (broadcasting).

    Returns the ``uint16`` product bits; full IEEE semantics (NaN
    propagation, ``inf * 0 -> NaN``, signed zeros, subnormals,
    overflow to infinity), bit-identical to the scalar datapath model.
    """
    a = as_bits(a_bits)
    b = as_bits(b_bits)
    a, b = np.broadcast_arrays(a, b)

    sign_a, exp_a, man_a = (a >> 15) & 1, (a >> MANTISSA_BITS) & 0x1F, a & MANTISSA_MASK
    sign_b, exp_b, man_b = (b >> 15) & 1, (b >> MANTISSA_BITS) & 0x1F, b & MANTISSA_MASK
    sign = sign_a ^ sign_b

    a_special = exp_a == EXPONENT_SPECIAL
    b_special = exp_b == EXPONENT_SPECIAL
    nan = (a_special & (man_a != 0)) | (b_special & (man_b != 0))
    a_inf = a_special & (man_a == 0)
    b_inf = b_special & (man_b == 0)
    a_zero = (exp_a == 0) & (man_a == 0)
    b_zero = (exp_b == 0) & (man_b == 0)
    any_inf = a_inf | b_inf
    any_zero = a_zero | b_zero
    nan = nan | (any_inf & any_zero)  # inf * 0

    ea, sa = _decompose(exp_a, man_a)
    eb, sb = _decompose(exp_b, man_b)
    out = pack_finite(sign, ea + eb, sa * sb)

    out = np.where(any_zero, sign << 15, out)
    out = np.where(any_inf, (sign << 15) | 0x7C00, out)
    out = np.where(nan, np.int64(NAN), out)
    return out.astype(np.uint16)
