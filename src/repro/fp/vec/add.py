"""Vectorized bit-exact FP16 adder and pairwise tree reductions.

Array counterpart of :mod:`repro.fp.add`: operand alignment as exact
scaled integers, one round-to-nearest-even step, renormalization,
signed-zero rules and special handling, all over numpy ``int64``
lanes.  :func:`fp16_tree_sum` reduces an axis pairwise in the same
association order as the scalar adder-tree model, so DP-4 style
reductions vectorize without changing a single result bit.
"""

from __future__ import annotations

import numpy as np

from repro.fp.fp16 import BIAS, EXPONENT_SPECIAL, MANTISSA_BITS, MANTISSA_MASK, NAN
from repro.fp.vec.codec import as_bits, bit_length, round_to_nearest_even

#: Unbiased exponent of a subnormal significand's LSB (2**-24).
_SUBNORMAL_LSB_EXP = -(BIAS - 1) - MANTISSA_BITS


def _as_scaled_int(sign, exponent, mantissa) -> tuple[np.ndarray, np.ndarray]:
    """Finite FP16 fields -> ``(signed integer, lsb exponent)`` arrays.

    The represented value equals ``signed * 2**lsb`` exactly.
    """
    sub = exponent == 0
    magnitude = np.where(sub, mantissa, mantissa | (1 << MANTISSA_BITS))
    lsb = np.where(sub, np.int64(_SUBNORMAL_LSB_EXP), exponent - BIAS - MANTISSA_BITS)
    return np.where(sign == 1, -magnitude, magnitude), lsb


def _encode_exact_sum(total: np.ndarray, lsb: np.ndarray) -> np.ndarray:
    """Round exact ``total * 2**lsb`` sums into FP16 bits (total != 0)."""
    sign = (total < 0).astype(np.int64)
    magnitude = np.abs(total)
    msb = bit_length(magnitude) - 1
    biased = msb + lsb + BIAS

    # Normalized results: keep 11 significand bits of the exact sum.
    drop = msb - MANTISSA_BITS
    rounded = np.where(
        drop > 0,
        round_to_nearest_even(magnitude, np.clip(drop, 1, 62)),
        magnitude << np.clip(-drop, 0, MANTISSA_BITS),
    )
    carry = rounded >= (1 << (MANTISSA_BITS + 1))
    rounded = np.where(carry, rounded >> 1, rounded)
    biased_n = biased + carry
    normal = (sign << 15) | (np.clip(biased_n, 0, EXPONENT_SPECIAL) << MANTISSA_BITS) \
        | (rounded & MANTISSA_MASK)
    normal = np.where(biased_n >= EXPONENT_SPECIAL, (sign << 15) | 0x7C00, normal)

    # Subnormal results: shift the LSB up to the 2**-24 grid (exact —
    # ``lsb >= -24`` always, so no bits can drop).
    subnormal = (sign << 15) | (magnitude << np.clip(lsb - _SUBNORMAL_LSB_EXP, 0, 40))

    return np.where(biased >= 1, normal, subnormal)


def fp16_add(a_bits, b_bits) -> np.ndarray:
    """Add arrays of FP16 bit patterns element-wise (broadcasting).

    Full IEEE semantics: NaN propagation, ``inf + -inf -> NaN``,
    ``-0 + -0 -> -0`` (otherwise ``+0``), exact cancellation to ``+0``
    — bit-identical to the scalar :func:`repro.fp.add.fp16_add`.
    """
    a = as_bits(a_bits)
    b = as_bits(b_bits)
    a, b = np.broadcast_arrays(a, b)

    sign_a, exp_a, man_a = (a >> 15) & 1, (a >> MANTISSA_BITS) & 0x1F, a & MANTISSA_MASK
    sign_b, exp_b, man_b = (b >> 15) & 1, (b >> MANTISSA_BITS) & 0x1F, b & MANTISSA_MASK

    a_special = exp_a == EXPONENT_SPECIAL
    b_special = exp_b == EXPONENT_SPECIAL
    a_inf = a_special & (man_a == 0)
    b_inf = b_special & (man_b == 0)
    nan = (a_special & (man_a != 0)) | (b_special & (man_b != 0)) \
        | (a_inf & b_inf & (sign_a != sign_b))
    a_zero = (exp_a == 0) & (man_a == 0)
    b_zero = (exp_b == 0) & (man_b == 0)
    both_zero = a_zero & b_zero

    va, la = _as_scaled_int(sign_a, exp_a, man_a)
    vb, lb = _as_scaled_int(sign_b, exp_b, man_b)
    lsb = np.minimum(la, lb)
    # Alignment shifts are bounded by the exponent spread (<= 29 bits).
    total = (va << np.clip(la - lsb, 0, 40)) + (vb << np.clip(lb - lsb, 0, 40))
    finite_sum = _encode_exact_sum(np.where(total == 0, np.int64(1), total), lsb)

    out = np.where(total == 0, np.int64(0), finite_sum)  # exact cancellation -> +0
    out = np.where(both_zero, (sign_a & sign_b) << 15, out)
    out = np.where(a_inf, a, out)
    out = np.where(b_inf & ~a_inf, b, out)
    out = np.where(nan, np.int64(NAN), out)
    return out.astype(np.uint16)


def fp16_sum(bits, axis: int = -1) -> np.ndarray:
    """Left-to-right FP16 accumulation along ``axis`` (scalar ``fp16_sum``)."""
    arr = np.moveaxis(as_bits(bits), axis, -1)
    if arr.shape[-1] == 0:
        return np.zeros(arr.shape[:-1], dtype=np.uint16)
    acc = arr[..., 0].astype(np.uint16)
    for i in range(1, arr.shape[-1]):
        acc = fp16_add(acc, arr[..., i])
    return acc


def fp16_tree_sum(bits, axis: int = -1) -> np.ndarray:
    """Balanced pairwise FP16 reduction along ``axis``.

    Association order matches :func:`repro.fp.add.fp16_tree_sum`
    exactly: adjacent pairs reduce each level, an odd leftover joins
    the *end* of the next level — so vectorized DP-4 adder trees stay
    bit-identical to the scalar model.
    """
    level = np.moveaxis(as_bits(bits), axis, -1)
    if level.shape[-1] == 0:
        return np.zeros(level.shape[:-1], dtype=np.uint16)
    while level.shape[-1] > 1:
        n = level.shape[-1]
        paired = fp16_add(level[..., 0 : n - 1 : 2], level[..., 1:n:2])
        if n % 2:
            paired = np.concatenate([paired, level[..., -1:].astype(np.uint16)], axis=-1)
        level = paired.astype(np.int64)
    return level[..., 0].astype(np.uint16)
