"""Vectorized parallel FP-INT multiplier (paper Fig. 5(b-d)) lanes.

Array counterpart of :func:`repro.multiplier.parallel.parallel_fp_int_mul`:
whole blocks of ``(activation, signed code)`` pairs evaluate through
the transformed-weight datapath at once — shared sign/exponent, the
split 11x4 (or 11x2) significand products, the Fig. 5(d) overlap-bit
mantissa assembly and per-lane round-to-nearest-even — with numpy
integer ops.  Activations outside the fast datapath (subnormal, inf,
NaN) route through the vectorized generic multiplier, which the scalar
model guarantees is bit-identical, so the result bits match the scalar
oracle everywhere.

The transformed weight ``T = code + 1032`` (INT4; ``+1026`` for INT2)
always has biased exponent 25, so a normalized activation's lane
exponent is at least ``1 + 25 - 15 = 11``: the fast path can never
underflow into the subnormal range (the scalar model's defensive
``_SubnormalLane`` escape is provably dead here, and the shared
:func:`repro.fp.vec.mul.pack_finite` rounding unit would encode such a
lane correctly anyway).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.fp.fp16 import BIAS, EXPONENT_SPECIAL, MANTISSA_BITS, MANTISSA_MASK
from repro.fp.vec.codec import as_bits
from repro.fp.vec.mul import fp16_mul, pack_finite

#: Biased exponent of every transformed weight (1024 <= T < 2048).
TRANSFORM_EXPONENT = 25


def _lane_offset(weight_bits: int) -> int:
    if weight_bits not in (2, 4):
        raise EncodingError(
            f"parallel multiplier supports INT2/INT4, not INT{weight_bits}"
        )
    return 1 << (weight_bits - 1)


def _checked_codes(codes, weight_bits: int) -> np.ndarray:
    offset = _lane_offset(weight_bits)
    arr = np.asarray(codes)
    if arr.dtype.kind not in "ui":
        raise EncodingError(f"codes must be integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size and (arr.min() < -offset or arr.max() >= offset):
        raise EncodingError(f"code out of INT{weight_bits} range")
    return arr


def transformed_bits(codes, weight_bits: int) -> np.ndarray:
    """FP16 bit patterns of ``codes + transform_offset`` for whole arrays.

    By the paper's observations (1)+(2) the pattern is exponent 25 with
    the unsigned code in the mantissa LSBs (exact — no encoder needed).
    """
    arr = _checked_codes(codes, weight_bits)
    unsigned = arr + _lane_offset(weight_bits)
    return ((TRANSFORM_EXPONENT << MANTISSA_BITS) | unsigned).astype(np.uint16)


def parallel_products(a_bits, codes, weight_bits: int) -> np.ndarray:
    """Lane product bits for broadcastable activation/code blocks.

    Args:
        a_bits: raw FP16 activation patterns, any shape.
        codes: signed INT2/INT4 weight codes, broadcastable against
            ``a_bits`` (e.g. ``a[k, 1]`` against ``codes[k, n]`` for a
            whole weight block, or against ``codes[1, channels]`` for
            the per-activation channel table).
        weight_bits: 4 (INT4) or 2 (INT2).

    Returns:
        ``uint16`` product bits of the broadcast shape; every element
        equals ``fp16_mul(a, transformed_weight_bits(code))`` exactly.
    """
    a = as_bits(a_bits)
    c = _checked_codes(codes, weight_bits)
    a, c = np.broadcast_arrays(a, c)
    unsigned = c + _lane_offset(weight_bits)

    sign = (a >> 15) & 1
    exp_a = (a >> MANTISSA_BITS) & 0x1F
    man_a = a & MANTISSA_MASK
    fast = (exp_a > 0) & (exp_a < EXPONENT_SPECIAL)  # normalized activations
    zero = (exp_a == 0) & (man_a == 0)

    # Fig. 5(c): four 11x4 products off one shared array.
    sig_a = man_a | (1 << MANTISSA_BITS)
    intermediate = sig_a * unsigned
    # Fig. 5(d): {A[10:6], A[5:0] + i[14:10], i[9:0]} overlap assembly;
    # the 6-bit adder's carry-out increments the concatenated high field.
    low = intermediate & MANTISSA_MASK
    overlap = intermediate >> MANTISSA_BITS
    mid = (sig_a & 0x3F) + overlap
    high = sig_a >> 6
    assembled = (high << 16) + (mid << MANTISSA_BITS) + low

    # Shared exponent + per-lane rounding through the same encode unit
    # as the generic multiplier (`pack_finite` normalizes, rounds to
    # nearest even and saturates to infinity).
    lane = pack_finite(sign, exp_a - BIAS + (TRANSFORM_EXPONENT - BIAS), assembled)

    out = np.where(zero, sign << 15, lane)
    # Generic-path activations (subnormal / inf / NaN).
    slow = ~(fast | zero)
    if slow.any():
        t_bits = ((TRANSFORM_EXPONENT << MANTISSA_BITS) | unsigned[slow]).astype(np.uint16)
        out[slow] = fp16_mul(a[slow], t_bits)
    return out.astype(np.uint16)


def reference_products(a_bits, codes, weight_bits: int) -> np.ndarray:
    """Dequantize-then-multiply reference bits for whole blocks.

    The vectorized mirror of
    :func:`repro.multiplier.parallel.reference_products`: every
    transformed weight through the generic vectorized multiplier.
    """
    a = as_bits(a_bits)
    t_bits = transformed_bits(codes, weight_bits)
    return fp16_mul(a, t_bits)
