"""Vectorized bit-exact FP16 kernel layer.

Array counterparts of the scalar bit-level models in :mod:`repro.fp`
and :mod:`repro.multiplier.parallel`, operating on whole ndarrays of
raw ``uint16`` bit patterns with numpy integer ops.  Each kernel is
bit-for-bit identical to its scalar oracle (exhaustively and
adversarially tested in ``tests/test_fp_vec.py``); the point is speed:
the ``bitexact`` engine backend runs 100x+ faster through this layer,
which turns the datapath validator into a tool that sweeps real LLM
layer shapes.

* :mod:`repro.fp.vec.codec` — ``split``/``combine``/``to_float``/
  ``from_float`` and predicates over bit arrays.
* :mod:`repro.fp.vec.mul` — the generic FP16 multiplier datapath.
* :mod:`repro.fp.vec.add` — the FP16 adder plus ``fp16_sum`` /
  pairwise ``fp16_tree_sum`` reductions along an axis.
* :mod:`repro.fp.vec.parallel` — the parallel FP-INT multiplier over
  whole activation/code blocks (fast path + generic fallback).
"""

from repro.fp.vec.add import fp16_add, fp16_sum, fp16_tree_sum
from repro.fp.vec.codec import (
    as_bits,
    bit_length,
    combine,
    from_float,
    is_finite,
    is_inf,
    is_nan,
    is_normalized,
    is_subnormal,
    is_zero,
    round_to_nearest_even,
    split,
    to_float,
)
from repro.fp.vec.mul import fp16_mul
from repro.fp.vec.parallel import parallel_products, reference_products, transformed_bits

__all__ = [
    "as_bits",
    "bit_length",
    "combine",
    "fp16_add",
    "fp16_mul",
    "fp16_sum",
    "fp16_tree_sum",
    "from_float",
    "is_finite",
    "is_inf",
    "is_nan",
    "is_normalized",
    "is_subnormal",
    "is_zero",
    "parallel_products",
    "reference_products",
    "round_to_nearest_even",
    "split",
    "to_float",
    "transformed_bits",
]
