"""Vectorized bit-exact binary16 codec over numpy integer lanes.

Array counterpart of :mod:`repro.fp.fp16`: every function operates on
whole ``uint16`` ndarrays of raw FP16 bit patterns using only numpy
integer ops (shifts, masks, adds), so the semantics — exact
round-to-nearest-even, subnormals, inf/NaN, saturation to infinity —
are the scalar codec's, element-for-element.  The scalar module stays
the oracle: :mod:`tests.test_fp_vec` checks every one of the 65,536
bit patterns (and rounding midpoints between them) against it.

Internal arithmetic is ``int64`` throughout: the widest intermediate
is a 53-bit float64 significand, and every shift amount is clamped
below 63 before it reaches a numpy shift op.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.fp.fp16 import (
    BIAS,
    EXPONENT_MASK,
    EXPONENT_SPECIAL,
    MANTISSA_BITS,
    MANTISSA_MASK,
    NAN,
)

#: Canonical quiet-NaN pattern, as a numpy scalar for where() branches.
_NAN16 = np.uint16(NAN)

#: float64 field layout constants.
_F64_MANTISSA_BITS = 52
_F64_BIAS = 1023
_F64_EXPONENT_MASK = 0x7FF
_F64_MANTISSA_MASK = (1 << _F64_MANTISSA_BITS) - 1


def as_bits(bits) -> np.ndarray:
    """Validate and canonicalize an array-like of raw FP16 patterns.

    Accepts any integer array-like (including python ints and numpy
    scalars); returns an ``int64`` ndarray — the working dtype of every
    kernel in this package — after range-checking ``0..0xFFFF``.
    """
    arr = np.asarray(bits)
    if arr.dtype.kind not in "ui":
        raise EncodingError(f"not 16-bit patterns: dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size and (arr.min() < 0 or arr.max() > 0xFFFF):
        raise EncodingError("not 16-bit patterns: values outside 0..0xFFFF")
    return arr


def split(bits) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split raw FP16 bit arrays into ``(sign, exponent, mantissa)``."""
    arr = as_bits(bits)
    return (arr >> 15) & 0x1, (arr >> MANTISSA_BITS) & EXPONENT_MASK, arr & MANTISSA_MASK


def combine(sign, exponent, mantissa) -> np.ndarray:
    """Assemble raw FP16 bits from broadcastable field arrays."""
    s = np.asarray(sign, dtype=np.int64)
    e = np.asarray(exponent, dtype=np.int64)
    m = np.asarray(mantissa, dtype=np.int64)
    if s.size and not np.isin(s, (0, 1)).all():
        raise EncodingError("sign must be 0 or 1")
    if e.size and ((e < 0) | (e > EXPONENT_MASK)).any():
        raise EncodingError("exponent field out of range")
    if m.size and ((m < 0) | (m > MANTISSA_MASK)).any():
        raise EncodingError("mantissa field out of range")
    return ((s << 15) | (e << MANTISSA_BITS) | m).astype(np.uint16)


def is_nan(bits) -> np.ndarray:
    """Boolean mask of NaN patterns."""
    _, exponent, mantissa = split(bits)
    return (exponent == EXPONENT_SPECIAL) & (mantissa != 0)


def is_inf(bits) -> np.ndarray:
    """Boolean mask of +/- infinity patterns."""
    _, exponent, mantissa = split(bits)
    return (exponent == EXPONENT_SPECIAL) & (mantissa == 0)


def is_zero(bits) -> np.ndarray:
    """Boolean mask of +/- zero patterns."""
    _, exponent, mantissa = split(bits)
    return (exponent == 0) & (mantissa == 0)


def is_subnormal(bits) -> np.ndarray:
    """Boolean mask of non-zero subnormal patterns."""
    _, exponent, mantissa = split(bits)
    return (exponent == 0) & (mantissa != 0)


def is_finite(bits) -> np.ndarray:
    """Boolean mask of finite patterns (zeros included)."""
    _, exponent, _ = split(bits)
    return exponent != EXPONENT_SPECIAL


def is_normalized(bits) -> np.ndarray:
    """Boolean mask of normalized non-zero finite patterns."""
    _, exponent, _ = split(bits)
    return (exponent > 0) & (exponent < EXPONENT_SPECIAL)


def round_to_nearest_even(value: np.ndarray, shift) -> np.ndarray:
    """Element-wise right shift with round-to-nearest-even.

    ``value`` is a non-negative ``int64`` array; ``shift`` is a
    positive scalar or broadcastable array of shift amounts (``< 63``).
    Guard is the MSB of the dropped bits, sticky ORs the rest — the
    same wiring as the scalar :func:`repro.fp.fp16.round_to_nearest_even`.
    """
    value = np.asarray(value, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    truncated = value >> shift
    dropped = value & ((np.int64(1) << shift) - 1)
    guard = (dropped >> (shift - 1)) & 1
    sticky = dropped & ((np.int64(1) << (shift - 1)) - 1)
    round_up = (guard == 1) & ((sticky != 0) | ((truncated & 1) == 1))
    return truncated + round_up


def bit_length(value: np.ndarray) -> np.ndarray:
    """Element-wise ``int.bit_length`` for non-negative ``int64`` < 2**53.

    Uses ``frexp`` on the exact float64 image: for ``0 <= x < 2**53``
    the conversion is lossless and the binary exponent *is* the bit
    length (0 for x == 0).
    """
    _, exponents = np.frexp(np.asarray(value, dtype=np.int64).astype(np.float64))
    return exponents.astype(np.int64)


def to_float(bits) -> np.ndarray:
    """Decode raw FP16 bit arrays to exact float64 values."""
    sign, exponent, mantissa = split(bits)
    subnormal = exponent == 0
    sig = np.where(subnormal, mantissa, mantissa | (1 << MANTISSA_BITS))
    exp = np.where(
        subnormal,
        np.int64(-(BIAS - 1) - MANTISSA_BITS),  # 2**-24 per subnormal ULP
        exponent - BIAS - MANTISSA_BITS,
    )
    out = np.ldexp(sig.astype(np.float64), exp.astype(np.int32))
    out = np.where(sign == 1, -out, out)  # keeps -0.0
    special = exponent == EXPONENT_SPECIAL
    out = np.where(special & (mantissa != 0), np.float64("nan"), out)
    inf = np.where(sign == 1, -np.inf, np.inf)
    return np.where(special & (mantissa == 0), inf, out)


def from_float(values) -> np.ndarray:
    """Encode float64 arrays to FP16 bits with round-to-nearest-even.

    Overflow saturates to the correctly-signed infinity, underflow
    denormalizes then flushes to a signed zero, every NaN canonicalizes
    to ``0x7E00`` — exactly the scalar :func:`repro.fp.fp16.from_float`,
    which the exhaustive midpoint tests pin this against.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    bits64 = arr.reshape(-1).view(np.uint64).reshape(arr.shape)
    sign = (bits64 >> 63).astype(np.int64)
    exp64 = ((bits64 >> _F64_MANTISSA_BITS) & _F64_EXPONENT_MASK).astype(np.int64)
    man64 = (bits64 & _F64_MANTISSA_MASK).astype(np.int64)

    unbiased = exp64 - _F64_BIAS
    sig = man64 | (np.int64(1) << _F64_MANTISSA_BITS)  # 53-bit significand

    # Prospectively normalized (unbiased >= -14): one 42-bit RNE step.
    rounded_n = round_to_nearest_even(sig, _F64_MANTISSA_BITS - MANTISSA_BITS)
    carry = rounded_n >= (1 << (MANTISSA_BITS + 1))
    rounded_n = np.where(carry, rounded_n >> 1, rounded_n)
    exponent_n = unbiased + carry + BIAS
    normal = ((sign << 15) | (np.minimum(exponent_n, EXPONENT_SPECIAL) << MANTISSA_BITS)
              | (rounded_n & MANTISSA_MASK))
    normal = np.where(exponent_n >= EXPONENT_SPECIAL, (sign << 15) | 0x7C00, normal)

    # Subnormal range: align to the 2**-24 ULP, round once.  Anything
    # shifted 55+ bits is below half the smallest subnormal -> 0.
    shift = _F64_MANTISSA_BITS - MANTISSA_BITS + (-14 - unbiased)
    rounded_s = round_to_nearest_even(sig, np.clip(shift, 1, 54))
    rounded_s = np.where(shift >= 55, np.int64(0), rounded_s)
    # A round-up into the normal range lands on exponent field 1 with
    # mantissa 0 — the same bit pattern either way, so no special case.
    subnormal = (sign << 15) | rounded_s

    out = np.where(unbiased >= -14, normal, subnormal)
    out = np.where(exp64 == 0, sign << 15, out)  # zeros + f64 subnormals flush
    inf_or_nan = exp64 == _F64_EXPONENT_MASK
    out = np.where(inf_or_nan & (man64 == 0), (sign << 15) | 0x7C00, out)
    out = np.where(inf_or_nan & (man64 != 0), np.int64(NAN), out)
    return out.astype(np.uint16)
