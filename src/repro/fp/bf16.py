"""Bit-exact bfloat16 codec and multiplier (extension beyond the paper).

The paper targets FP16 activations, but modern LLM serving frequently
runs BF16.  PacQ's observation transfers directly: a signed INT4
weight ``B`` re-biased to ``B + 8 + 128 = B + 136`` lands in
``[128, 256)``, so its BF16 encoding has a constant exponent
(``10000110b``, biased 134) and a mantissa of ``000yyyy`` with
``yyyy = B + 8`` — the same shared-exponent / sparse-mantissa
structure Fig. 5 exploits, with an 8x4-bit lane array instead of 11x4.
:mod:`repro.multiplier.parallel_bf16` builds the parallel multiplier
on top of this codec.

Format: 1 sign bit, 8 exponent bits (bias 127), 7 mantissa bits —
i.e. float32 with 16 fraction bits dropped.  The codec implements full
IEEE semantics (subnormals, infinities, NaN, round-to-nearest-even)
and is validated against float32 arithmetic in the tests (a product of
two 8-bit significands is exact in float32, so float32-multiply-then-
round is a correct oracle).
"""

from __future__ import annotations

import math
import struct

from repro.errors import EncodingError
from repro.fp.fp16 import round_to_nearest_even

#: Number of explicit mantissa bits in bfloat16.
MANTISSA_BITS = 7
#: Number of exponent bits.
EXPONENT_BITS = 8
#: Exponent bias.
BIAS = 127
#: All-ones exponent field (inf/NaN).
EXPONENT_SPECIAL = (1 << EXPONENT_BITS) - 1
MANTISSA_MASK = (1 << MANTISSA_BITS) - 1
EXPONENT_MASK = (1 << EXPONENT_BITS) - 1

POS_ZERO = 0x0000
NEG_ZERO = 0x8000
POS_INF = 0x7F80
NEG_INF = 0xFF80
NAN = 0x7FC0


def split(bits: int) -> tuple[int, int, int]:
    """Split raw BF16 bits into ``(sign, exponent, mantissa)``."""
    if not isinstance(bits, int) or not 0 <= bits <= 0xFFFF:
        raise EncodingError(f"not a 16-bit pattern: {bits!r}")
    return (bits >> 15) & 1, (bits >> MANTISSA_BITS) & EXPONENT_MASK, bits & MANTISSA_MASK


def combine(sign: int, exponent: int, mantissa: int) -> int:
    """Assemble raw BF16 bits from fields."""
    if sign not in (0, 1):
        raise EncodingError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= exponent <= EXPONENT_MASK:
        raise EncodingError(f"exponent field out of range: {exponent}")
    if not 0 <= mantissa <= MANTISSA_MASK:
        raise EncodingError(f"mantissa field out of range: {mantissa}")
    return (sign << 15) | (exponent << MANTISSA_BITS) | mantissa


def is_nan(bits: int) -> bool:
    _, exponent, mantissa = split(bits)
    return exponent == EXPONENT_SPECIAL and mantissa != 0


def is_inf(bits: int) -> bool:
    _, exponent, mantissa = split(bits)
    return exponent == EXPONENT_SPECIAL and mantissa == 0


def is_zero(bits: int) -> bool:
    _, exponent, mantissa = split(bits)
    return exponent == 0 and mantissa == 0


def is_normalized(bits: int) -> bool:
    _, exponent, _ = split(bits)
    return 0 < exponent < EXPONENT_SPECIAL


def to_float(bits: int) -> float:
    """Decode BF16 bits to a Python float (exact)."""
    sign, exponent, mantissa = split(bits)
    sign_factor = -1.0 if sign else 1.0
    if exponent == EXPONENT_SPECIAL:
        return math.nan if mantissa else sign_factor * math.inf
    if exponent == 0:
        return sign_factor * mantissa * 2.0 ** (1 - BIAS - MANTISSA_BITS)
    return sign_factor * (1 + mantissa / 128.0) * 2.0 ** (exponent - BIAS)


def from_float(value: float) -> int:
    """Encode a float into BF16 bits with round-to-nearest-even."""
    if math.isnan(value):
        return NAN
    sign = 1 if math.copysign(1.0, value) < 0 else 0
    magnitude = abs(value)
    if math.isinf(magnitude):
        return combine(sign, EXPONENT_SPECIAL, 0)
    if magnitude == 0.0:
        return combine(sign, 0, 0)

    bits64 = struct.unpack("<Q", struct.pack("<d", magnitude))[0]
    exp64 = (bits64 >> 52) & 0x7FF
    man64 = bits64 & ((1 << 52) - 1)
    if exp64 == 0:  # double subnormal: far below bf16 range
        return combine(sign, 0, 0)
    unbiased = exp64 - 1023
    significand = (1 << 52) | man64  # 53 bits

    if unbiased >= 1 - BIAS:
        rounded = round_to_nearest_even(significand, 52 - MANTISSA_BITS)
        if rounded >= (1 << (MANTISSA_BITS + 1)):
            rounded >>= 1
            unbiased += 1
        exponent = unbiased + BIAS
        if exponent >= EXPONENT_SPECIAL:
            return combine(sign, EXPONENT_SPECIAL, 0)
        return combine(sign, exponent, rounded & MANTISSA_MASK)

    # Subnormal: ULP is 2**(1 - BIAS - MANTISSA_BITS).
    shift = 52 - MANTISSA_BITS + ((1 - BIAS) - unbiased)
    rounded = 0 if shift >= 55 else round_to_nearest_even(significand, shift)
    if rounded >= (1 << MANTISSA_BITS):
        return combine(sign, 1, rounded & MANTISSA_MASK)
    return combine(sign, 0, rounded)


def from_int_exact(value: int) -> int:
    """Encode an exactly-representable small integer (<= 8-bit window)."""
    bits = from_float(float(value))
    if to_float(bits) != float(value):
        raise EncodingError(f"{value} is not exactly representable in BF16")
    return bits


def _decompose(bits: int) -> tuple[int, int, int]:
    """(sign, unbiased exponent, 8-bit significand); subnormals renormalized."""
    sign, exponent, mantissa = split(bits)
    if exponent == 0:
        exp = 1 - BIAS
        sig = mantissa
        while sig < (1 << MANTISSA_BITS):
            sig <<= 1
            exp -= 1
        return sign, exp, sig
    return sign, exponent - BIAS, (1 << MANTISSA_BITS) | mantissa


def bf16_mul(a_bits: int, b_bits: int) -> int:
    """Correctly-rounded BF16 multiply of two BF16 bit patterns."""
    if is_nan(a_bits) or is_nan(b_bits):
        return NAN
    sign = (split(a_bits)[0]) ^ (split(b_bits)[0])
    if is_inf(a_bits) or is_inf(b_bits):
        if is_zero(a_bits) or is_zero(b_bits):
            return NAN
        return combine(sign, EXPONENT_SPECIAL, 0)
    if is_zero(a_bits) or is_zero(b_bits):
        return combine(sign, 0, 0)

    _, ea, sa = _decompose(a_bits)
    _, eb, sb = _decompose(b_bits)
    product = sa * sb  # exact 16-bit product
    exponent = ea + eb
    shift = 1 if product >= (1 << (2 * MANTISSA_BITS + 1)) else 0
    biased = exponent + shift + BIAS

    if biased >= 1:
        rounded = round_to_nearest_even(product, MANTISSA_BITS + shift)
        if rounded >= (1 << (MANTISSA_BITS + 1)):
            rounded >>= 1
            biased += 1
        if biased >= EXPONENT_SPECIAL:
            return combine(sign, EXPONENT_SPECIAL, 0)
        return combine(sign, biased, rounded & MANTISSA_MASK)

    total_shift = MANTISSA_BITS + shift + (1 - biased)
    rounded = 0 if total_shift > 64 else round_to_nearest_even(product, total_shift)
    if rounded >= (1 << MANTISSA_BITS):
        return combine(sign, 1, rounded & MANTISSA_MASK)
    return combine(sign, 0, rounded)
