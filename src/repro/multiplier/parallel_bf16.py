"""Parallel BF16-INT multiplier (extension beyond the paper).

Transfers Fig. 5's construction to bfloat16 activations: the
transformed weight ``T = B + 136`` (INT4; ``B + 130`` for INT2) lies
in ``[128, 256)``, so every lane shares

* the output sign (``s_A``),
* the exponent adder (``e_A + 134 - bias``), and
* one normalizer,

while the significand array shrinks from BF16's 8x8 to four 8x4-bit
lane products.  Lane outputs are bit-identical to scalar
:func:`repro.fp.bf16.bf16_mul` against the transformed weight —
the same exactness contract as the FP16 design, enforced by tests.

A practical difference worth knowing: BF16 has only 7 mantissa bits,
so the transformed product retains just ~3 effective bits of the
``A x B`` signal (vs ~4-5 for FP16); the correction arithmetic is
unchanged but the per-product rounding envelope is ~2x wider.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.fp.bf16 import (
    BIAS,
    EXPONENT_SPECIAL,
    MANTISSA_BITS,
    MANTISSA_MASK,
    bf16_mul,
    combine,
    from_int_exact,
    is_normalized,
    is_zero,
    split,
)
from repro.fp.fp16 import round_to_nearest_even

#: Biased exponent of every transformed weight: 128 <= T < 256.
TRANSFORM_EXPONENT = BIAS + 7  # 134


def rebias_offset(weight_bits: int) -> int:
    """Signed -> unsigned offset (8 for INT4, 2 for INT2)."""
    if weight_bits not in (2, 4):
        raise EncodingError(f"BF16 multiplier supports INT2/INT4, not INT{weight_bits}")
    return 1 << (weight_bits - 1)


def transform_offset(weight_bits: int) -> int:
    """The BF16 additive constant: 136 for INT4, 130 for INT2."""
    return 128 + rebias_offset(weight_bits)


def transformed_weight_bits(code: int, weight_bits: int) -> int:
    """BF16 bit pattern of ``code + transform_offset`` (exact)."""
    offset = rebias_offset(weight_bits)
    if not -offset <= code < offset:
        raise EncodingError(f"code {code} out of INT{weight_bits} range")
    unsigned = code + offset
    direct = combine(0, TRANSFORM_EXPONENT, unsigned)
    assert direct == from_int_exact(128 + unsigned)
    return direct


@dataclass(frozen=True)
class Bf16LaneTrace:
    """One lane's datapath signals."""

    intermediate: int  #: sig_A * y (8x4 product)
    assembled: int  #: full product significand before rounding
    result_bits: int


@dataclass(frozen=True)
class ParallelBf16Result:
    """Lane outputs of one parallel BF16-INT multiply."""

    sign: int
    shared_exponent: int
    lane_traces: tuple[Bf16LaneTrace, ...]

    @property
    def products(self) -> tuple[int, ...]:
        return tuple(t.result_bits for t in self.lane_traces)


def parallel_bf16_int_mul(
    a_bits: int, codes: list[int], weight_bits: int
) -> ParallelBf16Result:
    """Multiply one BF16 activation by all packed signed weights."""
    max_lanes = 16 // weight_bits
    if not codes or len(codes) > max_lanes:
        raise EncodingError(
            f"INT{weight_bits} multiplier takes 1..{max_lanes} codes, got {len(codes)}"
        )
    offset = rebias_offset(weight_bits)
    unsigned = []
    for code in codes:
        if not -offset <= code < offset:
            raise EncodingError(f"code {code} out of INT{weight_bits} range")
        unsigned.append(code + offset)

    if not (is_normalized(a_bits) or is_zero(a_bits)):
        return _fallback(a_bits, codes, weight_bits)

    sign_a, exp_a, man_a = split(a_bits)
    shared_exponent = exp_a + TRANSFORM_EXPONENT - BIAS
    if is_zero(a_bits):
        zero = combine(sign_a, 0, 0)
        return ParallelBf16Result(
            sign_a, 0, tuple(Bf16LaneTrace(0, 0, zero) for _ in unsigned)
        )

    sig_a = (1 << MANTISSA_BITS) | man_a  # 8-bit 1.m_A
    traces = []
    for y in unsigned:
        inter = sig_a * y  # 8x4 lane product
        assembled = (sig_a << MANTISSA_BITS) + inter  # exact product
        shift = 1 if assembled >= (1 << (2 * MANTISSA_BITS + 1)) else 0
        biased = shared_exponent + shift
        rounded = round_to_nearest_even(assembled, MANTISSA_BITS + shift)
        if rounded >= (1 << (MANTISSA_BITS + 1)):
            rounded >>= 1
            biased += 1
        if biased >= EXPONENT_SPECIAL:
            result = combine(sign_a, EXPONENT_SPECIAL, 0)
        elif biased < 1:
            return _fallback(a_bits, codes, weight_bits)
        else:
            result = combine(sign_a, biased, rounded & MANTISSA_MASK)
        traces.append(Bf16LaneTrace(inter, assembled, result))
    return ParallelBf16Result(sign_a, shared_exponent, tuple(traces))


def _fallback(a_bits: int, codes: list[int], weight_bits: int) -> ParallelBf16Result:
    traces = tuple(
        Bf16LaneTrace(0, 0, bf16_mul(a_bits, transformed_weight_bits(c, weight_bits)))
        for c in codes
    )
    return ParallelBf16Result(split(a_bits)[0], 0, traces)


def reference_products(a_bits: int, codes: list[int], weight_bits: int) -> list[int]:
    """Scalar-path reference the parallel lanes must match bitwise."""
    return [
        bf16_mul(a_bits, transformed_weight_bits(code, weight_bits)) for code in codes
    ]
