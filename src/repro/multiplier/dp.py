"""Dot-product (DP) unit models: cycles, throughput and the fused
``-1032 * sum(A)`` correction (paper Sections IV-V).

Cycle model
-----------
A DP unit with ``width`` multiplier slots (DP-4 has 4), ``pack``
weights per multiplier issue (1 for FP16/FP16, 4 for INT4, 8 for INT2)
and ``dup``-way duplicated FP16 adder trees sustains:

* ``width * pack`` elementwise products per cycle, and
* ``dup`` tree-reduction+accumulate events per cycle (each event folds
  ``width`` products into one output's partial sum).

For a tile with ``outputs`` results of inner-product length ``k``::

    mul_cycles   = ceil(outputs * k / (width * pack))
    adder_cycles = ceil(outputs * ceil(k / width) / dup)
    cycles       = PIPELINE_FILL + max(mul_cycles, adder_cycles)

This reproduces every cycle count quoted in the paper exactly:
baseline DP-4 on m2n4k4 -> 11 cycles for 8 outputs; PacQ INT4 -> 19
cycles for 32 outputs; PacQ INT2 -> 35 cycles for 64 outputs
(asserted in the tests).  The ~2x end-to-end speedup of Fig. 7(b) then
*emerges* from the dup-2 adder trees being the bottleneck.

A crucial subtlety (Section III): a ``k``-packed word holds weights
that multiply *different* activations, so the parallel multiplier
cannot be exploited — ``P(Bx)k`` flows run with ``pack=1`` even though
their weights are packed in memory.

Fused correction
----------------
PacQ's multipliers see transformed weights ``T = B + 1032``; Eq. (1)
recovers the true inner product by subtracting ``1032 * sum(A)``,
accumulated by small dedicated accumulators.  :func:`corrected_dot`
implements that arithmetic functionally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.multiplier.parallel import transform_offset

#: Pipeline fill/drain cycles of a DP unit (multiply, reduce, round).
PIPELINE_FILL = 3


@dataclass(frozen=True)
class DpConfig:
    """Static configuration of one DP unit.

    Attributes:
        width: multiplier slots / inner-product width per issue (DP-4
            -> 4; Fig. 12(a) studies DP-8 and DP-16).
        pack: weights processed per multiplier per cycle (1 baseline,
            4 INT4, 8 INT2).
        dup: adder-tree duplication factor (1 baseline, 2 PacQ
            default; Fig. 11 ablates 1/2/4/8).
    """

    width: int = 4
    pack: int = 1
    dup: int = 1

    def __post_init__(self) -> None:
        if self.width < 1 or self.pack < 1 or self.dup < 1:
            raise ConfigError(f"invalid DP configuration: {self}")

    @property
    def name(self) -> str:
        kind = "FP16" if self.pack == 1 else f"FP-INT(x{self.pack})"
        return f"DP-{self.width} {kind} dup{self.dup}"

    @property
    def fp16_adders(self) -> int:
        """FP16 adders in the unit: one tree of ``width`` per dup way.

        The baseline DP-4 has 4 FP16 adders (Table I); duplication
        multiplies that.
        """
        return self.width * self.dup


#: Baseline Volta-style FP16 DP-4 (Table I).
BASELINE_DP4 = DpConfig(width=4, pack=1, dup=1)
#: PacQ parallel FP-INT DP-4 for INT4 weights (Table I).
PACQ_DP4_INT4 = DpConfig(width=4, pack=4, dup=2)
#: PacQ parallel FP-INT DP-4 for INT2 weights.
PACQ_DP4_INT2 = DpConfig(width=4, pack=8, dup=2)


def pacq_dp(weight_bits: int, width: int = 4, dup: int = 2) -> DpConfig:
    """PacQ DP configuration for a weight precision (INT4/INT2)."""
    if weight_bits not in (2, 4):
        raise ConfigError(f"PacQ supports INT2/INT4 weights, not INT{weight_bits}")
    return DpConfig(width=width, pack=16 // weight_bits, dup=dup)


@dataclass(frozen=True)
class TileWork:
    """One tile of dot-product work submitted to a DP unit.

    Attributes:
        outputs: number of inner products to produce.
        k: inner-product length of each output.
    """

    outputs: int
    k: int

    def __post_init__(self) -> None:
        if self.outputs < 1 or self.k < 1:
            raise ConfigError(f"invalid tile work: {self}")

    @property
    def products(self) -> int:
        return self.outputs * self.k


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle accounting of one tile on one DP unit."""

    mul_cycles: int
    adder_cycles: int
    fill_cycles: int

    @property
    def total(self) -> int:
        return self.fill_cycles + max(self.mul_cycles, self.adder_cycles)

    @property
    def bottleneck(self) -> str:
        return "adder-tree" if self.adder_cycles > self.mul_cycles else "multiplier"


def cycles_for(config: DpConfig, work: TileWork) -> CycleBreakdown:
    """Cycle count of ``work`` on ``config`` (see module docstring)."""
    mul_cycles = math.ceil(work.products / (config.width * config.pack))
    reduce_events = work.outputs * math.ceil(work.k / config.width)
    adder_cycles = math.ceil(reduce_events / config.dup)
    return CycleBreakdown(mul_cycles, adder_cycles, PIPELINE_FILL)


def throughput(config: DpConfig, work: TileWork) -> float:
    """Sustained MAC throughput (products per cycle) on a tile."""
    return work.products / cycles_for(config, work).total


def fig8_dp4_workload() -> TileWork:
    """The m2n4k4 DP-4 workload of Fig. 8 (baseline view: 8 outputs, k=4)."""
    return TileWork(outputs=8, k=4)


def packed_outputs(work: TileWork, pack: int) -> TileWork:
    """Expand a tile's outputs by the packing factor.

    When weights are ``n``-packed, the same fetched operands cover
    ``pack`` times as many output columns: Fig. 8's parallel DP-4
    produces 32 (INT4) / 64 (INT2) outputs from the m2n4k4 fetch.
    """
    return TileWork(outputs=work.outputs * pack, k=work.k)


def corrected_dot(
    a_values: Sequence[float],
    signed_codes: Sequence[int],
    scale: float,
    weight_bits: int,
) -> float:
    """PacQ's Eq. (1): inner product through transformed weights.

    Computes ``scale * (sum(A_k * T_k) - offset * sum(A_k))`` where
    ``T_k = B_k + offset`` and ``offset = transform_offset`` (1032 for
    INT4).  The small accumulator tracks ``sum(A_k)``; the general core
    multiplies it by the offset (step 1 of Fig. 6), subtracts (step 2)
    and applies the group scale (step 3).

    Accumulation is performed in wide precision (float64), modelling
    FP32-accumulate tensor cores; product rounding effects are covered
    by the bit-level path in :mod:`repro.core.gemm`.
    """
    if len(a_values) != len(signed_codes):
        raise ConfigError("operand length mismatch")
    offset = transform_offset(weight_bits)
    acc = 0.0
    a_sum = 0.0
    for a, code in zip(a_values, signed_codes, strict=False):
        acc += a * (code + offset)
        a_sum += a
    return scale * (acc - offset * a_sum)


def corrected_dot_reference(
    a_values: Sequence[float], signed_codes: Sequence[int], scale: float
) -> float:
    """Direct ``scale * sum(A * B)`` reference for :func:`corrected_dot`."""
    return scale * float(
        # detlint: ignore[D001]: float64 reference oracle the exact datapath
        # is checked against — deliberately outside the bit-exact envelope.
        np.dot(np.asarray(a_values, dtype=np.float64), np.asarray(signed_codes, dtype=np.float64))
    )
