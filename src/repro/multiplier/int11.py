"""Integer significand multiplier arrays (paper Fig. 5(c), Table I).

An FP16 multiplier's core is an 11x11-bit unsigned multiplier for the
two hidden-bit-extended mantissas.  Table I of the paper inventories
it as **10 parallel INT16 adders** (one per non-LSB partial-product
row).  PacQ's parallel variant splits the array into four 11x4-bit
multiplications that run simultaneously, adding **2 INT16 adders and
4 INT6 adders** to the baseline array (Table I: ``Parallel INT11 MUL =
12 INT16 adders, 4 INT6 adders``).

This module models both arrays at the level the paper reasons about:
partial-product rows ANDed from the operands and reduced by counted
adders.  The value results are exact integers (verified against ``*``),
and the :class:`AdderInventory` feeds the energy model so the Fig. 9
power breakdowns derive from the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EncodingError

#: Width of the hidden-bit-extended FP16 significand.
SIGNIFICAND_BITS = 11


@dataclass(frozen=True)
class AdderInventory:
    """Counted adder resources of a multiplier array.

    ``adders`` maps adder bit-width -> count, mirroring Table I rows.
    """

    adders: dict[int, int] = field(default_factory=dict)

    def total_full_adder_bits(self) -> int:
        """Sum of width x count — the quantity the power model scales with."""
        return sum(width * count for width, count in self.adders.items())

    def merged_with(self, other: "AdderInventory") -> "AdderInventory":
        merged = dict(self.adders)
        for width, count in other.adders.items():
            merged[width] = merged.get(width, 0) + count
        return AdderInventory(merged)


#: Baseline 11x11 array: 11 partial-product rows reduced by 10 adders.
BASELINE_INT11_INVENTORY = AdderInventory({16: 10})
#: Parallel array: baseline's 10 adders + 2 extra INT16 + 4 INT6 adders.
PARALLEL_INT11_INVENTORY = AdderInventory({16: 12, 6: 4})
#: The subset of the parallel array inherited from the baseline design.
PARALLEL_INT11_REUSED = AdderInventory({16: 10})


def _check_unsigned(value: int, bits: int, name: str) -> None:
    if not 0 <= value < (1 << bits):
        raise EncodingError(f"{name} out of {bits}-bit unsigned range: {value}")


def partial_product_rows(a: int, b: int, b_bits: int) -> list[int]:
    """The AND-plane rows of an ``11 x b_bits`` array multiplier.

    Row ``j`` is ``a AND-replicated by bit j of b``, already shifted
    into position, so ``sum(rows) == a * b``.
    """
    _check_unsigned(a, SIGNIFICAND_BITS, "a")
    _check_unsigned(b, b_bits, "b")
    rows = []
    for j in range(b_bits):
        row = a if (b >> j) & 1 else 0
        rows.append(row << j)
    return rows


def baseline_int11_mul(a: int, b: int) -> int:
    """Exact 11x11 unsigned multiply via the modelled partial-product array."""
    rows = partial_product_rows(a, b, SIGNIFICAND_BITS)
    total = 0
    for row in rows:  # reduction through the 10-adder chain
        total += row
    assert total == a * b
    return total


def parallel_int11_mul(a: int, b_values: list[int], b_bits: int) -> list[int]:
    """Exact parallel ``11 x b_bits`` multiplies sharing one array.

    Computes ``a * b`` for every packed weight field in one pass,
    modelling the split array of Fig. 5(c).  ``b_bits`` is 4 for INT4
    (four lanes) or 2 for INT2 (eight lanes).
    """
    if b_bits not in (2, 4):
        raise EncodingError(f"parallel array supports 2- or 4-bit lanes, not {b_bits}")
    results = []
    for b in b_values:
        rows = partial_product_rows(a, b, b_bits)
        total = 0
        for row in rows:
            total += row
        assert total == a * b
        results.append(total)
    return results


@dataclass(frozen=True)
class ArrayActivity:
    """Switching-activity proxy for one multiply through an array.

    ``and_plane_bits`` counts AND gates evaluated, ``adder_bits``
    counts full-adder bit positions exercised — the dynamic-energy
    proxies used by :mod:`repro.energy`.
    """

    and_plane_bits: int
    adder_bits: int


def baseline_activity() -> ArrayActivity:
    """Per-op activity of the baseline 11x11 array."""
    return ArrayActivity(
        and_plane_bits=SIGNIFICAND_BITS * SIGNIFICAND_BITS,
        adder_bits=BASELINE_INT11_INVENTORY.total_full_adder_bits(),
    )


def parallel_activity(b_bits: int) -> ArrayActivity:
    """Per-op activity of the parallel array producing all lanes at once."""
    if b_bits not in (2, 4):
        raise EncodingError(f"unsupported lane width: {b_bits}")
    num_lanes = 16 // b_bits
    return ArrayActivity(
        and_plane_bits=SIGNIFICAND_BITS * b_bits * num_lanes,
        adder_bits=PARALLEL_INT11_INVENTORY.total_full_adder_bits(),
    )
