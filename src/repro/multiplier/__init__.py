"""PacQ's compute units: integer arrays, parallel FP-INT multiplier, DP units.

* :mod:`repro.multiplier.int11` — significand multiplier arrays and
  their adder inventories (Table I).
* :mod:`repro.multiplier.parallel` — the bit-exact parallel FP-INT
  multiplier of Fig. 5.
* :mod:`repro.multiplier.dp` — DP-4/8/16 cycle models and the fused
  Eq. (1) correction.
"""

from repro.multiplier.dp import (
    BASELINE_DP4,
    PACQ_DP4_INT2,
    PACQ_DP4_INT4,
    PIPELINE_FILL,
    CycleBreakdown,
    DpConfig,
    TileWork,
    corrected_dot,
    corrected_dot_reference,
    cycles_for,
    fig8_dp4_workload,
    packed_outputs,
    pacq_dp,
    throughput,
)
from repro.multiplier.int11 import (
    BASELINE_INT11_INVENTORY,
    PARALLEL_INT11_INVENTORY,
    PARALLEL_INT11_REUSED,
    AdderInventory,
    baseline_int11_mul,
    parallel_int11_mul,
)
from repro.multiplier.parallel import (
    LaneTrace,
    ParallelMulResult,
    lanes,
    parallel_fp_int_mul,
    parallel_fp_int_mul_batch,
    rebias_offset,
    reference_products,
    reference_products_batch,
    transform_offset,
    transformed_weight_bits,
)
from repro.multiplier.parallel_bf16 import (
    ParallelBf16Result,
    parallel_bf16_int_mul,
)

__all__ = [
    "AdderInventory",
    "BASELINE_DP4",
    "BASELINE_INT11_INVENTORY",
    "CycleBreakdown",
    "DpConfig",
    "LaneTrace",
    "PACQ_DP4_INT2",
    "PACQ_DP4_INT4",
    "PARALLEL_INT11_INVENTORY",
    "PARALLEL_INT11_REUSED",
    "PIPELINE_FILL",
    "ParallelBf16Result",
    "ParallelMulResult",
    "parallel_bf16_int_mul",
    "TileWork",
    "baseline_int11_mul",
    "corrected_dot",
    "corrected_dot_reference",
    "cycles_for",
    "fig8_dp4_workload",
    "lanes",
    "packed_outputs",
    "pacq_dp",
    "parallel_fp_int_mul",
    "parallel_fp_int_mul_batch",
    "parallel_int11_mul",
    "rebias_offset",
    "reference_products",
    "reference_products_batch",
    "throughput",
    "transform_offset",
    "transformed_weight_bits",
]
