"""The parallel FP-INT multiplier (paper Section IV, Fig. 5(b-d)).

One FP16 activation ``A`` is multiplied by four INT4 weights (or eight
INT2 weights) in a single cycle.  The trick: re-bias a signed weight
``B`` by ``2**(bits-1)`` and add 1024, giving ``T = B + 1032`` (INT4)
with ``T in [1024, 2048)``.  In FP16:

* the exponent of ``T`` is always ``11001b`` (biased 25, i.e. 2**10);
* the mantissa of ``T`` is ``000000yyyy`` where ``yyyy = B + 8``.

So all lanes share one sign (``s_A XOR 0``), one exponent adder
(``e_A + 25 - bias``) and one normalizer, and the 11x11 mantissa array
degenerates into four 11x4 products assembled per Fig. 5(d):

``m_out = { A[10:6],  A[5:0] + i[13:10],  i[9:0] }``

where ``i = (1.m_A) * yyyy`` is the 14-bit intermediate product.  Only
the per-lane rounding units are duplicated.

The model is **bit-exact**: for every lane the output equals
``fp16_mul(A, fp16(B + 1024 + rebias))`` — the paper's "there is no
approximation in our design" claim — which the test suite verifies
exhaustively over all mantissas and weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.fp import fp16
from repro.fp.fp16 import (
    BIAS,
    EXPONENT_SPECIAL,
    MANTISSA_BITS,
    MANTISSA_MASK,
    combine,
    from_int_exact,
    is_normalized,
    is_zero,
    split,
)
from repro.fp.mul import fp16_mul
from repro.multiplier.int11 import parallel_int11_mul

#: Biased exponent of every transformed weight: 1024 <= T < 2048.
TRANSFORM_EXPONENT = 25  # 11001b, value 2**(25 - 15) = 1024


def rebias_offset(weight_bits: int) -> int:
    """Signed -> unsigned offset: 8 for INT4, 2 for INT2."""
    if weight_bits not in (2, 4):
        raise EncodingError(f"parallel multiplier supports INT2/INT4, not INT{weight_bits}")
    return 1 << (weight_bits - 1)


def transform_offset(weight_bits: int) -> int:
    """The additive constant of Eq. (1): 1032 for INT4, 1026 for INT2.

    ``T = B + transform_offset`` puts every signed weight in
    ``[1024, 1024 + 2**bits)`` so the FP16 exponent is constant.
    """
    return 1024 + rebias_offset(weight_bits)


def lanes(weight_bits: int) -> int:
    """Parallel lanes per cycle: 4 for INT4, 8 for INT2."""
    rebias_offset(weight_bits)  # validates
    return 16 // weight_bits


def transformed_weight_bits(code: int, weight_bits: int) -> int:
    """FP16 bit pattern of ``code + transform_offset`` (exact).

    ``code`` is the *signed* weight.  By observation (1)+(2) of the
    paper the pattern is simply exponent 25 with the unsigned code in
    the mantissa LSBs — asserted here against the generic encoder.
    """
    offset = rebias_offset(weight_bits)
    if not -offset <= code < offset:
        raise EncodingError(f"code {code} out of INT{weight_bits} range")
    unsigned = code + offset
    direct = combine(0, TRANSFORM_EXPONENT, unsigned)
    assert direct == from_int_exact(1024 + unsigned)
    return direct


@dataclass(frozen=True)
class LaneTrace:
    """Datapath signals of one lane (Fig. 5(c)/(d))."""

    intermediate: int  #: i = significand(A) * y, up to 15 bits
    assembled_mantissa: int  #: 22-bit product significand before rounding
    result_bits: int


@dataclass(frozen=True)
class ParallelMulResult:
    """All lane outputs of one parallel multiply, with shared fields."""

    sign: int
    shared_exponent: int  #: biased e_out before any rounding carry
    lane_traces: tuple[LaneTrace, ...]

    @property
    def products(self) -> tuple[int, ...]:
        return tuple(trace.result_bits for trace in self.lane_traces)


def _assemble_mantissa(a_significand: int, intermediate: int) -> int:
    """Fig. 5(d) mantissa assembly.

    The exact 22-bit product is ``(sig_A << 10) + i``.  The hardware
    realizes it as a concatenation of A's top bits with a short
    addition: ``{A[10:6], A[5:0] + i[14:10], i[9:0]}``, where the
    6-bit adder's carry-out increments the upper concatenated field.
    This helper mirrors that wiring and is asserted against the exact
    integer product.
    """
    low = intermediate & 0x3FF  # i[9:0] passes straight through
    overlap = intermediate >> 10  # i[14:10], <= 5 bits for INT4 lanes
    mid = (a_significand & 0x3F) + overlap  # 6-bit adder (+ carry out)
    high = a_significand >> 6  # A[10:6]
    assembled = (high << 16) + (mid << 10) + low
    assert assembled == (a_significand << 10) + intermediate
    return assembled


def _round_lane(sign: int, exponent: int, assembled: int) -> int:
    """Per-lane rounding unit: normalize (<=1 bit) and round to nearest even.

    ``assembled`` is the 21/22-bit product significand valued
    ``assembled * 2**(exponent - BIAS - 20)``.
    """
    shift = 1 if assembled >= (1 << 21) else 0
    biased = exponent + shift
    rounded = fp16.round_to_nearest_even(assembled, MANTISSA_BITS + shift)
    if rounded >= (1 << (MANTISSA_BITS + 1)):
        rounded >>= 1
        biased += 1
    if biased >= EXPONENT_SPECIAL:
        return combine(sign, EXPONENT_SPECIAL, 0)
    if biased < 1:
        # Underflow into the subnormal range: defer to the generic
        # datapath (the hardware flushes through the general core).
        raise _SubnormalLane()
    return combine(sign, biased, rounded & MANTISSA_MASK)


class _SubnormalLane(Exception):
    """Internal signal: a lane result left the normalized range."""


def parallel_fp_int_mul(
    a_bits: int, codes: list[int], weight_bits: int
) -> ParallelMulResult:
    """Multiply FP16 ``A`` by all packed signed weights in one cycle.

    Args:
        a_bits: raw FP16 bits of the activation.
        codes: signed weight codes; at most :func:`lanes` of them.
        weight_bits: 4 (INT4) or 2 (INT2).

    Returns:
        A :class:`ParallelMulResult` whose lane ``result_bits`` equal
        ``fp16_mul(a_bits, transformed_weight_bits(code))`` exactly.
    """
    max_lanes = lanes(weight_bits)
    if not codes or len(codes) > max_lanes:
        raise EncodingError(
            f"INT{weight_bits} multiplier takes 1..{max_lanes} codes, got {len(codes)}"
        )
    offset = rebias_offset(weight_bits)
    unsigned = []
    for code in codes:
        if not -offset <= code < offset:
            raise EncodingError(f"code {code} out of INT{weight_bits} range")
        unsigned.append(code + offset)

    if not (is_normalized(a_bits) or is_zero(a_bits)):
        # Subnormal / inf / NaN activations bypass the fast datapath;
        # results remain bit-identical via the generic multiplier.
        return _fallback(a_bits, codes, weight_bits)

    sign_a, exp_a, man_a = split(a_bits)
    sign_out = sign_a ^ 0  # transformed weights are always positive
    shared_exponent = exp_a + TRANSFORM_EXPONENT - BIAS

    if is_zero(a_bits):
        zero = combine(sign_out, 0, 0)
        traces = tuple(LaneTrace(0, 0, zero) for _ in unsigned)
        return ParallelMulResult(sign_out, 0, traces)

    sig_a = (1 << MANTISSA_BITS) | man_a  # 11-bit 1.m_A
    intermediates = parallel_int11_mul(sig_a, unsigned, weight_bits)

    traces = []
    for inter in intermediates:
        assembled = _assemble_mantissa(sig_a, inter)
        try:
            result = _round_lane(sign_out, shared_exponent, assembled)
        except _SubnormalLane:
            return _fallback(a_bits, codes, weight_bits)
        traces.append(LaneTrace(inter, assembled, result))
    return ParallelMulResult(sign_out, shared_exponent, tuple(traces))


def _fallback(a_bits: int, codes: list[int], weight_bits: int) -> ParallelMulResult:
    """Generic-path results for operands outside the fast datapath."""
    traces = []
    for code in codes:
        t_bits = transformed_weight_bits(code, weight_bits)
        traces.append(LaneTrace(0, 0, fp16_mul(a_bits, t_bits)))
    sign = split(a_bits)[0]
    return ParallelMulResult(sign, 0, tuple(traces))


def reference_products(a_bits: int, codes: list[int], weight_bits: int) -> list[int]:
    """Dequantize-then-multiply reference: what the baseline flow computes.

    Each transformed weight is encoded to FP16 exactly and multiplied by
    the standard datapath; the parallel multiplier must match these bits.
    """
    return [
        fp16_mul(a_bits, transformed_weight_bits(code, weight_bits)) for code in codes
    ]


def parallel_fp_int_mul_batch(a_bits, codes, weight_bits: int):
    """Lane product bits for whole activation/code blocks at once.

    The batch entry point of the parallel multiplier: ``a_bits`` is any
    ndarray of raw FP16 patterns and ``codes`` any broadcastable ndarray
    of signed INT2/INT4 codes (e.g. ``a[k, 1]`` against a whole
    ``codes[k, n]`` weight block).  Evaluates through the vectorized
    datapath of :mod:`repro.fp.vec.parallel` — bit-identical to calling
    :func:`parallel_fp_int_mul` per element, at numpy-lane speed.
    """
    from repro.fp.vec.parallel import parallel_products

    return parallel_products(a_bits, codes, weight_bits)


def reference_products_batch(a_bits, codes, weight_bits: int):
    """Vectorized :func:`reference_products` for whole blocks."""
    from repro.fp.vec.parallel import reference_products as vec_reference

    return vec_reference(a_bits, codes, weight_bits)
