"""Experiment orchestration: sweeps, caching, parallel execution.

The harness turns the registered experiment runners
(:mod:`repro.core.experiments`) into an orchestrated pipeline:

1. **Specify** — :class:`SweepSpec` declares experiments x a parameter
   grid (e.g. every engine backend x every Table II group spec) and
   expands into independent :class:`Job` values.
2. **Execute** — :func:`run_jobs` resolves jobs against the
   content-addressed :class:`ResultCache` (keyed on experiment id +
   params + code version, so re-runs are incremental) and executes the
   misses serially or across a ``multiprocessing`` pool.
3. **Emit** — outcomes become :class:`repro.core.report.RunRecord`
   values that the report sink layer renders as per-run JSON, merged
   CSV, and the committed ``EXPERIMENTS.md`` paper-vs-measured table.

The CLI's ``run`` / ``sweep`` / ``report`` subcommands are thin
wrappers over this module; it is equally usable as a library::

    from repro.harness import SweepSpec, ResultCache, run_jobs

    spec = SweepSpec.make(["table2"], grid={"backend": ["fast", "batched"]})
    outcomes = run_jobs(spec.jobs(), workers=2, cache=ResultCache("cache/"))
"""

from repro.harness.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ResultCache,
    code_version,
    default_cache_dir,
)
from repro.harness.executor import JobOutcome, run_job, run_jobs
from repro.harness.spec import Job, SweepSpec, default_sweep

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "Job",
    "JobOutcome",
    "ResultCache",
    "SweepSpec",
    "code_version",
    "default_cache_dir",
    "default_sweep",
    "run_job",
    "run_jobs",
]
