"""Declarative sweep specifications expanded into independent jobs.

A :class:`SweepSpec` names the experiments to run, a parameter *grid*
(axis name -> candidate values) and fixed *base* parameters.  Expansion
is per experiment: only the axes the experiment's runner actually
accepts apply to it, so one spec can sweep ``backend`` x ``spec`` over
``table2`` while ``fig7a`` (no parameters) contributes a single job.

Jobs are plain, hashable, picklable value objects — the unit the
executor schedules, the cache keys, and the artifact sinks label.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.core.experiments import get_experiment
from repro.errors import ConfigError


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to hashable tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    return value


def thaw(value: Any) -> Any:
    """Inverse-ish of ``_freeze`` for JSON emission (tuples -> lists)."""
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class Job:
    """One independent unit of work: an experiment plus bound params."""

    experiment: str
    params: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(experiment: str, params: Mapping[str, Any] | None = None) -> "Job":
        items = tuple(
            sorted((str(k), _freeze(v)) for k, v in (params or {}).items())
        )
        return Job(experiment=experiment, params=items)

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable id, e.g. ``table2[backend=fast,spec=g128]``."""
        if not self.params:
            return self.experiment
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.experiment}[{inner}]"

    @property
    def slug(self) -> str:
        """Filesystem-safe id for artifact file names."""
        return "".join(
            c if c.isalnum() or c in "=_.-" else "_" for c in self.label
        )

    def payload(self) -> dict[str, Any]:
        """JSON-serializable identity (cache keys, artifact metadata)."""
        return {
            "experiment": self.experiment,
            "params": {k: thaw(v) for k, v in self.params},
        }


@dataclass(frozen=True)
class SweepSpec:
    """Experiments x parameter grid, expanded by :meth:`jobs`."""

    experiments: tuple[str, ...]
    grid: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        experiments: Sequence[str],
        grid: Mapping[str, Iterable[Any]] | None = None,
        base: Mapping[str, Any] | None = None,
    ) -> "SweepSpec":
        return SweepSpec(
            experiments=tuple(experiments),
            grid=tuple(
                (str(k), tuple(_freeze(v) for v in vs))
                for k, vs in (grid or {}).items()
            ),
            base=tuple(
                sorted((str(k), _freeze(v)) for k, v in (base or {}).items())
            ),
        )

    def jobs(self) -> tuple[Job, ...]:
        """Expand into jobs, deterministically ordered.

        Order: experiments as given, then row-major over the grid axes
        in the order they were declared.  Axes/base parameters an
        experiment does not accept are dropped for that experiment;
        an axis no experiment accepts is an error (a typo, not a
        harmless no-op).
        """
        if not self.experiments:
            raise ConfigError("sweep spec names no experiments")
        out: list[Job] = []
        used_axes: set[str] = set()
        for name in self.experiments:
            exp = get_experiment(name)  # raises with the registered names
            axes = [(k, vs) for k, vs in self.grid if exp.accepts(k)]
            used_axes.update(k for k, _ in axes)
            base = {k: v for k, v in self.base if exp.accepts(k)}
            if not axes:
                out.append(Job.make(name, base))
                continue
            for combo in itertools.product(*(vs for _, vs in axes)):
                params = dict(base)
                params.update({k: v for (k, _), v in zip(axes, combo, strict=False)})
                out.append(Job.make(name, params))
        unused = [k for k, _ in self.grid if k not in used_axes]
        if unused:
            raise ConfigError(
                f"grid axis(es) {', '.join(sorted(unused))} not accepted by "
                f"any of: {', '.join(self.experiments)}"
            )
        return tuple(out)


def default_sweep() -> SweepSpec:
    """The stock sweep: every engine backend x every Table II group spec.

    Problem sizes are reduced (vocab 64, d_model 256, 128-token corpus)
    so even the bit-level ``bitexact`` validator backend completes in
    seconds per job; relative comparisons across backends/specs are the
    point of a sweep, not absolute Table II values.
    """
    from repro.engine import backend_names
    from repro.quant.groups import TABLE2_SPECS

    return SweepSpec.make(
        experiments=("table2",),
        grid={
            "backend": list(backend_names()),
            "spec": [s.label for s in TABLE2_SPECS],
        },
        base={"vocab": 64, "d_model": 256, "corpus_len": 128},
    )
