"""Job execution: serial or ``multiprocessing``, cache-aware.

:func:`run_jobs` is the harness's engine room.  It first resolves every
job against the result cache (unless ``force``), then executes the
misses — in-process when ``workers == 1`` (preserving engine plan-cache
reuse across jobs), or across a process pool otherwise — and stores
fresh results back into the cache.  Outcomes keep the input order, so
serial and parallel sweeps emit identical artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

# Importing extensions registers the extension experiments in worker
# processes as well as the parent (the registry is import-populated).
from repro.core import extensions as _extensions  # noqa: F401
from repro.core.experiments import ExperimentResult, get_experiment
from repro.core.procutil import pool_context
from repro.engine import plan_cache_stats
from repro.harness.cache import ResultCache
from repro.harness.spec import Job


@dataclass(frozen=True)
class JobOutcome:
    """One finished job: result, provenance, wall time, plan reuse.

    ``plan_builds``/``plan_reuses`` are the engine plan-cache deltas
    observed while the job executed (zero for cache hits) — summed by
    ``pacq-repro sweep`` to show cross-job plan reuse even when jobs
    ran in pool workers whose in-process counters are unreachable.
    """

    job: Job
    result: ExperimentResult
    cached: bool
    elapsed_s: float
    plan_builds: int = 0
    plan_reuses: int = 0


def run_job(job: Job) -> ExperimentResult:
    """Execute one job in-process (no caching)."""
    return get_experiment(job.experiment).run(**job.params_dict())


def _timed_run(job: Job) -> tuple[ExperimentResult, float, int, int]:
    before = plan_cache_stats()
    start = time.perf_counter()
    result = run_job(job)
    elapsed = time.perf_counter() - start
    after = plan_cache_stats()
    return (
        result,
        elapsed,
        after["builds"] - before["builds"],
        after["reuses"] - before["reuses"],
    )


def run_jobs(
    jobs: tuple[Job, ...] | list[Job],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
) -> list[JobOutcome]:
    """Run jobs through the cache and (optionally) a process pool.

    Args:
        jobs: jobs to run; output order matches input order.
        workers: process count; 1 executes serially in-process.
        cache: result cache, or None to always execute.
        force: execute even on a cache hit (refreshes entries).

    Returns:
        One :class:`JobOutcome` per job; ``cached`` marks jobs served
        from disk without executing.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    outcomes: dict[int, JobOutcome] = {}
    pending: list[tuple[int, Job]] = []
    for index, job in enumerate(jobs):
        hit = None if (cache is None or force) else cache.get(job)
        if hit is not None:
            outcomes[index] = JobOutcome(job, hit, cached=True, elapsed_s=0.0)
        else:
            pending.append((index, job))

    if pending:
        if workers > 1 and len(pending) > 1:
            with pool_context().Pool(min(workers, len(pending))) as pool:
                executed = pool.map(_timed_run, [job for _, job in pending])
        else:
            executed = [_timed_run(job) for _, job in pending]
        for (index, job), (result, elapsed, builds, reuses) in zip(pending, executed, strict=False):
            if cache is not None:
                cache.put(job, result, elapsed)
            outcomes[index] = JobOutcome(
                job,
                result,
                cached=False,
                elapsed_s=elapsed,
                plan_builds=builds,
                plan_reuses=reuses,
            )

    return [outcomes[i] for i in range(len(jobs))]
