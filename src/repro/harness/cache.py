"""Content-addressed on-disk result cache for experiment jobs.

A cache entry is keyed by the SHA-256 of the job's identity — the
experiment name, its canonicalized parameters, and the *code version*
(a digest over every ``repro`` source file) — so re-running a sweep is
incremental: unchanged jobs are served from disk, and any edit to the
package invalidates everything it could have influenced.  Entries are
plain JSON (one file per job) written atomically; a corrupt or
truncated file is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field

from repro.core.experiments import ExperimentResult
from repro.harness.spec import Job

#: Environment override for the default cache location.
CACHE_DIR_ENV = "PACQ_CACHE_DIR"

_CODE_VERSION: str | None = None


def default_cache_dir() -> pathlib.Path:
    """``$PACQ_CACHE_DIR`` or ``~/.cache/pacq-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path("~/.cache/pacq-repro").expanduser()


def code_version(refresh: bool = False) -> str:
    """Digest of every ``repro`` source file (cache-key ingredient).

    Hashes the relative path and contents of each ``*.py`` under the
    installed ``repro`` package, sorted, so any code change — not just
    to the experiment touched — invalidates prior results.  Computed
    once per process; ``refresh=True`` recomputes (tests).
    """
    global _CODE_VERSION
    if _CODE_VERSION is not None and not refresh:
        return _CODE_VERSION
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """One directory of content-addressed experiment results."""

    root: pathlib.Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def key(self, job: Job) -> str:
        """Content address of a job under the current code version."""
        payload = dict(job.payload())
        payload["code_version"] = code_version()
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def path(self, job: Job) -> pathlib.Path:
        return self.root / f"{job.experiment}-{self.key(job)[:20]}.json"

    def get(self, job: Job) -> ExperimentResult | None:
        """Cached result for ``job``, or None (counted as hit/miss)."""
        path = self.path(job)
        try:
            entry = json.loads(path.read_text())
            result = ExperimentResult.from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, job: Job, result: ExperimentResult, elapsed_s: float = 0.0) -> None:
        """Store a result atomically (write-temp-then-rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "job": job.payload(),
            "code_version": code_version(),
            "elapsed_s": elapsed_s,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                # default=str matches key(): params that are not JSON
                # types (e.g. a GemmShape) stringify for provenance
                # instead of aborting the store after the work ran.
                json.dump(entry, handle, indent=1, sort_keys=True, default=str)
            os.replace(tmp, self.path(job))
        except BaseException:  # pragma: no cover - cleanup path
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*.json")):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        # detlint: ignore[D004]: order-free — counts entries without consuming order
        return sum(1 for _ in self.root.glob("*.json"))
