"""Declarative model-level quantization policies.

A :class:`QuantPolicy` maps layer names to quantization recipes: each
:class:`LayerRule` pairs a glob pattern (``fnmatch`` over qualified
layer names like ``layer0.w_gate``) with a recipe — bit-width,
:class:`~repro.quant.groups.GroupSpec` geometry, symmetric flag, and
algorithm (``rtn`` / ``awq`` / ``fp16``).  Mixed-precision models
(INT2 FFN + INT4 attention, FP16-kept projections) are therefore one
declarative object instead of bespoke per-layer loops, and the same
object serializes into the checkpoint manifest
(:mod:`repro.model.checkpoint`) so a served model records exactly how
it was quantized.

Rules are matched first-to-last; layers no rule matches are *kept* in
FP16 (the reference fallback path of the decoder), which makes
"quantize everything except the gate" policies a one-liner.

The textual grammar (CLI ``--policy``, harness sweep axes)::

    policy  := clause (";" clause)*
    clause  := [pattern "="] recipe
    recipe  := "fp16" | alg bits ["@" group] [":sym"]
    alg     := "rtn" | "awq" | "int"        (int is an alias of rtn)
    group   := paper-style label, e.g. g128 or g[32,4]

Examples: ``rtn4@g[32,4]`` (uniform INT4), ``awq4@g128:sym``, and the
mixed ``layer*.w_gate=int2@g[32,4];layer*.w_up=int2@g[32,4];*=int4@g128``.
A clause without a pattern applies to every layer (``*``).

:func:`quantize_model` applies a policy to a weight set — either a
:class:`~repro.llm.transformer.DecoderWeights` or a plain
``name -> [k, n] ndarray`` mapping — and returns a
:class:`QuantizedModel` bundling the per-layer
:class:`~repro.quant.rtn.QuantizedMatrix`, AWQ equalization scales
(applied to activations at serve time, equivalent to folding them
upstream) and a per-layer quantization-error report.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import QuantizationError
from repro.llm.transformer import DecoderWeights, TransformerConfig
from repro.quant.algorithms import awq_dequantize, awq_quantize
from repro.quant.error import QuantErrorReport, mse, sqnr_db
from repro.quant.groups import GroupSpec, spec_from_label
from repro.quant.rtn import QuantizedMatrix, quantize_rtn

#: Algorithms a rule may name.  ``fp16`` keeps the layer unquantized.
ALGORITHMS = ("rtn", "awq", "fp16")

#: Bit-widths the GEMM execution engine can serve (plans reject others).
SERVABLE_BITS = (2, 4)

#: Default group geometry of a recipe that names none (the paper's
#: PacQ-friendly g[32,4]).
DEFAULT_GROUP = GroupSpec(32, 4)


@dataclass(frozen=True)
class LayerRule:
    """One policy clause: a layer-name pattern and its recipe."""

    pattern: str = "*"
    bits: int = 4
    group: GroupSpec = DEFAULT_GROUP
    symmetric: bool = False
    algorithm: str = "rtn"

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise QuantizationError(
                f"unknown policy algorithm {self.algorithm!r} "
                f"(one of: {', '.join(ALGORITHMS)})"
            )
        if self.algorithm != "fp16" and self.bits not in SERVABLE_BITS:
            raise QuantizationError(
                f"policy bits must be one of {SERVABLE_BITS} (the widths the "
                f"execution engine serves), got {self.bits}"
            )

    def matches(self, name: str) -> bool:
        """Whether this rule applies to a qualified layer name."""
        return fnmatch.fnmatchcase(name, self.pattern)

    @property
    def recipe(self) -> str:
        """Canonical recipe text (the grammar's right-hand side)."""
        if self.algorithm == "fp16":
            return "fp16"
        text = f"{self.algorithm}{self.bits}@{self.group.label}"
        return text + (":sym" if self.symmetric else "")

    @property
    def label(self) -> str:
        """Canonical clause text, pattern included unless it is ``*``."""
        if self.pattern == "*":
            return self.recipe
        return f"{self.pattern}={self.recipe}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "pattern": self.pattern,
            "bits": self.bits,
            "group": {"k": self.group.k, "n": self.group.n},
            "symmetric": self.symmetric,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayerRule":
        group = data.get("group", {"k": DEFAULT_GROUP.k, "n": DEFAULT_GROUP.n})
        return cls(
            pattern=str(data.get("pattern", "*")),
            bits=int(data.get("bits", 4)),
            group=GroupSpec(int(group["k"]), int(group["n"])),
            symmetric=bool(data.get("symmetric", False)),
            algorithm=str(data.get("algorithm", "rtn")),
        )


_RECIPE_RE = re.compile(r"(rtn|awq|int)(\d+)(?:@(g[^:]+))?", re.IGNORECASE)


def _parse_recipe(text: str, pattern: str) -> LayerRule:
    body = text.strip().lower()
    symmetric = body.endswith(":sym")
    if symmetric:
        body = body[: -len(":sym")]
    if body == "fp16":
        if symmetric:
            raise QuantizationError("fp16 recipe takes no :sym flag")
        return LayerRule(pattern=pattern, bits=4, algorithm="fp16")
    match = _RECIPE_RE.fullmatch(body)
    if match is None:
        raise QuantizationError(
            f"malformed policy recipe {text!r} (expected e.g. 'rtn4@g[32,4]', "
            "'awq4@g128:sym' or 'fp16')"
        )
    alg, bits, group_label = match.groups()
    return LayerRule(
        pattern=pattern,
        bits=int(bits),
        group=spec_from_label(group_label) if group_label else DEFAULT_GROUP,
        symmetric=symmetric,
        algorithm="rtn" if alg == "int" else alg,
    )


@dataclass(frozen=True)
class QuantPolicy:
    """An ordered rule list; first matching rule wins per layer."""

    rules: tuple[LayerRule, ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise QuantizationError("a policy needs at least one rule")

    @classmethod
    def uniform(
        cls,
        bits: int = 4,
        group: GroupSpec = DEFAULT_GROUP,
        symmetric: bool = False,
        algorithm: str = "rtn",
    ) -> "QuantPolicy":
        """One recipe for every layer (the legacy ``quantize_weights``)."""
        return cls(
            rules=(
                LayerRule(
                    pattern="*",
                    bits=bits,
                    group=group,
                    symmetric=symmetric,
                    algorithm=algorithm,
                ),
            )
        )

    def rule_for(self, name: str) -> LayerRule | None:
        """First rule matching ``name``; ``None`` keeps the layer FP16."""
        for rule in self.rules:
            if rule.matches(name):
                return rule
        return None

    @property
    def label(self) -> str:
        """Canonical policy text (round-trips through :func:`parse_policy`)."""
        return ";".join(rule.label for rule in self.rules)

    def to_dict(self) -> dict[str, Any]:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantPolicy":
        return cls(
            rules=tuple(LayerRule.from_dict(r) for r in data.get("rules", ()))
        )


def parse_policy(text: str) -> QuantPolicy:
    """Parse the textual policy grammar (see module docstring)."""
    rules = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        pattern, sep, recipe = clause.partition("=")
        if not sep:
            pattern, recipe = "*", clause
        pattern = pattern.strip()
        if not pattern or not recipe.strip():
            raise QuantizationError(f"malformed policy clause {clause!r}")
        rules.append(_parse_recipe(recipe, pattern))
    if not rules:
        raise QuantizationError(f"policy text {text!r} contains no clauses")
    return QuantPolicy(rules=tuple(rules))


@dataclass(frozen=True)
class QuantizedLayer:
    """One quantized layer: matrix, provenance rule, error report.

    ``channel_scales`` carries AWQ's per-input-channel equalization
    scales when the rule's algorithm searched them; the serving path
    divides activations by them before the GEMM (mathematically the
    fold-into-the-previous-layer deployment, applied at runtime).
    ``None`` means no activation scaling is needed.
    """

    name: str
    matrix: QuantizedMatrix
    rule: LayerRule
    report: QuantErrorReport | None
    channel_scales: np.ndarray | None = None

    @property
    def weight_bits(self) -> int:
        """Storage footprint of this layer (codes + metadata), bits."""
        return self.matrix.storage_bits()


@dataclass
class QuantizedModel:
    """A policy applied to a whole model: the serving-shaped bundle.

    Attributes:
        layers: qualified layer name -> :class:`QuantizedLayer`.
        policy: the policy that produced the bundle.
        config: decoder dimensions when the weights came from a
            :class:`~repro.llm.transformer.DecoderWeights` model
            (``None`` for raw matrix mappings).
        weights: the source weights (embedding, norms and FP16-kept
            masters; required to build an inference session).
        kept_fp16: layer names no rule quantized (served via the
            FP16-rounded reference fallback).
    """

    layers: dict[str, QuantizedLayer]
    policy: QuantPolicy
    config: TransformerConfig | None = None
    weights: DecoderWeights | None = None
    kept_fp16: tuple[str, ...] = ()

    def matrices(self) -> dict[str, QuantizedMatrix]:
        """Name -> quantized matrix (the legacy ``Decoder`` mapping)."""
        return {name: layer.matrix for name, layer in self.layers.items()}

    def activation_scales(self) -> dict[str, np.ndarray]:
        """Name -> AWQ equalization scales, for layers that carry them."""
        return {
            name: layer.channel_scales
            for name, layer in self.layers.items()
            if layer.channel_scales is not None
        }

    def reports(self) -> dict[str, QuantErrorReport]:
        """Name -> per-layer quantization-error report (where computed)."""
        return {
            name: layer.report
            for name, layer in self.layers.items()
            if layer.report is not None
        }

    def quantized_bits(self) -> int:
        """Total storage of all quantized layers (codes + metadata), bits."""
        return sum(layer.weight_bits for layer in self.layers.values())

    def summary_rows(self) -> list[list[object]]:
        """Printable per-layer summary (CLI ``quantize`` table)."""
        rows: list[list[object]] = []
        for name, layer in self.layers.items():
            rows.append(
                [
                    name,
                    layer.rule.recipe,
                    "-" if layer.report is None else f"{layer.report.sqnr_db:.1f}",
                    "-" if layer.report is None else f"{layer.report.mse:.3e}",
                ]
            )
        for name in self.kept_fp16:
            rows.append([name, "fp16", "-", "-"])
        return rows


def _named_matrices(
    weights: DecoderWeights | Mapping[str, np.ndarray],
) -> list[tuple[str, np.ndarray]]:
    if hasattr(weights, "linear_matrices"):
        return list(weights.linear_matrices())
    return list(weights.items())


def quantize_model(
    weights: DecoderWeights | Mapping[str, np.ndarray],
    policy: QuantPolicy,
    config: TransformerConfig | None = None,
    calibration: Mapping[str, np.ndarray] | None = None,
    compute_reports: bool = True,
) -> QuantizedModel:
    """Apply a policy to every linear layer of a model.

    Args:
        weights: a :class:`~repro.llm.transformer.DecoderWeights` (every
            ``linear_matrices()`` entry is considered) or a plain
            ``name -> [k, n] ndarray`` mapping.
        policy: the declarative recipe set; unmatched layers are kept
            FP16.
        config: decoder dimensions, recorded for checkpointing/serving.
        calibration: optional per-layer ``[k]`` activation-magnitude
            profiles for ``awq`` rules (e.g. mean absolute activation
            per input channel).  An ``awq`` layer without a profile
            degenerates to RTN (uniform importance).
        compute_reports: build a per-layer quantization-error report
            (an extra dequantize + full-matrix statistics per layer);
            pass ``False`` when only the matrices are needed.

    Group extents are clipped to each layer's dimensions, so one spec
    covers layers of different shapes (matching the legacy
    ``quantize_weights`` behaviour).
    """
    layers: dict[str, QuantizedLayer] = {}
    kept: list[str] = []
    for name, weight in _named_matrices(weights):
        rule = policy.rule_for(name)
        if rule is None or rule.algorithm == "fp16":
            kept.append(name)
            continue
        k_dim, n_dim = weight.shape
        group = GroupSpec(min(rule.group.k, k_dim), min(rule.group.n, n_dim))
        channel_scales: np.ndarray | None = None
        if rule.algorithm == "awq":
            profile = None if calibration is None else calibration.get(name)
            if profile is None:
                profile = np.ones(k_dim)
            result = awq_quantize(
                weight,
                np.asarray(profile, dtype=np.float64),
                bits=rule.bits,
                group=group,
                symmetric=rule.symmetric,
            )
            qm = result.quantized
            recon = awq_dequantize(result) if compute_reports else None
            if not np.all(result.channel_scales == 1.0):
                channel_scales = result.channel_scales
        else:
            qm = quantize_rtn(
                weight, bits=rule.bits, group=group, symmetric=rule.symmetric
            )
            recon = qm.dequantize() if compute_reports else None
        report = None
        if recon is not None:
            report = QuantErrorReport(
                label=f"{name}:{rule.recipe}",
                bits=rule.bits,
                mse=mse(weight, recon),
                sqnr_db=sqnr_db(weight, recon),
                max_abs_err=float(np.max(np.abs(weight - recon))),
            )
        layers[name] = QuantizedLayer(
            name=name,
            matrix=qm,
            rule=rule,
            report=report,
            channel_scales=channel_scales,
        )
    return QuantizedModel(
        layers=layers,
        policy=policy,
        config=config,
        weights=weights if isinstance(weights, DecoderWeights) else None,
        kept_fp16=tuple(kept),
    )
