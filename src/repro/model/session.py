"""Inference sessions: serving-shaped execution over quantized models.

Two session flavours over the GEMM execution engine:

* :class:`MatrixSession` — one quantized matrix behind a precompiled
  :class:`~repro.engine.GemmPlan` (the bigram LM head, any single-layer
  workload).  Applies AWQ equalization scales to activations when the
  layer carries them, and records telemetry per execution.
* :class:`InferenceSession` — a whole quantized decoder.  Precompiles
  every layer's plan at construction, owns a
  :class:`~repro.llm.transformer.KVCache`, and exposes
  :meth:`InferenceSession.prefill` / :meth:`InferenceSession.decode_step`
  / :meth:`InferenceSession.generate` (greedy and top-k sampling) so
  per-token cost is O(1) GEMM work instead of an O(seq) full
  re-forward — while every logits row stays bit-identical to
  :meth:`~repro.llm.transformer.Decoder.forward` on the concatenated
  sequence (see the transformer module docstring for why).

Both record per-layer :class:`Telemetry` — GEMM count, ``m/n/k``,
MACs, weight/activation bytes moved — and the aggregate converts to
the :class:`~repro.simt.memoryhier.GemmShape` objects that
:func:`repro.core.metrics.evaluate`, :func:`repro.core.roofline.analyze`
and the :mod:`repro.energy` cost model price.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.engine import plan_gemm
from repro.errors import ConfigError
from repro.llm.transformer import Decoder, DecoderWeights, KVCache, TransformerConfig
from repro.model.policy import QuantizedModel
from repro.simt.memoryhier import GemmShape


def check_tokens(tokens: np.ndarray, vocab: int) -> np.ndarray:
    """Validate a 1-D integer token sequence against a vocab size.

    Shared by :class:`InferenceSession` and the serving layer
    (:mod:`repro.serve`), so every entry point rejects malformed
    prompts with the same errors.
    """
    tokens = np.asarray(tokens)
    if tokens.ndim != 1 or tokens.shape[0] < 1:
        raise ConfigError("expected a non-empty 1-D token sequence")
    if not np.issubdtype(tokens.dtype, np.integer):
        raise ConfigError(f"token ids must be integers, got dtype {tokens.dtype}")
    if tokens.min() < 0 or tokens.max() >= vocab:
        raise ConfigError(f"token ids must lie in [0, {vocab})")
    return tokens


def select_token(
    logits: np.ndarray,
    rng: np.random.Generator,
    top_k: int | None,
    temperature: float,
) -> int:
    """Pick the next token from one logits row.

    ``top_k=None`` is greedy argmax (deterministic, ``rng`` unused);
    otherwise top-k sampling at the given temperature.  The single
    sampling implementation behind :meth:`InferenceSession.generate`
    and the per-request sampling of :class:`repro.serve.Scheduler`,
    so a request decodes to the same tokens whichever layer serves it.
    """
    if top_k is None:
        return int(np.argmax(logits))
    if top_k < 1:
        raise ConfigError("top_k must be >= 1")
    if temperature <= 0:
        raise ConfigError("temperature must be > 0")
    k = min(top_k, logits.shape[0])
    candidates = np.argpartition(logits, -k)[-k:]
    shifted = logits[candidates] / temperature
    shifted = shifted - shifted.max()
    probs = np.exp(shifted)
    # detlint: ignore[D003]: fixed-length top-k reduction (k <= vocab rows).
    probs /= probs.sum()
    return int(rng.choice(candidates, p=probs))


@dataclass
class GemmStat:
    """Accumulated telemetry of one named GEMM site."""

    name: str
    n: int
    k: int
    calls: int = 0
    rows: int = 0  #: total activation rows (sum of m over calls)
    macs: int = 0
    weight_bytes: float = 0.0  #: quantized storage moved, summed over calls
    activation_bytes: float = 0.0  #: FP16 activation traffic (2 B/element)

    def shape(self, pad_to: int = 1) -> GemmShape:
        """The site's aggregate GEMM (all calls fused along ``m``).

        ``pad_to`` rounds every dimension up to a multiple (the SIMT
        simulator only accepts shapes tileable by its warp MMA, e.g.
        ``pad_to=16`` for m16n16k16).
        """
        def up(value: int) -> int:
            return max(pad_to, -(-value // pad_to) * pad_to)

        return GemmShape(m=up(max(self.rows, 1)), n=up(self.n), k=up(self.k))


class Telemetry:
    """Per-layer GEMM telemetry recorded by sessions and decoders.

    Feeds the cost models: :meth:`gemm_shapes` returns one aggregate
    :class:`~repro.simt.memoryhier.GemmShape` per site, ready for
    ``evaluate(arch, shape)`` / ``analyze(arch, shape)``.
    """

    def __init__(self) -> None:
        self.stats: dict[str, GemmStat] = {}

    def record(self, name: str, m: int, n: int, k: int, weight_bits: int) -> None:
        """Account one GEMM execution at site ``name``."""
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = GemmStat(name=name, n=n, k=k)
        stat.calls += 1
        stat.rows += m
        stat.macs += m * n * k
        stat.weight_bytes += weight_bits / 8
        stat.activation_bytes += 2 * m * k

    @property
    def gemm_calls(self) -> int:
        return sum(s.calls for s in self.stats.values())

    @property
    def total_macs(self) -> int:
        return sum(s.macs for s in self.stats.values())

    @property
    def total_weight_bytes(self) -> float:
        return sum(s.weight_bytes for s in self.stats.values())

    @property
    def total_activation_bytes(self) -> float:
        return sum(s.activation_bytes for s in self.stats.values())

    def gemm_shapes(self, pad_to: int = 1) -> list[tuple[str, GemmShape]]:
        """One aggregate shape per site, in first-recorded order.

        Pass ``pad_to=16`` to hand the shapes straight to the cost
        models (:func:`repro.core.metrics.evaluate`,
        :func:`repro.core.roofline.analyze`), whose simulator tiles by
        m16n16k16.
        """
        return [(name, stat.shape(pad_to)) for name, stat in self.stats.items()]

    def summary_rows(self) -> list[list[object]]:
        """Printable per-site summary (CLI ``generate --telemetry``)."""
        return [
            [
                s.name,
                s.calls,
                s.rows,
                s.n,
                s.k,
                s.macs,
                f"{s.weight_bytes / 1024:.1f}",
                f"{s.activation_bytes / 1024:.1f}",
            ]
            for s in self.stats.values()
        ]

    def snapshot(self) -> dict[str, dict[str, float | int | str]]:
        """Plain-dict copy of the stats, safe to pickle/JSON-ship.

        Worker processes send this over a pipe; the router folds it
        back in with :meth:`merge` for fleet-level aggregation.
        """
        return {name: dataclasses.asdict(stat) for name, stat in self.stats.items()}

    def merge(self, snapshot: dict[str, dict[str, float | int | str]]) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Sites are matched by name; counters add, ``n``/``k`` must agree
        (same model, different process — a mismatch means the snapshot
        came from a different deployment and would corrupt the shape
        histogram).
        """
        for name, data in snapshot.items():
            stat = self.stats.get(name)
            if stat is None:
                self.stats[name] = GemmStat(**data)
                continue
            if stat.n != data["n"] or stat.k != data["k"]:
                raise ValueError(
                    f"telemetry merge shape mismatch at {name!r}: "
                    f"n{stat.n}k{stat.k} vs n{data['n']}k{data['k']}"
                )
            stat.calls += data["calls"]
            stat.rows += data["rows"]
            stat.macs += data["macs"]
            stat.weight_bytes += data["weight_bytes"]
            stat.activation_bytes += data["activation_bytes"]

    def reset(self) -> None:
        self.stats.clear()


class MatrixSession:
    """One quantized matrix served behind a precompiled plan.

    Accepts a :class:`~repro.quant.rtn.QuantizedMatrix` or a
    :class:`~repro.model.policy.QuantizedLayer` (whose AWQ equalization
    scales, if any, are divided out of the activations before the GEMM
    — the fold-upstream deployment applied at runtime).
    """

    def __init__(
        self,
        quantized,
        backend: str = "fast",
        name: str = "gemm",
        telemetry: Telemetry | None = None,
    ) -> None:
        matrix = getattr(quantized, "matrix", quantized)
        scales = getattr(quantized, "channel_scales", None)
        self.name = getattr(quantized, "name", None) or name
        self.backend = backend
        self.plan = plan_gemm(matrix)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._weight_bits = matrix.storage_bits()
        self._inv_scales = (
            None if scales is None else 1.0 / np.asarray(scales, dtype=np.float64)
        )

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        """Execute ``activations @ dequant(B)`` through the engine."""
        a = np.asarray(activations)
        if self._inv_scales is not None:
            a = a * self._inv_scales[None, :]
        self.telemetry.record(
            self.name,
            m=a.shape[0],
            n=self.plan.n_dim,
            k=self.plan.k_dim,
            weight_bits=self._weight_bits,
        )
        return self.plan.execute(a, backend=self.backend)


@dataclass(frozen=True)
class GenerationResult:
    """Outcome of :meth:`InferenceSession.generate`."""

    tokens: np.ndarray  #: prompt + generated tokens
    prompt_length: int

    @property
    def new_tokens(self) -> np.ndarray:
        """The generated continuation only."""
        # detlint: ignore[D007]: slice of the result-owned token array, not
        # pool-backed cache state — nothing mutates it after generate().
        return self.tokens[self.prompt_length :]


class InferenceSession:
    """A quantized decoder ready to serve: plans, cache, sampling.

    Construction precompiles one :class:`~repro.engine.GemmPlan` per
    quantized layer (via the engine's plan cache) and installs a shared
    :class:`Telemetry`; :meth:`prefill` starts a sequence,
    :meth:`decode_step` extends it at O(1) GEMM cost per token, and
    :meth:`generate` wraps both with greedy or top-k sampling.
    """

    def __init__(
        self,
        model: QuantizedModel,
        backend: str = "fast",
        config: TransformerConfig | None = None,
        weights: DecoderWeights | None = None,
    ) -> None:
        cfg = config if config is not None else model.config
        w = weights if weights is not None else model.weights
        if cfg is None or w is None:
            raise ConfigError(
                "an inference session needs decoder config and weights; "
                "quantize a DecoderWeights with config=... or pass them here"
            )
        self.model = model
        self.config = cfg
        self.backend = backend
        self.telemetry = Telemetry()
        self.decoder = Decoder(
            cfg, w, model, backend=backend, telemetry=self.telemetry
        )
        self.cache: KVCache | None = None

    @classmethod
    def from_checkpoint(cls, path, backend: str = "fast") -> "InferenceSession":
        """Load a :func:`repro.model.checkpoint.save_model` directory."""
        from repro.model.checkpoint import load_model

        return cls(load_model(path), backend=backend)

    @property
    def position(self) -> int:
        """Tokens currently in the cache (0 before the first prefill)."""
        return 0 if self.cache is None else self.cache.length

    def _check_tokens(self, tokens: np.ndarray) -> np.ndarray:
        return check_tokens(tokens, self.config.vocab)

    def prefill(self, tokens: np.ndarray) -> np.ndarray:
        """Start a new sequence; returns logits for every prompt position."""
        tokens = self._check_tokens(tokens)
        self.cache = self.decoder.init_cache()
        return self.decoder.prefill(tokens, self.cache)

    def decode_step(self, token: int) -> np.ndarray:
        """Append one token to the current sequence; returns its logits."""
        if self.cache is None:
            raise ConfigError("decode_step before prefill")
        token = int(token)
        if not 0 <= token < self.config.vocab:
            raise ConfigError(f"token ids must lie in [0, {self.config.vocab})")
        return self.decoder.decode_step(token, self.cache)

    _select = staticmethod(select_token)

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        top_k: int | None = None,
        temperature: float = 1.0,
        seed: int = 0,
    ) -> GenerationResult:
        """Prefill the prompt, then decode ``max_new_tokens`` more.

        ``top_k=None`` decodes greedily (deterministic); otherwise
        sampling is top-k with the given temperature, reproducible per
        ``seed``.
        """
        prompt = self._check_tokens(prompt)
        if max_new_tokens < 1:
            raise ConfigError("max_new_tokens must be >= 1")
        total = prompt.shape[0] + max_new_tokens
        if total > self.config.max_seq:
            raise ConfigError(
                f"prompt + max_new_tokens = {total} exceeds "
                f"max_seq={self.config.max_seq}"
            )
        rng = np.random.default_rng(seed)
        logits = self.prefill(prompt)
        row = logits[-1]
        out = list(prompt)
        for step in range(max_new_tokens):
            token = self._select(row, rng, top_k, temperature)
            out.append(token)
            if step + 1 < max_new_tokens:
                row = self.decode_step(token)
        return GenerationResult(
            tokens=np.asarray(out), prompt_length=prompt.shape[0]
        )
