"""Model-level checkpoints: quantize once, load many times.

A checkpoint is a directory:

* ``manifest.json`` — format marker and version, the serialized
  :class:`~repro.model.policy.QuantPolicy`, the decoder config, one
  entry per quantized layer (file name, recipe, persisted
  quantization-error report) and the list of FP16-kept layers;
* ``layer-<name>.npz`` — one per quantized layer, written with
  :func:`repro.quant.io.save_quantized` (so single-matrix tooling can
  open them directly);
* ``awq_scales.npz`` — AWQ equalization scales for layers that carry
  them;
* ``weights.npz`` — the non-quantized parameters a serving session
  needs: embedding, norms, and the float64 masters of FP16-kept
  layers.  Masters of *quantized* layers are intentionally not
  persisted (that is the point of quantizing); on load they are
  reconstructed as dequantized stand-ins, which the decoder never
  reads because those layers execute through their plans.

A save → load round trip reproduces bit-identical generation: codes,
scales, zeros, embedding and norms all round-trip exactly through
``.npz``; only the discarded float64 masters differ.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

import numpy as np

from repro.errors import QuantizationError
from repro.llm.transformer import (
    DecoderWeights,
    TransformerConfig,
    _layer_shapes,
)
from repro.model.policy import (
    LayerRule,
    QuantizedLayer,
    QuantizedModel,
    QuantPolicy,
)
from repro.quant.error import QuantErrorReport
from repro.quant.io import load_quantized, save_quantized

#: Format marker / version stored in every model manifest.
MANIFEST_KIND = "pacq-model"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"
SCALES_NAME = "awq_scales.npz"


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() or c in "_.-" else "_" for c in name)


def _weights_arrays(model: QuantizedModel) -> dict[str, np.ndarray]:
    weights = model.weights
    assert weights is not None
    arrays: dict[str, np.ndarray] = {
        "embedding": weights.embedding,
        "final_norm": weights.final_norm,
    }
    for i, norm in enumerate(weights.norms):
        for key, value in norm.items():
            arrays[f"norm{i}.{key}"] = value
    for name in model.kept_fp16:
        layer, _, short = name.partition(".")
        arrays[f"master.{name}"] = weights.blocks[int(layer[len("layer"):])][short]
    return arrays


def save_model(path: str | pathlib.Path, model: QuantizedModel) -> pathlib.Path:
    """Write a :class:`QuantizedModel` checkpoint directory.

    Re-saving into an existing checkpoint directory first removes the
    previous save's files, so the directory never mixes layers from
    two quantization runs (the manifest and the ``.npz`` files on disk
    always describe the same model).
    """
    directory = pathlib.Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    stale = [
        directory / MANIFEST_NAME,
        directory / WEIGHTS_NAME,
        directory / SCALES_NAME,
    ]
    stale.extend(sorted(directory.glob("layer-*.npz")))
    for leftover in stale:
        leftover.unlink(missing_ok=True)

    layer_entries = []
    scales: dict[str, np.ndarray] = {}
    for name, layer in model.layers.items():
        fname = f"layer-{_slug(name)}.npz"
        save_quantized(directory / fname, layer.matrix)
        if layer.channel_scales is not None:
            scales[name] = layer.channel_scales
        layer_entries.append(
            {
                "name": name,
                "file": fname,
                "rule": layer.rule.to_dict(),
                "report": None
                if layer.report is None
                else {
                    "label": layer.report.label,
                    "bits": layer.report.bits,
                    "mse": layer.report.mse,
                    "sqnr_db": layer.report.sqnr_db,
                    "max_abs_err": layer.report.max_abs_err,
                },
            }
        )
    if scales:
        np.savez_compressed(directory / SCALES_NAME, **scales)
    if model.weights is not None:
        np.savez_compressed(directory / WEIGHTS_NAME, **_weights_arrays(model))

    manifest = {
        "kind": MANIFEST_KIND,
        "version": FORMAT_VERSION,
        "policy": model.policy.to_dict(),
        "config": None
        if model.config is None
        else dataclasses.asdict(model.config),
        "layers": layer_entries,
        "kept_fp16": list(model.kept_fp16),
        "has_weights": model.weights is not None,
        "has_scales": bool(scales),
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=1, sort_keys=True)
    )
    return directory


def _read_manifest(directory: pathlib.Path) -> dict[str, Any]:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise QuantizationError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise QuantizationError(f"corrupt manifest {manifest_path}: {exc}") from exc
    if manifest.get("kind") != MANIFEST_KIND:
        raise QuantizationError(
            f"{manifest_path} is not a {MANIFEST_KIND} checkpoint"
        )
    if "version" not in manifest:
        raise QuantizationError(f"{manifest_path} carries no format version")
    version = int(manifest["version"])
    if version != FORMAT_VERSION:
        raise QuantizationError(
            f"model checkpoint format version {version} is not supported by "
            f"this library (expected {FORMAT_VERSION})"
        )
    return manifest


def _rebuild_weights(
    directory: pathlib.Path,
    config: TransformerConfig,
    layers: dict[str, QuantizedLayer],
    kept: list[str],
) -> DecoderWeights:
    with np.load(directory / WEIGHTS_NAME, allow_pickle=False) as data:
        embedding = data["embedding"]
        final_norm = data["final_norm"]
        norms = []
        for i in range(config.n_layers):
            norms.append(
                {
                    "attn": data[f"norm{i}.attn"],
                    "ffn": data[f"norm{i}.ffn"],
                }
            )
        blocks: list[dict[str, np.ndarray]] = []
        for i in range(config.n_layers):
            block: dict[str, np.ndarray] = {}
            for short in _layer_shapes(config):
                name = f"layer{i}.{short}"
                if name in layers:
                    # Dequantized stand-in: never read by the decoder
                    # (the layer executes through its plan), present so
                    # DecoderWeights stays structurally complete.
                    block[short] = layers[name].matrix.dequantize()
                elif name in kept:
                    block[short] = data[f"master.{name}"]
                else:
                    raise QuantizationError(
                        f"manifest names neither a quantized layer nor a "
                        f"kept master for {name}"
                    )
            blocks.append(block)
    return DecoderWeights(embedding, blocks, final_norm, norms)


def load_model(path: str | pathlib.Path) -> QuantizedModel:
    """Read a checkpoint directory written by :func:`save_model`."""
    directory = pathlib.Path(path)
    manifest = _read_manifest(directory)

    scales: dict[str, np.ndarray] = {}
    if manifest.get("has_scales"):
        with np.load(directory / SCALES_NAME, allow_pickle=False) as data:
            scales = {name: data[name] for name in data.files}

    layers: dict[str, QuantizedLayer] = {}
    for entry in manifest["layers"]:
        name = str(entry["name"])
        report = entry.get("report")
        layers[name] = QuantizedLayer(
            name=name,
            matrix=load_quantized(directory / str(entry["file"])),
            rule=LayerRule.from_dict(entry["rule"]),
            report=None
            if report is None
            else QuantErrorReport(
                label=str(report["label"]),
                bits=int(report["bits"]),
                mse=float(report["mse"]),
                sqnr_db=float(report["sqnr_db"]),
                max_abs_err=float(report["max_abs_err"]),
            ),
            channel_scales=scales.get(name),
        )

    kept = [str(name) for name in manifest.get("kept_fp16", [])]
    config = (
        None
        if manifest.get("config") is None
        else TransformerConfig(**manifest["config"])
    )
    weights = None
    if manifest.get("has_weights"):
        if config is None:
            raise QuantizationError(
                "manifest has weights but no config to shape them"
            )
        weights = _rebuild_weights(directory, config, layers, kept)

    return QuantizedModel(
        layers=layers,
        policy=QuantPolicy.from_dict(manifest["policy"]),
        config=config,
        weights=weights,
        kept_fp16=tuple(kept),
    )
