"""Model-level quantization policies, checkpoints and inference sessions.

The canonical way to quantize, persist and serve a model on the PacQ
compute path:

1. **Policy** (:mod:`repro.model.policy`) — declare per-layer recipes
   once (:class:`QuantPolicy` of glob-matched :class:`LayerRule`), then
   :func:`quantize_model` turns a weight set into a
   :class:`QuantizedModel` with per-layer error reports.
2. **Checkpoint** (:mod:`repro.model.checkpoint`) —
   :func:`save_model` / :func:`load_model` round-trip the bundle
   through a directory of ``.npz`` files plus a JSON manifest.
3. **Session** (:mod:`repro.model.session`) —
   :class:`InferenceSession` precompiles every GEMM plan, runs
   KV-cached incremental decoding (``prefill`` / ``decode_step`` /
   ``generate``) bit-identical to the full forward pass, and records
   per-layer telemetry that feeds the cost models.

Typical use::

    from repro.model import InferenceSession, parse_policy, quantize_model
    from repro.model import save_model

    policy = parse_policy("layer*.w_gate=int2@g[32,4];*=int4@g128")
    qmodel = quantize_model(weights, policy, config=config)
    save_model("ckpt/", qmodel)

    session = InferenceSession.from_checkpoint("ckpt/", backend="batched")
    result = session.generate(prompt, max_new_tokens=32, top_k=8, seed=0)

The CLI mirrors this: ``python -m repro quantize --out ckpt/ --policy
...`` then ``python -m repro generate --model ckpt/``.
"""

from repro.model.checkpoint import FORMAT_VERSION, load_model, save_model
from repro.model.policy import (
    DEFAULT_GROUP,
    LayerRule,
    QuantizedLayer,
    QuantizedModel,
    QuantPolicy,
    parse_policy,
    quantize_model,
)
from repro.model.session import (
    GemmStat,
    GenerationResult,
    InferenceSession,
    MatrixSession,
    Telemetry,
    check_tokens,
    select_token,
)

__all__ = [
    "DEFAULT_GROUP",
    "FORMAT_VERSION",
    "GemmStat",
    "GenerationResult",
    "InferenceSession",
    "LayerRule",
    "MatrixSession",
    "QuantPolicy",
    "QuantizedLayer",
    "QuantizedModel",
    "Telemetry",
    "check_tokens",
    "load_model",
    "parse_policy",
    "quantize_model",
    "save_model",
    "select_token",
]
