"""Command-line entry point: ``python -m repro <experiment> [...]``.

Runs any reproduced experiment and prints its paper-vs-measured table.
``all`` runs every experiment in sequence; ``table1`` prints the
architecture inventory; ``backends`` lists the registered GEMM engine
backends.  ``--backend`` selects the engine backend for experiments
that execute quantized GEMMs (currently ``table2``).
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.core.experiments import ALL_EXPERIMENTS, ExperimentResult, table1
from repro.core.extensions import EXTENSION_EXPERIMENTS
from repro.core.report import render_table
from repro.engine import backend_names, list_backends

#: Paper experiments + extensions, one namespace for the CLI.
_RUNNERS = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}


def _print_result(result: ExperimentResult) -> None:
    print(render_table(f"{result.experiment}: {result.description}",
                       result.headers(), result.table_rows()))
    print()


def _print_table1() -> None:
    rows = [[unit, composition] for unit, composition in table1()]
    print(render_table("table1: configuration of PacQ and baselines",
                       ["unit", "composition"], rows))
    print()


def _print_backends() -> None:
    rows = [
        [b.name, "yes" if b.transformed else "no", b.description]
        for b in list_backends()
    ]
    print(render_table("backends: registered GEMM engine backends",
                       ["name", "transformed", "description"], rows))
    print()


def _run(runner, backend: str | None) -> ExperimentResult:
    """Invoke an experiment runner, passing ``backend`` if it takes one."""
    if backend is not None and "backend" in inspect.signature(runner).parameters:
        return runner(backend=backend)
    return runner()


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    names = ["all", "table1", "backends"] + sorted(_RUNNERS)
    parser = argparse.ArgumentParser(
        prog="pacq-repro",
        description="Reproduce the tables and figures of the PacQ paper (DAC 2025).",
    )
    parser.add_argument("experiment", choices=names, help="experiment to run")
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="GEMM engine backend for experiments that execute quantized "
        "GEMMs (default: the experiment's own default)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        _print_table1()
        return 0
    if args.experiment == "backends":
        _print_backends()
        return 0
    if args.experiment == "all":
        _print_table1()
        for name in sorted(ALL_EXPERIMENTS):
            _print_result(_run(ALL_EXPERIMENTS[name], args.backend))
        for name in sorted(EXTENSION_EXPERIMENTS):
            _print_result(_run(EXTENSION_EXPERIMENTS[name], args.backend))
        return 0
    _print_result(_run(_RUNNERS[args.experiment], args.backend))
    return 0


if __name__ == "__main__":
    sys.exit(main())
