"""Command-line entry point: ``python -m repro <command> [...]``.

Subcommands (the ``pacq-repro`` interface):

* ``run <experiment> [--set k=v ...]`` — execute one experiment (or
  ``all``) and print / emit its paper-vs-measured table.
* ``sweep`` — expand a :class:`repro.harness.SweepSpec` (default:
  every engine backend x every Table II group spec) into jobs, execute
  them serially or with ``--jobs N`` worker processes through the
  on-disk result cache, and emit artifacts.
* ``report`` — run every registered experiment, regenerate
  ``EXPERIMENTS.md`` plus JSON/CSV artifacts, and with ``--check``
  exit non-zero on any out-of-tolerance deviation or a stale
  committed ``EXPERIMENTS.md``.
* ``list`` — registered experiments with their metadata.
* ``quantize`` — build the toy decoder, apply a model-level
  quantization policy (:mod:`repro.model`), and write a checkpoint
  directory (per-layer ``.npz`` + JSON manifest).
* ``generate`` — load a checkpoint into an
  :class:`~repro.model.InferenceSession` and run KV-cached generation
  (greedy or top-k), optionally printing per-layer GEMM telemetry.
* ``serve-sim`` — replay a deterministic synthetic request trace
  through the continuous-batching scheduler (:mod:`repro.serve`) and
  print per-request + aggregate serving telemetry; ``--codesign
  POLICY`` stamps a replayable workload capture into the ``--json``
  record.
* ``codesign`` — replay captured serving workloads through the
  SIMT/energy/roofline models (:mod:`repro.codesign`) across an
  architecture grid, writing the merged CSV and regenerating the
  ``docs/codesign.md`` figures section (``--check`` gates staleness).

The seed CLI's single-argument form (``python -m repro table2
[--backend b]``, plus ``all`` / ``table1`` / ``backends``) keeps
working as an alias for ``run``.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import itertools
import json
import os
import pathlib
import sys
from typing import Any, Sequence

from repro.core import extensions as _extensions  # noqa: F401  (registers)
from repro.core.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    get_experiment,
    registered_experiments,
    table1,
)
from repro.core.report import (
    RunRecord,
    check_records,
    record_to_dict,
    render_csv,
    render_experiments_md,
    render_table,
)
from repro.engine import backend_names, list_backends
from repro.errors import ConfigError, QuantizationError
from repro.harness import (
    Job,
    ResultCache,
    SweepSpec,
    default_sweep,
    run_jobs,
)

#: Non-experiment legacy commands.
_LEGACY_EXTRAS = ("all", "table1", "backends")


# ---------------------------------------------------------------------------
# Shared helpers.
# ---------------------------------------------------------------------------


def _parse_value(text: str) -> Any:
    """``--set``/``--grid`` value: python literal if it parses, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_set(items: Sequence[str]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ConfigError(f"--set expects key=value, got {item!r}")
        out[key] = _parse_value(value)
    return out


def _split_values(text: str) -> list[str]:
    """Split on commas outside brackets (``g[32,4]`` is one value)."""
    parts, depth, current = [], 0, []
    for char in text:
        if char in "[(":
            depth += 1
        elif char in "])":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _parse_grid(items: Sequence[str]) -> dict[str, list[Any]]:
    out: dict[str, list[Any]] = {}
    for item in items:
        key, sep, values = item.partition("=")
        if not sep or not key or not values:
            raise ConfigError(f"--grid expects key=v1,v2,..., got {item!r}")
        if key == "backend" and values == "all":
            out[key] = list(backend_names())
        else:
            out[key] = [_parse_value(v) for v in _split_values(values)]
    return out


def _cache_from_args(args: argparse.Namespace, default_on: bool) -> ResultCache | None:
    if getattr(args, "no_cache", False):
        return None
    if args.cache_dir is not None:
        return ResultCache(args.cache_dir)
    return ResultCache() if default_on else None


def _outcomes_to_records(outcomes) -> list[RunRecord]:
    return [
        RunRecord(
            experiment=o.job.experiment,
            params=o.job.params_dict(),
            result=o.result,
            cached=o.cached,
            elapsed_s=o.elapsed_s,
        )
        for o in outcomes
    ]


def _write_artifacts(records: list[RunRecord], directory: pathlib.Path) -> list[str]:
    """Per-run JSON + merged CSV into ``directory``; returns filenames."""
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for record in records:
        job = Job.make(record.experiment, record.params)
        path = directory / f"run-{job.slug}.json"
        path.write_text(
            json.dumps(record_to_dict(record), indent=1, sort_keys=True,
                       default=str)
        )
        written.append(path.name)
    csv_path = directory / "results.csv"
    csv_path.write_text(render_csv(records))
    written.append(csv_path.name)
    return written


def _print_result(result: ExperimentResult) -> None:
    print(render_table(f"{result.experiment}: {result.description}",
                       result.headers(), result.table_rows()))
    print()


def _print_table1() -> None:
    rows = [[unit, composition] for unit, composition in table1()]
    print(render_table("table1: configuration of PacQ and baselines",
                       ["unit", "composition"], rows))
    print()


def _print_backends() -> None:
    rows = [
        [b.name, "yes" if b.transformed else "no", b.description]
        for b in list_backends()
    ]
    print(render_table("backends: registered GEMM engine backends",
                       ["name", "transformed", "description"], rows))
    print()


def _emit_records(records: list[RunRecord], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([record_to_dict(r) for r in records], indent=1,
                         default=str))
    elif fmt == "csv":
        print(render_csv(records), end="")
    else:
        for record in records:
            if record.result is not None:
                _print_result(record.result)


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    params = _parse_set(args.set or [])
    if args.backend is not None:
        params["backend"] = args.backend
    if args.experiment == "all":
        if args.format == "text":
            _print_table1()
        # Parameters apply where accepted; 'all' spans heterogeneous
        # signatures, so unknown keys are dropped per experiment.
        jobs = [
            Job.make(e.name, {k: v for k, v in params.items() if e.accepts(k)})
            for e in registered_experiments()
        ]
    else:
        get_experiment(args.experiment)  # raise early, listing names
        jobs = [Job.make(args.experiment, params)]
    cache = _cache_from_args(args, default_on=False)
    outcomes = run_jobs(jobs, workers=args.jobs, cache=cache, force=args.force)
    _emit_records(_outcomes_to_records(outcomes), args.format)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid = _parse_grid(args.grid or [])
    base = _parse_set(args.set or [])
    if args.experiments is None and not grid:
        # Stock sweep; --set overrides its base parameters.
        stock = default_sweep()
        merged = dict(stock.base)
        merged.update(base)
        spec = SweepSpec.make(
            stock.experiments, grid=dict(stock.grid), base=merged
        )
    else:
        if args.experiments == "all":
            names = [e.name for e in registered_experiments()]
        elif args.experiments is None:
            # --grid without --experiments: sweep only the experiments
            # the grid actually applies to, not all 13 registered.
            names = [
                e.name
                for e in registered_experiments()
                if any(e.accepts(axis) for axis in grid)
            ]
            if not names:
                raise ConfigError(
                    f"no registered experiment accepts grid axis(es) "
                    f"{', '.join(sorted(grid))}"
                )
        else:
            names = [n.strip() for n in args.experiments.split(",") if n.strip()]
        spec = SweepSpec.make(names, grid=grid, base=base)
    jobs = spec.jobs()
    cache = _cache_from_args(args, default_on=True)
    outcomes = run_jobs(jobs, workers=args.jobs, cache=cache, force=args.force)
    records = _outcomes_to_records(outcomes)

    if args.format == "text":
        rows = [
            [o.job.label, len(o.result.rows),
             "hit" if o.cached else "run", f"{o.elapsed_s:.2f}s"]
            for o in outcomes
        ]
        print(render_table(f"sweep: {len(jobs)} jobs",
                           ["job", "rows", "cache", "elapsed"], rows))
        cached = sum(1 for o in outcomes if o.cached)
        print(f"\ncache: {cached}/{len(outcomes)} jobs served from cache"
              + (f" ({cache.root})" if cache else " (caching disabled)"))
        builds = sum(o.plan_builds for o in outcomes)
        reuses = sum(o.plan_reuses for o in outcomes)
        print(f"engine plans: {builds} built, {reuses} reused across jobs")
    else:
        _emit_records(records, args.format)

    if args.out:
        written = _write_artifacts(records, pathlib.Path(args.out))
        print(f"artifacts: {len(written)} files in {args.out}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    jobs = [Job.make(e.name, {}) for e in registered_experiments()]
    cache = _cache_from_args(args, default_on=True)
    outcomes = run_jobs(jobs, workers=args.jobs, cache=cache, force=args.force)
    records = _outcomes_to_records(outcomes)

    content = render_experiments_md(records)
    out_path = pathlib.Path(args.out)
    stale = out_path.exists() and out_path.read_text() != content
    out_path.write_text(content)
    print(f"wrote {out_path}")

    if args.artifacts:
        written = _write_artifacts(records, pathlib.Path(args.artifacts))
        print(f"artifacts: {len(written)} files in {args.artifacts}/")

    violations = check_records(records)
    for message in violations:
        print(f"DEVIATION: {message}", file=sys.stderr)
    if args.check:
        if stale:
            print(
                f"STALE: committed {out_path} did not match the regenerated "
                "report (now rewritten) — commit the update",
                file=sys.stderr,
            )
        if violations or stale:
            return 1
    print("check: all deviations within per-row tolerances"
          if not violations else
          f"note: {len(violations)} deviation(s) beyond tolerance (no --check)")
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    from repro.llm.transformer import TransformerConfig, init_weights
    from repro.model import parse_policy, quantize_model, save_model

    config = TransformerConfig(
        vocab=args.vocab,
        d_model=args.d_model,
        n_heads=args.n_heads,
        n_layers=args.n_layers,
        d_ffn=args.d_ffn,
        max_seq=args.max_seq,
    )
    weights = init_weights(config, seed=args.seed)
    policy = parse_policy(args.policy)
    model = quantize_model(weights, policy, config=config)
    out = save_model(args.out, model)

    print(render_table(
        f"quantize: policy {policy.label}",
        ["layer", "recipe", "sqnr dB", "mse"],
        model.summary_rows(),
    ))
    fp16_bits = 16 * sum(
        w.size for name, w in weights.linear_matrices() if name in model.layers
    )
    quant_bits = model.quantized_bits()
    if quant_bits and fp16_bits:
        print(f"\nquantized linears: {quant_bits / 8 / 1024:.1f} KiB "
              f"({fp16_bits / max(quant_bits, 1):.2f}x smaller than FP16)")
    print(f"wrote checkpoint to {out}/ "
          f"({len(model.layers)} quantized layers, "
          f"{len(model.kept_fp16)} kept FP16)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    import time

    from repro.model import InferenceSession

    session = InferenceSession.from_checkpoint(args.model, backend=args.backend)
    try:
        prompt = [int(t) for t in args.prompt.split(",") if t.strip()]
    except ValueError:
        raise ConfigError(
            f"--prompt expects comma-separated token ids, got {args.prompt!r}"
        ) from None
    start = time.perf_counter()
    result = session.generate(
        prompt,
        args.max_new,
        top_k=args.top_k,
        temperature=args.temperature,
        seed=args.seed,
    )
    elapsed = time.perf_counter() - start

    mode = "greedy" if args.top_k is None else f"top-{args.top_k}"
    print(f"prompt ({len(prompt)} tokens): "
          + " ".join(str(t) for t in prompt))
    print(f"generated ({mode}, backend={args.backend}): "
          + " ".join(str(t) for t in result.new_tokens))
    per_token = elapsed / max(len(result.new_tokens), 1)
    print(f"{len(result.new_tokens)} tokens in {elapsed:.3f}s "
          f"({1.0 / per_token:.1f} tok/s, {per_token * 1e3:.2f} ms/token)")
    if args.telemetry:
        print()
        print(render_table(
            "telemetry: per-layer GEMM activity",
            ["site", "calls", "rows", "n", "k", "MACs",
             "wKiB moved", "aKiB moved"],
            session.telemetry.summary_rows(),
        ))
    return 0


def _parse_range(text: str, flag: str) -> tuple[int, int]:
    """``LO,HI`` (or a single value) into an inclusive integer range."""
    parts = [p.strip() for p in text.split(",") if p.strip()]
    try:
        values = [int(p) for p in parts]
    except ValueError:
        values = []
    if len(values) == 1:
        values = values * 2
    if len(values) != 2:
        raise ConfigError(f"{flag} expects LO,HI (or one value), got {text!r}")
    return values[0], values[1]


def _serve_sim_data(args: argparse.Namespace, qmodel, spec, trace) -> int:
    """``serve-sim --workers N --shard data``: route the trace to a fleet.

    The in-memory quantized model is written to a temporary checkpoint
    directory and every worker loads it independently — the same
    many-reader path a real deployment uses.  Arrival pacing is a
    single-scheduler concept; the router dispatches the whole trace up
    front (least-outstanding-tokens) and workers drain their queues.
    """
    import tempfile

    from repro.model.checkpoint import save_model
    from repro.serve import Router

    if args.draft != "none":
        raise ConfigError(
            "--draft is not supported with --shard data: drafts live "
            "inside the worker processes (use --shard tensor, or "
            "--workers 1)"
        )
    with tempfile.TemporaryDirectory(prefix="pacq-serve-shard-") as tmp:
        save_model(tmp, qmodel)
        with Router(
            tmp,
            args.workers,
            backend=args.backend,
            max_slots=args.max_batch,
            capacity=args.capacity,
            prefill_chunk=args.prefill_chunk,
            prefix_cache_bytes=args.prefix_cache_mb << 20,
        ) as router:
            fleet = router.serve(list(trace))

    rows = [
        [
            r.request_id,
            r.prompt_length,
            r.cached_prefix_tokens,
            len(r.new_tokens),
            r.finish_reason,
            r.queue_wait_steps,
            f"{r.tokens_per_s:.0f}",
        ]
        for r in fleet.results
    ]
    print(render_table(
        f"serve-sim: {len(trace)} requests, max_batch={args.max_batch}, "
        f"backend={args.backend}, shard=data x{args.workers}",
        ["req", "prompt", "cached", "new", "finish", "wait steps", "tok/s"],
        rows,
    ))
    worker_rows = []
    for worker in fleet.workers:
        wait = worker.queue_wait()
        worker_rows.append([
            worker.rank,
            len(worker.results),
            worker.new_tokens,
            f"{worker.tokens_per_s:.0f}",
            f"{worker.occupancy:.0%}",
            f"{wait['p50']:.1f}",
            f"{wait['p95']:.1f}",
        ])
    print(render_table(
        f"fleet: {args.workers} workers, least-outstanding-tokens dispatch",
        ["rank", "reqs", "new", "tok/s", "occupancy", "wait p50", "wait p95"],
        worker_rows,
    ))
    fleet_wait = fleet.queue_wait()
    print(
        f"\nfleet aggregate: {fleet.total_new_tokens} tokens at "
        f"{fleet.aggregate_tokens_per_s:.0f} tok/s over {args.workers} "
        f"workers; mean occupancy {fleet.mean_occupancy:.0%}; queue wait "
        f"p50 {fleet_wait['p50']:.1f} / p95 {fleet_wait['p95']:.1f} steps"
    )
    merged_rows = fleet.merged_plan_rows()
    row_counts = sorted(
        {int(m) for site in merged_rows.values() for m in site["rows"]}
    )
    print(
        f"engine plans: {len(merged_rows)} sites per worker, executed at "
        f"batch sizes {row_counts} (fleet-merged histogram)"
    )
    if args.json:
        from repro.codesign import capture_from_histograms, site_dims

        telemetry = fleet.merged_telemetry()
        codesign_block = None
        if args.codesign:
            capture = capture_from_histograms(
                merged_rows,
                site_dims(telemetry),
                policy=args.codesign,
                served_tokens=fleet.total_new_tokens,
                prompt_tokens=sum(r.prompt_length for r in fleet.results),
                requests=fleet.completed,
            )
            codesign_block = capture.to_dict()
            print(
                f"codesign capture {args.codesign!r}: {capture.gemm_calls} "
                f"GEMM calls across {len(capture.sites)} sites "
                f"(fleet-merged histograms)"
            )
        record = {
            "schema": "serve_sim/v5" if codesign_block else "serve_sim/v4",
            "spec": {
                "requests": spec.requests,
                "seed": spec.seed,
                "prompt_len": list(spec.prompt_len),
                "max_new": list(spec.max_new),
                "mean_interarrival": spec.mean_interarrival,
                "top_k": spec.top_k,
                "temperature": spec.temperature,
                "eos_token": spec.eos_token,
                "shared_prefix_len": spec.shared_prefix_len,
                "shared_fraction": spec.shared_fraction,
            },
            "backend": args.backend,
            "max_batch": args.max_batch,
            "prefill_chunk": args.prefill_chunk,
            "results": [
                {
                    "request_id": r.request_id,
                    "prompt_length": r.prompt_length,
                    "cached_prefix_tokens": r.cached_prefix_tokens,
                    "new_tokens": [int(t) for t in r.new_tokens],
                    "finish_reason": r.finish_reason,
                    "queue_wait_steps": r.queue_wait_steps,
                    "tokens_per_s": r.tokens_per_s,
                }
                for r in fleet.results
            ],
            "stats": {
                "completed": fleet.completed,
                "total_new_tokens": fleet.total_new_tokens,
                "aggregate_tokens_per_s": fleet.aggregate_tokens_per_s,
                "mean_occupancy": fleet.mean_occupancy,
                "elapsed_s": fleet.elapsed_s,
                "queue_wait_p50_steps": fleet_wait["p50"],
                "queue_wait_p95_steps": fleet_wait["p95"],
                "gemm_calls": telemetry.gemm_calls,
                "total_macs": telemetry.total_macs,
            },
            "shard": {
                "mode": "data",
                "workers": args.workers,
                "per_worker": [
                    {
                        "rank": worker.rank,
                        "assigned": list(worker.assigned),
                        "requests": len(worker.results),
                        "new_tokens": worker.new_tokens,
                        "tokens_per_s": worker.tokens_per_s,
                        "occupancy": worker.occupancy,
                        "queue_wait": worker.queue_wait(),
                        "elapsed_s": worker.elapsed_s,
                    }
                    for worker in fleet.workers
                ],
                "plan_rows": merged_rows,
            },
        }
        if codesign_block is not None:
            record["codesign"] = codesign_block
        pathlib.Path(args.json).write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.llm.transformer import TransformerConfig, init_weights
    from repro.model import parse_policy, quantize_model
    from repro.serve import (
        BatchedSession,
        RadixPrefixCache,
        Scheduler,
        TraceSpec,
        replay,
        synthesize,
    )

    config = TransformerConfig(
        vocab=args.vocab,
        d_model=args.d_model,
        n_heads=args.n_heads,
        n_layers=args.n_layers,
        d_ffn=args.d_ffn,
        max_seq=args.max_seq,
    )
    weights = init_weights(config, seed=args.weight_seed)
    qmodel = quantize_model(
        weights, parse_policy(args.policy), config=config, compute_reports=False
    )
    spec = TraceSpec(
        requests=args.requests,
        seed=args.seed,
        prompt_len=_parse_range(args.prompt_len, "--prompt-len"),
        max_new=_parse_range(args.max_new, "--max-new"),
        mean_interarrival=args.interarrival,
        top_k=args.top_k,
        temperature=args.temperature,
        eos_token=args.eos_token,
        shared_prefix_len=args.shared_prefix,
        shared_fraction=args.shared_fraction if args.shared_prefix else 0.0,
    )
    trace = synthesize(spec, config.vocab, config.max_seq)
    if args.codesign and not args.json:
        raise ConfigError(
            "--codesign stamps the workload capture into the --json "
            "record; pass --json OUT as well"
        )
    if args.workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1 and args.shard == "data":
        return _serve_sim_data(args, qmodel, spec, trace)
    prefix_cache = (
        RadixPrefixCache(args.prefix_cache_mb << 20)
        if args.prefix_cache_mb > 0
        else None
    )
    session = BatchedSession(
        qmodel,
        backend=args.backend,
        max_slots=args.max_batch,
        capacity=args.capacity,
        prefix_cache=prefix_cache,
    )
    speculate = None
    if args.draft != "none":
        from repro.serve import BigramDraft, SessionDraft

        if args.spec_k < 1:
            raise ConfigError(
                f"--draft {args.draft} needs --spec-k >= 1, got {args.spec_k}"
            )
        if args.draft == "bigram":
            draft = BigramDraft.distill(session.decoder)
        elif args.draft.startswith("policy:"):
            draft_model = quantize_model(
                weights,
                parse_policy(args.draft[len("policy:"):]),
                config=config,
                compute_reports=False,
            )
            draft = SessionDraft(
                draft_model, backend=args.backend, max_slots=args.max_batch
            )
        else:
            raise ConfigError(
                f"--draft must be none, bigram or policy:<spec>, "
                f"got {args.draft!r}"
            )
        speculate = (draft, args.spec_k)
    scheduler = Scheduler(
        session,
        max_batch=args.max_batch,
        prefill_chunk=args.prefill_chunk,
        speculate=speculate,
    )
    shard_group = None
    worker_rows = None
    plans_view = session.decoder.plans
    if args.workers > 1:  # --shard tensor (data returned above)
        from repro.serve.shard import tensor_shard

        shard_group = tensor_shard(session, args.workers)
    try:
        report = replay(scheduler, trace, strict=False)
        if shard_group is not None:
            # The proxies (and the workers' shard histograms) carry the
            # execution counts; close() restores the original plans.
            plans_view = dict(session.decoder.plans)
            worker_rows = shard_group.worker_histograms()
    finally:
        if shard_group is not None:
            shard_group.close()
    stats = scheduler.stats()

    rows = [
        [
            r.request_id,
            r.prompt_length,
            r.cached_prefix_tokens,
            len(r.new_tokens),
            r.finish_reason,
            r.queue_wait_steps,
            f"{r.tokens_per_s:.0f}",
        ]
        for r in report.results
    ]
    print(render_table(
        f"serve-sim: {len(trace)} requests, max_batch={args.max_batch}, "
        f"backend={args.backend}",
        ["req", "prompt", "cached", "new", "finish", "wait steps", "tok/s"],
        rows,
    ))
    for index, message in report.rejected:
        print(f"rejected request {index}: {message}", file=sys.stderr)
    print(
        f"\naggregate: {stats.total_new_tokens} tokens over {stats.steps} steps "
        f"({stats.decode_steps} decode) at {stats.aggregate_tokens_per_s:.0f} "
        f"tok/s; mean occupancy {stats.mean_occupancy:.0%}; "
        f"mean queue wait {stats.mean_queue_wait_steps:.1f} steps"
    )
    print(
        f"prompt ingestion: {stats.prefill_tokens} tokens prefilled + "
        f"{stats.cached_prefix_tokens} from the prefix cache "
        f"({stats.prefix_hit_rate:.0%} hit rate); {stats.decode_tokens} "
        f"decoded; peak {stats.max_prefill_tokens_per_step} prefill "
        f"tokens/step, {stats.prefill_stall_steps} stalled step(s)"
    )
    if speculate is not None:
        print(
            f"speculation: draft={args.draft} k={args.spec_k}; "
            f"{stats.drafted_tokens} drafted, "
            f"{stats.accepted_draft_tokens} accepted, "
            f"{stats.wasted_draft_tokens} wasted "
            f"({stats.draft_acceptance_rate:.0%} acceptance); "
            f"{stats.accepted_per_verify_step:.2f} draft tokens accepted "
            f"per verify step over {stats.verify_steps} step(s)"
        )
    if prefix_cache is not None:
        cache_stats = prefix_cache.stats()
        print(render_table(
            f"prefix cache: {args.prefix_cache_mb} MiB budget",
            ["metric", "value"],
            [
                ["lookups (hit/miss)",
                 f"{cache_stats.lookups} "
                 f"({cache_stats.hits}/{cache_stats.misses})"],
                ["token hit rate", f"{cache_stats.token_hit_rate:.0%}"],
                ["tokens served from cache", cache_stats.hit_tokens],
                ["tokens inserted", cache_stats.inserted_tokens],
                ["evictions (tokens)",
                 f"{cache_stats.evictions} ({cache_stats.evicted_tokens})"],
                ["resident", f"{cache_stats.bytes / 2**20:.2f} MiB in "
                 f"{cache_stats.nodes} node(s)"],
            ],
        ))
    builds = len(plans_view)
    row_counts = sorted(
        {m for plan in plans_view.values() for m in plan.row_stats()}
    )
    print(
        f"engine plans: {builds} built once, executed at batch sizes "
        f"{row_counts} (plan reuse across varying row counts)"
    )
    if shard_group is not None:
        print(
            f"shard: tensor x{args.workers} workers; {builds} matrices "
            f"column-sharded at group boundaries, partial products gathered "
            f"in rank order (bit-identical to --workers 1)"
        )
    if args.json:
        record = {
            "schema": (
                "serve_sim/v5"
                if args.codesign
                else "serve_sim/v3" if shard_group is None else "serve_sim/v4"
            ),
            "spec": {
                "requests": spec.requests,
                "seed": spec.seed,
                "prompt_len": list(spec.prompt_len),
                "max_new": list(spec.max_new),
                "mean_interarrival": spec.mean_interarrival,
                "top_k": spec.top_k,
                "temperature": spec.temperature,
                "eos_token": spec.eos_token,
                "shared_prefix_len": spec.shared_prefix_len,
                "shared_fraction": spec.shared_fraction,
            },
            "backend": args.backend,
            "max_batch": args.max_batch,
            "prefill_chunk": args.prefill_chunk,
            "results": [
                {
                    "request_id": r.request_id,
                    "prompt_length": r.prompt_length,
                    "cached_prefix_tokens": r.cached_prefix_tokens,
                    "new_tokens": [int(t) for t in r.new_tokens],
                    "finish_reason": r.finish_reason,
                    "queue_wait_steps": r.queue_wait_steps,
                    "tokens_per_s": r.tokens_per_s,
                    "drafted_tokens": r.drafted_tokens,
                    "accepted_draft_tokens": r.accepted_draft_tokens,
                    "spec_steps": r.spec_steps,
                }
                for r in report.results
            ],
            "rejected": [
                {"index": index, "message": message}
                for index, message in report.rejected
            ],
            "stats": {
                "steps": stats.steps,
                "busy_steps": stats.busy_steps,
                "decode_steps": stats.decode_steps,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "mean_occupancy": stats.mean_occupancy,
                "total_new_tokens": stats.total_new_tokens,
                "aggregate_tokens_per_s": stats.aggregate_tokens_per_s,
                "mean_queue_wait_steps": stats.mean_queue_wait_steps,
                "prefill_tokens": stats.prefill_tokens,
                "cached_prefix_tokens": stats.cached_prefix_tokens,
                "decode_tokens": stats.decode_tokens,
                "prefill_steps": stats.prefill_steps,
                "prefill_stall_steps": stats.prefill_stall_steps,
                "max_prefill_tokens_per_step": stats.max_prefill_tokens_per_step,
                "prefix_hit_rate": stats.prefix_hit_rate,
            },
        }
        if speculate is not None:
            record["speculation"] = {
                "draft": args.draft,
                "spec_k": args.spec_k,
                "drafted_tokens": stats.drafted_tokens,
                "accepted_draft_tokens": stats.accepted_draft_tokens,
                "wasted_draft_tokens": stats.wasted_draft_tokens,
                "draft_acceptance_rate": stats.draft_acceptance_rate,
                "verify_steps": stats.verify_steps,
                "accepted_per_verify_step": stats.accepted_per_verify_step,
            }
        if prefix_cache is not None:
            cache_stats = prefix_cache.stats()
            record["prefix_cache"] = {
                "max_bytes": cache_stats.max_bytes,
                "lookups": cache_stats.lookups,
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "lookup_tokens": cache_stats.lookup_tokens,
                "hit_tokens": cache_stats.hit_tokens,
                "token_hit_rate": cache_stats.token_hit_rate,
                "inserted_tokens": cache_stats.inserted_tokens,
                "evictions": cache_stats.evictions,
                "evicted_tokens": cache_stats.evicted_tokens,
                "bytes": cache_stats.bytes,
                "nodes": cache_stats.nodes,
            }
        if shard_group is not None:
            record["shard"] = {
                "mode": "tensor",
                "workers": args.workers,
                "matrices": builds,
                "spans": {
                    name: [list(span) for span in spans]
                    for name, spans in shard_group.spans.items()
                },
                "worker_plan_rows": worker_rows,
            }
        if args.codesign:
            from repro.codesign import capture_from_plans

            capture = capture_from_plans(
                plans_view,
                policy=args.codesign,
                served_tokens=stats.total_new_tokens,
                prompt_tokens=stats.prefill_tokens + stats.cached_prefix_tokens,
                requests=stats.completed,
                telemetry=session.telemetry,
            )
            record["codesign"] = capture.to_dict()
            print(
                f"codesign capture {args.codesign!r}: {capture.gemm_calls} "
                f"GEMM calls across {len(capture.sites)} sites"
            )
        pathlib.Path(args.json).write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_codesign(args: argparse.Namespace) -> int:
    """Replay captured workloads across an architecture grid, emit artifacts.

    One harness job per (capture file, architecture point); the jobs
    run through the same cache/parallelism machinery as ``sweep`` (a
    content hash of each capture rides in the job parameters, so a
    re-captured file misses the cache).  Artifacts: the merged
    ``--csv`` and the regenerated marker-delimited section of
    ``--out``; ``--check`` turns staleness of either into exit 1.
    """
    from repro.codesign import (
        load_capture,
        render_codesign_csv,
        render_codesign_section,
        splice_section,
    )

    grid = _parse_grid(args.grid or [])
    base = _parse_set(args.set or [])
    reserved = {"capture", "digest", "policies"} & (set(grid) | set(base))
    if reserved:
        raise ConfigError(
            f"parameter(s) {', '.join(sorted(reserved))} come from the "
            "capture files; sweep only architecture axes "
            "(num_sms, dram_beats, adder_tree_dup, dp_width)"
        )

    jobs = []
    for path_text in args.captures:
        path = pathlib.Path(path_text)
        load_capture(path)  # fail fast on schema / missing capture block
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:16]
        axes = sorted(grid)
        for combo in itertools.product(*(grid[axis] for axis in axes)):
            params = dict(base)
            params.update(zip(axes, combo))
            params["capture"] = str(path)
            params["digest"] = digest
            jobs.append(Job.make("codesign", params))
    cache = _cache_from_args(args, default_on=True)
    outcomes = run_jobs(jobs, workers=args.jobs, cache=cache, force=args.force)
    records = _outcomes_to_records(outcomes)

    rows = [
        [o.job.label, len(o.result.rows),
         "hit" if o.cached else "run", f"{o.elapsed_s:.2f}s"]
        for o in outcomes
    ]
    print(render_table(
        f"codesign: {len(args.captures)} capture(s) x "
        f"{max(len(jobs) // len(args.captures), 1)} arch point(s)",
        ["job", "rows", "cache", "elapsed"], rows,
    ))
    print()

    csv_text = render_codesign_csv(records)
    csv_path = pathlib.Path(args.csv)
    csv_path.parent.mkdir(parents=True, exist_ok=True)
    stale_csv = csv_path.exists() and csv_path.read_text() != csv_text
    csv_path.write_text(csv_text)
    print(f"wrote {csv_path} ({len(csv_text.splitlines()) - 1} data rows)")

    out_path = pathlib.Path(args.out)
    if not out_path.exists():
        raise ConfigError(
            f"{out_path} does not exist — the generated section splices "
            "into the committed scaffold between the codesign markers"
        )
    doc = out_path.read_text()
    spliced = splice_section(doc, render_codesign_section(records))
    stale_doc = doc != spliced
    out_path.write_text(spliced)
    print(f"wrote {out_path}")

    if args.check:
        for path, stale in ((csv_path, stale_csv), (out_path, stale_doc)):
            if stale:
                print(
                    f"STALE: committed {path} did not match the regenerated "
                    "artifact (now rewritten) — commit the update",
                    file=sys.stderr,
                )
        if stale_csv or stale_doc:
            return 1
        print("check: committed codesign artifacts are current")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    experiments = registered_experiments()
    if args.format == "json":
        print(json.dumps(
            [
                {
                    "name": e.name,
                    "artifact": e.artifact,
                    "headline": e.headline,
                    "extension": e.extension,
                    "tolerance": e.tolerance,
                    "params": {k: repr(v) for k, v in e.params().items()},
                }
                for e in experiments
            ],
            indent=1,
        ))
        return 0
    rows = [
        [
            e.name,
            "extension" if e.extension else "paper",
            e.artifact,
            ",".join(sorted(e.params())) or "-",
            f"{e.tolerance:.0%}",
        ]
        for e in experiments
    ]
    print(render_table("experiments: registered runners",
                       ["name", "kind", "artifact", "sweepable params",
                        "tolerance"], rows))
    print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the analyzer is pure stdlib, but keep the default
    # CLI paths free of it (and vice versa — lint works even when the
    # numeric stack would not import).
    from repro.analysis import (
        find_config,
        lint_paths,
        list_rules,
        load_config,
        render_findings,
    )

    if args.list_rules:
        rows = [
            [rule.id, rule.severity, rule.title] for rule in list_rules()
        ]
        print(render_table("detlint: registered rules",
                           ["id", "severity", "title"], rows))
        print()
        return 0

    config_path = args.config or find_config(pathlib.Path.cwd())
    if config_path is None:
        raise ConfigError(
            "no detlint.toml found here or in any parent directory "
            "(pass --config explicitly)"
        )
    config = load_config(config_path)
    rules = None
    if args.rules:
        rules = [rule_id.strip() for rule_id in args.rules.split(",")
                 if rule_id.strip()]
    report = lint_paths(
        config,
        paths=args.paths or None,
        rules=rules,
        strict=args.strict,
        changed_only=args.changed_only,
    )

    if args.format == "json":
        output = report.to_json()
    else:
        output = render_findings(report, verbose=args.verbose) + "\n"
    if args.out:
        pathlib.Path(args.out).write_text(output)
        print(f"wrote {args.out}")
    else:
        print(output, end="")
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# Legacy single-argument dispatch (seed CLI compatibility).
# ---------------------------------------------------------------------------


def _legacy_main(argv: list[str]) -> int:
    names = list(_LEGACY_EXTRAS) + sorted(EXPERIMENT_REGISTRY)
    parser = argparse.ArgumentParser(
        prog="pacq-repro",
        description="Reproduce the tables and figures of the PacQ paper (DAC 2025).",
    )
    parser.add_argument("experiment", choices=names, help="experiment to run")
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="GEMM engine backend for experiments that execute quantized "
        "GEMMs (default: the experiment's own default)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        _print_table1()
        return 0
    if args.experiment == "backends":
        _print_backends()
        return 0

    def run_one(name: str) -> None:
        exp = get_experiment(name)
        params: dict[str, Any] = {}
        if args.backend is not None and exp.accepts("backend"):
            params["backend"] = args.backend
        _print_result(exp.run(**params))

    if args.experiment == "all":
        _print_table1()
        for exp in registered_experiments(include_extensions=False):
            run_one(exp.name)
        for exp in registered_experiments():
            if exp.extension:
                run_one(exp.name)
        return 0
    run_one(args.experiment)
    return 0


# ---------------------------------------------------------------------------
# Parser assembly.
# ---------------------------------------------------------------------------


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default: "
                        "$PACQ_CACHE_DIR or ~/.cache/pacq-repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely")
    parser.add_argument("--force", action="store_true",
                        help="execute even when a cached result exists")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pacq-repro",
        description="Reproduce, sweep and report the tables/figures of the "
        "PacQ paper (DAC 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment",
                       choices=["all"] + sorted(EXPERIMENT_REGISTRY))
    run_p.add_argument("--backend", choices=backend_names(), default=None,
                       help="engine backend (where the experiment takes one)")
    run_p.add_argument("--set", action="append", metavar="K=V",
                       help="override a runner parameter (repeatable)")
    run_p.add_argument("--format", choices=["text", "json", "csv"],
                       default="text")
    _add_exec_options(run_p)
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser(
        "sweep",
        help="expand an experiments x parameter grid into cached jobs",
    )
    sweep_p.add_argument("--experiments", default=None, metavar="A,B|all",
                         help="experiments to sweep (default: with --grid, "
                         "the experiments the grid axes apply to; otherwise "
                         "the stock backend x Table-II-spec sweep)")
    sweep_p.add_argument("--grid", action="append", metavar="K=V1,V2",
                         help="sweep axis (repeatable; 'backend=all' expands "
                         "to every registered backend)")
    sweep_p.add_argument("--set", action="append", metavar="K=V",
                         help="fixed parameter for every job (repeatable)")
    sweep_p.add_argument("--format", choices=["text", "json", "csv"],
                         default="text")
    sweep_p.add_argument("--out", default=None, metavar="DIR",
                         help="write per-run JSON + merged CSV artifacts here")
    _add_exec_options(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    report_p = sub.add_parser(
        "report",
        help="run everything, regenerate EXPERIMENTS.md, emit artifacts",
    )
    report_p.add_argument("--out", default="EXPERIMENTS.md", metavar="FILE")
    report_p.add_argument("--artifacts", default=None, metavar="DIR",
                          help="write per-run JSON + merged CSV here")
    report_p.add_argument("--check", action="store_true",
                          help="exit non-zero on out-of-tolerance deviations "
                          "or a stale committed report")
    _add_exec_options(report_p)
    report_p.set_defaults(func=_cmd_report)

    list_p = sub.add_parser("list", help="list registered experiments")
    list_p.add_argument("--format", choices=["text", "json"], default="text")
    list_p.set_defaults(func=_cmd_list)

    quant_p = sub.add_parser(
        "quantize",
        help="quantize the toy decoder under a policy into a checkpoint dir",
    )
    quant_p.add_argument("--out", required=True, metavar="DIR",
                         help="checkpoint directory to write")
    quant_p.add_argument("--policy", default="rtn4@g[32,4]", metavar="POLICY",
                         help="policy text, e.g. 'rtn4@g[32,4]' or "
                         "'layer*.w_gate=int2@g[32,4];*=int4@g128' "
                         "(default: uniform rtn4@g[32,4])")
    quant_p.add_argument("--vocab", type=int, default=256)
    quant_p.add_argument("--d-model", type=int, default=128)
    quant_p.add_argument("--n-heads", type=int, default=4)
    quant_p.add_argument("--n-layers", type=int, default=2)
    quant_p.add_argument("--d-ffn", type=int, default=256)
    quant_p.add_argument("--max-seq", type=int, default=128)
    quant_p.add_argument("--seed", type=int, default=0,
                         help="weight-init seed (default: 0)")
    quant_p.set_defaults(func=_cmd_quantize)

    gen_p = sub.add_parser(
        "generate",
        help="KV-cached generation from a quantized model checkpoint",
    )
    gen_p.add_argument("--model", required=True, metavar="DIR",
                       help="checkpoint directory written by 'quantize'")
    gen_p.add_argument("--prompt", default="0", metavar="T0,T1,...",
                       help="comma-separated prompt token ids (default: 0)")
    gen_p.add_argument("--max-new", type=int, default=16, metavar="N",
                       help="tokens to generate (default: 16)")
    gen_p.add_argument("--top-k", type=int, default=None, metavar="K",
                       help="top-k sampling (default: greedy)")
    gen_p.add_argument("--temperature", type=float, default=1.0)
    gen_p.add_argument("--seed", type=int, default=0,
                       help="sampling seed (default: 0)")
    gen_p.add_argument("--backend", choices=backend_names(), default="fast",
                       help="engine backend for the quantized linears")
    gen_p.add_argument("--telemetry", action="store_true",
                       help="print per-layer GEMM telemetry after generating")
    gen_p.set_defaults(func=_cmd_generate)

    serve_p = sub.add_parser(
        "serve-sim",
        help="replay a synthetic request trace through the continuous-"
        "batching scheduler",
    )
    serve_p.add_argument("--requests", type=int, default=16, metavar="N",
                         help="trace length (default: 16)")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="trace + sampling seed (default: 0)")
    serve_p.add_argument("--max-batch", type=int, default=8, metavar="B",
                         help="admission ceiling = KV-cache slots (default: 8)")
    serve_p.add_argument("--capacity", type=int, default=None, metavar="TOK",
                         help="initial per-slot cache capacity (default: "
                         "max-seq; grows on demand)")
    serve_p.add_argument("--prompt-len", default="4,24", metavar="LO,HI",
                         help="prompt length range (default: 4,24)")
    serve_p.add_argument("--max-new", default="4,16", metavar="LO,HI",
                         help="generation budget range (default: 4,16)")
    serve_p.add_argument("--interarrival", type=float, default=2.0,
                         metavar="STEPS",
                         help="mean arrival gap in scheduler steps "
                         "(default: 2.0; 0 = all at once)")
    serve_p.add_argument("--top-k", type=int, default=None, metavar="K",
                         help="top-k sampling (default: greedy)")
    serve_p.add_argument("--temperature", type=float, default=1.0)
    serve_p.add_argument("--eos-token", type=int, default=None, metavar="T",
                         help="retire a request early when it samples this "
                         "token")
    serve_p.add_argument("--shared-prefix", type=int, default=0,
                         metavar="TOK",
                         help="length of a shared prompt preamble in the "
                         "trace (default: 0 = no sharing)")
    serve_p.add_argument("--shared-fraction", type=float, default=0.8,
                         metavar="FRAC",
                         help="fraction of requests opening with the shared "
                         "preamble (default: 0.8; needs --shared-prefix)")
    serve_p.add_argument("--prefix-cache-mb", type=int, default=0,
                         metavar="MIB",
                         help="prompt-prefix KV cache budget in MiB "
                         "(default: 0 = cache off)")
    serve_p.add_argument("--prefill-chunk", type=int, default=None,
                         metavar="TOK",
                         help="max prompt tokens ingested per scheduler step "
                         "(default: unbounded)")
    serve_p.add_argument("--policy", default="rtn4@g[32,4]", metavar="POLICY",
                         help="quantization policy (default: rtn4@g[32,4])")
    serve_p.add_argument("--draft", default="none",
                         metavar="none|bigram|policy:<spec>",
                         help="speculative draft model: 'bigram' distills a "
                         "greedy bigram table from the target; "
                         "'policy:<spec>' re-quantizes the same weights "
                         "under <spec> (e.g. policy:*=int2@g[32,4]) and "
                         "drafts with that low-bit checkpoint "
                         "(default: none = no speculation)")
    serve_p.add_argument("--spec-k", type=int, default=4, metavar="K",
                         help="draft window: tokens proposed per verify "
                         "step (default: 4; needs --draft)")
    serve_p.add_argument("--backend", choices=backend_names(), default="fast",
                         help="engine backend for the batched GEMMs")
    serve_p.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes (default: 1 = in-process "
                         "serving, no sharding)")
    serve_p.add_argument("--shard", choices=("data", "tensor"), default="data",
                         help="sharding mode when --workers > 1: 'data' "
                         "routes whole requests to N full-model workers "
                         "reading one shared checkpoint (arrival pacing is "
                         "ignored; workers drain their queues flat out); "
                         "'tensor' column-shards every weight matrix across "
                         "N GEMM workers, bit-identical to --workers 1")
    serve_p.add_argument("--vocab", type=int, default=256)
    serve_p.add_argument("--d-model", type=int, default=128)
    serve_p.add_argument("--n-heads", type=int, default=4)
    serve_p.add_argument("--n-layers", type=int, default=2)
    serve_p.add_argument("--d-ffn", type=int, default=256)
    serve_p.add_argument("--max-seq", type=int, default=128)
    serve_p.add_argument("--weight-seed", type=int, default=0,
                         help="weight-init seed (default: 0)")
    serve_p.add_argument("--codesign", default=None, metavar="LABEL",
                         help="stamp a replayable workload capture "
                         "(phase-tagged GEMM histograms) into the --json "
                         "record under this policy label, for "
                         "'python -m repro codesign'")
    serve_p.add_argument("--json", default=None, metavar="OUT",
                         help="write a machine-readable replay record "
                         "(schema serve_sim/v3; v4 when --workers > 1; "
                         "v5 with --codesign)")
    serve_p.set_defaults(func=_cmd_serve_sim)

    codesign_p = sub.add_parser(
        "codesign",
        help="replay captured serving workloads through the SIMT/energy "
        "models across an architecture grid",
    )
    codesign_p.add_argument("captures", nargs="+", metavar="CAPTURE",
                            help="capture files: serve_sim/v5 records "
                            "(from serve-sim --codesign --json) or bare "
                            "codesign_capture/v1 JSON")
    codesign_p.add_argument("--grid", action="append", metavar="K=V1,V2",
                            help="architecture sweep axis (repeatable): "
                            "num_sms, dram_beats, adder_tree_dup, dp_width")
    codesign_p.add_argument("--set", action="append", metavar="K=V",
                            help="fixed architecture parameter for every "
                            "replay (repeatable)")
    codesign_p.add_argument("--csv", default="docs/data/codesign.csv",
                            metavar="FILE",
                            help="merged replay CSV to write "
                            "(default: docs/data/codesign.csv)")
    codesign_p.add_argument("--out", default="docs/codesign.md",
                            metavar="FILE",
                            help="report whose generated section to splice "
                            "(default: docs/codesign.md)")
    codesign_p.add_argument("--check", action="store_true",
                            help="exit non-zero when the committed CSV or "
                            "report section is stale")
    _add_exec_options(codesign_p)
    codesign_p.set_defaults(func=_cmd_codesign)

    lint_p = sub.add_parser(
        "lint",
        help="check the tree against the determinism contracts (detlint)",
    )
    lint_p.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: the "
                        "include set from detlint.toml)")
    lint_p.add_argument("--config", default=None, metavar="TOML",
                        help="contracts file (default: detlint.toml found "
                        "in cwd or a parent)")
    lint_p.add_argument("--format", choices=["text", "json"], default="text")
    lint_p.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="restrict to these rule ids (e.g. D001,D004)")
    lint_p.add_argument("--changed-only", action="store_true",
                        help="lint only files modified/untracked per "
                        "git status (fast pre-commit runs)")
    lint_p.add_argument("--strict", action="store_true",
                        help="also report stale suppressions (D010)")
    lint_p.add_argument("--verbose", action="store_true",
                        help="append each rule's autofix hint (text format)")
    lint_p.add_argument("--out", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout "
                        "(CI artifact)")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    lint_p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # 'codesign' is both a registered experiment (for the harness) and
    # a subcommand (the capture-replay pipeline); the subcommand wins —
    # run the experiment form via 'run codesign'.
    legacy = (set(_LEGACY_EXTRAS) | set(EXPERIMENT_REGISTRY)) - {"codesign"}
    if argv and argv[0] in legacy:
        return _legacy_main(argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, QuantizationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a consumer that closed early (| head).
        # Point stdout at /dev/null so the interpreter-shutdown flush
        # of the block-buffered stream cannot re-raise and exit 120.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
