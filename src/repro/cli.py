"""Command-line entry point: ``python -m repro <experiment> [...]``.

Runs any reproduced experiment and prints its paper-vs-measured table.
``all`` runs every experiment in sequence; ``table1`` prints the
architecture inventory.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.experiments import ALL_EXPERIMENTS, ExperimentResult, table1
from repro.core.extensions import EXTENSION_EXPERIMENTS
from repro.core.report import render_table

#: Paper experiments + extensions, one namespace for the CLI.
_RUNNERS = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}


def _print_result(result: ExperimentResult) -> None:
    print(render_table(f"{result.experiment}: {result.description}",
                       result.headers(), result.table_rows()))
    print()


def _print_table1() -> None:
    rows = [[unit, composition] for unit, composition in table1()]
    print(render_table("table1: configuration of PacQ and baselines",
                       ["unit", "composition"], rows))
    print()


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    names = ["all", "table1"] + sorted(_RUNNERS)
    parser = argparse.ArgumentParser(
        prog="pacq-repro",
        description="Reproduce the tables and figures of the PacQ paper (DAC 2025).",
    )
    parser.add_argument("experiment", choices=names, help="experiment to run")
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        _print_table1()
        return 0
    if args.experiment == "all":
        _print_table1()
        for name in sorted(ALL_EXPERIMENTS):
            _print_result(ALL_EXPERIMENTS[name]())
        for name in sorted(EXTENSION_EXPERIMENTS):
            _print_result(EXTENSION_EXPERIMENTS[name]())
        return 0
    _print_result(_RUNNERS[args.experiment]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
