"""Tensor parallelism: column-sharded GEMMs across worker processes.

Each planned weight matrix of a decoder is split column-wise
(:func:`repro.engine.shard.shard_matrix`) into one shard per worker
rank; every worker plans its shards once and then serves partial GEMMs
over a pipe.  :class:`TensorShardGroup` swaps the decoder's
:class:`~repro.engine.plan.GemmPlan` entries for
:class:`ShardedPlan` proxies, so :meth:`Decoder._linear` — and with it
``InferenceSession``, ``BatchedSession``, the scheduler, prefix cache,
and speculation — run unchanged on top of sharded execution.

Bit-identity
------------

The all-gather is a fixed-order concatenation: rank ``r`` computes
output columns ``spans[r]`` and the proxy rebuilds ``[m, n]`` as
``concatenate(parts, axis=1)`` in ascending rank order.  Because every
backend computes each output column independently (reductions run only
over ``k``, in the einsum-stable order), the sharded result is
bit-identical to the single-process result for every backend —
``fast``, ``batched``, and ``bitexact`` alike.  There is no floating-
point reduction across ranks at all, so there is nothing to reorder.
"""

from __future__ import annotations

import numpy as np

from repro.core.procutil import spawn_worker
from repro.engine.plan import GemmPlan, merge_plan_histograms, plan_histograms
from repro.engine.shard import shard_matrix, shard_spans
from repro.errors import ConfigError


def _tensor_worker_main(conn, rank: int, shards: dict) -> None:
    """Worker loop: plan each column shard once, execute on demand."""
    plans = {name: GemmPlan(qm) for name, qm in shards.items()}
    try:
        conn.send(("ready", rank))
        while True:
            message = conn.recv()
            if message is None:
                break
            op = message[0]
            if op == "exec":
                _, name, a, backend, phase = message
                try:
                    out = plans[name].execute(a, backend=backend, phase=phase)
                except Exception as exc:  # ship the failure, don't die mute
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok", out))
            elif op == "stats":
                conn.send(("ok", plan_histograms(plans)))
            else:
                conn.send(("err", f"unknown op {op!r}"))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ShardedPlan:
    """Drop-in stand-in for a ``GemmPlan`` whose columns live on workers.

    Implements the full surface :meth:`Decoder._linear` and the
    telemetry consumers use — ``n_dim``/``k_dim``, :meth:`execute`,
    ``executions``/:meth:`row_stats`/:meth:`phases` — while delegating
    the arithmetic to the group's worker fleet.  The local histograms
    count whole ``[m, n]`` GEMMs (like an unsharded plan would); each
    worker additionally keeps its own per-shard histogram, retrievable
    via :meth:`TensorShardGroup.worker_histograms`.
    """

    def __init__(
        self,
        group: "TensorShardGroup",
        name: str,
        n_dim: int,
        k_dim: int,
        spans: list[tuple[int, int]],
    ) -> None:
        self._group = group
        self.name = name
        self.n_dim = n_dim
        self.k_dim = k_dim
        self.spans = spans
        self.executions: dict[int, int] = {}
        self.phase_executions: dict[tuple[str, int], int] = {}

    def execute(
        self,
        a: np.ndarray,
        backend: str = "batched",
        phase: str | None = None,
    ) -> np.ndarray:
        """Scatter ``a`` to all ranks, gather partials in rank order."""
        a = np.asarray(a)
        m = int(a.shape[0])
        self.executions[m] = self.executions.get(m, 0) + 1
        if phase is not None:
            key = (phase, m)
            self.phase_executions[key] = self.phase_executions.get(key, 0) + 1
        parts = self._group.execute(self.name, a, backend, phase)
        return np.concatenate(parts, axis=1)

    @property
    def execute_count(self) -> int:
        return sum(self.executions.values())

    def row_stats(self, phase: str | None = None) -> dict[int, int]:
        if phase is None:
            return dict(self.executions)
        return {
            m: count
            for (p, m), count in sorted(self.phase_executions.items())
            if p == phase
        }

    def phases(self) -> dict[str, dict[int, int]]:
        out: dict[str, dict[int, int]] = {}
        for (p, m), count in sorted(self.phase_executions.items()):
            out.setdefault(p, {})[m] = count
        return out


class TensorShardGroup:
    """Shard a decoder's planned matrices across ``world`` processes.

    Construction shards every planned matrix, spawns the workers,
    waits for their ready handshake, and swaps the decoder's plans for
    :class:`ShardedPlan` proxies; :meth:`close` (or exiting the context
    manager) restores the original plans and tears the fleet down.
    FP16-fallback layers (kept out of ``decoder.plans``) are untouched
    — they already run in-process.
    """

    def __init__(self, decoder, world: int) -> None:
        if world < 2:
            raise ConfigError(f"tensor sharding needs >= 2 workers, got {world}")
        self.world = world
        self.decoder = decoder
        self._original = dict(decoder.plans)
        self.spans: dict[str, list[tuple[int, int]]] = {}
        per_rank: list[dict] = [{} for _ in range(world)]
        for name in self._original:
            qm = decoder.quantized[name]
            self.spans[name] = shard_spans(qm.n_dim, qm.group.n, world)
            for rank, shard in enumerate(shard_matrix(qm, world)):
                per_rank[rank][name] = shard
        self._procs = []
        self._conns = []
        self._closed = False
        try:
            for rank in range(world):
                proc, conn = spawn_worker(
                    _tensor_worker_main,
                    (rank, per_rank[rank]),
                    name=f"tensor-shard-{rank}",
                )
                self._procs.append(proc)
                self._conns.append(conn)
            for rank, conn in enumerate(self._conns):
                kind, payload = self._recv(rank, conn)
                if kind != "ready":
                    raise RuntimeError(f"tensor-shard worker {rank}: {payload}")
        except BaseException:
            self.close()
            raise
        for name, plan in self._original.items():
            decoder.plans[name] = ShardedPlan(
                self, name, plan.n_dim, plan.k_dim, self.spans[name]
            )

    @staticmethod
    def _recv(rank: int, conn):
        try:
            return conn.recv()
        except EOFError:
            raise RuntimeError(f"tensor-shard worker {rank} died") from None

    def execute(
        self,
        name: str,
        a: np.ndarray,
        backend: str,
        phase: str | None,
    ) -> list[np.ndarray]:
        """Broadcast one GEMM to all ranks; partials in rank order."""
        if self._closed:
            raise RuntimeError("tensor-shard group is closed")
        for conn in self._conns:
            conn.send(("exec", name, a, backend, phase))
        parts = []
        for rank, conn in enumerate(self._conns):
            kind, payload = self._recv(rank, conn)
            if kind != "ok":
                raise RuntimeError(f"tensor-shard worker {rank}: {payload}")
            parts.append(payload)
        return parts

    def worker_histograms(self) -> dict[str, dict]:
        """Fleet-merged per-shard plan histograms from all workers."""
        if self._closed:
            raise RuntimeError("tensor-shard group is closed")
        for conn in self._conns:
            conn.send(("stats",))
        merged: dict[str, dict] = {}
        for rank, conn in enumerate(self._conns):
            kind, payload = self._recv(rank, conn)
            if kind != "ok":
                raise RuntimeError(f"tensor-shard worker {rank}: {payload}")
            merge_plan_histograms(merged, payload)
        return merged

    def close(self) -> None:
        """Restore the decoder's plans and shut the workers down."""
        if self._closed:
            return
        self._closed = True
        for name, plan in self._original.items():
            self.decoder.plans[name] = plan
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    def __enter__(self) -> "TensorShardGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def tensor_shard(session, world: int) -> TensorShardGroup:
    """Shard a session's decoder across ``world`` worker processes.

    Works for any session exposing a ``decoder`` with ``plans`` and
    ``quantized`` mappings (``InferenceSession`` and ``BatchedSession``
    both do).  Use as a context manager::

        with tensor_shard(session, world=4):
            tokens = session.generate(prompt, max_new=16)
    """
    return TensorShardGroup(session.decoder, world)
